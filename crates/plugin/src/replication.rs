//! Replication Plug-in for Containers, and the backup-site importer.
//!
//! [`ReplicationPlugin`] reconciles `ReplicationGroup` / `VolumeReplication`
//! custom resources into array state: secondary volumes, replication pairs
//! and (consistency) groups — the role of Hitachi's Replication Plug-in for
//! Containers (§III-B2). [`BackupSiteImporter`] runs on the backup site's
//! platform and surfaces replicated volumes there as PVs/PVCs, reproducing
//! Fig. 4 of the paper (claims appearing at the backup site after tagging).

use std::collections::BTreeMap;

use tsuru_container::{
    ApiServer, ClaimPhase, ObjectMeta, PersistentVolume, PersistentVolumeClaim, Reconciler,
    ReplicationMode, ReplicationState, VolumeHandle,
};
use tsuru_simnet::LinkId;
use tsuru_storage::{
    ArrayId, GroupId, GroupState, PairId, RecoveryStage, StorageWorld, VolRef, VolumeId,
};

/// Annotation key the replication plugin maintains on namespaces whose
/// groups it manages: the comma-joined names of the SLO alert rules
/// currently firing on the storage world (removed while none fire). The
/// container-platform mirror of an open incident — operators watching
/// the namespace see the breach without reading array telemetry.
pub const SLO_ALERT_ANNOTATION: &str = "tsuru.io/slo-alert";

/// Observed replication health of one array pair, folding the owning
/// group's lifecycle state with the supervisor's recovery stage (when a
/// supervisor is armed on the world).
fn pair_health(st: &StorageWorld, pid: PairId) -> ReplicationState {
    let gid = st.fabric.pair(pid).group;
    if let Some(sv) = st.supervisor() {
        if sv.is_parked(gid) {
            return ReplicationState::Parked;
        }
        if matches!(
            sv.stage(gid),
            RecoveryStage::BackingOff { .. } | RecoveryStage::Recovering { .. }
        ) {
            return ReplicationState::Recovering;
        }
    }
    match st.fabric.group(gid).state {
        GroupState::Active => ReplicationState::Replicating,
        GroupState::Suspended { .. } | GroupState::Promoted => ReplicationState::Suspended,
    }
}

/// Static wiring of the replication plugin.
#[derive(Debug, Clone)]
pub struct ReplicationPluginConfig {
    /// The local (main-site) array.
    pub main_array: ArrayId,
    /// The remote (backup-site) array.
    pub backup_array: ArrayId,
    /// Main → backup data link.
    pub link: LinkId,
    /// Backup → main acknowledgement link.
    pub reverse: LinkId,
    /// Journal capacity for ADC groups.
    pub journal_capacity_bytes: u64,
}

/// The main-site replication reconciler.
#[derive(Debug)]
pub struct ReplicationPlugin {
    cfg: ReplicationPluginConfig,
    /// Array group(s) backing each ReplicationGroup CR (one when the CR
    /// requests a consistency group, one per member otherwise).
    groups_by_cr: BTreeMap<String, Vec<GroupId>>,
    /// Array pair backing each VolumeReplication CR.
    pairs_by_cr: BTreeMap<String, PairId>,
    /// Pairs configured over this plugin's lifetime.
    pub pairs_created: u64,
    /// Pairs torn down.
    pub pairs_removed: u64,
}

impl ReplicationPlugin {
    /// Wire a plugin.
    pub fn new(cfg: ReplicationPluginConfig) -> Self {
        ReplicationPlugin {
            cfg,
            groups_by_cr: BTreeMap::new(),
            pairs_by_cr: BTreeMap::new(),
            pairs_created: 0,
            pairs_removed: 0,
        }
    }

    /// Simulate a reconciler process restart: all in-memory bookkeeping is
    /// lost. The next [`reconcile`](Reconciler::reconcile) re-adopts pairs
    /// and groups from the handles persisted in CR status instead of
    /// re-creating them (re-pairing a volume that already replicates is an
    /// array-side error). Lifetime counters (`pairs_created`,
    /// `pairs_removed`) are deliberately kept — they meter array
    /// operations, which a controller restart does not undo.
    pub fn restart(&mut self) {
        self.groups_by_cr.clear();
        self.pairs_by_cr.clear();
    }

    /// Array group ids configured for a ReplicationGroup CR key.
    pub fn groups_for(&self, cr_key: &str) -> &[GroupId] {
        self.groups_by_cr
            .get(cr_key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Every array group this plugin manages.
    pub fn all_groups(&self) -> Vec<GroupId> {
        let mut v: Vec<GroupId> = self.groups_by_cr.values().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn ensure_group(
        &mut self,
        st: &mut StorageWorld,
        cr_key: &str,
        name: &str,
        mode: ReplicationMode,
    ) -> GroupId {
        if let Some(gs) = self.groups_by_cr.get(cr_key) {
            if let Some(&g) = gs.first() {
                return g;
            }
        }
        let gid = match mode {
            ReplicationMode::Async => st.create_adc_group(
                name,
                self.cfg.link,
                self.cfg.reverse,
                self.cfg.journal_capacity_bytes,
            ),
            ReplicationMode::Sync => st.create_sdc_group(name, self.cfg.link, self.cfg.reverse),
        };
        self.groups_by_cr.entry(cr_key.to_owned()).or_default().push(gid);
        gid
    }

    fn ensure_solo_group(
        &mut self,
        st: &mut StorageWorld,
        cr_key: &str,
        name: &str,
        mode: ReplicationMode,
    ) -> GroupId {
        let gid = match mode {
            ReplicationMode::Async => st.create_adc_group(
                name,
                self.cfg.link,
                self.cfg.reverse,
                self.cfg.journal_capacity_bytes,
            ),
            ReplicationMode::Sync => st.create_sdc_group(name, self.cfg.link, self.cfg.reverse),
        };
        self.groups_by_cr.entry(cr_key.to_owned()).or_default().push(gid);
        gid
    }
}

impl Reconciler<StorageWorld> for ReplicationPlugin {
    fn name(&self) -> &str {
        "replication-plugin"
    }

    fn reconcile(&mut self, api: &mut ApiServer, st: &mut StorageWorld) {
        let t = st.control_time();
        st.tracer
            .instant(tsuru_storage::span_names::RECONCILE, t, tsuru_storage::SpanId::NONE, || {
                vec![("plugin", "replication-plugin".into())]
            });
        // --- adopt handles persisted by a previous incarnation ------------
        // After a controller restart the in-memory maps are empty, but the
        // array handles written into CR status survive. Re-adopting them
        // keeps reconciliation idempotent across restarts: without this,
        // the pairing loop below would try to re-pair volumes that already
        // replicate.
        let live_groups: std::collections::BTreeSet<GroupId> =
            st.fabric.group_ids().into_iter().collect();
        let rg_handles: Vec<(String, Vec<u32>)> = api
            .replication_groups
            .list()
            .filter(|rg| !rg.group_handles.is_empty())
            .map(|rg| (rg.meta.key(), rg.group_handles.clone()))
            .collect();
        for (rg_key, handles) in rg_handles {
            if self.groups_by_cr.contains_key(&rg_key) {
                continue;
            }
            let gids: Vec<GroupId> = handles
                .into_iter()
                .map(GroupId)
                .filter(|g| live_groups.contains(g))
                .collect();
            if !gids.is_empty() {
                self.groups_by_cr.insert(rg_key, gids);
            }
        }
        let live_pairs: std::collections::BTreeSet<PairId> =
            st.fabric.pair_ids().into_iter().collect();
        let vr_handles: Vec<(String, u32)> = api
            .replications
            .list()
            .filter_map(|vr| vr.pair_handle.map(|h| (vr.meta.key(), h)))
            .collect();
        for (vr_key, handle) in vr_handles {
            let pid = PairId(handle);
            if !self.pairs_by_cr.contains_key(&vr_key) && live_pairs.contains(&pid) {
                self.pairs_by_cr.insert(vr_key, pid);
            }
        }

        // --- pair up VolumeReplication CRs -------------------------------
        let vrs: Vec<(String, String, String, Option<String>)> = api
            .replications
            .list()
            .map(|vr| {
                (
                    vr.meta.key(),
                    vr.source_pvc.clone(),
                    vr.group_name.clone(),
                    vr.meta.namespace.clone(),
                )
            })
            .collect();
        for (vr_key, source_pvc, group_name, ns) in vrs {
            if self.pairs_by_cr.contains_key(&vr_key) {
                continue;
            }
            let Some(ns) = ns else { continue };
            let pvc_key = format!("{ns}/{source_pvc}");
            let Some(pvc) = api.pvcs.get(&pvc_key) else {
                continue;
            };
            if pvc.phase != ClaimPhase::Bound {
                continue; // provisioner has not bound it yet; retried next round
            }
            let Some(pv_name) = pvc.volume_name.clone() else {
                continue;
            };
            let Some(pv) = api.pvs.get(&pv_name) else {
                continue;
            };
            let handle = pv.handle;
            if handle.array != self.cfg.main_array.0 {
                continue; // not our array
            }
            let rg_key = format!("{ns}/{group_name}");
            let Some(rg) = api.replication_groups.get(&rg_key) else {
                continue;
            };
            let (mode, cg) = (rg.mode, rg.consistency_group);
            let gid = if cg {
                self.ensure_group(st, &rg_key, &format!("cg-{ns}-{group_name}"), mode)
            } else {
                self.ensure_solo_group(st, &rg_key, &format!("solo-{vr_key}"), mode)
            };
            // Create the secondary volume, named after the claim so the
            // backup site can surface it (see BackupSiteImporter).
            let size = pv.size_blocks;
            let secondary = st.create_volume(self.cfg.backup_array, pvc_key.clone(), size);
            let primary = VolRef::new(ArrayId(handle.array), VolumeId(handle.volume));
            let pair = st.add_pair(gid, primary, secondary);
            self.pairs_by_cr.insert(vr_key.clone(), pair);
            self.pairs_created += 1;
            api.replications.update(&vr_key, |vr| {
                vr.pair_handle = Some(pair.0);
                vr.state = ReplicationState::Replicating;
                true
            });
            api.record_event(
                format!("VolumeReplication/{vr_key}"),
                "Paired",
                format!("{primary} replicating (group g{})", gid.0),
            );
        }

        // --- tear down pairs whose CR vanished ----------------------------
        let dead: Vec<(String, PairId)> = self
            .pairs_by_cr
            .iter()
            .filter(|(key, _)| !api.replications.contains(key))
            .map(|(k, &p)| (k.clone(), p))
            .collect();
        for (key, pair) in dead {
            st.remove_pair(pair);
            self.pairs_by_cr.remove(&key);
            self.pairs_removed += 1;
            api.record_event(
                format!("VolumeReplication/{key}"),
                "Unpaired",
                "replication torn down",
            );
        }
        // Forget groups whose CR vanished (array groups are left in place,
        // inert without pairs — matching how arrays retain group shells).
        self.groups_by_cr
            .retain(|key, _| api.replication_groups.contains(key));

        // --- reflect array + supervisor health into VR status -------------
        // Each VolumeReplication mirrors its pair's group health: a
        // suspension the supervisor is actively healing reads `Recovering`,
        // a circuit-breaker park reads `Parked` (operator action needed).
        let live_pairs: std::collections::BTreeSet<PairId> =
            st.fabric.pair_ids().into_iter().collect();
        let vr_states: BTreeMap<String, ReplicationState> = self
            .pairs_by_cr
            .iter()
            .filter(|(_, pid)| live_pairs.contains(pid))
            .map(|(key, &pid)| (key.clone(), pair_health(st, pid)))
            .collect();
        for (vr_key, state) in &vr_states {
            api.replications.update(vr_key, |vr| {
                if vr.state != *state {
                    vr.state = *state;
                    true
                } else {
                    false
                }
            });
        }

        // --- roll up ReplicationGroup status ------------------------------
        let rgs: Vec<String> = api
            .replication_groups
            .list()
            .map(|rg| rg.meta.key())
            .collect();
        for rg_key in rgs {
            // Worst member health wins the rollup: Parked > Recovering >
            // Suspended > Replicating (which additionally requires every
            // member paired) > Unknown.
            let (members_total, members_paired, worst): (usize, usize, Option<ReplicationState>) = {
                let Some(rg) = api.replication_groups.get(&rg_key) else {
                    continue;
                };
                let ns = rg.meta.namespace.clone().unwrap_or_default();
                let member_states: Vec<ReplicationState> = rg
                    .member_pvcs
                    .iter()
                    .filter_map(|pvc| {
                        let vr_key = format!("{ns}/{pvc}-repl");
                        vr_states.get(&vr_key).copied()
                    })
                    .collect();
                let rank = |s: ReplicationState| match s {
                    ReplicationState::Parked => 4,
                    ReplicationState::Recovering => 3,
                    ReplicationState::Suspended => 2,
                    ReplicationState::Replicating => 1,
                    ReplicationState::Unknown => 0,
                };
                let worst = member_states.iter().copied().max_by_key(|&s| rank(s));
                (rg.member_pvcs.len(), member_states.len(), worst)
            };
            let handles: Vec<u32> = self
                .groups_for(&rg_key)
                .iter()
                .map(|g| g.0)
                .collect();
            api.replication_groups.update(&rg_key, |rg| {
                let new_state = match worst {
                    Some(ReplicationState::Replicating) | None => {
                        if members_total > 0 && members_paired == members_total {
                            ReplicationState::Replicating
                        } else {
                            ReplicationState::Unknown
                        }
                    }
                    Some(s) => s,
                };
                if rg.state != new_state || rg.group_handles != handles {
                    rg.state = new_state;
                    rg.group_handles = handles.clone();
                    true
                } else {
                    false
                }
            });
        }

        // --- surface firing SLO alerts as namespace conditions ------------
        // Only runs when an alert engine is armed on the world; the
        // annotation appears while rules fire and is removed once every
        // incident resolves, so untraced experiments see zero churn.
        let Some(engine) = st.alerts() else { return };
        let firing = engine.firing_rules().join(",");
        let namespaces: std::collections::BTreeSet<String> = api
            .replication_groups
            .list()
            .filter_map(|rg| rg.meta.namespace.clone())
            .collect();
        for ns in namespaces {
            let prev = api
                .namespaces
                .get(&ns)
                .and_then(|n| n.meta.annotations.get(SLO_ALERT_ANNOTATION).cloned());
            if firing.is_empty() {
                if prev.is_some() {
                    api.namespaces.update(&ns, |n| {
                        n.meta.annotations.remove(SLO_ALERT_ANNOTATION);
                        true
                    });
                    api.record_event(
                        format!("Namespace/{ns}"),
                        "SloRecovered",
                        "all alert rules stopped firing",
                    );
                }
            } else if prev.as_deref() != Some(firing.as_str()) {
                api.namespaces.update(&ns, |n| {
                    n.meta
                        .annotations
                        .insert(SLO_ALERT_ANNOTATION.to_string(), firing.clone());
                    true
                });
                api.record_event(
                    format!("Namespace/{ns}"),
                    "SloBreach",
                    format!("alert rules firing: {firing}"),
                );
            }
        }
    }
}

/// Backup-site controller: surfaces replicated volumes as PVs and PVCs on
/// the backup platform (Fig. 4).
#[derive(Debug)]
pub struct BackupSiteImporter {
    /// The backup-site array this importer watches.
    pub backup_array: ArrayId,
    imported: BTreeMap<String, ()>,
}

impl BackupSiteImporter {
    /// A new importer for `backup_array`.
    pub fn new(backup_array: ArrayId) -> Self {
        BackupSiteImporter {
            backup_array,
            imported: BTreeMap::new(),
        }
    }
}

impl Reconciler<StorageWorld> for BackupSiteImporter {
    fn name(&self) -> &str {
        "backup-site-importer"
    }

    fn reconcile(&mut self, api: &mut ApiServer, st: &mut StorageWorld) {
        let t = st.control_time();
        st.tracer
            .instant(tsuru_storage::span_names::RECONCILE, t, tsuru_storage::SpanId::NONE, || {
                vec![("plugin", "backup-site-importer".into())]
            });
        // Active pairs targeting our array, keyed by the claim key embedded
        // in the secondary volume's name.
        let mut live: Vec<(String, VolRef, u64)> = Vec::new();
        for pid in st.fabric.pair_ids() {
            let pair = st.fabric.pair(pid);
            if pair.secondary.array != self.backup_array {
                continue;
            }
            if st.fabric.pair_by_primary(pair.primary) != Some(pid) {
                continue; // detached
            }
            let vol = st.array(self.backup_array).volume(pair.secondary.volume);
            live.push((vol.name().to_owned(), pair.secondary, vol.size_blocks()));
        }

        for (claim_key, secondary, size) in &live {
            if self.imported.contains_key(claim_key) {
                continue;
            }
            let Some((ns, name)) = claim_key.split_once('/') else {
                continue; // not an importer-named volume
            };
            if !api.namespaces.contains(ns) {
                api.namespaces.create(tsuru_container::Namespace {
                    meta: ObjectMeta::cluster(ns),
                });
            }
            let pv_name = format!("pv-{ns}-{name}-replica");
            if !api.pvs.contains(&pv_name) {
                api.pvs.create(PersistentVolume {
                    meta: ObjectMeta::cluster(&pv_name),
                    storage_class: "tsuru-block".into(),
                    size_blocks: *size,
                    handle: VolumeHandle {
                        array: secondary.array.0,
                        volume: secondary.volume.0,
                    },
                    claim_key: Some(claim_key.clone()),
                });
            }
            if !api.pvcs.contains(claim_key) {
                api.pvcs.create(PersistentVolumeClaim {
                    meta: ObjectMeta::namespaced(ns, name),
                    storage_class: "tsuru-block".into(),
                    size_blocks: *size,
                    phase: ClaimPhase::Bound,
                    volume_name: Some(pv_name.clone()),
                });
                api.record_event(
                    format!("PersistentVolumeClaim/{claim_key}"),
                    "Imported",
                    "replicated volume surfaced at the backup site",
                );
            }
            self.imported.insert(claim_key.clone(), ());
        }

        // Remove imports whose pair was torn down.
        let live_keys: std::collections::BTreeSet<&String> =
            live.iter().map(|(k, _, _)| k).collect();
        let dead: Vec<String> = self
            .imported
            .keys()
            .filter(|k| !live_keys.contains(k))
            .cloned()
            .collect();
        for claim_key in dead {
            if let Some((ns, name)) = claim_key.split_once('/') {
                let pv_name = format!("pv-{ns}-{name}-replica");
                api.pvcs.delete(&claim_key);
                api.pvs.delete(&pv_name);
                api.record_event(
                    format!("PersistentVolumeClaim/{claim_key}"),
                    "ImportRemoved",
                    "replication torn down; claim removed from backup site",
                );
            }
            self.imported.remove(&claim_key);
        }
    }
}
