//! Scheduled snapshots with retention — the backup catalogue.
//!
//! The paper's demonstration takes snapshots on demand from the console;
//! production backup systems take them on a schedule and keep a bounded
//! history. [`SnapshotScheduler`] periodically creates a
//! `VolumeGroupSnapshot` for a namespace (fulfilled by the
//! [`SnapshotPlugin`](crate::SnapshotPlugin)) and prunes the oldest
//! generations beyond the retention limit, releasing their array snapshots
//! and copy-on-write space.

use tsuru_container::{ApiServer, ObjectMeta, Reconciler, VolumeGroupSnapshot};
use tsuru_sim::{SimDuration, SimTime};
use tsuru_storage::{ArrayId, SnapshotId, StorageWorld};

/// Periodic group-snapshot policy for one namespace.
#[derive(Debug)]
pub struct SnapshotScheduler {
    /// Namespace whose claims are snapshotted.
    pub namespace: String,
    /// Array holding the snapshots (the backup site).
    pub array: ArrayId,
    /// Time between snapshot generations.
    pub interval: SimDuration,
    /// Generations to keep (older ready generations are pruned).
    pub retention: usize,
    next_due: SimTime,
    counter: u64,
    /// Generations created.
    pub taken: u64,
    /// Generations pruned.
    pub pruned: u64,
}

impl SnapshotScheduler {
    /// A scheduler that becomes due immediately.
    pub fn new(
        namespace: impl Into<String>,
        array: ArrayId,
        interval: SimDuration,
        retention: usize,
    ) -> Self {
        assert!(retention >= 1, "retention must keep at least one generation");
        SnapshotScheduler {
            namespace: namespace.into(),
            array,
            interval,
            retention,
            next_due: SimTime::ZERO,
            counter: 0,
            taken: 0,
            pruned: 0,
        }
    }

    /// The generation name for index `n`.
    pub fn generation_name(n: u64) -> String {
        format!("auto-{n:06}")
    }
}

impl Reconciler<StorageWorld> for SnapshotScheduler {
    fn name(&self) -> &str {
        "snapshot-scheduler"
    }

    fn reconcile(&mut self, api: &mut ApiServer, st: &mut StorageWorld) {
        let now = st.control_time();
        st.tracer
            .instant(tsuru_storage::span_names::RECONCILE, now, tsuru_storage::SpanId::NONE, || {
                vec![("plugin", "snapshot-scheduler".into())]
            });
        // Take a new generation when due.
        if now >= self.next_due {
            let name = Self::generation_name(self.counter);
            let key = format!("{}/{name}", self.namespace);
            if !api.group_snapshots.contains(&key) {
                api.group_snapshots.create(VolumeGroupSnapshot {
                    meta: ObjectMeta::namespaced(&self.namespace, &name),
                    selector: Default::default(),
                    ready: false,
                    snapshot_handles: Vec::new(),
                });
                self.counter += 1;
                self.taken += 1;
                self.next_due = now + self.interval;
                api.record_event(
                    format!("VolumeGroupSnapshot/{key}"),
                    "Scheduled",
                    format!("generation {} due at {}", self.counter, self.next_due),
                );
            }
        }
        // Prune: keep the newest `retention` *ready* generations.
        type Generation = (u64, String, Vec<(String, u64)>);
        let mut ready: Vec<Generation> = api
            .group_snapshots
            .list_namespace(&self.namespace)
            .filter(|g| g.ready && g.meta.name.starts_with("auto-"))
            .map(|g| (g.meta.uid, g.meta.key(), g.snapshot_handles.clone()))
            .collect();
        ready.sort_by_key(|(uid, _, _)| *uid);
        while ready.len() > self.retention {
            let (_, key, handles) = ready.remove(0);
            for (_, h) in &handles {
                st.array_mut(self.array).delete_snapshot(SnapshotId(*h));
            }
            api.group_snapshots.delete(&key);
            self.pruned += 1;
            api.record_event(
                format!("VolumeGroupSnapshot/{key}"),
                "Pruned",
                "generation beyond retention; array snapshots released",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SnapshotPlugin, TsuruBlockDriver};
    use std::collections::BTreeMap;
    use tsuru_container::{
        ClaimPhase, ControllerManager, PersistentVolumeClaim, Provisioner, StorageClass,
    };
    use tsuru_storage::{ArrayPerf, EngineConfig};

    fn setup() -> (StorageWorld, ApiServer, ArrayId, Provisioner<TsuruBlockDriver>) {
        let mut st = StorageWorld::new(9, EngineConfig::default());
        let a = st.add_array("b", ArrayPerf::default());
        let mut api = ApiServer::new();
        api.storage_classes.create(StorageClass {
            meta: ObjectMeta::cluster("tsuru-block"),
            provisioner: "csi.test".into(),
            parameters: BTreeMap::new(),
        });
        for name in ["wal", "data"] {
            api.pvcs.create(PersistentVolumeClaim {
                meta: ObjectMeta::namespaced("shop", name),
                storage_class: "tsuru-block".into(),
                size_blocks: 16,
                phase: ClaimPhase::Pending,
                volume_name: None,
            });
        }
        let mut prov = Provisioner::new(TsuruBlockDriver::new(a, "csi.test"));
        ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut prov], 8);
        (st, api, a, prov)
    }

    #[test]
    fn scheduler_takes_generations_and_prunes() {
        let (mut st, mut api, a, _prov) = setup();
        let mut sched = SnapshotScheduler::new("shop", a, SimDuration::from_secs(60), 2);
        let mut plugin = SnapshotPlugin::new(a);

        // Five scheduling epochs, 1 minute apart.
        for minute in 0..5u64 {
            st.set_control_time(SimTime::from_secs(minute * 60));
            ControllerManager::run_to_convergence(
                &mut api,
                &mut st,
                &mut [&mut sched, &mut plugin],
                16,
            );
        }
        assert_eq!(sched.taken, 5);
        assert_eq!(sched.pruned, 3, "retention 2 keeps the newest two");
        let names: Vec<String> = api
            .group_snapshots
            .list_namespace("shop")
            .map(|g| g.meta.name.clone())
            .collect();
        assert_eq!(names, vec!["auto-000003", "auto-000004"]);
        // Array snapshots of pruned generations are gone: 2 generations ×
        // 2 volumes remain.
        assert_eq!(st.array(a).snapshot_ids().len(), 4);
    }

    #[test]
    fn scheduler_does_not_retake_before_due() {
        let (mut st, mut api, a, _prov) = setup();
        let mut sched = SnapshotScheduler::new("shop", a, SimDuration::from_secs(60), 3);
        let mut plugin = SnapshotPlugin::new(a);
        st.set_control_time(SimTime::from_secs(1));
        ControllerManager::run_to_convergence(
            &mut api,
            &mut st,
            &mut [&mut sched, &mut plugin],
            16,
        );
        // Thirty seconds later: not due yet.
        st.set_control_time(SimTime::from_secs(31));
        ControllerManager::run_to_convergence(
            &mut api,
            &mut st,
            &mut [&mut sched, &mut plugin],
            16,
        );
        assert_eq!(sched.taken, 1);
    }

    #[test]
    #[should_panic(expected = "retention")]
    fn zero_retention_rejected() {
        let _ = SnapshotScheduler::new("x", ArrayId(0), SimDuration::from_secs(1), 0);
    }
}
