//! # tsuru-plugin — vendor storage plugins for the container platform
//!
//! The bridge between the declarative platform (`tsuru-container`) and the
//! storage array (`tsuru-storage`), mirroring the two Hitachi plugins the
//! paper's demonstration uses (§III-B2):
//!
//! - [`TsuruBlockDriver`] — the CSI driver (Storage Plug-in for
//!   Containers): dynamic provisioning, snapshots, group snapshots.
//! - [`ReplicationPlugin`] — the Replication Plug-in for Containers:
//!   reconciles `ReplicationGroup`/`VolumeReplication` custom resources
//!   into array pairs and consistency groups.
//! - [`BackupSiteImporter`] — surfaces replicated volumes as PVs/PVCs on
//!   the backup-site platform (Fig. 4).
//! - [`SnapshotPlugin`] — reconciles snapshot resources, including the
//!   volume-group-snapshot alpha API the paper cites as future work.
//! - [`SnapshotScheduler`] — periodic group snapshots with retention (the
//!   backup catalogue production systems add on top of the paper's
//!   on-demand snapshots).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod replication;
mod scheduler;
mod snapshot;

pub use driver::TsuruBlockDriver;
pub use replication::{BackupSiteImporter, ReplicationPlugin, ReplicationPluginConfig};
pub use scheduler::SnapshotScheduler;
pub use snapshot::SnapshotPlugin;
