//! The vendor CSI driver: Storage Plug-in for Containers.
//!
//! Implements the vendor-neutral [`CsiDriver`] surface against one
//! simulated array — the role Hitachi's Storage Plug-in for Containers
//! plays against a VSP in the paper's testbed (§III-B2).

use std::collections::BTreeMap;

use tsuru_container::{CsiDriver, VolumeHandle};
use tsuru_storage::{ArrayId, StorageWorld, VolumeId};

/// The block-storage CSI driver for one site's array.
#[derive(Debug)]
pub struct TsuruBlockDriver {
    array: ArrayId,
    name: String,
}

impl TsuruBlockDriver {
    /// A driver bound to `array`; `name` is what storage classes reference
    /// (e.g. `block.csi.tsuru.io`).
    pub fn new(array: ArrayId, name: impl Into<String>) -> Self {
        TsuruBlockDriver {
            array,
            name: name.into(),
        }
    }

    /// The array this driver manages.
    pub fn array(&self) -> ArrayId {
        self.array
    }
}

impl CsiDriver<StorageWorld> for TsuruBlockDriver {
    fn driver_name(&self) -> &str {
        &self.name
    }

    fn create_volume(
        &mut self,
        st: &mut StorageWorld,
        name: &str,
        size_blocks: u64,
        _parameters: &BTreeMap<String, String>,
    ) -> Result<VolumeHandle, String> {
        if st.array(self.array).is_failed() {
            return Err(format!("array {} is failed", st.array(self.array).name()));
        }
        let vol = st.create_volume(self.array, name, size_blocks);
        Ok(VolumeHandle {
            array: vol.array.0,
            volume: vol.volume.0,
        })
    }

    fn delete_volume(&mut self, st: &mut StorageWorld, handle: VolumeHandle) -> Result<(), String> {
        if handle.array != self.array.0 {
            return Err("handle belongs to a different array".into());
        }
        st.array_mut(self.array).delete_volume(VolumeId(handle.volume));
        Ok(())
    }

    fn create_snapshot(
        &mut self,
        st: &mut StorageWorld,
        source: VolumeHandle,
        name: &str,
    ) -> Result<u64, String> {
        if source.array != self.array.0 {
            return Err("handle belongs to a different array".into());
        }
        if !st.array(self.array).has_volume(VolumeId(source.volume)) {
            return Err(format!("volume {} does not exist", source.volume));
        }
        let now = st.control_time();
        let snap = st
            .array_mut(self.array)
            .create_snapshot(VolumeId(source.volume), name, now);
        Ok(snap.0)
    }

    fn create_volume_from_snapshot(
        &mut self,
        st: &mut StorageWorld,
        snapshot: u64,
        name: &str,
    ) -> Result<VolumeHandle, String> {
        if st.array(self.array).is_failed() {
            return Err(format!("array {} is failed", st.array(self.array).name()));
        }
        if !st
            .array(self.array)
            .snapshot_ids()
            .contains(&tsuru_storage::SnapshotId(snapshot))
        {
            return Err(format!("snapshot {snapshot} does not exist"));
        }
        let vol = st
            .array_mut(self.array)
            .create_volume_from_snapshot(tsuru_storage::SnapshotId(snapshot), name);
        Ok(VolumeHandle {
            array: self.array.0,
            volume: vol.0,
        })
    }

    fn create_group_snapshot(
        &mut self,
        st: &mut StorageWorld,
        sources: &[VolumeHandle],
        name: &str,
    ) -> Result<Vec<u64>, String> {
        if sources.is_empty() {
            return Err("empty snapshot group".into());
        }
        let mut vols = Vec::with_capacity(sources.len());
        for s in sources {
            if s.array != self.array.0 {
                return Err("handle belongs to a different array".into());
            }
            if !st.array(self.array).has_volume(VolumeId(s.volume)) {
                return Err(format!("volume {} does not exist", s.volume));
            }
            vols.push(VolumeId(s.volume));
        }
        let now = st.control_time();
        let snaps = st
            .array_mut(self.array)
            .create_snapshot_group(&vols, name, now);
        Ok(snaps.into_iter().map(|s| s.0).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsuru_storage::{ArrayPerf, EngineConfig};

    fn world() -> (StorageWorld, ArrayId) {
        let mut st = StorageWorld::new(1, EngineConfig::default());
        let a = st.add_array("vsp", ArrayPerf::default());
        (st, a)
    }

    #[test]
    fn volume_lifecycle_through_csi() {
        let (mut st, a) = world();
        let mut d = TsuruBlockDriver::new(a, "block.csi.tsuru.io");
        let h = d
            .create_volume(&mut st, "pv-shop-sales", 64, &BTreeMap::new())
            .unwrap();
        assert!(st.array(a).has_volume(VolumeId(h.volume)));
        assert_eq!(st.array(a).volume(VolumeId(h.volume)).name(), "pv-shop-sales");
        d.delete_volume(&mut st, h).unwrap();
        assert!(!st.array(a).has_volume(VolumeId(h.volume)));
    }

    #[test]
    fn snapshot_and_group_snapshot() {
        let (mut st, a) = world();
        st.set_control_time(tsuru_sim::SimTime::from_secs(9));
        let mut d = TsuruBlockDriver::new(a, "block.csi.tsuru.io");
        let h1 = d.create_volume(&mut st, "v1", 16, &BTreeMap::new()).unwrap();
        let h2 = d.create_volume(&mut st, "v2", 16, &BTreeMap::new()).unwrap();
        let s = d.create_snapshot(&mut st, h1, "snap-1").unwrap();
        assert_eq!(
            st.array(a).snapshot(tsuru_storage::SnapshotId(s)).created_at(),
            tsuru_sim::SimTime::from_secs(9)
        );
        let group = d.create_group_snapshot(&mut st, &[h1, h2], "grp").unwrap();
        assert_eq!(group.len(), 2);
        let g0 = st.array(a).snapshot(tsuru_storage::SnapshotId(group[0])).group();
        let g1 = st.array(a).snapshot(tsuru_storage::SnapshotId(group[1])).group();
        assert!(g0.is_some() && g0 == g1);
    }

    #[test]
    fn errors_for_bad_handles_and_failed_arrays() {
        let (mut st, a) = world();
        let mut d = TsuruBlockDriver::new(a, "x");
        let foreign = VolumeHandle { array: 99, volume: 0 };
        assert!(d.delete_volume(&mut st, foreign).is_err());
        assert!(d.create_snapshot(&mut st, foreign, "s").is_err());
        assert!(d
            .create_snapshot(&mut st, VolumeHandle { array: 0, volume: 77 }, "s")
            .is_err());
        assert!(d.create_group_snapshot(&mut st, &[], "s").is_err());
        st.fail_array(a, tsuru_sim::SimTime::ZERO);
        assert!(d.create_volume(&mut st, "v", 8, &BTreeMap::new()).is_err());
    }
}
