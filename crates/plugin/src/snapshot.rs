//! Snapshot reconciler for the backup site.
//!
//! Turns `VolumeSnapshot` and `VolumeGroupSnapshot` resources into array
//! snapshots. The paper notes the volume-group-snapshot CSI is an alpha
//! feature not yet supported by the vendor plugin — users had to operate
//! the storage directly (§II). This crate implements *both* paths: the
//! direct array call is available through `StorageWorld::snapshot_group`,
//! and this reconciler is the "future work" CSI path, so experiment E4 can
//! compare them.

use tsuru_container::{ApiServer, ClaimPhase, Reconciler, VolumeHandle};
use tsuru_storage::{ArrayId, StorageWorld, VolumeId};

/// Reconciles snapshot resources on one site.
#[derive(Debug)]
pub struct SnapshotPlugin {
    /// The array snapshots are taken on.
    pub array: ArrayId,
    /// Snapshots taken (single + group members).
    pub snapshots_taken: u64,
}

impl SnapshotPlugin {
    /// A plugin bound to `array`.
    pub fn new(array: ArrayId) -> Self {
        SnapshotPlugin {
            array,
            snapshots_taken: 0,
        }
    }

    /// Resolve a claim to its backing array volume handle.
    fn resolve(&self, api: &ApiServer, ns: &str, pvc_name: &str) -> Option<VolumeHandle> {
        let pvc = api.pvcs.get(&format!("{ns}/{pvc_name}"))?;
        if pvc.phase != ClaimPhase::Bound {
            return None;
        }
        let pv = api.pvs.get(pvc.volume_name.as_deref()?)?;
        (pv.handle.array == self.array.0).then_some(pv.handle)
    }
}

impl Reconciler<StorageWorld> for SnapshotPlugin {
    fn name(&self) -> &str {
        "snapshot-plugin"
    }

    fn reconcile(&mut self, api: &mut ApiServer, st: &mut StorageWorld) {
        let now = st.control_time();
        st.tracer
            .instant(tsuru_storage::span_names::RECONCILE, now, tsuru_storage::SpanId::NONE, || {
                vec![("plugin", "snapshot-plugin".into())]
            });

        // Single snapshots.
        let pending: Vec<(String, String, Option<String>)> = api
            .snapshots
            .list()
            .filter(|s| !s.ready)
            .map(|s| (s.meta.key(), s.source_pvc.clone(), s.meta.namespace.clone()))
            .collect();
        for (key, source, ns) in pending {
            let Some(ns) = ns else { continue };
            let Some(handle) = self.resolve(api, &ns, &source) else {
                continue;
            };
            let snap = st.array_mut(self.array).create_snapshot(
                VolumeId(handle.volume),
                format!("snap-{key}"),
                now,
            );
            self.snapshots_taken += 1;
            api.snapshots.update(&key, |s| {
                s.ready = true;
                s.snapshot_handle = Some(snap.0);
                true
            });
            api.record_event(
                format!("VolumeSnapshot/{key}"),
                "SnapshotReady",
                format!("array snapshot {} of {source}", snap.0),
            );
        }

        // Group snapshots (the alpha CSI feature).
        let pending: Vec<(String, Option<String>, std::collections::BTreeMap<String, String>)> =
            api.group_snapshots
                .list()
                .filter(|s| !s.ready)
                .map(|s| (s.meta.key(), s.meta.namespace.clone(), s.selector.clone()))
                .collect();
        for (key, ns, selector) in pending {
            let Some(ns) = ns else { continue };
            // Member claims: those in the namespace matching the selector.
            let members: Vec<String> = api
                .pvcs
                .list_namespace(&ns)
                .filter(|pvc| pvc.meta.matches_labels(&selector))
                .map(|pvc| pvc.meta.name.clone())
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut handles = Vec::with_capacity(members.len());
            let mut complete = true;
            for m in &members {
                match self.resolve(api, &ns, m) {
                    Some(h) => handles.push((m.clone(), h)),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                continue; // some member not bound yet; retried next round
            }
            let vols: Vec<VolumeId> = handles.iter().map(|(_, h)| VolumeId(h.volume)).collect();
            let snaps = st
                .array_mut(self.array)
                .create_snapshot_group(&vols, &format!("gsnap-{key}"), now);
            self.snapshots_taken += snaps.len() as u64;
            let pairs: Vec<(String, u64)> = handles
                .iter()
                .zip(&snaps)
                .map(|((name, _), s)| (name.clone(), s.0))
                .collect();
            let n = pairs.len();
            api.group_snapshots.update(&key, |s| {
                s.ready = true;
                s.snapshot_handles = pairs.clone();
                true
            });
            api.record_event(
                format!("VolumeGroupSnapshot/{key}"),
                "GroupSnapshotReady",
                format!("atomic snapshot of {n} volumes"),
            );
        }
    }
}
