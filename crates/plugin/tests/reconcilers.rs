//! Unit-level tests of the replication plugin, backup importer and
//! snapshot plugin against a live storage world.

use std::collections::BTreeMap;

use tsuru_container::{
    ApiServer, ClaimPhase, ControllerManager, ObjectMeta, PersistentVolumeClaim, Provisioner,
    ReplicationGroup, ReplicationMode, ReplicationState, StorageClass, VolumeGroupSnapshot,
    VolumeReplication, VolumeSnapshot,
};
use tsuru_plugin::{
    BackupSiteImporter, ReplicationPlugin, ReplicationPluginConfig, SnapshotPlugin,
    TsuruBlockDriver,
};
use tsuru_sim::SimTime;
use tsuru_simnet::LinkConfig;
use tsuru_storage::{ArrayId, ArrayPerf, EngineConfig, GroupMode, StorageWorld};

struct Fixture {
    st: StorageWorld,
    api: ApiServer,
    backup: ArrayId,
    prov: Provisioner<TsuruBlockDriver>,
    repl: ReplicationPlugin,
}

fn fixture() -> Fixture {
    let mut st = StorageWorld::new(3, EngineConfig::default());
    let main = st.add_array("m", ArrayPerf::default());
    let backup = st.add_array("b", ArrayPerf::default());
    let link = st.add_link(LinkConfig::metro());
    let reverse = st.add_link(LinkConfig::metro());
    let mut api = ApiServer::new();
    api.storage_classes.create(StorageClass {
        meta: ObjectMeta::cluster("tsuru-block"),
        provisioner: "csi.test".into(),
        parameters: BTreeMap::new(),
    });
    let prov = Provisioner::new(TsuruBlockDriver::new(main, "csi.test"));
    let repl = ReplicationPlugin::new(ReplicationPluginConfig {
        main_array: main,
        backup_array: backup,
        link,
        reverse,
        journal_capacity_bytes: 1 << 20,
    });
    Fixture {
        st,
        api,
        backup,
        prov,
        repl,
    }
}

fn add_pvc(api: &mut ApiServer, ns: &str, name: &str) {
    api.pvcs.create(PersistentVolumeClaim {
        meta: ObjectMeta::namespaced(ns, name),
        storage_class: "tsuru-block".into(),
        size_blocks: 32,
        phase: ClaimPhase::Pending,
        volume_name: None,
    });
}

fn add_rg(api: &mut ApiServer, ns: &str, members: &[&str], cg: bool, mode: ReplicationMode) {
    api.replication_groups.create(ReplicationGroup {
        meta: ObjectMeta::namespaced(ns, "grp"),
        mode,
        consistency_group: cg,
        member_pvcs: members.iter().map(|s| s.to_string()).collect(),
        state: ReplicationState::Unknown,
        group_handles: Vec::new(),
    });
    for m in members {
        api.replications.create(VolumeReplication {
            meta: ObjectMeta::namespaced(ns, format!("{m}-repl")),
            source_pvc: m.to_string(),
            group_name: "grp".into(),
            state: ReplicationState::Unknown,
            pair_handle: None,
        });
    }
}

#[test]
fn replication_plugin_builds_cg_pairs_and_status() {
    let mut f = fixture();
    add_pvc(&mut f.api, "ns", "a");
    add_pvc(&mut f.api, "ns", "b");
    add_rg(&mut f.api, "ns", &["a", "b"], true, ReplicationMode::Async);
    let report = ControllerManager::run_to_convergence(
        &mut f.api,
        &mut f.st,
        &mut [&mut f.prov, &mut f.repl],
        32,
    );
    assert!(report.converged);
    assert_eq!(f.repl.pairs_created, 2);
    // One CG shared by both pairs, in Async mode.
    let groups = f.repl.all_groups();
    assert_eq!(groups.len(), 1);
    let g = f.st.fabric.group(groups[0]);
    assert_eq!(g.mode, GroupMode::Adc);
    assert_eq!(g.pairs.len(), 2);
    // Status rolled up.
    let rg = f.api.replication_groups.get("ns/grp").unwrap();
    assert_eq!(rg.state, ReplicationState::Replicating);
    assert_eq!(rg.group_handles.len(), 1);
    let vr = f.api.replications.get("ns/a-repl").unwrap();
    assert_eq!(vr.state, ReplicationState::Replicating);
    assert!(vr.pair_handle.is_some());
}

#[test]
fn replication_plugin_naive_mode_one_group_per_member() {
    let mut f = fixture();
    for name in ["a", "b", "c"] {
        add_pvc(&mut f.api, "ns", name);
    }
    add_rg(&mut f.api, "ns", &["a", "b", "c"], false, ReplicationMode::Async);
    ControllerManager::run_to_convergence(
        &mut f.api,
        &mut f.st,
        &mut [&mut f.prov, &mut f.repl],
        32,
    );
    assert_eq!(f.repl.all_groups().len(), 3, "one group per member");
    for &g in &f.repl.all_groups() {
        assert_eq!(f.st.fabric.group(g).pairs.len(), 1);
    }
}

#[test]
fn replication_plugin_sync_mode_builds_sdc_groups() {
    let mut f = fixture();
    add_pvc(&mut f.api, "ns", "a");
    add_rg(&mut f.api, "ns", &["a"], true, ReplicationMode::Sync);
    ControllerManager::run_to_convergence(
        &mut f.api,
        &mut f.st,
        &mut [&mut f.prov, &mut f.repl],
        32,
    );
    let groups = f.repl.all_groups();
    assert_eq!(groups.len(), 1);
    assert_eq!(f.st.fabric.group(groups[0]).mode, GroupMode::Sdc);
}

#[test]
fn replication_plugin_waits_for_binding() {
    let mut f = fixture();
    add_pvc(&mut f.api, "ns", "a");
    add_rg(&mut f.api, "ns", &["a"], true, ReplicationMode::Async);
    // Run the replication plugin alone: the claim is still Pending, so no
    // pair can be created — and the controller must not wedge.
    let report =
        ControllerManager::run_to_convergence(&mut f.api, &mut f.st, &mut [&mut f.repl], 8);
    assert!(report.converged);
    assert_eq!(f.repl.pairs_created, 0);
    // Once the provisioner binds, the pair appears.
    ControllerManager::run_to_convergence(
        &mut f.api,
        &mut f.st,
        &mut [&mut f.prov, &mut f.repl],
        8,
    );
    assert_eq!(f.repl.pairs_created, 1);
}

#[test]
fn teardown_detaches_pairs_when_crs_vanish() {
    let mut f = fixture();
    add_pvc(&mut f.api, "ns", "a");
    add_rg(&mut f.api, "ns", &["a"], true, ReplicationMode::Async);
    ControllerManager::run_to_convergence(
        &mut f.api,
        &mut f.st,
        &mut [&mut f.prov, &mut f.repl],
        16,
    );
    assert_eq!(f.repl.pairs_created, 1);
    let g = f.repl.all_groups()[0];
    assert_eq!(f.st.fabric.group(g).pairs.len(), 1);

    f.api.replications.delete("ns/a-repl");
    f.api.replication_groups.delete("ns/grp");
    ControllerManager::run_to_convergence(&mut f.api, &mut f.st, &mut [&mut f.repl], 16);
    assert_eq!(f.repl.pairs_removed, 1);
    assert_eq!(f.st.fabric.group(g).pairs.len(), 0);
    assert!(f.repl.all_groups().is_empty(), "group tracking forgotten");
}

#[test]
fn restarted_plugin_adopts_existing_pairs_instead_of_recreating() {
    let mut f = fixture();
    add_pvc(&mut f.api, "ns", "a");
    add_pvc(&mut f.api, "ns", "b");
    add_rg(&mut f.api, "ns", &["a", "b"], true, ReplicationMode::Async);
    ControllerManager::run_to_convergence(
        &mut f.api,
        &mut f.st,
        &mut [&mut f.prov, &mut f.repl],
        32,
    );
    assert_eq!(f.repl.pairs_created, 2);
    let groups_before = f.repl.all_groups();

    // Controller restart: in-memory maps are gone; CR status (pair_handle,
    // group_handles) is the durable record. Without adoption the next
    // reconcile would panic trying to re-pair already-replicating volumes.
    f.repl.restart();
    assert!(f.repl.all_groups().is_empty());
    let report =
        ControllerManager::run_to_convergence(&mut f.api, &mut f.st, &mut [&mut f.repl], 16);
    assert!(report.converged);
    assert_eq!(f.repl.pairs_created, 2, "no pair may be re-created");
    assert_eq!(f.repl.all_groups(), groups_before, "groups re-adopted");
    assert_eq!(f.st.fabric.group(groups_before[0]).pairs.len(), 2);
    // Status stays rolled up and teardown still works after adoption.
    let rg = f.api.replication_groups.get("ns/grp").unwrap();
    assert_eq!(rg.state, ReplicationState::Replicating);
    f.api.replications.delete("ns/a-repl");
    ControllerManager::run_to_convergence(&mut f.api, &mut f.st, &mut [&mut f.repl], 16);
    assert_eq!(f.repl.pairs_removed, 1);
    assert_eq!(f.st.fabric.group(groups_before[0]).pairs.len(), 1);
}

#[test]
fn importer_surfaces_and_withdraws_claims() {
    let mut f = fixture();
    add_pvc(&mut f.api, "shop", "db-vol");
    add_rg(&mut f.api, "shop", &["db-vol"], true, ReplicationMode::Async);
    ControllerManager::run_to_convergence(
        &mut f.api,
        &mut f.st,
        &mut [&mut f.prov, &mut f.repl],
        16,
    );

    let mut backup_api = ApiServer::new();
    let mut importer = BackupSiteImporter::new(f.backup);
    ControllerManager::run_to_convergence(&mut backup_api, &mut f.st, &mut [&mut importer], 16);
    assert!(backup_api.pvcs.contains("shop/db-vol"));
    assert!(backup_api.namespaces.contains("shop"));
    let pvc = backup_api.pvcs.get("shop/db-vol").unwrap();
    assert_eq!(pvc.phase, ClaimPhase::Bound);
    let pv = backup_api.pvs.get(pvc.volume_name.as_deref().unwrap()).unwrap();
    assert_eq!(pv.handle.array, f.backup.0);

    // Tear replication down: the imported claim disappears.
    f.api.replications.delete("shop/db-vol-repl");
    f.api.replication_groups.delete("shop/grp");
    ControllerManager::run_to_convergence(&mut f.api, &mut f.st, &mut [&mut f.repl], 16);
    ControllerManager::run_to_convergence(&mut backup_api, &mut f.st, &mut [&mut importer], 16);
    assert!(!backup_api.pvcs.contains("shop/db-vol"));
}

#[test]
fn snapshot_plugin_handles_single_and_group_snapshots() {
    let mut st = StorageWorld::new(4, EngineConfig::default());
    let backup = st.add_array("b", ArrayPerf::default());
    st.set_control_time(SimTime::from_secs(3));
    let mut api = ApiServer::new();
    api.storage_classes.create(StorageClass {
        meta: ObjectMeta::cluster("tsuru-block"),
        provisioner: "csi.test".into(),
        parameters: BTreeMap::new(),
    });
    // Two bound claims on the backup array.
    let mut prov = Provisioner::new(TsuruBlockDriver::new(backup, "csi.test"));
    add_pvc(&mut api, "shop", "v1");
    add_pvc(&mut api, "shop", "v2");
    ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut prov], 8);

    let mut snap = SnapshotPlugin::new(backup);
    api.snapshots.create(VolumeSnapshot {
        meta: ObjectMeta::namespaced("shop", "one"),
        source_pvc: "v1".into(),
        ready: false,
        snapshot_handle: None,
    });
    api.group_snapshots.create(VolumeGroupSnapshot {
        meta: ObjectMeta::namespaced("shop", "all"),
        selector: BTreeMap::new(),
        ready: false,
        snapshot_handles: Vec::new(),
    });
    let report = ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut snap], 8);
    assert!(report.converged);
    let s = api.snapshots.get("shop/one").unwrap();
    assert!(s.ready);
    assert!(s.snapshot_handle.is_some());
    let g = api.group_snapshots.get("shop/all").unwrap();
    assert!(g.ready);
    assert_eq!(g.snapshot_handles.len(), 2);
    assert_eq!(snap.snapshots_taken, 3);
    // Group members share one array snapshot-group id and the control time.
    let h0 = tsuru_storage::SnapshotId(g.snapshot_handles[0].1);
    let h1 = tsuru_storage::SnapshotId(g.snapshot_handles[1].1);
    let arr = st.array(backup);
    assert_eq!(arr.snapshot(h0).group(), arr.snapshot(h1).group());
    assert!(arr.snapshot(h0).group().is_some());
    assert_eq!(arr.snapshot(h0).created_at(), SimTime::from_secs(3));
}

#[test]
fn snapshot_plugin_with_selector_filters_members() {
    let mut st = StorageWorld::new(4, EngineConfig::default());
    let backup = st.add_array("b", ArrayPerf::default());
    let mut api = ApiServer::new();
    api.storage_classes.create(StorageClass {
        meta: ObjectMeta::cluster("tsuru-block"),
        provisioner: "csi.test".into(),
        parameters: BTreeMap::new(),
    });
    let mut prov = Provisioner::new(TsuruBlockDriver::new(backup, "csi.test"));
    // One labelled claim, one not.
    api.pvcs.create(PersistentVolumeClaim {
        meta: ObjectMeta::namespaced("shop", "tagged").with_label("tier", "db"),
        storage_class: "tsuru-block".into(),
        size_blocks: 16,
        phase: ClaimPhase::Pending,
        volume_name: None,
    });
    add_pvc(&mut api, "shop", "untagged");
    ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut prov], 8);

    let mut snap = SnapshotPlugin::new(backup);
    let mut selector = BTreeMap::new();
    selector.insert("tier".to_string(), "db".to_string());
    api.group_snapshots.create(VolumeGroupSnapshot {
        meta: ObjectMeta::namespaced("shop", "dbs-only"),
        selector,
        ready: false,
        snapshot_handles: Vec::new(),
    });
    ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut snap], 8);
    let g = api.group_snapshots.get("shop/dbs-only").unwrap();
    assert!(g.ready);
    assert_eq!(g.snapshot_handles.len(), 1);
    assert_eq!(g.snapshot_handles[0].0, "tagged");
}
