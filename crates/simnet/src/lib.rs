//! # tsuru-simnet — inter-site network models
//!
//! Models the replication path between the main-site and backup-site storage
//! arrays in the paper's demonstration system: propagation latency,
//! serialization bandwidth with FIFO queueing, jitter, loss, and scheduled
//! outages. Replication engines in `tsuru-storage` ask a [`Link`] when a
//! frame would arrive and schedule delivery events on the simulation kernel
//! themselves, keeping this crate free of any storage-layer knowledge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;
mod network;

pub use link::{Link, LinkConfig, LinkId, TransferOutcome};
pub use network::Network;
