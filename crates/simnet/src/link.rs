//! Point-to-point replication link model.
//!
//! A [`Link`] models the WAN/FC path between the main-site and backup-site
//! storage arrays: propagation delay, serialization bandwidth with FIFO
//! queueing, optional jitter, random early loss and scheduled outages. The
//! replication engines ask the link *when* a frame of a given size would
//! arrive and then schedule the delivery event themselves.

use serde::{Deserialize, Serialize};
use tsuru_sim::{DetRng, RatePipe, SimDuration, SimTime};
use tsuru_telemetry::{spans, Tracer};

/// Configuration of one direction of an inter-site link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkConfig {
    /// One-way propagation delay (speed-of-light + switching).
    pub propagation: SimDuration,
    /// Serialization bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Maximum extra random delay added per frame (uniform in `[0, jitter]`).
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a frame is lost and must be resent.
    pub loss_probability: f64,
}

impl LinkConfig {
    /// A metro-distance link: 2 ms one way, 10 Gbit/s, no jitter/loss.
    pub fn metro() -> Self {
        LinkConfig {
            propagation: SimDuration::from_millis(2),
            bandwidth_bytes_per_sec: 10_000_000_000 / 8,
            jitter: SimDuration::ZERO,
            loss_probability: 0.0,
        }
    }

    /// A cross-region WAN link: 25 ms one way, 1 Gbit/s, light jitter.
    pub fn wan() -> Self {
        LinkConfig {
            propagation: SimDuration::from_millis(25),
            bandwidth_bytes_per_sec: 1_000_000_000 / 8,
            jitter: SimDuration::from_micros(500),
            loss_probability: 0.0,
        }
    }

    /// A link with the given one-way latency and bandwidth, no jitter/loss.
    pub fn with(propagation: SimDuration, bandwidth_bytes_per_sec: u64) -> Self {
        LinkConfig {
            propagation,
            bandwidth_bytes_per_sec,
            jitter: SimDuration::ZERO,
            loss_probability: 0.0,
        }
    }

    /// A degraded cross-region WAN: same path as [`LinkConfig::wan`] but
    /// with heavy jitter and 1% random frame loss, so retransmission and
    /// reordering paths actually run.
    pub fn wan_lossy() -> Self {
        LinkConfig {
            propagation: SimDuration::from_millis(25),
            bandwidth_bytes_per_sec: 1_000_000_000 / 8,
            jitter: SimDuration::from_millis(2),
            loss_probability: 0.01,
        }
    }
}

/// Outcome of offering a frame to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The frame will arrive at the far end.
    DeliveredAt {
        /// Arrival instant at the receiver.
        at: SimTime,
        /// Instant the last bit left the sender. If the sending site dies
        /// *before* this instant, the frame never actually made it onto the
        /// wire and must be treated as lost by the receiver.
        serialized: SimTime,
    },
    /// The frame was lost in flight (sender should retransmit).
    Lost,
    /// The link is down; nothing was sent. Contains the instant the link is
    /// known to come back up, if an outage end is scheduled.
    Down(Option<SimTime>),
}

/// Identifier of a link within a [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// One direction of an inter-site path.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    pipe: RatePipe,
    rng: DetRng,
    down_since: Option<SimTime>,
    up_at: Option<SimTime>,
    last_arrival: SimTime,
    frames_sent: u64,
    frames_lost: u64,
    bytes_delivered: u64,
    tracer: Tracer,
    trace_link: u64,
}

impl Link {
    /// Create a link; `rng` should be a dedicated derived stream.
    pub fn new(config: LinkConfig, rng: DetRng) -> Self {
        let pipe = RatePipe::new(config.bandwidth_bytes_per_sec);
        Link {
            config,
            pipe,
            rng,
            down_since: None,
            up_at: None,
            last_arrival: SimTime::ZERO,
            frames_sent: 0,
            frames_lost: 0,
            bytes_delivered: 0,
            tracer: Tracer::disabled(),
            trace_link: 0,
        }
    }

    /// Install a tracing handle; link-level frame events (`link_frame`,
    /// `link_loss`, `link_down`) are recorded through it, tagged with
    /// `link` so traces from a multi-link network stay attributable.
    pub fn set_tracer(&mut self, tracer: Tracer, link: u64) {
        self.tracer = tracer;
        self.trace_link = link;
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Change the bandwidth mid-run (models WAN QoS changes).
    pub fn set_bandwidth(&mut self, bytes_per_sec: u64) {
        self.config.bandwidth_bytes_per_sec = bytes_per_sec;
        self.pipe.set_bytes_per_sec(bytes_per_sec);
    }

    /// Change the per-frame jitter bound mid-run (fault injection).
    pub fn set_jitter(&mut self, jitter: SimDuration) {
        self.config.jitter = jitter;
    }

    /// Change the random loss probability mid-run (fault injection).
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability {p} not in [0, 1]");
        self.config.loss_probability = p;
    }

    /// Take the link down at `now`. If `until` is given the link will be
    /// considered up again at that instant (callers still must poll via
    /// [`Link::offer`] or call [`Link::set_up`]).
    pub fn set_down(&mut self, now: SimTime, until: Option<SimTime>) {
        self.down_since = Some(now);
        self.up_at = until;
    }

    /// Bring the link back up.
    pub fn set_up(&mut self) {
        self.down_since = None;
        self.up_at = None;
    }

    /// Is the link usable at `now`?
    pub fn is_up(&self, now: SimTime) -> bool {
        match self.down_since {
            None => true,
            Some(start) if now < start => true,
            Some(_) => matches!(self.up_at, Some(up) if now >= up),
        }
    }

    /// Offer a frame of `bytes` at `now`; returns when (and whether) it
    /// arrives at the far end.
    pub fn offer(&mut self, now: SimTime, bytes: u64) -> TransferOutcome {
        if !self.is_up(now) {
            let link = self.trace_link;
            self.tracer.instant(spans::LINK_DOWN, now, tsuru_telemetry::SpanId::NONE, || {
                vec![("link", link.into()), ("bytes", bytes.into())]
            });
            return TransferOutcome::Down(self.up_at);
        }
        // An auto-expiring outage that has passed clears itself; a future
        // scheduled outage is left in place.
        if matches!(self.up_at, Some(up) if now >= up) {
            self.set_up();
        }
        self.frames_sent += 1;
        if self.config.loss_probability > 0.0 && self.rng.gen_bool(self.config.loss_probability) {
            self.frames_lost += 1;
            let link = self.trace_link;
            self.tracer.instant(spans::LINK_LOSS, now, tsuru_telemetry::SpanId::NONE, || {
                vec![("link", link.into()), ("bytes", bytes.into())]
            });
            return TransferOutcome::Lost;
        }
        let serialized = self.pipe.admit(now, bytes);
        if serialized == SimTime::MAX {
            return TransferOutcome::Down(None);
        }
        let jitter = if self.config.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.rng.gen_range(self.config.jitter.as_nanos() + 1))
        };
        self.bytes_delivered += bytes;
        // FIFO non-overtaking: jitter may vary per frame, but a link never
        // reorders — a frame offered later cannot arrive before one offered
        // earlier. Clamp the arrival to the latest arrival granted so far.
        let at = (serialized + self.config.propagation + jitter).max(self.last_arrival);
        self.last_arrival = at;
        let link = self.trace_link;
        self.tracer.instant(spans::LINK_FRAME, now, tsuru_telemetry::SpanId::NONE, || {
            vec![
                ("link", link.into()),
                ("bytes", bytes.into()),
                ("arrive_ns", at.as_nanos().into()),
            ]
        });
        TransferOutcome::DeliveredAt { at, serialized }
    }

    /// One-way latency of an empty link for a frame of `bytes` (no queueing,
    /// no jitter) — used for latency-model reporting.
    pub fn nominal_latency(&self, bytes: u64) -> SimDuration {
        self.config.propagation
            + SimDuration::for_bytes_at_rate(bytes, self.config.bandwidth_bytes_per_sec)
    }

    /// Frames offered while up (including lost ones).
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Frames lost to random loss.
    pub fn frames_lost(&self) -> u64 {
        self.frames_lost
    }

    /// Total payload bytes successfully delivered.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Current transmit backlog at `now` (how long a new frame would queue
    /// before its first byte is sent).
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.pipe.backlog(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(cfg: LinkConfig) -> Link {
        Link::new(cfg, DetRng::new(99))
    }

    #[test]
    fn delivery_includes_propagation_and_serialization() {
        // 1000 B/s, 10 ms propagation, 100-byte frame => 100ms + 10ms.
        let mut l = link(LinkConfig::with(SimDuration::from_millis(10), 1000));
        match l.offer(SimTime::ZERO, 100) {
            TransferOutcome::DeliveredAt { at, serialized } => {
                assert_eq!(at, SimTime::from_millis(110));
                assert_eq!(serialized, SimTime::from_millis(100));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(l.bytes_delivered(), 100);
    }

    #[test]
    fn frames_queue_behind_each_other() {
        let mut l = link(LinkConfig::with(SimDuration::from_millis(1), 1000));
        let a = l.offer(SimTime::ZERO, 1000);
        let b = l.offer(SimTime::ZERO, 1000);
        assert!(
            matches!(a, TransferOutcome::DeliveredAt { at, .. } if at == SimTime::from_millis(1001))
        );
        assert!(
            matches!(b, TransferOutcome::DeliveredAt { at, .. } if at == SimTime::from_millis(2001))
        );
        assert_eq!(l.backlog(SimTime::ZERO), SimDuration::from_secs(2));
    }

    #[test]
    fn outage_blocks_and_auto_expires() {
        let mut l = link(LinkConfig::with(SimDuration::ZERO, 1_000_000));
        l.set_down(SimTime::from_secs(1), Some(SimTime::from_secs(5)));
        assert!(l.is_up(SimTime::ZERO));
        assert!(!l.is_up(SimTime::from_secs(2)));
        match l.offer(SimTime::from_secs(2), 10) {
            TransferOutcome::Down(Some(up)) => assert_eq!(up, SimTime::from_secs(5)),
            other => panic!("unexpected outcome {other:?}"),
        }
        // After the outage window the link self-heals on the next offer.
        assert!(matches!(
            l.offer(SimTime::from_secs(6), 10),
            TransferOutcome::DeliveredAt { .. }
        ));
    }

    #[test]
    fn indefinite_outage_requires_manual_restore() {
        let mut l = link(LinkConfig::with(SimDuration::ZERO, 1_000_000));
        l.set_down(SimTime::ZERO, None);
        assert!(matches!(
            l.offer(SimTime::from_secs(100), 10),
            TransferOutcome::Down(None)
        ));
        l.set_up();
        assert!(matches!(
            l.offer(SimTime::from_secs(101), 10),
            TransferOutcome::DeliveredAt { .. }
        ));
    }

    #[test]
    fn loss_probability_drops_frames() {
        let mut cfg = LinkConfig::with(SimDuration::ZERO, 1_000_000_000);
        cfg.loss_probability = 0.5;
        let mut l = link(cfg);
        let mut lost = 0;
        for _ in 0..1000 {
            if matches!(l.offer(SimTime::ZERO, 10), TransferOutcome::Lost) {
                lost += 1;
            }
        }
        assert!((300..700).contains(&lost), "lost={lost}");
        assert_eq!(l.frames_lost(), lost);
        assert_eq!(l.frames_sent(), 1000);
    }

    #[test]
    fn jitter_stays_within_bound() {
        let mut cfg = LinkConfig::with(SimDuration::from_millis(1), 1_000_000_000);
        cfg.jitter = SimDuration::from_micros(100);
        let mut l = link(cfg);
        for _ in 0..200 {
            if let TransferOutcome::DeliveredAt { at, .. } = l.offer(SimTime::ZERO, 0) {
                let d = at - SimTime::ZERO;
                assert!(d >= SimDuration::from_millis(1));
                assert!(d <= SimDuration::from_millis(1) + SimDuration::from_micros(100));
            } else {
                panic!("expected delivery");
            }
        }
    }

    #[test]
    fn jittered_frames_never_overtake() {
        // Huge jitter vs tiny serialization gap: without the FIFO clamp a
        // later frame would routinely arrive before an earlier one.
        let mut cfg = LinkConfig::with(SimDuration::from_millis(1), 1_000_000_000);
        cfg.jitter = SimDuration::from_millis(5);
        let mut l = link(cfg);
        let mut prev = SimTime::ZERO;
        for i in 0..500u64 {
            let now = SimTime::from_nanos(i * 10);
            match l.offer(now, 8) {
                TransferOutcome::DeliveredAt { at, .. } => {
                    assert!(at >= prev, "frame {i} overtook: {at} < {prev}");
                    prev = at;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn wan_lossy_preset_exercises_loss_and_jitter() {
        let cfg = LinkConfig::wan_lossy();
        assert!(cfg.loss_probability > 0.0);
        assert!(!cfg.jitter.is_zero());
        let mut l = link(cfg);
        let mut lost = 0u64;
        for i in 0..2000u64 {
            if matches!(
                l.offer(SimTime::from_nanos(i), 64),
                TransferOutcome::Lost
            ) {
                lost += 1;
            }
        }
        assert!(lost > 0, "1% loss over 2000 frames should drop at least one");
        assert_eq!(l.frames_lost(), lost);
    }

    #[test]
    fn runtime_jitter_and_loss_mutators_take_effect() {
        let mut l = link(LinkConfig::with(SimDuration::ZERO, 1_000_000_000));
        l.set_loss_probability(1.0);
        assert!(matches!(l.offer(SimTime::ZERO, 10), TransferOutcome::Lost));
        l.set_loss_probability(0.0);
        l.set_jitter(SimDuration::from_micros(50));
        match l.offer(SimTime::ZERO, 0) {
            TransferOutcome::DeliveredAt { at, .. } => {
                assert!(at <= SimTime::from_micros(50));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nominal_latency_reports_unloaded_path() {
        let l = link(LinkConfig::with(SimDuration::from_millis(5), 1000));
        assert_eq!(
            l.nominal_latency(1000),
            SimDuration::from_millis(5) + SimDuration::from_secs(1)
        );
    }

    #[test]
    fn bandwidth_change_takes_effect() {
        let mut l = link(LinkConfig::with(SimDuration::ZERO, 1000));
        l.set_bandwidth(2000);
        match l.offer(SimTime::ZERO, 2000) {
            TransferOutcome::DeliveredAt { at, .. } => assert_eq!(at, SimTime::from_secs(1)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
