//! A registry of named inter-site links.

use std::collections::BTreeMap;

use tsuru_sim::{DetRng, SimTime};
use tsuru_telemetry::Tracer;

use crate::link::{Link, LinkConfig, LinkId};

/// A collection of unidirectional links indexed by [`LinkId`].
///
/// The demonstration system uses one link per replication direction between
/// the main and backup arrays; larger topologies (fan-in consolidation,
/// three-data-centre) simply register more links.
#[derive(Debug, Default)]
pub struct Network {
    links: BTreeMap<LinkId, Link>,
    next_id: u32,
    tracer: Tracer,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Register a new link and return its id. `rng` seeds the link's
    /// jitter/loss stream.
    pub fn add_link(&mut self, config: LinkConfig, rng: DetRng) -> LinkId {
        let id = LinkId(self.next_id);
        self.next_id += 1;
        let mut link = Link::new(config, rng);
        link.set_tracer(self.tracer.clone(), id.0 as u64);
        self.links.insert(id, link);
        id
    }

    /// Install a tracing handle on the network and every link —
    /// existing and future ones alike.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for (&id, l) in self.links.iter_mut() {
            l.set_tracer(tracer.clone(), id.0 as u64);
        }
        self.tracer = tracer;
    }

    /// Borrow a link.
    ///
    /// # Panics
    /// Panics on an unknown id — link ids are created by this registry, so a
    /// miss is a programming error, not a runtime condition.
    pub fn link(&self, id: LinkId) -> &Link {
        self.links
            .get(&id)
            .expect("invariant: LinkId is only minted by add_link")
    }

    /// Mutably borrow a link.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        self.links
            .get_mut(&id)
            .expect("invariant: LinkId is only minted by add_link")
    }

    /// Number of registered links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True if no links are registered.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Take every link down at `now` (site-wide network failure).
    pub fn partition_all(&mut self, now: SimTime, until: Option<SimTime>) {
        for l in self.links.values_mut() {
            l.set_down(now, until);
        }
    }

    /// Restore every link.
    pub fn heal_all(&mut self) {
        for l in self.links.values_mut() {
            l.set_up();
        }
    }

    /// Iterate over `(id, link)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links.iter().map(|(&id, l)| (id, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::TransferOutcome;
    use tsuru_sim::SimDuration;

    #[test]
    fn register_and_use_links() {
        let mut net = Network::new();
        let rng = DetRng::new(1);
        let a = net.add_link(
            LinkConfig::with(SimDuration::from_millis(1), 1_000_000),
            rng.derive(0),
        );
        let b = net.add_link(
            LinkConfig::with(SimDuration::from_millis(2), 1_000_000),
            rng.derive(1),
        );
        assert_ne!(a, b);
        assert_eq!(net.len(), 2);
        assert!(matches!(
            net.link_mut(a).offer(SimTime::ZERO, 10),
            TransferOutcome::DeliveredAt { .. }
        ));
        assert_eq!(
            net.link(b).config().propagation,
            SimDuration::from_millis(2)
        );
    }

    #[test]
    fn partition_and_heal() {
        let mut net = Network::new();
        let rng = DetRng::new(2);
        let a = net.add_link(LinkConfig::metro(), rng.derive(0));
        net.partition_all(SimTime::from_secs(1), None);
        assert!(!net.link(a).is_up(SimTime::from_secs(2)));
        net.heal_all();
        assert!(net.link(a).is_up(SimTime::from_secs(2)));
    }

    #[test]
    #[should_panic(expected = "LinkId is only minted by add_link")]
    fn unknown_link_panics() {
        let net = Network::new();
        let _ = net.link(LinkId(7));
    }
}
