//! E1 bench: wall-clock cost of the slowdown experiment (per backup mode),
//! plus the simulated-throughput comparison it produces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsuru_core::{BackupMode, RigConfig, TwoSiteRig};
use tsuru_sim::SimDuration;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_slowdown");
    group.sample_size(10);
    for mode in [
        BackupMode::None,
        BackupMode::AdcConsistencyGroup,
        BackupMode::Sdc,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.label()),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let mut rig = TwoSiteRig::new(RigConfig {
                        seed: 1,
                        mode,
                        ..Default::default()
                    });
                    rig.run_workload_for(SimDuration::from_millis(50));
                    criterion::black_box(rig.committed_orders())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
