//! E6 bench: the complete three-step demonstration plus disaster drill.

use criterion::{criterion_group, criterion_main, Criterion};
use tsuru_core::experiments::e6_demo;

fn bench_demo(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_demo");
    group.sample_size(10);
    group.bench_function("full_demo", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let out = e6_demo(seed);
            assert!(out.failover_consistent);
            criterion::black_box(out.committed_orders)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_demo);
criterion_main!(benches);
