//! E3 bench: an RPO measurement run at two bandwidths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsuru_core::{BackupMode, RigConfig, TwoSiteRig};
use tsuru_sim::{SimDuration, SimTime};
use tsuru_simnet::LinkConfig;

fn rpo_run(mbps: u64) -> u64 {
    let mut cfg = RigConfig {
        seed: 3,
        mode: BackupMode::AdcConsistencyGroup,
        ..Default::default()
    };
    cfg.link = LinkConfig::with(SimDuration::from_millis(5), mbps * 1_000_000 / 8);
    let mut rig = TwoSiteRig::new(cfg);
    let fail_at = SimTime::from_millis(60);
    rig.schedule_main_failure(fail_at);
    tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
    rig.sim
        .run_until(&mut rig.world, fail_at + SimDuration::from_millis(120));
    let (_, rpo) = rig.failover(fail_at);
    rpo.lost_writes
}

fn bench_rpo(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_rpo");
    group.sample_size(10);
    for mbps in [100u64, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(mbps), &mbps, |b, &mbps| {
            b.iter(|| criterion::black_box(rpo_run(mbps)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rpo);
criterion_main!(benches);
