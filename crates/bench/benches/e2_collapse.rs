//! E2 bench: one surprise-failure drill per mode (build, run, fail,
//! failover, recover, verify).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsuru_core::{BackupMode, RigConfig, TwoSiteRig};
use tsuru_sim::{SimDuration, SimTime};

fn drill(mode: BackupMode, seed: u64) -> bool {
    let mut cfg = RigConfig {
        seed,
        mode,
        ..Default::default()
    };
    cfg.engine.pump_jitter = SimDuration::from_millis(2);
    let mut rig = TwoSiteRig::new(cfg);
    let fail_at = SimTime::from_millis(60);
    rig.schedule_main_failure(fail_at);
    tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
    rig.sim
        .run_until(&mut rig.world, fail_at + SimDuration::from_millis(100));
    let (consistency, _) = rig.failover(fail_at);
    consistency.is_consistent()
}

fn bench_drills(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_collapse_drill");
    group.sample_size(10);
    for mode in [BackupMode::AdcConsistencyGroup, BackupMode::AdcPerVolume] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.label()),
            &mode,
            |b, &mode| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    criterion::black_box(drill(mode, seed))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_drills);
criterion_main!(benches);
