//! Microbenchmarks of the substrates: DES kernel, B+tree, WAL, checksum,
//! histogram — guards against regressions in the hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsuru_minidb::{crc32, DbConfig, MiniDb, TableId};
use tsuru_sim::{DetRng, Histogram, Sim, SimDuration, SimTime};

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("sim_kernel_100k_events", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            let mut count = 0u64;
            fn tick(c: &mut u64, sim: &mut Sim<u64>) {
                *c += 1;
                if *c < 100_000 {
                    sim.schedule_in(SimDuration::from_nanos(10), tick);
                }
            }
            sim.schedule_at(SimTime::ZERO, tick);
            sim.run(&mut count);
            criterion::black_box(count)
        });
    });
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("minidb");
    for n in [1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("commit_n_rows", n), &n, |b, &n| {
            b.iter(|| {
                let (mut db, _) = MiniDb::create(
                    "bench",
                    DbConfig {
                        data_blocks: 65_536,
                        wal_blocks: 8_192,
                        checkpoint_threshold: 0.8,
                    },
                );
                for i in 0..n {
                    let tx = db.begin();
                    db.put(tx, TableId(1), i, &i.to_le_bytes());
                    criterion::black_box(db.commit(tx).total_writes());
                }
                criterion::black_box(db.last_lsn())
            });
        });
    }
    group.finish();
}

fn bench_crc_and_hist(c: &mut Criterion) {
    let block = vec![0xA5u8; 4096];
    c.bench_function("crc32_4k_block", |b| {
        b.iter(|| criterion::black_box(crc32(&block)));
    });
    c.bench_function("histogram_record_quantile", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| {
            let mut h = Histogram::new();
            for _ in 0..10_000 {
                h.record(rng.gen_range(1_000_000_000));
            }
            criterion::black_box(h.quantile(0.99))
        });
    });
}

criterion_group!(benches, bench_kernel, bench_btree, bench_crc_and_hist);
criterion_main!(benches);
