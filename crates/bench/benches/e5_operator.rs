//! E5 bench: operator convergence cost as the namespace scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsuru_core::experiments::e5_operator;

fn bench_operator(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_operator");
    group.sample_size(10);
    for n in [4usize, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let rows = e5_operator(&[n]);
                assert!(rows[0].converged);
                criterion::black_box(rows[0].pairs)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operator);
criterion_main!(benches);
