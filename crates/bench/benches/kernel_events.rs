//! Head-to-head Criterion bench of the typed-event timer-wheel kernel
//! against the preserved boxed-closure binary-heap kernel
//! (`tsuru_bench::refkernel`) on the identical chain workload that
//! `repro bench` measures — same chains, same delay spread, same event
//! count, so the two measurements corroborate each other.

use criterion::{criterion_group, criterion_main, Criterion};
use tsuru_bench::kernelbench::{run_boxed_chain, run_typed_chain};

const EVENTS: u64 = 200_000;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_events");
    group.bench_function("typed_wheel_200k", |b| {
        b.iter(|| criterion::black_box(run_typed_chain(EVENTS)))
    });
    group.bench_function("boxed_heap_200k", |b| {
        b.iter(|| criterion::black_box(run_boxed_chain(EVENTS)))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
