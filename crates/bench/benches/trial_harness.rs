//! Trial-harness bench: the same experiment batch through the serial and
//! the parallel path. The parallel path must produce identical rows (the
//! determinism tests assert that); this bench shows what the fan-out buys
//! in wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsuru_core::experiments::{e1_slowdown_with, e2_collapse_with};
use tsuru_core::TrialHarness;
use tsuru_sim::SimDuration;

fn bench_e2_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("trial_harness/e2_batch");
    group.sample_size(10);
    let auto = TrialHarness::auto().threads();
    for (label, harness) in [
        ("serial".to_string(), TrialHarness::serial()),
        (format!("parallel-{auto}"), TrialHarness::auto()),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(&label),
            &harness,
            |b, harness| {
                b.iter(|| {
                    let set =
                        e2_collapse_with(harness, 1000, 8, SimDuration::from_millis(2));
                    criterion::black_box(set.rows.len())
                });
            },
        );
    }
    group.finish();
}

fn bench_e1_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("trial_harness/e1_batch");
    group.sample_size(10);
    let auto = TrialHarness::auto().threads();
    for (label, harness) in [
        ("serial".to_string(), TrialHarness::serial()),
        (format!("parallel-{auto}"), TrialHarness::auto()),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(&label),
            &harness,
            |b, harness| {
                b.iter(|| {
                    let set = e1_slowdown_with(
                        harness,
                        42,
                        &[1, 10, 25],
                        SimDuration::from_millis(100),
                    );
                    criterion::black_box(set.rows.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e2_batch, bench_e1_batch);
criterion_main!(benches);
