//! E4 bench: snapshot-group creation and analytics over the frozen image.

use criterion::{criterion_group, criterion_main, Criterion};
use tsuru_core::{BackupMode, RigConfig, TwoSiteRig};
use tsuru_sim::{SimDuration, SimTime};

fn bench_snapshot_analytics(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_snapshot");
    group.sample_size(10);
    group.bench_function("group_snapshot_plus_analytics", |b| {
        b.iter(|| {
            let mut rig = TwoSiteRig::new(RigConfig {
                seed: 4,
                mode: BackupMode::AdcConsistencyGroup,
                ..Default::default()
            });
            tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
            rig.sim.run_until(&mut rig.world, SimTime::from_millis(60));
            let snaps = rig.snapshot_backup_group("bench");
            rig.sim.run_for(&mut rig.world, SimDuration::from_millis(40));
            let report = rig.analytics_on_snapshots(&snaps, 5).expect("consistent");
            criterion::black_box(report.order_count)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_analytics);
criterion_main!(benches);
