//! The pre-wheel event kernel, preserved as a benchmark reference.
//!
//! This is the kernel the simulator shipped with before the typed-event /
//! timer-wheel rewrite: a `BinaryHeap` ordered by `(time, seq)` holding one
//! **boxed closure per event**. It exists only so `repro bench` and the
//! Criterion benches can measure the new kernel against the old one on the
//! same workload — nothing in the simulator proper uses it.
//!
//! The semantics match the old `tsuru_sim::Sim` exactly (earliest-first,
//! FIFO on timestamp ties via the monotone `seq`), so a chain workload run
//! here and on the real kernel executes the same event sequence.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tsuru_sim::{SimDuration, SimTime};

/// A one-shot boxed event handler for the reference kernel.
pub type RefEventFn<S> = Box<dyn FnOnce(&mut S, &mut RefSim<S>)>;

struct Scheduled<S> {
    time: SimTime,
    seq: u64,
    f: RefEventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}

impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<S> Ord for Scheduled<S> {
    /// Reversed so the max-heap pops the *earliest* event; equal timestamps
    /// pop in insertion (`seq`) order.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference discrete-event simulator: binary heap + boxed closures.
pub struct RefSim<S> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<S>>,
    next_seq: u64,
    executed: u64,
    peak: usize,
}

impl<S> Default for RefSim<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> RefSim<S> {
    /// A simulator at time zero with an empty event queue.
    pub fn new() -> Self {
        RefSim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            executed: 0,
            peak: 0,
        }
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the pending queue.
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.peak
    }

    /// Schedule `f` at absolute time `t` (which must not be in the past).
    pub fn schedule_at(&mut self, t: SimTime, f: impl FnOnce(&mut S, &mut RefSim<S>) + 'static) {
        assert!(t >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            time: t,
            seq,
            f: Box::new(f),
        });
        self.peak = self.peak.max(self.queue.len());
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut S, &mut RefSim<S>) + 'static,
    ) {
        let t = self.now.checked_add(delay).expect("event time overflow");
        self.schedule_at(t, f);
    }

    /// Pop and run the earliest event; false if the queue is empty.
    pub fn step(&mut self, state: &mut S) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.now = ev.time;
        self.executed += 1;
        (ev.f)(state, self);
        true
    }

    /// Run until the queue is empty.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_on_ties_and_time_order() {
        let mut sim: RefSim<Vec<u32>> = RefSim::new();
        sim.schedule_at(SimTime::from_nanos(5), |s, _| s.push(2));
        sim.schedule_at(SimTime::from_nanos(1), |s, _| s.push(1));
        sim.schedule_at(SimTime::from_nanos(5), |s, _| s.push(3));
        let mut out = Vec::new();
        sim.run(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(sim.events_executed(), 3);
        assert_eq!(sim.peak_pending(), 3);
    }
}
