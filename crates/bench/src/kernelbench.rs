//! Kernel microbenchmark workloads shared by `repro bench` and the
//! Criterion benches.
//!
//! The workload is a bundle of self-rescheduling event chains whose delays
//! spread across several timer-wheel levels (so cascades are exercised, not
//! just slot zero). The same chain runs on both kernels:
//!
//! - [`run_typed_chain`] — the production [`tsuru_sim::Sim`] with a typed
//!   event enum (zero allocations per event);
//! - [`run_boxed_chain`] — the pre-wheel reference kernel
//!   ([`crate::refkernel::RefSim`], binary heap + one boxed closure per
//!   event).
//!
//! Timing helpers live here too so every wall-clock read in the bench
//! harness sits behind one explicitly waived function.

use std::time::Instant;

use crate::refkernel::RefSim;
use tsuru_sim::{Event, EventFn, Sim, SimDuration, SimTime};

/// Concurrent chains per workload. The queue depth is where the two
/// kernels diverge: the reference heap pays `O(log n)` pointer-chasing per
/// op while the wheel stays O(1), so the bench holds a deep queue — the
/// regime E2/E8-style multi-trial sweeps put the kernel in.
pub const CHAINS: u64 = 4096;

/// Delay spread for the next hop of a chain, in simulated nanoseconds.
/// Mixes sub-microsecond hops (wheel level 0–1) with hops up to ~2 ms
/// (level 3+), forcing cascades on the wheel and deep re-heapify on the
/// reference heap, while keeping slot occupancy realistic.
#[inline]
fn chain_delay(state: u64) -> u64 {
    1 + (state % 9973) * 101 + (state % 31) * 32_768
}

/// Typed chain event: each dispatch bumps the shared counter and
/// reschedules itself until `left` runs out.
enum Tick {
    Step { left: u32 },
    #[allow(dead_code)]
    Dyn(EventFn<u64, Tick>),
}

impl Event<u64> for Tick {
    fn from_fn(f: EventFn<u64, Self>) -> Self {
        Tick::Dyn(f)
    }
    fn dispatch(self, state: &mut u64, sim: &mut Sim<u64, Self>) {
        match self {
            Tick::Step { left } => {
                *state += 1;
                if left > 0 {
                    let d = chain_delay(*state);
                    sim.schedule_event_in(SimDuration::from_nanos(d), Tick::Step {
                        left: left - 1,
                    });
                }
            }
            Tick::Dyn(f) => f(state, sim),
        }
    }
}

/// What one chain run observed. `alloc_events` and `peak_slab` are
/// deterministic (they depend only on the schedule, never on wall-clock),
/// so CI can ratchet them alongside the wall-clock rate.
#[derive(Debug, Clone, Copy)]
pub struct ChainRun {
    /// Events actually dispatched.
    pub events: u64,
    /// High-water mark of the pending queue.
    pub peak_pending: usize,
    /// Pending-store capacity growths (≈ allocations) during the run.
    pub alloc_events: u64,
    /// High-water mark of the wheel's batch slab (0 for the reference
    /// kernel, which has no batch path).
    pub peak_slab: usize,
}

/// Run ~`total_events` typed events through the production kernel.
pub fn run_typed_chain(total_events: u64) -> ChainRun {
    let per_chain = (total_events / CHAINS).max(1) as u32;
    let mut sim: Sim<u64, Tick> = Sim::new();
    for c in 0..CHAINS {
        sim.schedule_event_at(SimTime::from_nanos(1 + c), Tick::Step {
            left: per_chain - 1,
        });
    }
    let mut state = 0u64;
    sim.run(&mut state);
    ChainRun {
        events: sim.events_executed(),
        peak_pending: sim.peak_pending(),
        alloc_events: sim.alloc_events(),
        peak_slab: sim.peak_slab(),
    }
}

/// One hop of the boxed-closure chain on the reference kernel. Every
/// reschedule allocates a fresh `Box<dyn FnOnce>` — the cost the typed
/// kernel removed.
fn boxed_hop(state: &mut u64, sim: &mut RefSim<u64>, left: u32) {
    *state += 1;
    if left > 0 {
        let d = chain_delay(*state);
        sim.schedule_in(SimDuration::from_nanos(d), move |s, sim| {
            boxed_hop(s, sim, left - 1)
        });
    }
}

/// Run ~`total_events` boxed-closure events through the reference kernel.
/// Every event is one fresh `Box<dyn FnOnce>` by construction, so
/// `alloc_events` is the event count — the 1-allocation-per-event floor
/// the typed kernel's slab amortizes away.
pub fn run_boxed_chain(total_events: u64) -> ChainRun {
    let per_chain = (total_events / CHAINS).max(1) as u32;
    let mut sim: RefSim<u64> = RefSim::new();
    for c in 0..CHAINS {
        let left = per_chain - 1;
        sim.schedule_at(SimTime::from_nanos(1 + c), move |s, sim| {
            boxed_hop(s, sim, left)
        });
    }
    let mut state = 0u64;
    sim.run(&mut state);
    ChainRun {
        events: sim.events_executed(),
        peak_pending: sim.peak_pending(),
        alloc_events: sim.events_executed(),
        peak_slab: 0,
    }
}

/// One measured kernel rate, as emitted into `BENCH.json`.
#[derive(Debug, Clone)]
pub struct KernelRate {
    /// Which kernel ran (`"typed_wheel"` / `"boxed_heap"`).
    pub kernel: &'static str,
    /// Events actually dispatched.
    pub events: u64,
    /// Wall-clock seconds for the drain.
    pub secs: f64,
    /// `events / secs`.
    pub events_per_sec: f64,
    /// High-water mark of the pending queue during the run.
    pub peak_pending: usize,
    /// Pending-store capacity growths per dispatched event — the kernel's
    /// allocation rate. Deterministic, so CI ratchets it.
    pub allocs_per_event: f64,
    /// High-water mark of the wheel's batch slab during the run.
    pub peak_slab: usize,
}

/// Time `f` and return its result plus elapsed wall-clock seconds. The one
/// sanctioned wall-clock read in the bench harness: benches measure real
/// time by definition, and nothing here feeds simulated results.
pub fn time_secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // detlint: allow(wall_clock) — bench harness measures real time by definition
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Repetitions per measurement; the fastest is kept. Best-of-N reports the
/// kernel's actual cost — the slower repeats measure scheduler noise, not
/// the code — and keeps the CI regression gate stable. Shared CI hosts
/// show multi-second slow bursts, so N spans several of them.
pub const REPS: usize = 9;

fn best_of(kernel: &'static str, run: impl Fn() -> ChainRun) -> KernelRate {
    let mut best: Option<KernelRate> = None;
    for _ in 0..REPS {
        let (r, secs) = time_secs(&run);
        let rate = KernelRate {
            kernel,
            events: r.events,
            secs,
            events_per_sec: r.events as f64 / secs.max(1e-9),
            peak_pending: r.peak_pending,
            allocs_per_event: r.alloc_events as f64 / r.events.max(1) as f64,
            peak_slab: r.peak_slab,
        };
        if best.as_ref().is_none_or(|b| rate.events_per_sec > b.events_per_sec) {
            best = Some(rate);
        }
    }
    best.expect("REPS > 0")
}

/// Measure the typed kernel's event rate over ~`total_events` events
/// (best of [`REPS`] runs).
pub fn measure_typed(total_events: u64) -> KernelRate {
    best_of("typed_wheel", || run_typed_chain(total_events))
}

/// Measure the reference boxed-closure kernel over ~`total_events` events
/// (best of [`REPS`] runs).
pub fn measure_boxed(total_events: u64) -> KernelRate {
    best_of("boxed_heap", || run_boxed_chain(total_events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kernels_execute_the_same_event_count() {
        let typed = run_typed_chain(4096);
        let boxed = run_boxed_chain(4096);
        assert_eq!(typed.events, boxed.events);
        assert_eq!(typed.events, (4096 / CHAINS) * CHAINS);
        // All chains start pending, so the high-water mark sees every chain.
        assert!(typed.peak_pending >= CHAINS as usize);
        assert!(boxed.peak_pending >= CHAINS as usize);
        // The boxed reference allocates per event; the typed wheel's
        // capacity growths amortize to a small fraction of that.
        assert_eq!(boxed.alloc_events, boxed.events);
        assert!(typed.alloc_events < typed.events / 2);
    }

    #[test]
    fn chain_stats_are_deterministic() {
        let a = run_typed_chain(8192);
        let b = run_typed_chain(8192);
        assert_eq!(a.alloc_events, b.alloc_events);
        assert_eq!(a.peak_slab, b.peak_slab);
        assert_eq!(a.peak_pending, b.peak_pending);
    }
}
