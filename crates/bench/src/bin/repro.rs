//! The experiment reproduction harness.
//!
//! Regenerates every table/figure reproduction from DESIGN.md §4:
//!
//! ```text
//! cargo run -p tsuru-bench --release --bin repro           # everything
//! cargo run -p tsuru-bench --release --bin repro e1 e5     # a subset
//! cargo run -p tsuru-bench --release --bin repro e2 --threads 8
//! cargo run -p tsuru-bench --release --bin repro --chaos    # chaos sweep (E8)
//! ```
//!
//! `--threads N` sets the trial-harness worker count for the multi-trial
//! experiments (E1, E2, E3, A1, A2); `--threads 0` (the default) uses one
//! worker per available CPU, `--threads 1` is the serial reference. Tables
//! are **byte-identical at any thread count** — trials are seeded purely
//! from `(base_seed, trial_index)` and re-sorted by index. Wall-clock
//! stats (`[harness] …`) go to stderr so stdout stays comparable.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::Path;

use tsuru_bench::{
    render_a1, render_a2, render_e1, render_e2, render_e3, render_e4, render_e5, render_e7,
};
use tsuru_core::experiments::{
    a1_backup_lag_with, a2_journal_policy_with, e1_slowdown_with, e2_collapse_with, e3_rpo_with,
    e4_snapshot, e5_operator, e6_demo, e7_three_dc,
};
use tsuru_chaos::{chaos_sweep, render_chaos_table, ChaosConfig};
use tsuru_core::{HarnessStats, TrialHarness};
use tsuru_sim::SimDuration;

/// When `--csv` is passed, tables are also written under `repro_out/`.
fn maybe_csv(name: &str, table: &str) {
    if std::env::args().any(|a| a == "--csv") {
        let dir = Path::new("repro_out");
        let _ = fs::create_dir_all(dir);
        let path = dir.join(format!("{name}.csv"));
        if fs::write(&path, tsuru_bench::table_to_csv(table)).is_ok() {
            println!("   (series written to {})", path.display());
        }
    }
}

/// `--threads N` / `--threads=N`; `0` (default) = available parallelism.
fn threads_arg() -> usize {
    let args: Vec<String> = env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            if let Some(n) = v.parse().ok() {
                return n;
            }
        }
    }
    0
}

/// Wall-clock stats go to stderr so stdout is identical at any `--threads`.
fn report(label: &str, stats: &HarnessStats) {
    eprintln!("[harness] {label}: {}", stats.display());
}

fn run_e1(harness: &TrialHarness) {
    println!("== E1: no system slowdown (claim C1) — latency/throughput vs backup mode ==");
    println!("   closed-loop order workload, 8 clients; link 1 Gbit/s; 400 ms simulated\n");
    let set = e1_slowdown_with(harness, 42, &[1, 2, 10, 25, 50], SimDuration::from_millis(400));
    report("e1", &set.stats);
    let table = render_e1(&set.rows);
    println!("{table}");
    maybe_csv("e1", &table);
    println!("expect: adc-cg ≈ none at every RTT; sdc p50 ≳ 2×RTT and tps collapses.\n");
}

fn run_e2(harness: &TrialHarness) {
    println!("== E2: backup collapse (claims C2/C3) — consistency group vs naive ADC ==");
    println!("   30 surprise-failure drills per mode; 2 ms replication-session skew\n");
    let set = e2_collapse_with(harness, 1000, 30, SimDuration::from_millis(2));
    report("e2", &set.stats);
    let table = render_e2(&set.rows);
    println!("{table}");
    maybe_csv("e2", &table);
    println!(
        "expect: adc-cg collapses 0/30 (both checks); adc-naive violates write-order\n\
         fidelity in nearly every drill and corrupts the business state in many.\n"
    );
}

fn run_e3(harness: &TrialHarness) {
    println!("== E3: recovery point vs link bandwidth and journal capacity (§III-A1) ==");
    println!("   main-site failure at t=150 ms; ADC journal Block policy; SDC reference\n");
    let set = e3_rpo_with(harness, 7, &[50, 100, 500, 1000], &[1, 64]);
    report("e3", &set.stats);
    let table = render_e3(&set.rows);
    println!("{table}");
    maybe_csv("e3", &table);
    println!(
        "expect: lost orders and RPO shrink as bandwidth grows; a tiny journal on a\n\
         slow link stalls the host (stalls > 0, p99 inflated); sdc loses nothing.\n"
    );
}

fn run_e4() {
    println!("== E4: snapshot groups make backup data usable (§III-A2, Figs. 5–6) ==");
    println!("   snapshots taken at the backup site at t=150 ms, workload continues\n");
    let rows = e4_snapshot(11);
    let table = render_e4(&rows);
    println!("{table}");
    maybe_csv("e4", &table);
    println!(
        "expect: the atomic group snapshot yields a consistent analytics image while\n\
         replication keeps running (cow_saves > 0); non-atomic per-volume snapshots\n\
         can interleave with apply and break the cross-DB invariant.\n"
    );
}

fn run_e5() {
    println!("== E5: namespace-operator automation (§III-B1, Figs. 3–4) ==");
    println!("   tag one namespace; measure configuration effort as volumes scale\n");
    let rows = e5_operator(&[2, 4, 10, 50, 100, 200]);
    let table = render_e5(&rows);
    println!("{table}");
    maybe_csv("e5", &table);
    println!(
        "expect: with the operator the user performs exactly 1 action at any scale;\n\
         the manual procedure grows linearly (4 + 3·volumes console steps).\n"
    );
}

fn run_e6() {
    println!("== E6: the full demonstration (§IV) — three steps + disaster drill ==\n");
    let out = e6_demo(2026);
    for line in &out.transcript {
        println!("{line}");
    }
    println!();
    println!(
        "summary: committed={} analytics_orders={} failover_consistent={} \
         business_recovered={} lost_orders={} rto={}",
        out.committed_orders,
        out.analytics_orders,
        out.failover_consistent,
        out.business_recovered,
        out.lost_orders,
        out.rto
    );
    println!("expect: consistent failover, recovered business process, bounded loss.\n");
}

fn run_e7() {
    println!("== E7 (extension): three-data-centre — metro SDC + WAN ADC combined ==");
    println!("   far link 25 ms one way; metro link 1 ms; disaster at t=200 ms\n");
    let rows = e7_three_dc(29);
    let table = render_e7(&rows);
    println!("{table}");
    maybe_csv("e7", &table);
    println!(
        "expect: 3dc latency ≈ metro SDC (~2 ms), far below WAN SDC (~50 ms); its\n\
         metro copy loses nothing while the far copy stays a consistent prefix —\n\
         the best of both of the paper's §V alternatives.\n"
    );
}

fn run_chaos(harness: &TrialHarness) {
    println!("== E8 (extension): deterministic chaos sweep — CG vs naive under fault ==");
    println!("   seeded random plans, core quartet overlapping ≥4 fault kinds; each plan");
    println!("   replayed against both backup modes and audited at every fault edge\n");
    let cfg = ChaosConfig::default();
    let set = chaos_sweep(harness, 0xC0FFEE, 5, &cfg);
    report("chaos", &set.stats);
    let table = render_chaos_table(&set.rows);
    println!("{table}");
    maybe_csv("chaos", &table);
    println!("-- auditor reports --");
    for pair in &set.rows {
        print!("{}", pair.cg.render());
        print!("{}", pair.naive.render());
    }
    println!(
        "\nexpect: adc-cg reports zero violations in every trial; adc-naive is caught\n\
         violating write-order fidelity mid-fault. Reports are byte-identical for a\n\
         given seed at any --threads value.\n"
    );
}

fn run_a1(harness: &TrialHarness) {
    println!("== A1 (ablation): backup lag vs transfer-pump parameters ==");
    println!("   acked-but-unapplied backlog sampled every 5 ms over a 300 ms run\n");
    let set = a1_backup_lag_with(harness, 19, &[200, 500, 2000, 5000], &[8, 64]);
    report("a1", &set.stats);
    let table = render_a1(&set.rows);
    println!("{table}");
    maybe_csv("a1", &table);
    println!(
        "expect: lag grows with the pump interval (staleness is the price of\n\
         decoupling) while host p99 stays flat — the pump never touches the host path.\n"
    );
}

fn run_a2(harness: &TrialHarness) {
    println!("== A2 (ablation): journal-full policy — Block vs Suspend ==");
    println!("   undersized journal over a 20 Mbit/s link; failure at t=200 ms\n");
    let set = a2_journal_policy_with(harness, 23, &[256, 1024, 16384]);
    report("a2", &set.stats);
    let table = render_a2(&set.rows);
    println!("{table}");
    maybe_csv("a2", &table);
    println!(
        "expect: Block back-pressures the host (stalls > 0, p99 up) but keeps the\n\
         backup advancing; Suspend keeps the host fast but abandons the backup\n\
         (degraded acks, far larger loss at failover).\n"
    );
}

fn main() {
    let args: Vec<String> = env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let chaos_flag = env::args().any(|a| a == "--chaos");
    let all = (args.is_empty() && !chaos_flag) || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);
    let harness = TrialHarness::new(threads_arg());

    println!("Tsuru experiment reproduction (see DESIGN.md §4, EXPERIMENTS.md)\n");
    eprintln!("[harness] trial workers: {}", harness.threads());
    if want("e1") {
        run_e1(&harness);
    }
    if want("e2") {
        run_e2(&harness);
    }
    if want("e3") {
        run_e3(&harness);
    }
    if want("e4") {
        run_e4();
    }
    if want("e5") {
        run_e5();
    }
    if want("e6") {
        run_e6();
    }
    if want("e7") {
        run_e7();
    }
    // Opt-in only (`repro chaos` or `repro --chaos`): a full sweep replays
    // every plan twice, so it is not part of the default `all` set.
    if args.iter().any(|a| a == "chaos") || chaos_flag {
        run_chaos(&harness);
    }
    if want("a1") {
        run_a1(&harness);
    }
    if want("a2") {
        run_a2(&harness);
    }
}
