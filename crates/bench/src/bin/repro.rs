//! The experiment reproduction harness.
//!
//! Regenerates every table/figure reproduction from DESIGN.md §4:
//!
//! ```text
//! cargo run -p tsuru-bench --release --bin repro           # everything
//! cargo run -p tsuru-bench --release --bin repro e1 e5     # a subset
//! cargo run -p tsuru-bench --release --bin repro e2 --threads 8
//! cargo run -p tsuru-bench --release --bin repro --chaos    # chaos sweep (E8)
//! cargo run -p tsuru-bench --release --bin repro trace      # traced chaos trials
//! cargo run -p tsuru-bench --release --bin repro history    # history sweep (E9)
//! cargo run -p tsuru-bench --release --bin repro e10        # convergence sweep (E10)
//! cargo run -p tsuru-bench --release --bin repro e11        # alert sweep (E11)
//! cargo run -p tsuru-bench --release --bin repro e12        # tenant scaling (E12)
//! ```
//!
//! `--threads N` sets the trial-harness worker count for the multi-trial
//! experiments (E1, E2, E3, A1, A2); `--threads 0` (the default) uses one
//! worker per available CPU, `--threads 1` is the serial reference. Tables
//! are **byte-identical at any thread count** — trials are seeded purely
//! from `(base_seed, trial_index)` and re-sorted by index. Wall-clock
//! stats (`[harness] …`) go to stderr so stdout stays comparable.
//!
//! `--trace DIR` writes causal trace exports (JSONL + Chrome
//! `trace_event`) under `DIR`: a representative traced rig run alongside
//! the experiments, per-trial chaos traces with `chaos`/`trace`. The
//! `trace` subcommand runs traced chaos trials and always exports.
//!
//! The `history` subcommand runs the workload-diversity sweep (E9):
//! every chaos plan replayed under the order, bank-transfer and
//! append-list workloads in both backup modes, each judged by the
//! client-visible history checkers. `--history DIR` additionally writes
//! every trial's op history as JSONL under `DIR` — byte-identical at
//! any `--threads` value.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::{Path, PathBuf};

use tsuru_bench::{
    render_a1, render_a2, render_e1, render_e2, render_e3, render_e4, render_e5, render_e7,
    render_e12,
};
use tsuru_core::tenants::e12_scale_with;
use tsuru_core::experiments::{
    a1_backup_lag_with, a2_journal_policy_with, e1_slowdown_with, e2_collapse_with, e3_rpo_with,
    e4_snapshot, e5_operator, e6_demo, e7_three_dc,
};
use tsuru_chaos::{
    alert_sweep, chaos_sweep, convergence_sweep, history_sweep, render_alert_table,
    render_chaos_table, render_convergence_table, render_history_table, run_chaos_trial_traced,
    ChaosConfig, FaultPlan,
};
use tsuru_core::{BackupMode, HarnessStats, RigConfig, TrialHarness, TwoSiteRig};
use tsuru_sim::SimDuration;

/// Every command-line option, parsed once in `main` (single source of
/// truth — no function re-scans `env::args`).
struct Options {
    /// Positional selectors: experiment names, `all`, `chaos`, `trace`.
    names: Vec<String>,
    /// `--chaos` (alias for the `chaos` selector).
    chaos: bool,
    /// `--csv`: also write each table under `repro_out/`.
    csv: bool,
    /// `--threads N` / `--threads=N`; `0` = one worker per CPU.
    threads: usize,
    /// `--trace DIR` / `--trace=DIR`: write trace exports under `DIR`.
    trace_dir: Option<PathBuf>,
    /// `--history DIR` / `--history=DIR`: write op-history JSONL exports
    /// under `DIR` (used by the `history` subcommand).
    history_dir: Option<PathBuf>,
    /// `--alerts DIR` / `--alerts=DIR`: write incident-log JSONL exports
    /// under `DIR` (used by the `e11` subcommand).
    alerts_dir: Option<PathBuf>,
    /// `--json PATH` (bench): write the machine-readable `BENCH.json` here.
    json: Option<PathBuf>,
    /// `--baseline PATH` (bench): compare against a checked-in baseline and
    /// exit nonzero if typed events/sec regresses more than 20 %.
    baseline: Option<PathBuf>,
    /// `--tenants N,N,…` (e12): override the tenant-count sweep (the
    /// default is 100,1000,10000). CI smoke uses small counts here.
    tenants: Option<Vec<u32>>,
}

impl Options {
    /// Parse from an iterator over the raw arguments (program name
    /// already skipped). Unknown `--flags` are ignored, as before.
    fn parse(args: impl Iterator<Item = String>) -> Options {
        let mut opts = Options {
            names: Vec::new(),
            chaos: false,
            csv: false,
            threads: 0,
            trace_dir: None,
            history_dir: None,
            alerts_dir: None,
            json: None,
            baseline: None,
            tenants: None,
        };
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if a == "--chaos" {
                opts.chaos = true;
            } else if a == "--csv" {
                opts.csv = true;
            } else if a == "--threads" {
                if let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    opts.threads = n;
                    i += 1;
                }
            } else if let Some(v) = a.strip_prefix("--threads=") {
                if let Ok(n) = v.parse() {
                    opts.threads = n;
                }
            } else if a == "--trace" {
                if let Some(dir) = args.get(i + 1) {
                    opts.trace_dir = Some(PathBuf::from(dir));
                    i += 1;
                }
            } else if let Some(v) = a.strip_prefix("--trace=") {
                opts.trace_dir = Some(PathBuf::from(v));
            } else if a == "--history" {
                if let Some(dir) = args.get(i + 1) {
                    opts.history_dir = Some(PathBuf::from(dir));
                    i += 1;
                }
            } else if let Some(v) = a.strip_prefix("--history=") {
                opts.history_dir = Some(PathBuf::from(v));
            } else if a == "--alerts" {
                if let Some(dir) = args.get(i + 1) {
                    opts.alerts_dir = Some(PathBuf::from(dir));
                    i += 1;
                }
            } else if let Some(v) = a.strip_prefix("--alerts=") {
                opts.alerts_dir = Some(PathBuf::from(v));
            } else if a == "--json" {
                if let Some(p) = args.get(i + 1) {
                    opts.json = Some(PathBuf::from(p));
                    i += 1;
                }
            } else if let Some(v) = a.strip_prefix("--json=") {
                opts.json = Some(PathBuf::from(v));
            } else if a == "--baseline" {
                if let Some(p) = args.get(i + 1) {
                    opts.baseline = Some(PathBuf::from(p));
                    i += 1;
                }
            } else if let Some(v) = a.strip_prefix("--baseline=") {
                opts.baseline = Some(PathBuf::from(v));
            } else if a == "--tenants" {
                if let Some(v) = args.get(i + 1) {
                    opts.tenants = parse_tenants(v);
                    i += 1;
                }
            } else if let Some(v) = a.strip_prefix("--tenants=") {
                opts.tenants = parse_tenants(v);
            } else if !a.starts_with("--") {
                opts.names.push(a.clone());
            }
            i += 1;
        }
        opts
    }

    /// No selector at all ⇒ run every default experiment; `all` forces it.
    /// `chaos` and `trace` are opt-in and never part of the default set.
    fn all(&self) -> bool {
        self.names.iter().any(|n| n == "all") || (self.names.is_empty() && !self.chaos)
    }

    fn want(&self, name: &str) -> bool {
        self.all() || self.names.iter().any(|n| n == name)
    }
}

/// When `--csv` is passed, tables are also written under `repro_out/`.
fn maybe_csv(opts: &Options, name: &str, table: &str) {
    if opts.csv {
        let dir = Path::new("repro_out");
        let _ = fs::create_dir_all(dir);
        let path = dir.join(format!("{name}.csv"));
        if fs::write(&path, tsuru_bench::table_to_csv(table)).is_ok() {
            println!("   (series written to {})", path.display());
        }
    }
}

/// The single stderr reporting path: every diagnostic line — harness
/// wall-clock stats, worker counts, bench measurements — goes through here,
/// so stdout stays byte-identical at any `--threads` value and the bench
/// output can never interleave with the comparable tables.
fn note(tag: &str, msg: &str) {
    eprintln!("[{tag}] {msg}");
}

/// Wall-clock stats go to stderr so stdout is identical at any `--threads`.
fn report(label: &str, stats: &HarnessStats) {
    note("harness", &format!("{label}: {}", stats.display()));
}

fn run_e1(harness: &TrialHarness, opts: &Options) {
    println!("== E1: no system slowdown (claim C1) — latency/throughput vs backup mode ==");
    println!("   closed-loop order workload, 8 clients; link 1 Gbit/s; 400 ms simulated\n");
    let set = e1_slowdown_with(harness, 42, &[1, 2, 10, 25, 50], SimDuration::from_millis(400));
    report("e1", &set.stats);
    let table = render_e1(&set.rows);
    println!("{table}");
    maybe_csv(opts, "e1", &table);
    println!("expect: adc-cg ≈ none at every RTT; sdc p50 ≳ 2×RTT and tps collapses.\n");
}

fn run_e2(harness: &TrialHarness, opts: &Options) {
    println!("== E2: backup collapse (claims C2/C3) — consistency group vs naive ADC ==");
    println!("   30 surprise-failure drills per mode; 2 ms replication-session skew\n");
    let set = e2_collapse_with(harness, 1000, 30, SimDuration::from_millis(2));
    report("e2", &set.stats);
    let table = render_e2(&set.rows);
    println!("{table}");
    maybe_csv(opts, "e2", &table);
    println!(
        "expect: adc-cg collapses 0/30 (both checks); adc-naive violates write-order\n\
         fidelity in nearly every drill and corrupts the business state in many.\n"
    );
}

fn run_e3(harness: &TrialHarness, opts: &Options) {
    println!("== E3: recovery point vs link bandwidth and journal capacity (§III-A1) ==");
    println!("   main-site failure at t=150 ms; ADC journal Block policy; SDC reference\n");
    let set = e3_rpo_with(harness, 7, &[50, 100, 500, 1000], &[1, 64]);
    report("e3", &set.stats);
    let table = render_e3(&set.rows);
    println!("{table}");
    maybe_csv(opts, "e3", &table);
    println!(
        "expect: lost orders and RPO shrink as bandwidth grows; a tiny journal on a\n\
         slow link stalls the host (stalls > 0, p99 inflated); sdc loses nothing.\n"
    );
}

fn run_e4(opts: &Options) {
    println!("== E4: snapshot groups make backup data usable (§III-A2, Figs. 5–6) ==");
    println!("   snapshots taken at the backup site at t=150 ms, workload continues\n");
    let rows = e4_snapshot(11);
    let table = render_e4(&rows);
    println!("{table}");
    maybe_csv(opts, "e4", &table);
    println!(
        "expect: the atomic group snapshot yields a consistent analytics image while\n\
         replication keeps running (cow_saves > 0); non-atomic per-volume snapshots\n\
         can interleave with apply and break the cross-DB invariant.\n"
    );
}

fn run_e5(opts: &Options) {
    println!("== E5: namespace-operator automation (§III-B1, Figs. 3–4) ==");
    println!("   tag one namespace; measure configuration effort as volumes scale\n");
    let rows = e5_operator(&[2, 4, 10, 50, 100, 200]);
    let table = render_e5(&rows);
    println!("{table}");
    maybe_csv(opts, "e5", &table);
    println!(
        "expect: with the operator the user performs exactly 1 action at any scale;\n\
         the manual procedure grows linearly (4 + 3·volumes console steps).\n"
    );
}

fn run_e6() {
    println!("== E6: the full demonstration (§IV) — three steps + disaster drill ==\n");
    let out = e6_demo(2026);
    for line in &out.transcript {
        println!("{line}");
    }
    println!();
    println!(
        "summary: committed={} analytics_orders={} failover_consistent={} \
         business_recovered={} lost_orders={} rto={}",
        out.committed_orders,
        out.analytics_orders,
        out.failover_consistent,
        out.business_recovered,
        out.lost_orders,
        out.rto
    );
    println!("expect: consistent failover, recovered business process, bounded loss.\n");
}

fn run_e7(opts: &Options) {
    println!("== E7 (extension): three-data-centre — metro SDC + WAN ADC combined ==");
    println!("   far link 25 ms one way; metro link 1 ms; disaster at t=200 ms\n");
    let rows = e7_three_dc(29);
    let table = render_e7(&rows);
    println!("{table}");
    maybe_csv(opts, "e7", &table);
    println!(
        "expect: 3dc latency ≈ metro SDC (~2 ms), far below WAN SDC (~50 ms); its\n\
         metro copy loses nothing while the far copy stays a consistent prefix —\n\
         the best of both of the paper's §V alternatives.\n"
    );
}

fn run_chaos(harness: &TrialHarness, opts: &Options) {
    println!("== E8 (extension): deterministic chaos sweep — CG vs naive under fault ==");
    println!("   seeded random plans, core quartet overlapping ≥4 fault kinds; each plan");
    println!("   replayed against both backup modes and audited at every fault edge\n");
    let cfg = ChaosConfig::default();
    let set = chaos_sweep(harness, 0xC0FFEE, 5, &cfg);
    report("chaos", &set.stats);
    let table = render_chaos_table(&set.rows);
    println!("{table}");
    maybe_csv(opts, "chaos", &table);
    println!("-- auditor reports --");
    for pair in &set.rows {
        print!("{}", pair.cg.render());
        print!("{}", pair.naive.render());
    }
    println!(
        "\nexpect: adc-cg reports zero violations in every trial; adc-naive is caught\n\
         violating write-order fidelity mid-fault. Reports are byte-identical for a\n\
         given seed at any --threads value.\n"
    );
    if let Some(dir) = &opts.trace_dir {
        write_traced_chaos_trials(harness, dir, 1);
    }
}

/// The `history` subcommand: the E9 workload-diversity sweep. Every
/// seeded chaos plan replays under all three workloads in both backup
/// modes with the client-visible history judge on; `--history DIR`
/// additionally writes each trial's full op history as JSONL.
fn run_history(harness: &TrialHarness, opts: &Options) {
    println!("== E9 (extension): workload-diversity history sweep — client-visible oracle ==");
    println!("   each plan × {{ecom, bank, append-list}} × {{adc-cg, adc-naive}}; the judge");
    println!("   reads backup images mid-run and checks the recorded client history\n");
    let cfg = ChaosConfig::default();
    let set = history_sweep(harness, 0xC0FFEE, 3, &cfg);
    report("history", &set.stats);
    let table = render_history_table(&set.rows);
    println!("{table}");
    maybe_csv(opts, "history", &table);
    println!("-- judge reports --");
    for trial in &set.rows {
        for row in &trial.rows {
            print!("{}", row.cg.render());
            print!("{}", row.naive.render());
        }
    }
    println!(
        "\nexpect: adc-cg histories are clean for every workload; the ecom workload\n\
         catches adc-naive's collapse *client-visibly* (order-without-stock in a\n\
         mid-run backup read), while bank totals and append-list prefixes survive\n\
         single-database tears. Byte-identical at any --threads value.\n"
    );
    if let Some(dir) = &opts.history_dir {
        let _ = fs::create_dir_all(dir);
        for (i, trial) in set.rows.iter().enumerate() {
            for row in &trial.rows {
                for (mode, jsonl) in [("cg", &row.cg_export), ("naive", &row.naive_export)] {
                    let path =
                        dir.join(format!("history_t{i}_{}_{mode}.jsonl", row.workload.label()));
                    match fs::write(&path, jsonl) {
                        Ok(()) => println!(
                            "  trial {i} {} {mode}: {} records -> {}",
                            row.workload.label(),
                            jsonl.lines().count(),
                            path.display()
                        ),
                        Err(_) => eprintln!(
                            "  trial {i}: failed to write export under {}",
                            dir.display()
                        ),
                    }
                }
            }
        }
        println!();
    }
}

/// The `e10` subcommand: the chaos-convergence sweep. Every seeded
/// core-quartet plan replays against the consistency-group rig with the
/// replication supervisor armed under each recovery policy; the auditor
/// demands every paired group ends back at PAIR (or circuit-breaker
/// parked, with an alarm) with zero violations.
fn run_e10(harness: &TrialHarness, opts: &Options) {
    println!("== E10 (extension): self-healing convergence — fault plans x recovery policies ==");
    println!("   core-quartet plans, supervisor armed; staged backoff, delta->full degradation,");
    println!("   circuit breaker; auditor demands convergence to PAIR after the last heal\n");
    let cfg = ChaosConfig::default();
    let set = convergence_sweep(harness, 0xC0FFEE, 4, &cfg);
    report("e10", &set.stats);
    let table = render_convergence_table(&set.rows);
    println!("{table}");
    maybe_csv(opts, "e10", &table);
    println!("-- supervised auditor reports (default policy) --");
    for trial in &set.rows {
        if let Some(row) = trial.rows.iter().find(|r| r.policy == "default") {
            print!("{}", row.report.render());
        }
    }
    println!(
        "\nexpect: every policy converges each trial to pair=1/1 parked=0 with zero\n\
         violations; eager's tiny debt threshold degrades it to a full initial copy\n\
         (full=1) and its short stage timeout closes the episode earliest; one\n\
         attempt suffices even for fragile. Byte-identical at any --threads value.\n"
    );
}

/// The `e11` subcommand: the SLO-alerting sweep. Every seeded
/// core-quartet plan replays against the consistency-group rig with the
/// supervisor armed (default policy) and the alert engine armed under
/// each rule profile; incidents are scored against the injected plan
/// (the ground truth) for precision, recall and detection latency.
/// `--alerts DIR` additionally writes each trial's incident log as
/// JSONL.
fn run_e11(harness: &TrialHarness, opts: &Options) {
    println!("== E11 (extension): SLO alerting vs injected ground truth — plans x profiles ==");
    println!("   core-quartet plans; declarative rules (threshold, sustained, rate, absence)");
    println!("   evaluated on the SloTick grid; incidents carry the faults they observed\n");
    let cfg = ChaosConfig::default();
    let set = alert_sweep(harness, 0xC0FFEE, 3, &cfg);
    report("e11", &set.stats);
    let table = render_alert_table(&set.rows);
    println!("{table}");
    maybe_csv(opts, "e11", &table);
    println!("-- alert-armed auditor reports (default profile) --");
    for trial in &set.rows {
        if let Some(row) = trial.rows.iter().find(|r| r.profile == "default") {
            print!("{}", row.report.render());
        }
    }
    println!(
        "\nexpect: the default profile detects every injected kind (recall=4/4) in every\n\
         trial with zero auditor violations; tight detects earliest (and may open\n\
         extra incidents), lenient trades latency for quiet. Byte-identical at any\n\
         --threads value.\n"
    );
    if let Some(dir) = &opts.alerts_dir {
        let _ = fs::create_dir_all(dir);
        for (i, trial) in set.rows.iter().enumerate() {
            for row in &trial.rows {
                let path = dir.join(format!("incidents_t{i}_{}.jsonl", row.profile));
                match fs::write(&path, &row.export) {
                    Ok(()) => println!(
                        "  trial {i} {}: {} incidents -> {}",
                        row.profile,
                        row.export.lines().count(),
                        path.display()
                    ),
                    Err(_) => eprintln!(
                        "  trial {i}: failed to write export under {}",
                        dir.display()
                    ),
                }
            }
        }
        println!();
    }
}

/// The `e12` subcommand: the metro-scale tenant-scaling sweep. Each
/// trial builds an independent sharded multi-tenant world (one
/// consistency group per tenant, groups partitioned across 8 WAN shard
/// lanes), drives the ecom-shaped open-loop order traffic, probes RPO
/// mid-run (the main-site-failure thought experiment) and then drains to
/// quiescence, reading the per-shard journal-occupancy and apply-lag
/// series peaks.
fn run_e12(harness: &TrialHarness, opts: &Options) {
    println!("== E12 (extension): metro-scale tenant scaling — sharded StorageWorld ==");
    println!("   one CG per tenant on 8 shard lanes; 2 writes/order, open loop;");
    println!("   RPO probed at t=25ms, per-shard series peaks over the full run\n");
    let counts = opts
        .tenants
        .clone()
        .unwrap_or_else(|| vec![100, 1_000, 10_000]);
    let set = e12_scale_with(harness, 0xC0FFEE, &counts);
    report("e12", &set.stats);
    let table = render_e12(&set.rows);
    println!("{table}");
    maybe_csv(opts, "e12", &table);
    println!(
        "\nexpect: 100 tenants keep the lanes idle (tiny probe backlog, sub-ms drain\n\
         tail); 10k tenants contend for the same 8 lanes, so probe backlog, peak\n\
         journal occupancy and apply lag all rise while entries/frame shows the\n\
         transfer pumps batching harder. Every row must verify prefix-consistent.\n\
         Byte-identical at any --threads value.\n"
    );
}

/// Parse a `--tenants` list (`"100,1000"`); `None` on any bad element.
fn parse_tenants(v: &str) -> Option<Vec<u32>> {
    let counts: Vec<u32> = v
        .split(',')
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    if counts.is_empty() {
        None
    } else {
        Some(counts)
    }
}

/// The `trace` subcommand: replay seeded chaos plans with the causal
/// tracer on and export each trial's trace (JSONL + Chrome
/// `trace_event`). Exports are byte-identical at any `--threads` value.
fn run_trace(harness: &TrialHarness, opts: &Options) {
    println!("== trace: traced chaos trials — causal write-lifecycle spans ==");
    println!("   fault spans stamp concurrent write lifecycles; load the .chrome.json");
    println!("   files in chrome://tracing or https://ui.perfetto.dev\n");
    let dir = opts
        .trace_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("repro_out"));
    write_traced_chaos_trials(harness, &dir, 2);
}

/// Run `trials` traced consistency-group chaos trials through the
/// harness and write per-trial exports under `dir`.
fn write_traced_chaos_trials(harness: &TrialHarness, dir: &Path, trials: usize) {
    let cfg = ChaosConfig::default();
    let set = harness.run(0xC0FFEE, trials, |ctx| {
        let plan = FaultPlan::random(ctx.seed, cfg.horizon);
        run_chaos_trial_traced(ctx.seed, BackupMode::AdcConsistencyGroup, &plan, &cfg)
    });
    report("trace", &set.stats);
    let _ = fs::create_dir_all(dir);
    for (i, (rep, export)) in set.rows.iter().enumerate() {
        print!("{}", rep.render());
        let spans = export.jsonl.lines().count();
        let jsonl = dir.join(format!("trace_t{i}_cg.jsonl"));
        let chrome = dir.join(format!("trace_t{i}_cg.chrome.json"));
        match (
            fs::write(&jsonl, &export.jsonl),
            fs::write(&chrome, &export.chrome),
        ) {
            (Ok(()), Ok(())) => println!(
                "  trial {i}: {spans} records -> {} / {}",
                jsonl.display(),
                chrome.display()
            ),
            _ => eprintln!("  trial {i}: failed to write exports under {}", dir.display()),
        }
    }
    println!();
}

/// `--trace DIR` alongside the experiments: export one representative
/// traced run of the paper rig (ADC consistency group, default workload)
/// so the write lifecycle can be inspected without a chaos plan.
fn write_rig_trace(dir: &Path) {
    let cfg = RigConfig {
        trace: true,
        ..RigConfig::default()
    };
    let mut rig = TwoSiteRig::new(cfg);
    rig.run_workload_for(SimDuration::from_millis(50));
    let tracer = rig.world.st.tracer.clone();
    let _ = fs::create_dir_all(dir);
    let jsonl = dir.join("trace_rig.jsonl");
    let chrome = dir.join("trace_rig.chrome.json");
    match (
        fs::write(&jsonl, tracer.export_jsonl()),
        fs::write(&chrome, tracer.export_chrome()),
    ) {
        (Ok(()), Ok(())) => println!(
            "traced rig run: {} records -> {} / {}\n",
            tracer.len(),
            jsonl.display(),
            chrome.display()
        ),
        _ => eprintln!("failed to write rig trace under {}\n", dir.display()),
    }
}

fn main() {
    let opts = Options::parse(env::args().skip(1));
    let harness = TrialHarness::new(opts.threads);

    println!("Tsuru experiment reproduction (see DESIGN.md §4, EXPERIMENTS.md)\n");
    note("harness", &format!("trial workers: {}", harness.threads()));
    if opts.want("e1") {
        run_e1(&harness, &opts);
    }
    if opts.want("e2") {
        run_e2(&harness, &opts);
    }
    if opts.want("e3") {
        run_e3(&harness, &opts);
    }
    if opts.want("e4") {
        run_e4(&opts);
    }
    if opts.want("e5") {
        run_e5(&opts);
    }
    if opts.want("e6") {
        run_e6();
    }
    if opts.want("e7") {
        run_e7(&opts);
    }
    // Opt-in only (`repro chaos` or `repro --chaos`): a full sweep replays
    // every plan twice, so it is not part of the default `all` set.
    if opts.names.iter().any(|n| n == "chaos") || opts.chaos {
        run_chaos(&harness, &opts);
    }
    if opts.names.iter().any(|n| n == "trace") {
        run_trace(&harness, &opts);
    }
    // Opt-in only (`repro history`): every plan replays 6× (3 workloads ×
    // 2 modes), so it is not part of the default `all` set either.
    if opts.names.iter().any(|n| n == "history") {
        run_history(&harness, &opts);
    }
    // Opt-in only (`repro e10`): every plan replays once per recovery
    // policy with the supervisor armed.
    if opts.names.iter().any(|n| n == "e10") {
        run_e10(&harness, &opts);
    }
    // Opt-in only (`repro e11`): every plan replays once per rule profile
    // with the supervisor and the alert engine armed.
    if opts.names.iter().any(|n| n == "e11") {
        run_e11(&harness, &opts);
    }
    // Opt-in only (`repro e12`): builds worlds up to 10k consistency
    // groups — seconds of wall-clock, so not part of the default set.
    if opts.names.iter().any(|n| n == "e12") {
        run_e12(&harness, &opts);
    }
    // Opt-in only (`repro bench`): wall-clock kernel microbenchmarks and
    // per-experiment timings. Everything goes to stderr / `--json`; exits
    // nonzero if `--baseline` shows a >20 % events/sec regression.
    if opts.names.iter().any(|n| n == "bench") && !run_bench(&harness, &opts) {
        std::process::exit(1);
    }
    if opts.want("a1") {
        run_a1(&harness, &opts);
    }
    if opts.want("a2") {
        run_a2(&harness, &opts);
    }
    // `--trace DIR` with experiments (not just chaos/trace): also export
    // a representative traced rig run.
    if let Some(dir) = opts.trace_dir.clone() {
        let ran_experiments = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "a1", "a2"]
            .iter()
            .any(|e| opts.want(e));
        if ran_experiments {
            write_rig_trace(&dir);
        }
    }
}

/// The `bench` subcommand: wall-clock microbenchmarks of the event kernel
/// (typed wheel vs the preserved boxed-closure reference kernel) plus
/// per-experiment wall-clock timings and the rig's peak event-queue depth.
///
/// All human-readable output rides the shared stderr reporter ([`note`]),
/// never stdout; `--json PATH` writes the machine-readable `BENCH.json`;
/// `--baseline PATH` compares against a checked-in baseline and returns
/// `false` (⇒ exit 1) if typed events/sec regressed by more than 20 %.
fn run_bench(harness: &TrialHarness, opts: &Options) -> bool {
    use tsuru_bench::kernelbench::{measure_boxed, measure_typed, time_secs, KernelRate};

    const EVENTS: u64 = 4_000_000;
    note(
        "bench",
        &format!(
            "kernel microbench: {} self-rescheduling chains, delays spread over wheel levels",
            tsuru_bench::kernelbench::CHAINS
        ),
    );
    // Warm-up primes the allocator and the wheel's slot capacities so the
    // measured runs see steady state.
    let _ = measure_typed(EVENTS / 40);
    let _ = measure_boxed(EVENTS / 40);
    let typed = measure_typed(EVENTS);
    let boxed = measure_boxed(EVENTS);
    let speedup = typed.events_per_sec / boxed.events_per_sec;
    let show = |r: &KernelRate| {
        note(
            "bench",
            &format!(
                "{:<11} {} events in {:.3} s -> {:.3e} events/s (peak queue depth {}, \
                 {:.6} allocs/event, peak slab {})",
                r.kernel,
                r.events,
                r.secs,
                r.events_per_sec,
                r.peak_pending,
                r.allocs_per_event,
                r.peak_slab
            ),
        );
    };
    show(&typed);
    show(&boxed);
    note("bench", &format!("typed/boxed speedup: {speedup:.2}x"));

    // Peak queue depth of the real workload, not just the microbench: one
    // representative rig run (ADC consistency group, default config).
    let (rig_peak, rig_secs) = time_secs(|| {
        let mut rig = TwoSiteRig::new(RigConfig::default());
        rig.run_workload_for(SimDuration::from_millis(50));
        rig.sim.peak_pending()
    });
    note(
        "bench",
        &format!("rig 50 ms workload: peak queue depth {rig_peak} ({rig_secs:.3} s wall)"),
    );

    // Wall-clock per experiment, same parameters as the repro run itself.
    let mut experiments: Vec<(&str, f64)> = Vec::new();
    let mut time_exp = |name: &'static str, secs: f64| {
        note("bench", &format!("experiment {name}: {secs:.3} s wall"));
        experiments.push((name, secs));
    };
    time_exp(
        "e1",
        time_secs(|| e1_slowdown_with(harness, 42, &[1, 2, 10, 25, 50], SimDuration::from_millis(400))).1,
    );
    time_exp(
        "e2",
        time_secs(|| e2_collapse_with(harness, 1000, 30, SimDuration::from_millis(2))).1,
    );
    time_exp(
        "e3",
        time_secs(|| e3_rpo_with(harness, 7, &[50, 100, 500, 1000], &[1, 64])).1,
    );
    time_exp("e4", time_secs(|| e4_snapshot(11)).1);
    time_exp("e5", time_secs(|| e5_operator(&[2, 4, 10, 50, 100, 200])).1);
    time_exp("e6", time_secs(|| e6_demo(2026)).1);
    time_exp("e7", time_secs(|| e7_three_dc(29)).1);
    time_exp(
        "a1",
        time_secs(|| a1_backup_lag_with(harness, 19, &[200, 500, 2000, 5000], &[8, 64])).1,
    );
    time_exp(
        "a2",
        time_secs(|| a2_journal_policy_with(harness, 23, &[256, 1024, 16384])).1,
    );

    if let Some(path) = &opts.json {
        let json = bench_json(&typed, &boxed, speedup, rig_peak, &experiments);
        match fs::write(path, json) {
            Ok(()) => note("bench", &format!("wrote {}", path.display())),
            Err(e) => {
                note("bench", &format!("failed to write {}: {e}", path.display()));
                return false;
            }
        }
    }

    if let Some(path) = &opts.baseline {
        let base = match fs::read_to_string(path).ok().as_deref().and_then(baseline_events_per_sec)
        {
            Some(b) => b,
            None => {
                note(
                    "bench",
                    &format!("baseline {} missing or unparsable", path.display()),
                );
                return false;
            }
        };
        let floor = base * 0.8;
        let mut ok = typed.events_per_sec >= floor;
        note(
            "bench",
            &format!(
                "baseline gate: typed {:.3e} events/s vs floor {:.3e} (0.8 x baseline {:.3e}) -> {}",
                typed.events_per_sec,
                floor,
                base,
                if ok { "pass" } else { "FAIL" }
            ),
        );
        // Allocation ratchet: allocs/event is deterministic (schedule-only),
        // so any growth over the checked-in baseline is a real regression.
        // Baselines predating the field skip the ratchet (additive schema).
        if let Some(base_alloc) = fs::read_to_string(path)
            .ok()
            .as_deref()
            .and_then(baseline_allocs_per_event)
        {
            let ceil = base_alloc * 1.1 + 1e-9;
            let alloc_ok = typed.allocs_per_event <= ceil;
            note(
                "bench",
                &format!(
                    "alloc ratchet: typed {:.8} allocs/event vs ceiling {:.8} (1.1 x baseline {:.8}) -> {}",
                    typed.allocs_per_event,
                    ceil,
                    base_alloc,
                    if alloc_ok { "pass" } else { "FAIL" }
                ),
            );
            ok = ok && alloc_ok;
        } else {
            note("bench", "alloc ratchet: baseline has no allocs_per_event, skipped");
        }
        return ok;
    }
    true
}

/// Hand-rolled `BENCH.json` (the workspace vendors no JSON serializer; the
/// format is flat enough that string assembly is the honest tool).
fn bench_json(
    typed: &tsuru_bench::kernelbench::KernelRate,
    boxed: &tsuru_bench::kernelbench::KernelRate,
    speedup: f64,
    rig_peak: usize,
    experiments: &[(&str, f64)],
) -> String {
    // `allocs_per_event` / `peak_slab` are additive to the schema: the
    // baseline reader scans for named keys, so older BENCH.json baselines
    // (without them) still parse and newer files gain the ratchet.
    let rate = |r: &tsuru_bench::kernelbench::KernelRate| {
        format!(
            "{{\"events\": {}, \"secs\": {:.6}, \"events_per_sec\": {:.1}, \"peak_pending\": {}, \
             \"allocs_per_event\": {:.8}, \"peak_slab\": {}}}",
            r.events, r.secs, r.events_per_sec, r.peak_pending, r.allocs_per_event, r.peak_slab
        )
    };
    let exps: Vec<String> = experiments
        .iter()
        .map(|(n, s)| format!("    {{\"name\": \"{n}\", \"secs\": {s:.3}}}"))
        .collect();
    format!(
        "{{\n  \"schema\": \"tsuru-bench/1\",\n  \"kernel\": {{\n    \"typed_wheel\": {},\n    \"boxed_heap\": {},\n    \"speedup\": {:.2}\n  }},\n  \"rig_peak_pending\": {},\n  \"experiments\": [\n{}\n  ]\n}}\n",
        rate(typed),
        rate(boxed),
        speedup,
        rig_peak,
        exps.join(",\n")
    )
}

/// Pull a numeric field of the `typed_wheel` object out of a `BENCH.json`
/// without a JSON parser: locate `typed_wheel`, then the first `key` after
/// it. Unknown keys simply return `None`, so the schema can grow fields
/// without breaking older readers (and vice versa).
fn typed_wheel_field(text: &str, key: &str) -> Option<f64> {
    let obj = &text[text.find("\"typed_wheel\"")?..];
    let marker = format!("\"{key}\":");
    let rest = &obj[obj.find(&marker)? + marker.len()..];
    let end = rest.find(|c: char| c == ',' || c == '}')?;
    rest[..end].trim().parse().ok()
}

/// `kernel.typed_wheel.events_per_sec` from a `BENCH.json`.
fn baseline_events_per_sec(text: &str) -> Option<f64> {
    typed_wheel_field(text, "events_per_sec")
}

/// `kernel.typed_wheel.allocs_per_event` from a `BENCH.json`; `None` for
/// baselines predating the field.
fn baseline_allocs_per_event(text: &str) -> Option<f64> {
    typed_wheel_field(text, "allocs_per_event")
}

fn run_a1(harness: &TrialHarness, opts: &Options) {
    println!("== A1 (ablation): backup lag vs transfer-pump parameters ==");
    println!("   acked-but-unapplied backlog sampled every 5 ms over a 300 ms run\n");
    let set = a1_backup_lag_with(harness, 19, &[200, 500, 2000, 5000], &[8, 64]);
    report("a1", &set.stats);
    let table = render_a1(&set.rows);
    println!("{table}");
    maybe_csv(opts, "a1", &table);
    println!(
        "expect: lag grows with the pump interval (staleness is the price of\n\
         decoupling) while host p99 stays flat — the pump never touches the host path.\n"
    );
}

fn run_a2(harness: &TrialHarness, opts: &Options) {
    println!("== A2 (ablation): journal-full policy — Block vs Suspend ==");
    println!("   undersized journal over a 20 Mbit/s link; failure at t=200 ms\n");
    let set = a2_journal_policy_with(harness, 23, &[256, 1024, 16384]);
    report("a2", &set.stats);
    let table = render_a2(&set.rows);
    println!("{table}");
    maybe_csv(opts, "a2", &table);
    println!(
        "expect: Block back-pressures the host (stalls > 0, p99 up) but keeps the\n\
         backup advancing; Suspend keeps the host fast but abandons the backup\n\
         (degraded acks, far larger loss at failover).\n"
    );
}
