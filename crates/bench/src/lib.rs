//! # tsuru-bench — benchmarks and the experiment reproduction harness
//!
//! Two kinds of measurement live here:
//!
//! - the **`repro` binary** (`cargo run -p tsuru-bench --release --bin
//!   repro [e1|e2|e3|e4|e5|e6|all]`) regenerates every experiment table
//!   from DESIGN.md §4 in simulated time — the reproduction of the paper's
//!   figures/claims (results recorded in EXPERIMENTS.md);
//! - the **Criterion benches** (`cargo bench`) measure the *wall-clock*
//!   cost of the simulator itself on scaled-down versions of the same
//!   scenarios, so regressions in the substrate are caught.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernelbench;
pub mod refkernel;

use tsuru_core::experiments::{E1Row, E2Row, E3Row, E4Row, E5Row};
use tsuru_core::{f2, render_table};

/// Render the E1 (no-slowdown) table.
pub fn render_e1(rows: &[E1Row]) -> String {
    render_table(
        &["mode", "rtt_ms", "tps", "mean_ms", "p50_ms", "p99_ms"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    f2(r.rtt_ms),
                    f2(r.tps),
                    format!("{:.3}", r.mean_ms),
                    format!("{:.3}", r.p50_ms),
                    format!("{:.3}", r.p99_ms),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render the E2 (collapse) table.
pub fn render_e2(rows: &[E2Row]) -> String {
    render_table(
        &[
            "mode",
            "trials",
            "storage_collapse",
            "business_collapse",
            "hard_failures",
            "avg_lost_orders",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    r.trials.to_string(),
                    format!("{}/{}", r.storage_collapses, r.trials),
                    format!("{}/{}", r.business_collapses, r.trials),
                    r.hard_recovery_failures.to_string(),
                    f2(r.avg_lost_orders),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render the E3 (RPO) table.
pub fn render_e3(rows: &[E3Row]) -> String {
    render_table(
        &[
            "mode",
            "bw_mbps",
            "journal_mib",
            "committed",
            "lost_orders",
            "rpo_ms",
            "stalls",
            "p99_ms",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    r.bandwidth_mbps.to_string(),
                    r.journal_mib.to_string(),
                    r.committed_orders.to_string(),
                    r.lost_orders.to_string(),
                    f2(r.rpo_ms),
                    r.journal_stalls.to_string(),
                    format!("{:.3}", r.p99_ms),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render the E4 (snapshot) table.
pub fn render_e4(rows: &[E4Row]) -> String {
    render_table(
        &[
            "scenario",
            "analytics_orders",
            "image_consistent",
            "cow_saves",
            "committed_at_end",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.clone(),
                    r.analytics_orders.to_string(),
                    r.image_consistent.to_string(),
                    r.cow_saves.to_string(),
                    r.committed_at_end.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render the E5 (operator automation) table.
pub fn render_e5(rows: &[E5Row]) -> String {
    render_table(
        &[
            "volumes",
            "user_actions(op)",
            "user_actions(manual)",
            "rounds",
            "api_mutations",
            "pairs",
            "backup_claims",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.volumes.to_string(),
                    r.user_actions_operator.to_string(),
                    r.user_actions_manual.to_string(),
                    r.rounds.to_string(),
                    r.api_mutations.to_string(),
                    r.pairs.to_string(),
                    r.backup_claims.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render the A1 (backup lag ablation) table.
pub fn render_a1(rows: &[tsuru_core::experiments::A1Row]) -> String {
    render_table(
        &[
            "pump_us",
            "batch",
            "mean_lag_writes",
            "max_lag_writes",
            "frames",
            "p99_ms",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.pump_interval_us.to_string(),
                    r.batch_max_entries.to_string(),
                    f2(r.mean_lag_writes),
                    r.max_lag_writes.to_string(),
                    r.frames_sent.to_string(),
                    format!("{:.3}", r.p99_ms),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render the A2 (journal-full policy ablation) table.
pub fn render_a2(rows: &[tsuru_core::experiments::A2Row]) -> String {
    render_table(
        &[
            "policy",
            "journal_kib",
            "committed",
            "p99_ms",
            "stalls",
            "degraded_acks",
            "lost_orders",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    r.journal_kib.to_string(),
                    r.committed.to_string(),
                    format!("{:.3}", r.p99_ms),
                    r.stalls.to_string(),
                    r.degraded_acks.to_string(),
                    r.lost_orders.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render the E7 (three-data-centre) table.
pub fn render_e7(rows: &[tsuru_core::experiments::E7Row]) -> String {
    render_table(
        &[
            "mode",
            "p50_ms",
            "committed",
            "far_recovered",
            "metro_recovered",
            "best_copy_lost",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    format!("{:.3}", r.p50_ms),
                    r.committed.to_string(),
                    r.far_recovered.to_string(),
                    r.metro_recovered
                        .map(|m| m.to_string())
                        .unwrap_or_else(|| "—".into()),
                    r.best_copy_lost.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Render the E12 (metro-scale tenant-scaling) table.
pub fn render_e12(rows: &[tsuru_core::E12Row]) -> String {
    render_table(
        &[
            "tenants",
            "shards",
            "acked",
            "backlog@probe",
            "rpo_ms@probe",
            "peak_jnl_kib",
            "peak_lag",
            "ent/frame",
            "drain_ms",
            "consistent",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.tenants.to_string(),
                    r.shards.to_string(),
                    r.writes_acked.to_string(),
                    r.backlog_at_probe.to_string(),
                    f2(r.rpo_at_probe_ms),
                    f2(r.peak_shard_jnl_kib),
                    format!("{:.0}", r.peak_shard_lag),
                    f2(r.entries_per_frame),
                    f2(r.drain_ms),
                    if r.consistent { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Serialize a rendered table (as produced by the `render_*` functions)
/// into CSV, so plots of the paper's "figures" can be regenerated from the
/// same rows (`repro --csv`).
pub fn table_to_csv(table: &str) -> String {
    let mut out = String::new();
    for (i, line) in table.lines().enumerate() {
        if i == 1 {
            continue; // the dashes separator
        }
        let cells: Vec<&str> = line.split_whitespace().collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let rows = vec![E1Row {
            mode: "none".into(),
            rtt_ms: 2.0,
            tps: 1000.0,
            mean_ms: 0.1,
            p50_ms: 0.1,
            p99_ms: 0.2,
        }];
        let t = render_e1(&rows);
        assert!(t.contains("none"));
        assert!(t.contains("p99_ms"));
        let csv = table_to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "mode,rtt_ms,tps,mean_ms,p50_ms,p99_ms");
        assert!(lines[1].starts_with("none,2.00,"));
    }
}
