//! Ground-truth scoring of SLO incidents against the injected fault plan.
//!
//! An alert trial arms the telemetry [`AlertEngine`](tsuru_storage::AlertEngine)
//! on the rig, so every incident it opens carries the fault windows the
//! tracer had in flight (the injector stamps each injected fault with a
//! `kind` attribute). The plan *is* the ground truth — the generator
//! schedules at most one event per kind — so matching is exact:
//!
//! - an incident that observed at least one injected fault window is a
//!   **true positive**; one that observed none fired with no fault in
//!   flight and is a **false positive**;
//! - a fault kind is **detected** when any incident observed its window;
//!   its **detection latency** is the earliest observation minus the
//!   injection instant;
//! - **recall** is detected kinds over injected kinds — the acceptance
//!   bar for the default profile on the core quartet is full recall.

use serde::{Deserialize, Serialize};
use tsuru_storage::IncidentLog;

use crate::plan::FaultPlan;

/// One injected fault kind's detection verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindDetection {
    /// The fault kind's stable label (`link-partition`, …).
    pub kind: String,
    /// Did any incident observe this fault's window?
    pub detected: bool,
    /// Earliest observation minus the injection instant, in microseconds
    /// of sim-time. Zero when undetected.
    pub latency_us: u64,
}

/// Ground-truth verdict of one alert trial: the incident log scored
/// against the injected plan. Present only on trials that ran with an
/// alert profile armed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertSummary {
    /// The armed rule profile's name (tight / default / lenient).
    pub profile: String,
    /// Rule-evaluation ticks the engine ran.
    pub evals: u64,
    /// Incidents opened over the trial.
    pub incidents: u64,
    /// Of those, still open at quiesce (breach never cleared).
    pub open_at_quiesce: u64,
    /// Incidents that observed at least one injected fault window.
    pub true_positives: u64,
    /// Incidents that observed no injected fault window.
    pub false_positives: u64,
    /// Per injected fault kind, in plan order: detected + latency.
    pub kinds: Vec<KindDetection>,
}

impl AlertSummary {
    /// Injected kinds observed by at least one incident.
    pub fn kinds_detected(&self) -> u64 {
        self.kinds.iter().filter(|k| k.detected).count() as u64
    }

    /// Every injected kind detected?
    pub fn full_recall(&self) -> bool {
        self.kinds.iter().all(|k| k.detected)
    }

    /// Slowest per-kind detection latency, µs (zero when nothing was
    /// detected).
    pub fn latency_max_us(&self) -> u64 {
        self.kinds.iter().map(|k| k.latency_us).max().unwrap_or(0)
    }
}

/// Score `log` against the injected `plan` (see the [module docs](self)).
pub fn match_incidents(plan: &FaultPlan, log: &IncidentLog, profile: &str, evals: u64) -> AlertSummary {
    let mut true_positives = 0u64;
    let mut false_positives = 0u64;
    let mut open_at_quiesce = 0u64;
    for inc in log.incidents() {
        if inc.is_open() {
            open_at_quiesce += 1;
        }
        if inc.faults.is_empty() {
            false_positives += 1;
        } else {
            true_positives += 1;
        }
    }
    let kinds = plan
        .events
        .iter()
        .map(|ev| {
            let label = ev.kind.label();
            let first_seen = log
                .incidents()
                .iter()
                .flat_map(|inc| inc.faults.iter())
                .filter(|f| f.kind == label)
                .map(|f| f.first_seen)
                .min();
            match first_seen {
                Some(seen) => KindDetection {
                    kind: label.to_string(),
                    detected: true,
                    latency_us: seen.saturating_since(ev.at).as_micros(),
                },
                None => KindDetection {
                    kind: label.to_string(),
                    detected: false,
                    latency_us: 0,
                },
            }
        })
        .collect();
    AlertSummary {
        profile: profile.to_string(),
        evals,
        incidents: log.len() as u64,
        open_at_quiesce,
        true_positives,
        false_positives,
        kinds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsuru_sim::{SimDuration, SimTime};
    use tsuru_storage::{FaultRef, SpanId};

    use crate::plan::{FaultEvent, FaultKind};

    fn quartetish_plan() -> FaultPlan {
        FaultPlan {
            horizon: SimTime::from_millis(150),
            events: vec![
                FaultEvent {
                    kind: FaultKind::LinkPartition,
                    at: SimTime::from_millis(30),
                    duration: SimDuration::from_millis(40),
                },
                FaultEvent {
                    kind: FaultKind::BackupArrayCrash,
                    at: SimTime::from_millis(40),
                    duration: SimDuration::from_millis(30),
                },
            ],
        }
    }

    #[test]
    fn matcher_scores_detection_latency_and_recall() {
        let plan = quartetish_plan();
        let mut log = IncidentLog::new();
        let i = log.open(
            "link-down",
            "health.links_down",
            SimTime::from_millis(31),
            1.0,
            vec![],
            vec![],
            "off".to_string(),
        );
        log.incident_mut(i).faults.push(FaultRef {
            span: SpanId(7),
            kind: "link-partition".to_string(),
            first_seen: SimTime::from_millis(31),
        });
        log.incident_mut(i).resolved_at = Some(SimTime::from_millis(75));
        let summary = match_incidents(&plan, &log, "default", 100);
        assert_eq!(summary.incidents, 1);
        assert_eq!(summary.true_positives, 1);
        assert_eq!(summary.false_positives, 0);
        assert_eq!(summary.open_at_quiesce, 0);
        assert_eq!(summary.kinds_detected(), 1);
        assert!(!summary.full_recall());
        let k = &summary.kinds[0];
        assert_eq!(k.kind, "link-partition");
        assert!(k.detected);
        assert_eq!(k.latency_us, 1_000);
        assert_eq!(summary.latency_max_us(), 1_000);
        assert!(!summary.kinds[1].detected);
    }

    #[test]
    fn faultless_incident_counts_as_false_positive() {
        let plan = quartetish_plan();
        let mut log = IncidentLog::new();
        log.open(
            "rpo-lag-sustained",
            "health.rpo_lag",
            SimTime::from_millis(5),
            9.0,
            vec![],
            vec![],
            "off".to_string(),
        );
        let summary = match_incidents(&plan, &log, "tight", 10);
        assert_eq!(summary.false_positives, 1);
        assert_eq!(summary.true_positives, 0);
        assert_eq!(summary.open_at_quiesce, 1);
        assert_eq!(summary.kinds_detected(), 0);
    }
}
