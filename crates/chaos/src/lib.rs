//! # tsuru-chaos — deterministic fault injection + whole-system auditing
//!
//! The repo's individual tests hand-roll single faults (a link cut here,
//! an array crash there); this crate exercises the *composition* of
//! faults, which is where the paper's central claims actually live: a
//! consistency-group backup must be a prefix-consistent cut of the
//! primary's ack order **no matter what combination of failures is in
//! flight** (C2/C3), while the naive per-volume configuration collapses
//! under exactly those conditions.
//!
//! Three pieces:
//!
//! - [`FaultPlan`] — a typed, seed-generatable schedule of fault events
//!   (link flap/partition/jitter-spike, array crash & heal, journal
//!   squeeze, pump stall, operator restart, snapshot-during-fault);
//! - the injector ([`run_chaos_trial`]) — replays a plan against a
//!   [`TwoSiteRig`](tsuru_core::TwoSiteRig) through the public fault
//!   seams (`simnet` outages, `storage` array failure, fabric
//!   suspend/resync, `heal_link` pump kicks);
//! - the [`Auditor`] — checks global invariants at every fault start,
//!   every heal and on a periodic sample grid, and a stricter set at
//!   final quiesce (journals drained, databases recover on every
//!   secondary image, snapshot groups crash-consistent).
//!
//! Everything derives from `DetRng` seeds: the same seed produces a
//! byte-identical [`ChaosReport`] at any harness thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alert;
mod audit;
mod converge;
mod e11;
mod inject;
mod judge;
mod plan;
mod run;

pub use alert::{match_incidents, AlertSummary, KindDetection};
pub use audit::{Auditor, ChaosReport, HistorySummary, SupervisorSummary, Violation};
pub use converge::{
    convergence_sweep, recovery_policies, render_convergence_table, ConvergeRow, ConvergeTrial,
};
pub use e11::{alert_sweep, render_alert_table, AlertRow, AlertTrial};
pub use plan::{FaultEvent, FaultKind, FaultPlan};
pub use run::{
    chaos_sweep, history_sweep, render_chaos_table, render_history_table, run_chaos_trial,
    run_chaos_trial_alerts, run_chaos_trial_history, run_chaos_trial_traced, shrink_plan,
    ChaosConfig, ChaosPair, HistoryRow, HistoryTrial, TraceExport,
};
