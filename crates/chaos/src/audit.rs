//! The whole-system consistency auditor.
//!
//! Mid-run (every fault start, every heal, and a periodic sample grid)
//! the auditor checks invariants that must hold at *any* instant:
//!
//! 1. **Write-order fidelity** — the backup image of every group is a
//!    prefix-consistent cut of the primary ack log, and the secondary
//!    bytes match that prefix exactly (`StorageWorld::verify_consistency`).
//! 2. **No stuck pump** — an `Active` ADC group whose link is up and whose
//!    primary journal holds unsent entries must have a scheduled transfer
//!    pump (a parked pump after a heal is the regression the `heal_link`
//!    API exists to prevent).
//! 3. **Lifecycle legality** — observed group-state transitions respect
//!    [`GroupState::can_transition_to`] (e.g. a promoted group never
//!    silently reactivates).
//!
//! At final quiescence it additionally checks:
//!
//! 4. **Journal drain** — both journals of every group empty, every pair's
//!    acked count equals its applied count (RPO drains to zero once all
//!    faults heal).
//! 5. **Business recovery** — both databases recover from the backup-site
//!    replicas, the cross-database invariant holds, and no order committed
//!    at the main site is missing from the drained backup.
//! 6. **Snapshot crash consistency** — every snapshot group taken during a
//!    fault window recovers into consistent databases.
//!
//! Supervised trials (`ChaosConfig::supervisor`) add:
//!
//! 7. **Convergence** — after the last heal plus the grace window, every
//!    group that still owns pairs must be back to PAIR (`Active`), or
//!    explicitly parked by the supervisor's circuit breaker (which also
//!    raised a telemetry alarm). Anything else — still suspended, still
//!    promoted — is a recovery the supervisor failed to finish.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tsuru_core::TwoSiteRig;
use tsuru_minidb::MiniDb;
use tsuru_sim::SimTime;
use tsuru_storage::{GroupId, GroupState, SnapshotId, SnapshotView, Tracer};

use crate::alert::AlertSummary;

/// How many trailing trace records the auditor attaches to a violation.
const TRACE_WINDOW: usize = 8;

/// One invariant violation, timestamped in simulated time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// When the audit observed it.
    pub at: SimTime,
    /// Which invariant (stable short label).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
    /// Trailing window of the causal trace at observation time, rendered
    /// one record per line with span ids (`#N`). Empty when the trial ran
    /// without tracing.
    pub trace: Vec<String>,
}

/// Summary of the armed supervisor's recovery work for one trial.
/// Present only on trials that ran with the supervisor armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorSummary {
    /// Groups still owning pairs at quiesce.
    pub groups_total: u64,
    /// Of those, groups that converged back to PAIR (`Active`).
    pub groups_pair: u64,
    /// Of those, groups parked by the circuit breaker.
    pub groups_parked: u64,
    /// Probe passes executed.
    pub probes: u64,
    /// Resync attempts issued.
    pub attempts: u64,
    /// Attempts that ran as delta resyncs.
    pub delta_resyncs: u64,
    /// Attempts degraded to full initial copies (journal debt over
    /// threshold).
    pub full_resyncs: u64,
    /// Parked pumps restarted by probes.
    pub pump_kicks: u64,
    /// Recovery episodes closed healthy.
    pub heals: u64,
    /// Automatic failovers performed.
    pub failovers: u64,
    /// Automatic failbacks completed.
    pub failbacks: u64,
    /// Slowest suspension-to-healthy episode, in microseconds of
    /// sim-time.
    pub tth_max_us: u64,
}

/// Summary of the client-visible history judgement for one trial.
/// Present only on trials that ran with history recording enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistorySummary {
    /// Records in the judged history.
    pub records: u64,
    /// Operations judged across every applicable checker.
    pub ops_checked: u64,
    /// Client-visible anomalies found (each is also a `client-history`
    /// violation in the report).
    pub anomalies: u64,
}

/// The auditor's verdict for one chaos trial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Backup-mode label (`adc-cg` / `adc-naive`).
    pub mode: String,
    /// Trial seed.
    pub seed: u64,
    /// Distinct fault kinds injected.
    pub kinds: Vec<String>,
    /// Fault events in the plan.
    pub events: usize,
    /// Audit points evaluated (mid-run + final).
    pub audits: u64,
    /// Orders committed by the workload.
    pub committed_orders: u64,
    /// Client-visible history judgement (history trials only).
    pub history: Option<HistorySummary>,
    /// Supervisor recovery summary (supervised trials only).
    pub supervisor: Option<SupervisorSummary>,
    /// SLO incidents scored against the injected ground truth (alert
    /// trials only).
    pub alerts: Option<AlertSummary>,
    /// Every violation observed, in audit order.
    pub violations: Vec<Violation>,
}

impl ChaosReport {
    /// Zero violations across every audit point?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic multi-line rendering — byte-identical for identical
    /// (seed, plan, mode) regardless of harness thread count.
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos mode={} seed={} events={} kinds=[{}] audits={} orders={} violations={}\n",
            self.mode,
            self.seed,
            self.events,
            self.kinds.join(","),
            self.audits,
            self.committed_orders,
            self.violations.len(),
        );
        // The history line only appears on history-judged trials, so
        // plain chaos renders stay byte-identical to the pre-history
        // format.
        if let Some(h) = &self.history {
            out.push_str(&format!(
                "  history records={} ops_checked={} anomalies={}\n",
                h.records, h.ops_checked, h.anomalies
            ));
        }
        // Likewise the supervisor line only appears on supervised trials.
        if let Some(s) = &self.supervisor {
            out.push_str(&format!(
                "  supervisor pair={}/{} parked={} probes={} attempts={} delta={} full={} \
                 kicks={} heals={} failovers={} failbacks={} tth_max_us={}\n",
                s.groups_pair,
                s.groups_total,
                s.groups_parked,
                s.probes,
                s.attempts,
                s.delta_resyncs,
                s.full_resyncs,
                s.pump_kicks,
                s.heals,
                s.failovers,
                s.failbacks,
                s.tth_max_us,
            ));
        }
        // And the alerts block only appears on alert trials.
        if let Some(a) = &self.alerts {
            out.push_str(&format!(
                "  alerts profile={} evals={} incidents={} open={} tp={} fp={} recall={}/{}\n",
                a.profile,
                a.evals,
                a.incidents,
                a.open_at_quiesce,
                a.true_positives,
                a.false_positives,
                a.kinds_detected(),
                a.kinds.len(),
            ));
            for k in &a.kinds {
                if k.detected {
                    out.push_str(&format!(
                        "    fault {:<18} detected latency_us={}\n",
                        k.kind, k.latency_us
                    ));
                } else {
                    out.push_str(&format!("    fault {:<18} missed\n", k.kind));
                }
            }
        }
        for v in &self.violations {
            out.push_str(&format!("  {:>12} {:<22} {}\n", v.at.to_string(), v.invariant, v.detail));
            // Trace lines only appear on traced trials, so untraced
            // renders stay byte-identical to the pre-telemetry format.
            for line in &v.trace {
                out.push_str(&format!("      trace {line}\n"));
            }
        }
        out
    }
}

/// Incremental auditor state for one trial.
pub struct Auditor {
    groups: Vec<GroupId>,
    prev_states: BTreeMap<GroupId, GroupState>,
    /// Snapshot groups taken during fault windows, for the final audit.
    snapshots: Vec<(SimTime, Vec<SnapshotId>)>,
    /// Handle on the rig's tracer: violations attach the trailing trace
    /// window so a report references the span ids that led up to it.
    tracer: Tracer,
    /// Audit points evaluated so far.
    pub audits: u64,
    /// Violations collected so far.
    pub violations: Vec<Violation>,
    /// Client-visible history judgement, once the judge has run.
    history: Option<HistorySummary>,
    /// Incidents scored against the injected plan, once the alert
    /// harvest has run.
    alerts: Option<AlertSummary>,
    /// Demand convergence at quiesce (check 7, supervised trials).
    expect_convergence: bool,
}

impl Auditor {
    /// An auditor over the rig's groups.
    pub fn new(rig: &TwoSiteRig) -> Self {
        let prev_states = rig
            .groups
            .iter()
            .map(|&g| (g, rig.world.st.fabric.group(g).state))
            .collect();
        Auditor {
            groups: rig.groups.clone(),
            prev_states,
            snapshots: Vec::new(),
            tracer: rig.world.st.tracer.clone(),
            audits: 0,
            violations: Vec::new(),
            history: None,
            alerts: None,
            expect_convergence: false,
        }
    }

    /// Attach the client-visible history judgement to the final report.
    pub(crate) fn set_history(&mut self, summary: HistorySummary) {
        self.history = Some(summary);
    }

    /// Attach the ground-truth-scored alert verdict to the final report.
    pub(crate) fn set_alerts(&mut self, summary: AlertSummary) {
        self.alerts = Some(summary);
    }

    /// Demand convergence at quiesce: every group still owning pairs must
    /// end `Active` or circuit-breaker parked (check 7).
    pub fn expect_convergence(&mut self) {
        self.expect_convergence = true;
    }

    /// Record a snapshot group taken mid-fault (audited at quiesce).
    pub fn record_snapshot_group(&mut self, at: SimTime, snaps: Vec<SnapshotId>) {
        self.snapshots.push((at, snaps));
    }

    pub(crate) fn violate(&mut self, at: SimTime, invariant: &'static str, detail: String) {
        self.violations.push(Violation {
            at,
            invariant,
            detail,
            trace: self.tracer.tail(TRACE_WINDOW),
        });
    }

    /// The mid-run invariant set (checks 1–3). Call at fault starts,
    /// heals, and on the periodic sample grid.
    pub fn audit_point(&mut self, rig: &TwoSiteRig) {
        self.audits += 1;
        let now = rig.sim.now();
        let st = &rig.world.st;
        let groups = self.groups.clone();

        // 1. Write-order fidelity of every backup image.
        let report = st.verify_consistency(&groups);
        if !report.prefix.consistent {
            for v in &report.prefix.violations {
                self.violate(now, "prefix-cut", v.clone());
            }
        }
        for m in &report.content_mismatches {
            self.violate(now, "content-mismatch", m.clone());
        }

        // 2. No parked pump with work, an up link, live arrays and an
        // Active group. A failed member array exempts the group: the pump
        // is *supposed* to park then (kicking it would churn), and the
        // array heal resyncs and restarts it.
        for &gid in &groups {
            let g = st.fabric.group(gid);
            if g.state != GroupState::Active || g.pump_scheduled {
                continue;
            }
            if !st.net.link(g.link).is_up(now) {
                continue;
            }
            let any_array_failed = g.pairs.iter().any(|&pid| {
                let p = st.fabric.pair(pid);
                st.array(p.primary.array).is_failed() || st.array(p.secondary.array).is_failed()
            });
            if any_array_failed {
                continue;
            }
            let has_backlog = g
                .primary_jnl
                .map(|j| !st.fabric.journal(j).peek_unsent(1, u64::MAX).is_empty())
                .unwrap_or(false);
            if has_backlog {
                self.violate(
                    now,
                    "parked-pump",
                    format!("group g{} has unsent backlog, link up, pump idle", gid.0),
                );
            }
        }

        // 3. Lifecycle legality of observed state transitions.
        for &gid in &groups {
            let cur = st.fabric.group(gid).state;
            let prev = self.prev_states.insert(gid, cur).unwrap_or(cur);
            if !prev.can_transition_to(cur) {
                self.violate(
                    now,
                    "illegal-transition",
                    format!("group g{}: {prev:?} -> {cur:?}", gid.0),
                );
            }
        }
    }

    /// The final-quiescence invariant set (checks 4–6) plus a last
    /// mid-run pass. Consumes the auditor and produces the report.
    pub fn finish(mut self, rig: &TwoSiteRig, seed: u64, kinds: Vec<String>, events: usize) -> ChaosReport {
        self.audit_point(rig);
        let now = rig.sim.now();
        let st = &rig.world.st;
        let groups = self.groups.clone();

        // 4. Journals drained, acked == applied for every pair.
        for &gid in &groups {
            let g = st.fabric.group(gid);
            for jid in [g.primary_jnl, g.secondary_jnl].into_iter().flatten() {
                let j = st.fabric.journal(jid);
                if !j.is_empty() {
                    self.violate(
                        now,
                        "journal-not-drained",
                        format!("group g{}: {} entries left", gid.0, j.len()),
                    );
                }
            }
            for &pid in &g.pairs {
                let p = st.fabric.pair(pid);
                if p.acked_writes != p.applied_writes {
                    self.violate(
                        now,
                        "rpo-not-zero",
                        format!(
                            "pair {}: acked {} != applied {}",
                            p.id.0, p.acked_writes, p.applied_writes
                        ),
                    );
                }
            }
        }

        // 5. Business recovery from the drained backup replicas.
        let outcome = rig.recover_from_backup();
        if let Err(e) = &outcome.sales {
            self.violate(now, "recovery-failed", format!("sales: {e:?}"));
        }
        if let Err(e) = &outcome.stock {
            self.violate(now, "recovery-failed", format!("stock: {e:?}"));
        }
        if let Some(inv) = &outcome.invariant {
            if !inv.consistent() {
                self.violate(now, "cross-db", format!("{inv:?}"));
            }
        }
        if let Some(orders) = &outcome.orders {
            if orders.lost != 0 {
                self.violate(
                    now,
                    "orders-lost-after-drain",
                    format!("{} of {} committed orders missing", orders.lost, orders.committed),
                );
            }
        }

        // 6. Crash consistency of every snapshot group taken mid-fault.
        let snapshots = std::mem::take(&mut self.snapshots);
        for (taken_at, snaps) in &snapshots {
            self.audit_snapshot_group(rig, *taken_at, snaps);
        }

        // 7. Convergence (supervised trials): every group still owning
        // pairs is back to PAIR, or explicitly circuit-breaker parked.
        // Fold the supervisor's recovery work into the report.
        let supervisor = st.supervisor().map(|sv| {
            let stats = sv.stats();
            let mut summary = SupervisorSummary {
                groups_total: 0,
                groups_pair: 0,
                groups_parked: 0,
                probes: stats.probes,
                attempts: stats.attempts,
                delta_resyncs: stats.delta_resyncs,
                full_resyncs: stats.full_resyncs,
                pump_kicks: stats.pump_kicks,
                heals: stats.heals,
                failovers: stats.failovers,
                failbacks: stats.failbacks,
                tth_max_us: stats.time_to_heal_max.as_micros(),
            };
            for &gid in &groups {
                let g = st.fabric.group(gid);
                if g.pairs.is_empty() {
                    // A failed-over group hands its pairs to the reverse
                    // group; the husk has nothing left to converge.
                    continue;
                }
                summary.groups_total += 1;
                if g.state == GroupState::Active {
                    summary.groups_pair += 1;
                } else if sv.is_parked(gid) {
                    summary.groups_parked += 1;
                }
            }
            summary
        });
        if self.expect_convergence {
            let sv = st.supervisor().expect("convergence demands a supervisor");
            for &gid in &groups {
                let g = st.fabric.group(gid);
                if g.pairs.is_empty() || g.state == GroupState::Active || sv.is_parked(gid) {
                    continue;
                }
                self.violate(
                    now,
                    "unconverged-group",
                    format!(
                        "group g{} ended {:?} (supervisor stage {:?})",
                        gid.0,
                        g.state,
                        sv.stage(gid)
                    ),
                );
            }
        }

        ChaosReport {
            mode: rig.config.mode.label().to_string(),
            seed,
            kinds,
            events,
            audits: self.audits,
            committed_orders: rig.committed_orders(),
            history: self.history,
            supervisor,
            alerts: self.alerts.take(),
            violations: self.violations,
        }
    }

    /// Recover both databases from a 4-volume snapshot group and check the
    /// cross-database invariant (the snapshot must be crash-consistent).
    fn audit_snapshot_group(&mut self, rig: &TwoSiteRig, taken_at: SimTime, snaps: &[SnapshotId]) {
        let now = rig.sim.now();
        if snaps.len() != 4 {
            self.violate(
                now,
                "snapshot-group-short",
                format!("snapshot group at {taken_at} has {} members", snaps.len()),
            );
            return;
        }
        let arr = rig.world.st.array(rig.backup);
        let sales = MiniDb::recover(
            "sales-chaos-snap",
            &SnapshotView::new(arr, snaps[0]),
            &SnapshotView::new(arr, snaps[1]),
            rig.config.db.clone(),
        );
        let stock = MiniDb::recover(
            "stock-chaos-snap",
            &SnapshotView::new(arr, snaps[2]),
            &SnapshotView::new(arr, snaps[3]),
            rig.config.db.clone(),
        );
        match (sales, stock) {
            (Ok((s, _)), Ok((t, _))) => {
                let inv = tsuru_ecom::check_cross_db(&s, &t, rig.config.workload.initial_stock);
                if !inv.consistent() {
                    self.violate(
                        now,
                        "snapshot-cross-db",
                        format!("snapshot group at {taken_at}: {inv:?}"),
                    );
                }
            }
            (sales, stock) => {
                for (name, r) in [("sales", sales), ("stock", stock)] {
                    if let Err(e) = r {
                        self.violate(
                            now,
                            "snapshot-recovery-failed",
                            format!("snapshot group at {taken_at}, {name}: {e:?}"),
                        );
                    }
                }
            }
        }
    }
}
