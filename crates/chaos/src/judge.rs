//! The client-visible judge: observe images as a client would, then
//! run the [`tsuru_history`] checker suite over the recorded history.
//!
//! The auditor (`audit.rs`) checks the system from the *inside* —
//! journals, ack logs, byte-level prefix cuts. The judge checks it
//! from the *outside*: only what a client could actually read. Mid-run
//! it plays the paper's long analytics scan (recover the backup image,
//! read it, record the observation as [`Site::Backup`]); at quiesce it
//! reads the final primary state and the fully drained backup image
//! ([`Site::Primary`] / [`Site::BackupFinal`]) and hands the whole
//! history to [`check_history`]. Every anomaly becomes a chaos
//! violation carrying the offending op subsequence.

use tsuru_core::TwoSiteRig;
use tsuru_ecom::scan::{record_bank_scan, record_list_scan, record_shop_scan};
use tsuru_ecom::WorkloadKind;
use tsuru_history::{check_history, process, CheckConfig, OpData, Site, Verdict};
use tsuru_minidb::MiniDb;

/// Record one image observation appropriate to the workload.
fn record_image(
    rig: &TwoSiteRig,
    kind: WorkloadKind,
    proc_id: u32,
    site: Site,
    sales: &MiniDb,
    stock: &MiniDb,
) {
    let hist = &rig.world.st.history;
    let now = rig.sim.now();
    match kind {
        WorkloadKind::Ecom => record_shop_scan(
            hist,
            proc_id,
            now,
            site,
            sales,
            stock,
            rig.config.workload.initial_stock,
        ),
        WorkloadKind::Bank => record_bank_scan(hist, proc_id, now, site, stock),
        WorkloadKind::AppendList => record_list_scan(hist, proc_id, now, site, sales),
    }
}

/// Recover the backup image at the current instant and record what a
/// client reading it would see.
///
/// Deterministically skipped while the backup array is failed (a real
/// reader's mount would error — no observation happens). When the
/// array is healthy but either database fails to crash-recover from
/// the image, the observation is recorded as a [`Phase::Fail`]: the
/// reader definitively saw an unusable backup, which the image checker
/// flags as the strongest client-visible collapse.
///
/// [`Phase::Fail`]: tsuru_history::Phase::Fail
pub(crate) fn scan_backup(rig: &TwoSiteRig, kind: WorkloadKind, proc_id: u32, site: Site) {
    if !rig.world.st.history.is_enabled() {
        return;
    }
    if rig.world.st.array(rig.backup).is_failed() {
        return;
    }
    let outcome = rig.recover_from_backup();
    if let (Ok((sales, _)), Ok((stock, _))) = (&outcome.sales, &outcome.stock) {
        record_image(rig, kind, proc_id, site, sales, stock);
    } else {
        let hist = &rig.world.st.history;
        let now = rig.sim.now();
        let data = match kind {
            WorkloadKind::Ecom => OpData::ReadShop { site },
            WorkloadKind::Bank => OpData::ReadBalances { site },
            WorkloadKind::AppendList => OpData::ReadList { key: 0, site },
        };
        let op = hist.invoke(proc_id, now, data);
        hist.fail(proc_id, op, now, OpData::None);
    }
}

/// Final judgement at quiesce: read the live primary state and the
/// drained backup image as [`process::JUDGE`], then run every
/// applicable checker over the full history.
pub(crate) fn judge(rig: &TwoSiteRig, kind: WorkloadKind) -> Verdict {
    let app = rig.world.app();
    record_image(
        rig,
        kind,
        process::JUDGE,
        Site::Primary,
        &app.sales.db,
        &app.stock.db,
    );
    scan_backup(rig, kind, process::JUDGE, Site::BackupFinal);
    // The bank invariant total is knowable from the outside: the seeded
    // accounts are `items` rows of `initial_stock` each.
    let expected_total = matches!(kind, WorkloadKind::Bank)
        .then(|| rig.config.workload.items as u64 * rig.config.workload.initial_stock);
    check_history(&rig.world.st.history.history(), &CheckConfig { expected_total })
}
