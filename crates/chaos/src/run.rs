//! The chaos harness mode: seeded trials, CG-vs-naive pairing, failing
//! plan shrinking, and the rendering used by `repro chaos`.

use tsuru_core::{render_table, BackupMode, RigConfig, TrialHarness, TrialSet, TwoSiteRig};
use tsuru_ecom::driver::start_workload_clients;
use tsuru_ecom::{AppendState, BankState, WorkloadKind};
use tsuru_history::Site;
use tsuru_sim::{DetRng, SimDuration, SimTime};
use tsuru_storage::{AlertProfile, IncidentLog, SupervisorPolicy};

use crate::alert::match_incidents;
use crate::audit::{Auditor, ChaosReport, HistorySummary};
use crate::inject::Injector;
use crate::judge;
use crate::plan::{FaultKind, FaultPlan};

/// Shape of one chaos trial.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Injection/workload horizon (the plan's last heal must precede it).
    pub horizon: SimTime,
    /// Mid-run audit sample interval.
    pub sample_every: SimDuration,
    /// Client think time (denser than the default so fault windows see
    /// real write pressure).
    pub think_time: SimDuration,
    /// Enable the causal tracer on the trial rig. Off by default so the
    /// standard sweep stays byte-identical to untraced runs; traced
    /// violations carry their trailing trace window.
    pub trace: bool,
    /// Which closed-loop workload drives the trial.
    pub workload: WorkloadKind,
    /// Record a client-visible op history and judge it with the
    /// [`tsuru_history`] checker suite at quiesce. Off by default for
    /// the same byte-identity reason as `trace`.
    pub history: bool,
    /// Mid-run backup-image scan interval (history trials only): how
    /// often the judge recovers the backup image and records what a
    /// client reading it would see. Defaults to the audit sample
    /// cadence so scans land inside fault windows, where the naive
    /// configuration's torn images are actually observable.
    pub scan_every: SimDuration,
    /// Arm the replication supervisor on the trial rig. Off by default
    /// so the standard sweep stays byte-identical to unsupervised runs.
    /// When on, injector heals repair only the physical fault and the
    /// supervisor owns logical recovery; the auditor additionally
    /// demands convergence (every paired group back to PAIR, or parked
    /// by the circuit breaker) at quiesce.
    pub supervisor: bool,
    /// Recovery policy for the armed supervisor (ignored unless
    /// `supervisor` is set).
    pub supervisor_policy: SupervisorPolicy,
    /// Extra sim-time past the horizon during which supervisor probes
    /// stay armed, bounding time-to-convergence after the last heal.
    pub converge_grace: SimDuration,
    /// Arm the SLO alert engine on the trial rig with this rule profile.
    /// Off by default for the same byte-identity reason as `trace` (and
    /// arming implies tracing, so incidents can carry the fault windows
    /// the ground-truth matcher scores them against). The engine stays
    /// armed through the convergence grace window, like the supervisor.
    pub alerts: Option<AlertProfile>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            horizon: SimTime::from_millis(150),
            sample_every: SimDuration::from_millis(5),
            think_time: SimDuration::from_millis(2),
            trace: false,
            workload: WorkloadKind::Ecom,
            history: false,
            scan_every: SimDuration::from_millis(5),
            supervisor: false,
            supervisor_policy: SupervisorPolicy::default(),
            converge_grace: SimDuration::from_millis(100),
            alerts: None,
        }
    }
}

/// Run one seeded chaos trial: replay `plan` against a fresh rig in
/// `mode`, auditing at every fault start, every heal, and on the sample
/// grid, then quiesce (stop the workload, run to empty) and apply the
/// final invariant set.
pub fn run_chaos_trial(
    seed: u64,
    mode: BackupMode,
    plan: &FaultPlan,
    cfg: &ChaosConfig,
) -> ChaosReport {
    run_trial_inner(seed, mode, plan, cfg).0
}

/// Exported trace artifacts for one traced chaos trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceExport {
    /// One JSON object per trace record.
    pub jsonl: String,
    /// Chrome `trace_event` JSON (load in `chrome://tracing` or Perfetto).
    pub chrome: String,
}

/// [`run_chaos_trial`] with the tracer forced on: returns the report
/// (violations carry trace windows) plus the full trace exports. Output
/// is byte-identical for identical inputs at any harness thread count.
pub fn run_chaos_trial_traced(
    seed: u64,
    mode: BackupMode,
    plan: &FaultPlan,
    cfg: &ChaosConfig,
) -> (ChaosReport, TraceExport) {
    let mut cfg = cfg.clone();
    cfg.trace = true;
    let (report, tracer, _, _) = run_trial_inner(seed, mode, plan, &cfg);
    let export = TraceExport {
        jsonl: tracer.export_jsonl(),
        chrome: tracer.export_chrome(),
    };
    (report, export)
}

/// [`run_chaos_trial`] with history recording forced on: returns the
/// report (the judge's anomalies appear as `client-history` violations)
/// plus the full history export as JSONL. Output is byte-identical for
/// identical inputs at any harness thread count.
pub fn run_chaos_trial_history(
    seed: u64,
    mode: BackupMode,
    plan: &FaultPlan,
    cfg: &ChaosConfig,
) -> (ChaosReport, String) {
    let mut cfg = cfg.clone();
    cfg.history = true;
    let (report, _, history, _) = run_trial_inner(seed, mode, plan, &cfg);
    let jsonl = history.export_jsonl();
    (report, jsonl)
}

/// [`run_chaos_trial`] with the SLO alert engine armed under `profile`
/// (tracing is implied so incidents observe fault windows): returns the
/// report (carrying the ground-truth-scored
/// [`AlertSummary`](crate::AlertSummary)) plus the incident log as
/// JSONL. Output is byte-identical for identical inputs at any harness
/// thread count.
pub fn run_chaos_trial_alerts(
    seed: u64,
    mode: BackupMode,
    plan: &FaultPlan,
    cfg: &ChaosConfig,
    profile: AlertProfile,
) -> (ChaosReport, String) {
    let mut cfg = cfg.clone();
    cfg.alerts = Some(profile);
    let (report, _, _, log) = run_trial_inner(seed, mode, plan, &cfg);
    let jsonl = log.expect("alert trial carries an incident log").export_jsonl();
    (report, jsonl)
}

fn run_trial_inner(
    seed: u64,
    mode: BackupMode,
    plan: &FaultPlan,
    cfg: &ChaosConfig,
) -> (
    ChaosReport,
    tsuru_storage::Tracer,
    tsuru_history::Recorder,
    Option<IncidentLog>,
) {
    let mut rig_cfg = RigConfig {
        seed,
        mode,
        ..RigConfig::default()
    };
    rig_cfg.workload.think_time_mean = cfg.think_time;
    // Alert trials imply tracing: incidents carry the open fault windows
    // the ground-truth matcher scores them against.
    rig_cfg.trace = cfg.trace || cfg.alerts.is_some();
    rig_cfg.history = cfg.history;
    let mut rig = TwoSiteRig::new(rig_cfg);
    match cfg.workload {
        WorkloadKind::Ecom => {}
        WorkloadKind::Bank => {
            rig.world.app_mut().bank = Some(BankState::new(DetRng::new(seed).derive(0xBA27)));
        }
        WorkloadKind::AppendList => {
            rig.world.app_mut().append = Some(AppendState::new(DetRng::new(seed).derive(0xA99E)));
        }
    }
    if cfg.supervisor {
        rig.enable_supervisor(
            cfg.supervisor_policy.clone(),
            plan.horizon + cfg.converge_grace,
        );
    }
    if let Some(profile) = &cfg.alerts {
        rig.enable_alerts(profile.clone(), plan.horizon + cfg.converge_grace);
    }
    let tracer = rig.world.st.tracer.clone();
    let history = rig.world.st.history.clone();
    let mut auditor = Auditor::new(&rig);
    if cfg.supervisor {
        auditor.expect_convergence();
    }
    let mut injector = Injector::new(&rig, cfg.supervisor);

    // Timeline: fault starts, heals, audit samples and judge scans,
    // totally ordered by (time, start-before-heal-before-sample-before-
    // scan, event index) so replays are exact. Actions apply
    // synchronously after the kernel has run every event up to (and
    // including) their instant.
    const START: u8 = 0;
    const HEAL: u8 = 1;
    const SAMPLE: u8 = 2;
    const SCAN: u8 = 3;
    let mut steps: Vec<(SimTime, u8, usize)> = Vec::new();
    for (i, ev) in plan.events.iter().enumerate() {
        steps.push((ev.at, START, i));
        if ev.kind != FaultKind::SnapshotDuringFault {
            steps.push((ev.heal_at(), HEAL, i));
        }
    }
    let mut t = SimTime::ZERO + cfg.sample_every;
    while t < plan.horizon {
        steps.push((t, SAMPLE, 0));
        t = t + cfg.sample_every;
    }
    if cfg.history {
        let mut t = SimTime::ZERO + cfg.scan_every;
        while t < plan.horizon {
            steps.push((t, SCAN, 0));
            t = t + cfg.scan_every;
        }
    }
    steps.sort_unstable();

    start_workload_clients(&mut rig.world, &mut rig.sim);
    for (at, action, idx) in steps {
        rig.sim.run_until(&mut rig.world, at);
        match action {
            START => injector.start(&mut rig, &mut auditor, &plan.events[idx]),
            HEAL => injector.heal(&mut rig, &mut auditor, &plan.events[idx]),
            SCAN => judge::scan_backup(
                &rig,
                cfg.workload,
                tsuru_history::process::BACKUP_READER,
                Site::Backup,
            ),
            _ => {}
        }
        if action != SCAN {
            auditor.audit_point(&rig);
        }
    }

    // Quiesce: run out the horizon, stop the workload, drain everything.
    rig.sim.run_until(&mut rig.world, plan.horizon);
    rig.world.app_mut().stopped = true;
    rig.sim.run(&mut rig.world);

    // Judge the client-visible history: final primary and drained-backup
    // observations, then every applicable checker. Anomalies become
    // violations carrying the offending op subsequence (and, on traced
    // trials, the trailing trace window).
    if cfg.history {
        let verdict = judge::judge(&rig, cfg.workload);
        let now = rig.sim.now();
        let mut anomalies = 0u64;
        for report in &verdict.reports {
            for a in &report.anomalies {
                anomalies += 1;
                auditor.violate(
                    now,
                    "client-history",
                    format!("{}: {}", report.checker, a.render()),
                );
            }
        }
        auditor.set_history(HistorySummary {
            records: verdict.records,
            ops_checked: verdict.ops_checked(),
            anomalies,
        });
    }

    // Harvest the alert engine: score its incident log against the plan
    // (the injected faults are the ground truth) and fold the verdict
    // into the report.
    let incident_log = rig.world.st.take_alerts().map(|engine| {
        let profile = engine.profile().name;
        let evals = engine.evals();
        let log = engine.into_log();
        auditor.set_alerts(match_incidents(plan, &log, profile, evals));
        log
    });

    let kinds = plan.kinds().iter().map(|s| s.to_string()).collect();
    (
        auditor.finish(&rig, seed, kinds, plan.events.len()),
        tracer,
        history,
        incident_log,
    )
}

/// One trial's paired verdict: the same plan against the paper's design
/// (consistency group) and the naive per-volume ablation.
#[derive(Debug, Clone)]
pub struct ChaosPair {
    /// Consistency-group report (expected clean).
    pub cg: ChaosReport,
    /// Per-volume report (expected to violate under fault).
    pub naive: ChaosReport,
}

/// The chaos sweep: `trials` seeded random plans, each replayed against
/// both modes. Rows are byte-stable across harness thread counts.
pub fn chaos_sweep(
    harness: &TrialHarness,
    base_seed: u64,
    trials: usize,
    cfg: &ChaosConfig,
) -> TrialSet<ChaosPair> {
    harness.run(base_seed, trials, |ctx| {
        let plan = FaultPlan::random(ctx.seed, cfg.horizon);
        ChaosPair {
            cg: run_chaos_trial(ctx.seed, BackupMode::AdcConsistencyGroup, &plan, cfg),
            naive: run_chaos_trial(ctx.seed, BackupMode::AdcPerVolume, &plan, cfg),
        }
    })
}

/// One workload's paired verdict within a history-sweep trial.
#[derive(Debug, Clone)]
pub struct HistoryRow {
    /// Which workload drove the trial.
    pub workload: WorkloadKind,
    /// Consistency-group report (expected clean).
    pub cg: ChaosReport,
    /// Per-volume report (expected to show client-visible anomalies
    /// under fault).
    pub naive: ChaosReport,
    /// Full consistency-group history as JSONL (byte-identical at any
    /// harness thread count).
    pub cg_export: String,
    /// Full per-volume history as JSONL.
    pub naive_export: String,
}

/// One history-sweep trial: every workload replayed against the same
/// fault plan in both modes, each judged by the client-visible checker.
#[derive(Debug, Clone)]
pub struct HistoryTrial {
    /// One row per workload, in [`WorkloadKind::ALL`] order.
    pub rows: Vec<HistoryRow>,
}

/// The workload-diversity sweep behind `repro history`: `trials` seeded
/// fault plans, each replayed under every workload in both modes with
/// history recording and judging on. Rows are byte-stable across
/// harness thread counts.
pub fn history_sweep(
    harness: &TrialHarness,
    base_seed: u64,
    trials: usize,
    cfg: &ChaosConfig,
) -> TrialSet<HistoryTrial> {
    harness.run(base_seed, trials, |ctx| {
        let plan = FaultPlan::random(ctx.seed, cfg.horizon);
        let rows = WorkloadKind::ALL
            .iter()
            .map(|&workload| {
                let mut c = cfg.clone();
                c.workload = workload;
                let (cg, cg_export) =
                    run_chaos_trial_history(ctx.seed, BackupMode::AdcConsistencyGroup, &plan, &c);
                let (naive, naive_export) =
                    run_chaos_trial_history(ctx.seed, BackupMode::AdcPerVolume, &plan, &c);
                HistoryRow {
                    workload,
                    cg,
                    naive,
                    cg_export,
                    naive_export,
                }
            })
            .collect();
        HistoryTrial { rows }
    })
}

/// Render the history sweep (one row per trial × workload) for
/// `repro history`.
pub fn render_history_table(trials: &[HistoryTrial]) -> String {
    let verdict = |r: &ChaosReport| {
        let h = r.history.expect("history trial carries a summary");
        if h.anomalies == 0 { "clean".to_string() } else { format!("{}-anomalies", h.anomalies) }
    };
    render_table(
        &[
            "trial",
            "seed",
            "workload",
            "ops_checked",
            "cg_verdict",
            "naive_verdict",
            "cg_violations",
            "naive_violations",
        ],
        &trials
            .iter()
            .enumerate()
            .flat_map(|(i, t)| {
                t.rows.iter().map(move |row| {
                    vec![
                        i.to_string(),
                        format!("{:#x}", row.cg.seed),
                        row.workload.label().to_string(),
                        row.cg
                            .history
                            .expect("history trial carries a summary")
                            .ops_checked
                            .to_string(),
                        verdict(&row.cg),
                        verdict(&row.naive),
                        row.cg.violations.len().to_string(),
                        row.naive.violations.len().to_string(),
                    ]
                })
            })
            .collect::<Vec<_>>(),
    )
}

/// Greedy event-removal shrinking: repeatedly drop any event whose
/// removal keeps the plan failing (auditor reports ≥1 violation) until no
/// single removal preserves the failure. Deterministic: same seed + plan
/// ⇒ same shrunk plan. Returns the input unchanged if it never failed.
pub fn shrink_plan(
    seed: u64,
    mode: BackupMode,
    plan: &FaultPlan,
    cfg: &ChaosConfig,
) -> FaultPlan {
    let fails = |p: &FaultPlan| !run_chaos_trial(seed, mode, p, cfg).is_clean();
    let mut cur = plan.clone();
    if !fails(&cur) {
        return cur;
    }
    loop {
        let mut shrunk = false;
        for i in 0..cur.events.len() {
            let mut cand = cur.clone();
            cand.events.remove(i);
            if fails(&cand) {
                cur = cand;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

/// Render the sweep table (one row per trial) for `repro chaos`.
pub fn render_chaos_table(rows: &[ChaosPair]) -> String {
    render_table(
        &[
            "trial",
            "seed",
            "events",
            "kinds",
            "audits",
            "cg_violations",
            "naive_violations",
            "cg_orders",
        ],
        &rows
            .iter()
            .enumerate()
            .map(|(i, p)| {
                vec![
                    i.to_string(),
                    format!("{:#x}", p.cg.seed),
                    p.cg.events.to_string(),
                    p.cg.kinds.len().to_string(),
                    p.cg.audits.to_string(),
                    p.cg.violations.len().to_string(),
                    p.naive.violations.len().to_string(),
                    p.cg.committed_orders.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}
