//! The chaos harness mode: seeded trials, CG-vs-naive pairing, failing
//! plan shrinking, and the rendering used by `repro chaos`.

use tsuru_core::{render_table, BackupMode, RigConfig, TrialHarness, TrialSet, TwoSiteRig};
use tsuru_ecom::driver::start_clients;
use tsuru_sim::{SimDuration, SimTime};

use crate::audit::{Auditor, ChaosReport};
use crate::inject::Injector;
use crate::plan::{FaultKind, FaultPlan};

/// Shape of one chaos trial.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Injection/workload horizon (the plan's last heal must precede it).
    pub horizon: SimTime,
    /// Mid-run audit sample interval.
    pub sample_every: SimDuration,
    /// Client think time (denser than the default so fault windows see
    /// real write pressure).
    pub think_time: SimDuration,
    /// Enable the causal tracer on the trial rig. Off by default so the
    /// standard sweep stays byte-identical to untraced runs; traced
    /// violations carry their trailing trace window.
    pub trace: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            horizon: SimTime::from_millis(150),
            sample_every: SimDuration::from_millis(5),
            think_time: SimDuration::from_millis(2),
            trace: false,
        }
    }
}

/// Run one seeded chaos trial: replay `plan` against a fresh rig in
/// `mode`, auditing at every fault start, every heal, and on the sample
/// grid, then quiesce (stop the workload, run to empty) and apply the
/// final invariant set.
pub fn run_chaos_trial(
    seed: u64,
    mode: BackupMode,
    plan: &FaultPlan,
    cfg: &ChaosConfig,
) -> ChaosReport {
    run_trial_inner(seed, mode, plan, cfg).0
}

/// Exported trace artifacts for one traced chaos trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceExport {
    /// One JSON object per trace record.
    pub jsonl: String,
    /// Chrome `trace_event` JSON (load in `chrome://tracing` or Perfetto).
    pub chrome: String,
}

/// [`run_chaos_trial`] with the tracer forced on: returns the report
/// (violations carry trace windows) plus the full trace exports. Output
/// is byte-identical for identical inputs at any harness thread count.
pub fn run_chaos_trial_traced(
    seed: u64,
    mode: BackupMode,
    plan: &FaultPlan,
    cfg: &ChaosConfig,
) -> (ChaosReport, TraceExport) {
    let mut cfg = cfg.clone();
    cfg.trace = true;
    let (report, tracer) = run_trial_inner(seed, mode, plan, &cfg);
    let export = TraceExport {
        jsonl: tracer.export_jsonl(),
        chrome: tracer.export_chrome(),
    };
    (report, export)
}

fn run_trial_inner(
    seed: u64,
    mode: BackupMode,
    plan: &FaultPlan,
    cfg: &ChaosConfig,
) -> (ChaosReport, tsuru_storage::Tracer) {
    let mut rig_cfg = RigConfig {
        seed,
        mode,
        ..RigConfig::default()
    };
    rig_cfg.workload.think_time_mean = cfg.think_time;
    rig_cfg.trace = cfg.trace;
    let mut rig = TwoSiteRig::new(rig_cfg);
    let tracer = rig.world.st.tracer.clone();
    let mut auditor = Auditor::new(&rig);
    let mut injector = Injector::new(&rig);

    // Timeline: fault starts, heals and audit samples, totally ordered by
    // (time, start-before-heal-before-sample, event index) so replays are
    // exact. Actions apply synchronously after the kernel has run every
    // event up to (and including) their instant.
    const START: u8 = 0;
    const HEAL: u8 = 1;
    const SAMPLE: u8 = 2;
    let mut steps: Vec<(SimTime, u8, usize)> = Vec::new();
    for (i, ev) in plan.events.iter().enumerate() {
        steps.push((ev.at, START, i));
        if ev.kind != FaultKind::SnapshotDuringFault {
            steps.push((ev.heal_at(), HEAL, i));
        }
    }
    let mut t = SimTime::ZERO + cfg.sample_every;
    while t < plan.horizon {
        steps.push((t, SAMPLE, 0));
        t = t + cfg.sample_every;
    }
    steps.sort_unstable();

    start_clients(&mut rig.world, &mut rig.sim);
    for (at, action, idx) in steps {
        rig.sim.run_until(&mut rig.world, at);
        match action {
            START => injector.start(&mut rig, &mut auditor, &plan.events[idx]),
            HEAL => injector.heal(&mut rig, &mut auditor, &plan.events[idx]),
            _ => {}
        }
        auditor.audit_point(&rig);
    }

    // Quiesce: run out the horizon, stop the workload, drain everything.
    rig.sim.run_until(&mut rig.world, plan.horizon);
    rig.world.app_mut().stopped = true;
    rig.sim.run(&mut rig.world);

    let kinds = plan.kinds().iter().map(|s| s.to_string()).collect();
    (auditor.finish(&rig, seed, kinds, plan.events.len()), tracer)
}

/// One trial's paired verdict: the same plan against the paper's design
/// (consistency group) and the naive per-volume ablation.
#[derive(Debug, Clone)]
pub struct ChaosPair {
    /// Consistency-group report (expected clean).
    pub cg: ChaosReport,
    /// Per-volume report (expected to violate under fault).
    pub naive: ChaosReport,
}

/// The chaos sweep: `trials` seeded random plans, each replayed against
/// both modes. Rows are byte-stable across harness thread counts.
pub fn chaos_sweep(
    harness: &TrialHarness,
    base_seed: u64,
    trials: usize,
    cfg: &ChaosConfig,
) -> TrialSet<ChaosPair> {
    harness.run(base_seed, trials, |ctx| {
        let plan = FaultPlan::random(ctx.seed, cfg.horizon);
        ChaosPair {
            cg: run_chaos_trial(ctx.seed, BackupMode::AdcConsistencyGroup, &plan, cfg),
            naive: run_chaos_trial(ctx.seed, BackupMode::AdcPerVolume, &plan, cfg),
        }
    })
}

/// Greedy event-removal shrinking: repeatedly drop any event whose
/// removal keeps the plan failing (auditor reports ≥1 violation) until no
/// single removal preserves the failure. Deterministic: same seed + plan
/// ⇒ same shrunk plan. Returns the input unchanged if it never failed.
pub fn shrink_plan(
    seed: u64,
    mode: BackupMode,
    plan: &FaultPlan,
    cfg: &ChaosConfig,
) -> FaultPlan {
    let fails = |p: &FaultPlan| !run_chaos_trial(seed, mode, p, cfg).is_clean();
    let mut cur = plan.clone();
    if !fails(&cur) {
        return cur;
    }
    loop {
        let mut shrunk = false;
        for i in 0..cur.events.len() {
            let mut cand = cur.clone();
            cand.events.remove(i);
            if fails(&cand) {
                cur = cand;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

/// Render the sweep table (one row per trial) for `repro chaos`.
pub fn render_chaos_table(rows: &[ChaosPair]) -> String {
    render_table(
        &[
            "trial",
            "seed",
            "events",
            "kinds",
            "audits",
            "cg_violations",
            "naive_violations",
            "cg_orders",
        ],
        &rows
            .iter()
            .enumerate()
            .map(|(i, p)| {
                vec![
                    i.to_string(),
                    format!("{:#x}", p.cg.seed),
                    p.cg.events.to_string(),
                    p.cg.kinds.len().to_string(),
                    p.cg.audits.to_string(),
                    p.cg.violations.len().to_string(),
                    p.naive.violations.len().to_string(),
                    p.cg.committed_orders.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}
