//! E10 — chaos-verified convergence: fault plans × recovery policies.
//!
//! Every trial replays one seeded core-quartet plan (link partition,
//! jitter spike, backup-array crash, journal squeeze — fixed kind set so
//! only the recovery strategy varies) against the consistency-group rig
//! with the replication supervisor armed under each recovery policy. The
//! auditor demands convergence: after the last heal plus the grace
//! window, every paired group must be back to PAIR or explicitly parked
//! by the circuit breaker, with zero violations otherwise.
//!
//! Rows are byte-stable across harness thread counts, like every other
//! sweep in this crate.

use tsuru_core::{render_table, BackupMode, TrialHarness, TrialSet};
use tsuru_sim::SimDuration;
use tsuru_storage::SupervisorPolicy;

use crate::audit::ChaosReport;
use crate::plan::FaultPlan;
use crate::run::{run_chaos_trial, ChaosConfig};

/// The recovery-policy axis of the E10 sweep.
///
/// - `default` — the shipped [`SupervisorPolicy`] defaults;
/// - `eager` — short backoffs, tiny degradation threshold: converges fast
///   but degrades to full copies early and burns attempts;
/// - `patient` — long backoffs, huge degradation threshold: almost always
///   delta-resyncs, at the cost of time-to-heal;
/// - `fragile` — a single attempt before the circuit breaker parks, to
///   exercise the parked-with-alarm escape hatch.
pub fn recovery_policies() -> Vec<(&'static str, SupervisorPolicy)> {
    let default = SupervisorPolicy::default();
    let eager = SupervisorPolicy {
        backoff_base: SimDuration::from_micros(500),
        backoff_max: SimDuration::from_millis(2),
        stage_timeout: SimDuration::from_millis(3),
        full_resync_debt_bytes: 64 * 1024,
        max_attempts: 6,
        ..SupervisorPolicy::default()
    };
    let patient = SupervisorPolicy {
        backoff_base: SimDuration::from_millis(2),
        backoff_max: SimDuration::from_millis(16),
        full_resync_debt_bytes: 16 << 20,
        max_attempts: 6,
        ..SupervisorPolicy::default()
    };
    let fragile = SupervisorPolicy {
        max_attempts: 1,
        ..SupervisorPolicy::default()
    };
    vec![
        ("default", default),
        ("eager", eager),
        ("patient", patient),
        ("fragile", fragile),
    ]
}

/// One (plan, policy) verdict within a convergence trial.
#[derive(Debug, Clone)]
pub struct ConvergeRow {
    /// Which recovery policy supervised the trial.
    pub policy: &'static str,
    /// The supervised consistency-group report (carries the
    /// [`SupervisorSummary`](crate::SupervisorSummary)).
    pub report: ChaosReport,
}

/// One convergence trial: the same seeded core-quartet plan replayed
/// under every recovery policy.
#[derive(Debug, Clone)]
pub struct ConvergeTrial {
    /// The replayed plan (for rendering/repro).
    pub plan: FaultPlan,
    /// One row per policy, in [`recovery_policies`] order.
    pub rows: Vec<ConvergeRow>,
}

/// The E10 sweep: `trials` seeded core-quartet plans, each replayed under
/// every recovery policy with the supervisor armed. Rows are byte-stable
/// across harness thread counts.
pub fn convergence_sweep(
    harness: &TrialHarness,
    base_seed: u64,
    trials: usize,
    cfg: &ChaosConfig,
) -> TrialSet<ConvergeTrial> {
    harness.run(base_seed, trials, |ctx| {
        let plan = FaultPlan::core_quartet(ctx.seed, cfg.horizon);
        let rows = recovery_policies()
            .into_iter()
            .map(|(policy, sp)| {
                let mut c = cfg.clone();
                c.supervisor = true;
                c.supervisor_policy = sp;
                ConvergeRow {
                    policy,
                    report: run_chaos_trial(ctx.seed, BackupMode::AdcConsistencyGroup, &plan, &c),
                }
            })
            .collect();
        ConvergeTrial { plan, rows }
    })
}

/// Render the convergence sweep (one row per trial × policy) for
/// `repro e10`.
pub fn render_convergence_table(trials: &[ConvergeTrial]) -> String {
    render_table(
        &[
            "trial",
            "seed",
            "policy",
            "pair",
            "parked",
            "attempts",
            "delta",
            "full",
            "kicks",
            "heals",
            "tth_max_us",
            "violations",
        ],
        &trials
            .iter()
            .enumerate()
            .flat_map(|(i, t)| {
                t.rows.iter().map(move |row| {
                    let s = row
                        .report
                        .supervisor
                        .expect("supervised trial carries a summary");
                    vec![
                        i.to_string(),
                        format!("{:#x}", row.report.seed),
                        row.policy.to_string(),
                        format!("{}/{}", s.groups_pair, s.groups_total),
                        s.groups_parked.to_string(),
                        s.attempts.to_string(),
                        s.delta_resyncs.to_string(),
                        s.full_resyncs.to_string(),
                        s.pump_kicks.to_string(),
                        s.heals.to_string(),
                        s.tth_max_us.to_string(),
                        row.report.violations.len().to_string(),
                    ]
                })
            })
            .collect::<Vec<_>>(),
    )
}
