//! The injector: applies fault starts and heals to a live rig through
//! the public fault seams — `simnet` outages and shaping, `storage`
//! array failure, fabric suspend/resync, and the `heal_link` pump kick.
//!
//! Semantics under overlap (the generator schedules at most one event per
//! kind, but windows freely overlap):
//!
//! - link faults all target the data link; a heal that brings the link up
//!   early simply shortens any other link fault still in its window
//!   ("last action wins" — deterministic either way);
//! - array-crash heals always recover-then-resync: in-flight batches are
//!   dropped by the receive path while an array is failed, so `set_up`
//!   alone would leave permanent sequence gaps;
//! - a main-array heal additionally restarts the application: both
//!   databases crash-recover from the primary images and the client
//!   workload resumes (a database continuing from in-memory state would
//!   leave a torn WAL tail on disk forever, poisoning later backups).

use std::collections::BTreeMap;

use tsuru_core::TwoSiteRig;
use tsuru_ecom::driver::start_workload_clients;
use tsuru_ecom::DbInstance;
use tsuru_minidb::MiniDb;
use tsuru_simnet::{LinkConfig, LinkId};
use tsuru_storage::engine::{heal_link, kick_all_pumps};
use tsuru_storage::{span_names, GroupId, SpanId, VolumeView};

use crate::audit::Auditor;
use crate::plan::{FaultEvent, FaultKind};

/// Journal capacity floor during a squeeze: small enough to stall a busy
/// group within a few pump intervals, large enough to admit single blocks.
const SQUEEZE_FLOOR_BYTES: u64 = 64 * 1024;

/// Pristine shapes captured at trial start, restored by heals.
pub(crate) struct Injector {
    data_link: LinkId,
    orig_link: LinkConfig,
    /// Original primary-journal capacity per *group* — not per journal id:
    /// a resync (operator or supervisor) replaces a group's journals, so a
    /// squeeze heal must resolve the group's *current* primary journal or
    /// it would restore an orphaned journal and leave the live one
    /// squeezed forever.
    orig_journal_caps: Vec<(GroupId, u64)>,
    /// With a supervisor armed on the rig, heals only repair the physical
    /// fault (array recovery, app restart); the logical recovery —
    /// suspend, resync, pump kicks — is the supervisor's job.
    supervised: bool,
    /// Open fault spans by kind (the generator schedules at most one event
    /// per kind). While open, the tracer stamps every record with the
    /// fault's span id, causally linking faults to write lifecycles.
    fault_spans: BTreeMap<crate::plan::FaultKind, SpanId>,
}

impl Injector {
    pub(crate) fn new(rig: &TwoSiteRig, supervised: bool) -> Self {
        let data_link = rig.world.st.fabric.group(rig.groups[0]).link;
        let orig_link = rig.world.st.net.link(data_link).config().clone();
        let orig_journal_caps = rig
            .groups
            .iter()
            .filter_map(|&g| {
                rig.world.st.fabric.group(g).primary_jnl.map(|j| {
                    (g, rig.world.st.fabric.journal(j).capacity_bytes())
                })
            })
            .collect();
        Injector {
            data_link,
            orig_link,
            orig_journal_caps,
            supervised,
            fault_spans: BTreeMap::new(),
        }
    }

    /// Apply a fault start at the current sim instant.
    pub(crate) fn start(&mut self, rig: &mut TwoSiteRig, auditor: &mut Auditor, ev: &FaultEvent) {
        let now = rig.sim.now();
        let tracer = rig.world.st.tracer.clone();
        let kind = ev.kind.label();
        if ev.kind == FaultKind::SnapshotDuringFault {
            // Instantaneous: no window, nothing to stamp.
            tracer.instant(span_names::FAULT, now, SpanId::NONE, || {
                vec![("kind", kind.into())]
            });
        } else {
            let span = tracer.span_start(span_names::FAULT, now, SpanId::NONE, || {
                vec![("kind", kind.into())]
            });
            tracer.push_fault(span);
            self.fault_spans.insert(ev.kind, span);
        }
        match ev.kind {
            FaultKind::LinkFlap => {
                rig.world
                    .st
                    .net
                    .link_mut(self.data_link)
                    .set_down(now, Some(ev.heal_at()));
            }
            FaultKind::LinkPartition => {
                rig.world.st.net.link_mut(self.data_link).set_down(now, None);
            }
            FaultKind::JitterSpike => {
                let l = rig.world.st.net.link_mut(self.data_link);
                l.set_jitter(tsuru_sim::SimDuration::from_millis(2));
                l.set_loss_probability(0.05);
            }
            FaultKind::PumpStall => {
                let bw = self.orig_link.bandwidth_bytes_per_sec / 50;
                rig.world.st.net.link_mut(self.data_link).set_bandwidth(bw.max(1));
            }
            FaultKind::BackupArrayCrash => {
                let backup = rig.backup;
                rig.world.st.fail_array(backup, now);
            }
            FaultKind::MainArrayCrash => {
                let main = rig.main;
                rig.world.st.fail_array(main, now);
            }
            FaultKind::JournalSqueeze => {
                for &(gid, _) in &self.orig_journal_caps {
                    if let Some(jid) = rig.world.st.fabric.group(gid).primary_jnl {
                        let j = rig.world.st.fabric.journal_mut(jid);
                        let cap = j.used_bytes().max(SQUEEZE_FLOOR_BYTES);
                        j.set_capacity_bytes(cap);
                    }
                }
            }
            FaultKind::OperatorRestart => {
                for &g in &rig.groups.clone() {
                    rig.world.st.suspend_group(g, now);
                }
            }
            FaultKind::SnapshotDuringFault => {
                // Deterministically skipped while the backup array is
                // failed (a real scheduler's snapshot request would error).
                if !rig.world.st.array(rig.backup).is_failed() {
                    let snaps = rig.snapshot_backup_group("chaos-snap");
                    auditor.record_snapshot_group(now, snaps);
                }
            }
        }
    }

    /// Apply the heal for `ev` at the current sim instant.
    pub(crate) fn heal(&mut self, rig: &mut TwoSiteRig, auditor: &mut Auditor, ev: &FaultEvent) {
        // Close the fault window first: repair work triggered by the heal
        // (pump kicks, resyncs) runs outside the fault's span.
        if let Some(span) = self.fault_spans.remove(&ev.kind) {
            let tracer = rig.world.st.tracer.clone();
            let kind = ev.kind.label();
            tracer.pop_fault(span);
            tracer.span_end(span_names::FAULT, span, rig.sim.now(), || {
                vec![("kind", kind.into())]
            });
        }
        match ev.kind {
            FaultKind::LinkFlap => {
                // The outage end was scheduled; senders retry on their own.
                // Kick anyway: a pump parked by an overlapping indefinite
                // fault must not rely on new appends to restart.
                kick_all_pumps(&mut rig.world, &mut rig.sim);
            }
            FaultKind::LinkPartition => {
                heal_link(&mut rig.world, &mut rig.sim, self.data_link);
            }
            FaultKind::JitterSpike => {
                let l = rig.world.st.net.link_mut(self.data_link);
                l.set_jitter(self.orig_link.jitter);
                l.set_loss_probability(self.orig_link.loss_probability);
            }
            FaultKind::PumpStall => {
                rig.world
                    .st
                    .net
                    .link_mut(self.data_link)
                    .set_bandwidth(self.orig_link.bandwidth_bytes_per_sec);
            }
            FaultKind::BackupArrayCrash => {
                let backup = rig.backup;
                rig.world.st.array_mut(backup).recover();
                // Supervised: by now the supervisor has suspended the
                // group (dead secondary), so recovery is its job — the
                // next probe sees an unblocked suspension and resyncs.
                if !self.supervised {
                    self.resync_all(rig);
                }
            }
            FaultKind::MainArrayCrash => {
                let main = rig.main;
                rig.world.st.array_mut(main).recover();
                self.restart_app(rig, auditor);
                if self.supervised {
                    // Array firmware restarts its own pumps on recovery
                    // (same semantic as `heal_link`); journal entries from
                    // before the crash are still intact and simply resume
                    // draining — no resync needed for a dead *sender*.
                    kick_all_pumps(&mut rig.world, &mut rig.sim);
                } else {
                    self.resync_all(rig);
                }
            }
            FaultKind::JournalSqueeze => {
                for &(gid, cap) in &self.orig_journal_caps {
                    if let Some(jid) = rig.world.st.fabric.group(gid).primary_jnl {
                        rig.world.st.fabric.journal_mut(jid).set_capacity_bytes(cap);
                    }
                }
            }
            FaultKind::OperatorRestart => {
                // Supervised: an operator suspension is exactly what the
                // supervisor exists to heal; it may even have resynced
                // before this heal edge.
                if !self.supervised {
                    self.resync_all(rig);
                }
            }
            FaultKind::SnapshotDuringFault => {}
        }
    }

    /// Suspend (idempotent) and delta-resync every group, then kick the
    /// pumps. Unapplied journal entries are always part of the resync
    /// working set, so this is a correct heal for dropped in-flight
    /// batches as well as for operator suspension windows.
    fn resync_all(&mut self, rig: &mut TwoSiteRig) {
        let now = rig.sim.now();
        for &g in &rig.groups.clone() {
            rig.world.st.suspend_group(g, now);
            rig.world.st.resync_group(g);
        }
        kick_all_pumps(&mut rig.world, &mut rig.sim);
    }

    /// Restart the business after a main-array heal: crash-recover both
    /// databases from the (recovered) primary images, swap them into the
    /// app state and resume the closed-loop clients.
    ///
    /// The restarted WAL writer continues exactly where the surviving log
    /// ends, overwriting any torn tail the crash left; per-volume FIFO
    /// service guarantees the torn region is always a suffix, never a
    /// hole, so recovery of any later backup image stays well-defined.
    fn restart_app(&mut self, rig: &mut TwoSiteRig, auditor: &mut Auditor) {
        let now = rig.sim.now();
        let db_cfg = rig.config.db.clone();
        let recovered = {
            let arr = rig.world.st.array(rig.main);
            let sales = MiniDb::recover(
                "sales",
                &VolumeView::new(arr, rig.vols[0].volume),
                &VolumeView::new(arr, rig.vols[1].volume),
                db_cfg.clone(),
            );
            let stock = MiniDb::recover(
                "stock",
                &VolumeView::new(arr, rig.vols[2].volume),
                &VolumeView::new(arr, rig.vols[3].volume),
                db_cfg,
            );
            (sales, stock)
        };
        match recovered {
            (Ok((sales, _)), Ok((stock, _))) => {
                let vols = rig.vols;
                let app = rig.world.app_mut();
                app.sales = DbInstance {
                    db: sales,
                    wal_vol: vols[0],
                    data_vol: vols[1],
                };
                app.stock = DbInstance {
                    db: stock,
                    wal_vol: vols[2],
                    data_vol: vols[3],
                };
                app.stopped = false;
                start_workload_clients(&mut rig.world, &mut rig.sim);
            }
            (sales, stock) => {
                // A primary image that cannot crash-recover is itself an
                // invariant violation: the business is unrecoverable at
                // its own site. Leave the app stopped.
                for (name, r) in [("sales", sales), ("stock", stock)] {
                    if let Err(e) = r {
                        auditor.violate(now, "primary-recovery-failed", format!("{name}: {e:?}"));
                    }
                }
            }
        }
    }
}
