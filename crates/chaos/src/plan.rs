//! The FaultPlan DSL: typed fault events, composable and seed-generatable.

use serde::{Deserialize, Serialize};
use tsuru_sim::{DetRng, SimDuration, SimTime};

/// The `DetRng::derive` stream id for fault-plan generation.
pub(crate) const PLAN_STREAM: u64 = 0xCA05;

/// What a [`FaultEvent`] injects. Every kind has a well-defined heal
/// action applied `duration` after its start (see the injector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// Data-link outage with a scheduled end; senders observe
    /// `Down(Some(up))` and retry at the advertised instant (auto-heal).
    LinkFlap,
    /// Indefinite data-link partition; only the heal (`heal_link`: link up
    /// + pump kick) restores transfer — this is the parked-pump path.
    LinkPartition,
    /// Heavy jitter plus random frame loss on the data link; the heal
    /// restores the original link shape.
    JitterSpike,
    /// Data-link bandwidth brownout (÷50); transfer pumps back off via
    /// flow control until the heal restores bandwidth.
    PumpStall,
    /// Backup-site array crash. In-flight batches are dropped by the
    /// receive path, so the heal must recover the array and delta-resync
    /// every group (link up + `set_up` alone would leave sequence gaps).
    BackupArrayCrash,
    /// Main-site array crash: the business stops against a dead array.
    /// The heal recovers the array, restarts the application from the
    /// primary images (crash recovery of both databases), resyncs every
    /// group and resumes the client workload.
    MainArrayCrash,
    /// Primary journal capacity squeezed down to its current fill; with
    /// the `Block` journal-full policy, appends stall until drain. The
    /// heal restores the configured capacity.
    JournalSqueeze,
    /// The storage operator restarts: every group is suspended at the
    /// start (primary writes continue locally, dirty-tracked) and the
    /// heal resyncs each group back to `Active`.
    OperatorRestart,
    /// An atomic snapshot group of the backup replicas is taken in the
    /// middle of the fault window (no heal; the snapshots are audited for
    /// crash consistency at final quiesce). Skipped deterministically if
    /// the backup array is failed at that instant.
    SnapshotDuringFault,
}

impl FaultKind {
    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::LinkFlap => "link-flap",
            FaultKind::LinkPartition => "link-partition",
            FaultKind::JitterSpike => "jitter-spike",
            FaultKind::PumpStall => "pump-stall",
            FaultKind::BackupArrayCrash => "backup-array-crash",
            FaultKind::MainArrayCrash => "main-array-crash",
            FaultKind::JournalSqueeze => "journal-squeeze",
            FaultKind::OperatorRestart => "operator-restart",
            FaultKind::SnapshotDuringFault => "snapshot-during-fault",
        }
    }
}

/// One scheduled fault: a kind, a start instant and a window length.
/// The heal runs at `at + duration` (instantaneous kinds use a zero
/// duration and have no heal action).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// What to inject.
    pub kind: FaultKind,
    /// Fault start (simulated time).
    pub at: SimTime,
    /// Fault window; the heal runs at `at + duration`.
    pub duration: SimDuration,
}

impl FaultEvent {
    /// The heal instant.
    pub fn heal_at(&self) -> SimTime {
        self.at + self.duration
    }
}

/// A complete chaos schedule for one trial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Workload/injection horizon; after the last heal the workload is
    /// stopped and the system runs to full quiescence.
    pub horizon: SimTime,
    /// Fault events, sorted by `(at, kind, duration)`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The common instant the generator forces the core fault quartet to
    /// overlap at (see [`FaultPlan::random`]).
    pub const OVERLAP_AT: SimTime = SimTime::from_millis(60);

    /// Generate a seeded random plan over `horizon` (use the trial seed;
    /// the generator derives stream `0xCA05`).
    ///
    /// Construction guarantees the acceptance shape: the core quartet —
    /// link partition, jitter spike, backup-array crash, journal squeeze —
    /// is always present with windows that all span [`Self::OVERLAP_AT`],
    /// so at least four distinct fault kinds are concurrently in flight.
    /// One to three extra faults (flap, pump stall, operator restart,
    /// snapshot-during-fault, main-array crash) land anywhere in the
    /// horizon.
    pub fn random(seed: u64, horizon: SimTime) -> FaultPlan {
        assert!(
            horizon >= SimTime::from_millis(120),
            "horizon too short for the core overlap window"
        );
        let mut rng = DetRng::new(seed).derive(PLAN_STREAM);
        let mut events = Vec::new();
        let core = [
            FaultKind::LinkPartition,
            FaultKind::JitterSpike,
            FaultKind::BackupArrayCrash,
            FaultKind::JournalSqueeze,
        ];
        let overlap_us = Self::OVERLAP_AT.as_nanos() / 1_000;
        for kind in core {
            // Start 30–60 ms, end at least 5–20 ms past the overlap point.
            let at_us = 30_000 + rng.gen_range(30_000);
            let end_us = overlap_us + 5_000 + rng.gen_range(15_000);
            events.push(FaultEvent {
                kind,
                at: SimTime::from_micros(at_us),
                duration: SimDuration::from_micros(end_us - at_us),
            });
        }
        let mut extras = [
            FaultKind::LinkFlap,
            FaultKind::PumpStall,
            FaultKind::OperatorRestart,
            FaultKind::SnapshotDuringFault,
            FaultKind::MainArrayCrash,
        ];
        rng.shuffle(&mut extras);
        let n_extra = 1 + rng.gen_range(3) as usize;
        for &kind in extras.iter().take(n_extra) {
            let span_us = (horizon.as_nanos() / 1_000).saturating_sub(60_000);
            let at = SimTime::from_micros(10_000 + rng.gen_range(span_us));
            let duration = if kind == FaultKind::SnapshotDuringFault {
                SimDuration::ZERO
            } else {
                SimDuration::from_micros(5_000 + rng.gen_range(20_000))
            };
            events.push(FaultEvent { kind, at, duration });
        }
        let mut plan = FaultPlan { horizon, events };
        plan.normalize();
        plan
    }

    /// Generate a seeded plan containing exactly the core fault quartet —
    /// link partition, jitter spike, backup-array crash, journal squeeze —
    /// with windows spanning [`Self::OVERLAP_AT`], and no extras. The
    /// fixed kind set makes convergence sweeps comparable across policies
    /// (same fault pressure, only the recovery strategy varies) while the
    /// seeded windows still vary per trial.
    pub fn core_quartet(seed: u64, horizon: SimTime) -> FaultPlan {
        assert!(
            horizon >= SimTime::from_millis(120),
            "horizon too short for the core overlap window"
        );
        let mut rng = DetRng::new(seed).derive(PLAN_STREAM);
        let mut events = Vec::new();
        let core = [
            FaultKind::LinkPartition,
            FaultKind::JitterSpike,
            FaultKind::BackupArrayCrash,
            FaultKind::JournalSqueeze,
        ];
        let overlap_us = Self::OVERLAP_AT.as_nanos() / 1_000;
        for kind in core {
            // Same window law as `random`: start 30–60 ms, end at least
            // 5–20 ms past the overlap point.
            let at_us = 30_000 + rng.gen_range(30_000);
            let end_us = overlap_us + 5_000 + rng.gen_range(15_000);
            events.push(FaultEvent {
                kind,
                at: SimTime::from_micros(at_us),
                duration: SimDuration::from_micros(end_us - at_us),
            });
        }
        let mut plan = FaultPlan { horizon, events };
        plan.normalize();
        plan
    }

    /// Sort events into canonical `(at, kind, duration)` order.
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| (e.at, e.kind, e.duration));
    }

    /// Distinct fault kinds in the plan, sorted, as labels.
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.events.iter().map(|e| e.kind.label()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct fault kinds whose windows all span one common instant
    /// (the maximum cardinality over instants, counting kinds once).
    pub fn max_overlapping_kinds(&self) -> usize {
        let mut best = 0;
        for probe in self.events.iter().map(|e| e.at) {
            let mut kinds: Vec<FaultKind> = self
                .events
                .iter()
                .filter(|e| e.at <= probe && probe <= e.heal_at())
                .map(|e| e.kind)
                .collect();
            kinds.sort_unstable();
            kinds.dedup();
            best = best.max(kinds.len());
        }
        best
    }

    /// Deterministic single-line-per-event rendering (used in reports and
    /// byte-identity tests).
    pub fn render(&self) -> String {
        let mut out = format!("plan horizon={}\n", self.horizon);
        for e in &self.events {
            out.push_str(&format!(
                "  {:>10} +{:<10} {}\n",
                e.at.to_string(),
                e.duration.to_string(),
                e.kind.label()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plan_is_seed_deterministic_and_overlapping() {
        let a = FaultPlan::random(7, SimTime::from_millis(150));
        let b = FaultPlan::random(7, SimTime::from_millis(150));
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert!(a.events.len() >= 5);
        assert!(a.kinds().len() >= 4);
        assert!(
            a.max_overlapping_kinds() >= 4,
            "core quartet must overlap: {}",
            a.render()
        );
        let c = FaultPlan::random(8, SimTime::from_millis(150));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn events_stay_inside_the_horizon() {
        for seed in 0..50u64 {
            let plan = FaultPlan::random(seed, SimTime::from_millis(150));
            for e in &plan.events {
                assert!(e.heal_at() < plan.horizon, "{e:?} outlives horizon");
            }
        }
    }
}
