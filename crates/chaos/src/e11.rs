//! E11 — SLO alerting scored against injected ground truth: fault plans
//! × rule profiles.
//!
//! Every trial replays one seeded core-quartet plan (link partition,
//! jitter spike, backup-array crash, journal squeeze — the same fixed
//! kind set E10 uses, so only the rule profile varies) against the
//! consistency-group rig with the replication supervisor armed under the
//! default policy and the SLO alert engine armed under each rule
//! profile. The injected plan is the ground truth: the matcher scores
//! every incident for true/false positives and every fault kind for
//! detection and latency (see [`match_incidents`](crate::alert::match_incidents)).
//!
//! Rows — and each trial's incident-log JSONL export — are byte-stable
//! across harness thread counts, like every other sweep in this crate.

use tsuru_core::{render_table, BackupMode, TrialHarness, TrialSet};
use tsuru_storage::AlertProfile;

use crate::audit::ChaosReport;
use crate::plan::FaultPlan;
use crate::run::{run_chaos_trial_alerts, ChaosConfig};

/// One (plan, rule profile) verdict within an alert trial.
#[derive(Debug, Clone)]
pub struct AlertRow {
    /// Which rule profile the engine ran (tight / default / lenient).
    pub profile: &'static str,
    /// The alert-armed consistency-group report (carries the
    /// [`AlertSummary`](crate::AlertSummary)).
    pub report: ChaosReport,
    /// The trial's incident log as JSONL.
    pub export: String,
}

/// One alert trial: the same seeded core-quartet plan replayed under
/// every rule profile.
#[derive(Debug, Clone)]
pub struct AlertTrial {
    /// The replayed plan (for rendering/repro).
    pub plan: FaultPlan,
    /// One row per profile, in [`AlertProfile::all`] order.
    pub rows: Vec<AlertRow>,
}

/// The E11 sweep: `trials` seeded core-quartet plans, each replayed with
/// the supervisor armed (default policy) and the alert engine armed
/// under every rule profile. Rows are byte-stable across harness thread
/// counts.
pub fn alert_sweep(
    harness: &TrialHarness,
    base_seed: u64,
    trials: usize,
    cfg: &ChaosConfig,
) -> TrialSet<AlertTrial> {
    harness.run(base_seed, trials, |ctx| {
        let plan = FaultPlan::core_quartet(ctx.seed, cfg.horizon);
        let rows = AlertProfile::all()
            .into_iter()
            .map(|profile| {
                let name = profile.name;
                let mut c = cfg.clone();
                c.supervisor = true;
                let (report, export) = run_chaos_trial_alerts(
                    ctx.seed,
                    BackupMode::AdcConsistencyGroup,
                    &plan,
                    &c,
                    profile,
                );
                AlertRow {
                    profile: name,
                    report,
                    export,
                }
            })
            .collect();
        AlertTrial { plan, rows }
    })
}

/// Render the alert sweep (one row per trial × profile) for `repro e11`.
pub fn render_alert_table(trials: &[AlertTrial]) -> String {
    render_table(
        &[
            "trial",
            "seed",
            "profile",
            "evals",
            "incidents",
            "tp",
            "fp",
            "recall",
            "lat_max_us",
            "violations",
        ],
        &trials
            .iter()
            .enumerate()
            .flat_map(|(i, t)| {
                t.rows.iter().map(move |row| {
                    let a = row
                        .report
                        .alerts
                        .as_ref()
                        .expect("alert trial carries a summary");
                    vec![
                        i.to_string(),
                        format!("{:#x}", row.report.seed),
                        row.profile.to_string(),
                        a.evals.to_string(),
                        a.incidents.to_string(),
                        a.true_positives.to_string(),
                        a.false_positives.to_string(),
                        format!("{}/{}", a.kinds_detected(), a.kinds.len()),
                        a.latency_max_us().to_string(),
                        row.report.violations.len().to_string(),
                    ]
                })
            })
            .collect::<Vec<_>>(),
    )
}
