//! Acceptance tests for the chaos engine (ISSUE 3):
//!
//! - a seeded random plan with ≥4 overlapping fault kinds runs clean under
//!   the consistency-group mode and *detects* violations under the naive
//!   per-volume mode (the paper's C2/C3 under fault);
//! - identical seeds reproduce byte-identical reports, at any harness
//!   thread count;
//! - a failing plan shrinks to a smaller plan that still fails.

use tsuru_core::{BackupMode, TrialHarness};
use tsuru_chaos::{chaos_sweep, run_chaos_trial, shrink_plan, ChaosConfig, FaultPlan};

const ACCEPTANCE_SEED: u64 = 0xC0FFEE;

#[test]
fn cg_survives_where_naive_collapses() {
    let cfg = ChaosConfig::default();
    let plan = FaultPlan::random(ACCEPTANCE_SEED, cfg.horizon);
    assert!(
        plan.max_overlapping_kinds() >= 4,
        "plan must overlap ≥4 fault kinds:\n{}",
        plan.render()
    );

    let cg = run_chaos_trial(ACCEPTANCE_SEED, BackupMode::AdcConsistencyGroup, &plan, &cfg);
    assert!(
        cg.is_clean(),
        "consistency-group mode must hold every invariant:\n{}",
        cg.render()
    );

    let naive = run_chaos_trial(ACCEPTANCE_SEED, BackupMode::AdcPerVolume, &plan, &cfg);
    assert!(
        !naive.is_clean(),
        "naive per-volume mode must be caught violating under fault:\n{}",
        naive.render()
    );
    assert!(
        naive
            .violations
            .iter()
            .any(|v| v.invariant == "prefix-cut" || v.invariant == "snapshot-cross-db"),
        "naive detection should include a write-order violation:\n{}",
        naive.render()
    );
    // Both ran the same audit grid over the same plan.
    assert_eq!(cg.audits, naive.audits);
    assert!(cg.committed_orders > 0);
}

#[test]
fn identical_seed_reproduces_identical_report() {
    let cfg = ChaosConfig::default();
    let plan = FaultPlan::random(ACCEPTANCE_SEED, cfg.horizon);
    let a = run_chaos_trial(ACCEPTANCE_SEED, BackupMode::AdcPerVolume, &plan, &cfg);
    let b = run_chaos_trial(ACCEPTANCE_SEED, BackupMode::AdcPerVolume, &plan, &cfg);
    assert_eq!(a.render(), b.render(), "same seed+plan must replay byte-for-byte");
    assert_eq!(a, b);
}

#[test]
fn sweep_reports_identical_at_any_thread_count() {
    let cfg = ChaosConfig::default();
    let render = |threads: usize| {
        let set = chaos_sweep(&TrialHarness::new(threads), 4242, 3, &cfg);
        set.rows
            .iter()
            .flat_map(|p| [p.cg.render(), p.naive.render()])
            .collect::<String>()
    };
    let baseline = render(1);
    assert!(!baseline.is_empty());
    for threads in [2, 4, 8] {
        assert_eq!(
            render(threads),
            baseline,
            "thread count {threads} changed the chaos report bytes"
        );
    }
}

#[test]
fn failing_plan_shrinks_and_still_fails() {
    let cfg = ChaosConfig::default();
    let plan = FaultPlan::random(ACCEPTANCE_SEED, cfg.horizon);
    let shrunk = shrink_plan(ACCEPTANCE_SEED, BackupMode::AdcPerVolume, &plan, &cfg);
    assert!(
        shrunk.events.len() <= plan.events.len(),
        "shrinking must never grow the plan"
    );
    let rerun = run_chaos_trial(ACCEPTANCE_SEED, BackupMode::AdcPerVolume, &shrunk, &cfg);
    assert!(
        !rerun.is_clean(),
        "shrunk plan must still fail:\n{}",
        shrunk.render()
    );
    // Shrinking is deterministic.
    let again = shrink_plan(ACCEPTANCE_SEED, BackupMode::AdcPerVolume, &plan, &cfg);
    assert_eq!(shrunk, again);
}
