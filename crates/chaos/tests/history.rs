//! Acceptance tests for client-visible history checking (ISSUE 6):
//!
//! - every workload under the acceptance fault plan produces a clean
//!   client-visible history in consistency-group mode — zero anomalies
//!   from the serializability, bank, append and shop checkers;
//! - the naive per-volume mode is caught with *client-visible*
//!   anomalies (not just internal storage invariants) on the same plan;
//! - history-sweep renders and JSONL exports are byte-identical at
//!   harness thread counts 1/2/4/8 (the `tests/determinism.rs` idiom).

use tsuru_chaos::{
    history_sweep, render_history_table, run_chaos_trial_history, ChaosConfig, FaultPlan,
};
use tsuru_core::{BackupMode, TrialHarness};
use tsuru_ecom::WorkloadKind;

const ACCEPTANCE_SEED: u64 = 0xC0FFEE;

fn cfg_for(kind: WorkloadKind) -> ChaosConfig {
    ChaosConfig {
        workload: kind,
        ..ChaosConfig::default()
    }
}

#[test]
fn cg_histories_are_clean_for_every_workload() {
    for kind in WorkloadKind::ALL {
        let cfg = cfg_for(kind);
        let plan = FaultPlan::random(ACCEPTANCE_SEED, cfg.horizon);
        let (report, jsonl) = run_chaos_trial_history(
            ACCEPTANCE_SEED,
            BackupMode::AdcConsistencyGroup,
            &plan,
            &cfg,
        );
        let h = report.history.expect("history trial carries a summary");
        assert!(
            h.records > 0 && h.ops_checked > 0,
            "{}: judge must have ops to check (records={} ops={})",
            kind.label(),
            h.records,
            h.ops_checked
        );
        assert_eq!(
            h.anomalies,
            0,
            "{}: consistency-group history must be clean:\n{}",
            kind.label(),
            report.render()
        );
        assert!(
            report.is_clean(),
            "{}: cg trial must hold every invariant:\n{}",
            kind.label(),
            report.render()
        );
        assert!(!jsonl.is_empty(), "{}: export must be non-empty", kind.label());
    }
}

#[test]
fn naive_mode_shows_client_visible_anomalies() {
    let mut caught = 0;
    for kind in WorkloadKind::ALL {
        let cfg = cfg_for(kind);
        let plan = FaultPlan::random(ACCEPTANCE_SEED, cfg.horizon);
        let (report, _) =
            run_chaos_trial_history(ACCEPTANCE_SEED, BackupMode::AdcPerVolume, &plan, &cfg);
        if report
            .violations
            .iter()
            .any(|v| v.invariant == "client-history")
        {
            caught += 1;
        }
    }
    assert!(
        caught > 0,
        "at least one workload must surface the naive collapse as a \
         client-visible anomaly, not just an internal invariant"
    );
}

#[test]
fn history_sweep_is_thread_count_invariant() {
    let cfg = ChaosConfig::default();
    let serial = history_sweep(&TrialHarness::new(1), 0xB15, 2, &cfg);
    let reference = render_history_table(&serial.rows);
    for threads in [2, 4, 8] {
        let par = history_sweep(&TrialHarness::new(threads), 0xB15, 2, &cfg);
        assert_eq!(
            reference,
            render_history_table(&par.rows),
            "history table must be byte-identical at {threads} threads"
        );
        for (s, p) in serial.rows.iter().zip(&par.rows) {
            for (sr, pr) in s.rows.iter().zip(&p.rows) {
                assert_eq!(
                    sr.cg_export, pr.cg_export,
                    "cg JSONL for {} must be byte-identical at {threads} threads",
                    sr.workload.label()
                );
                assert_eq!(sr.naive_export, pr.naive_export);
                assert_eq!(sr.cg.render(), pr.cg.render());
                assert_eq!(sr.naive.render(), pr.naive.render());
            }
        }
    }
}

#[test]
fn history_export_is_deterministic() {
    let cfg = cfg_for(WorkloadKind::AppendList);
    let plan = FaultPlan::random(ACCEPTANCE_SEED, cfg.horizon);
    let run = || {
        run_chaos_trial_history(
            ACCEPTANCE_SEED,
            BackupMode::AdcConsistencyGroup,
            &plan,
            &cfg,
        )
    };
    let (ra, ja) = run();
    let (rb, jb) = run();
    assert_eq!(ja, jb, "same seed+plan must export byte-identical JSONL");
    assert_eq!(ra.render(), rb.render());
}
