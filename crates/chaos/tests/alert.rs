//! Alerting acceptance for the chaos engine:
//!
//! - alert-armed trials export byte-identical incident JSONL (and
//!   render identical reports) at any harness thread count;
//! - the default rule profile detects every injected fault kind of the
//!   core quartet (recall = 1.0) and each matched incident's root-cause
//!   bundle names the injected fault span;
//! - on the PR-3 stale-retry regression scenario (journal squeeze under
//!   the naive per-volume mode), an incident opens *before* the auditor
//!   records its first write-order violation — the live alert beats the
//!   post-hoc oracle.

use tsuru_chaos::{alert_sweep, run_chaos_trial_alerts, ChaosConfig, FaultPlan};
use tsuru_core::{BackupMode, TrialHarness};
use tsuru_storage::AlertProfile;

const SEED: u64 = 0xC0FFEE;

#[test]
fn incident_exports_identical_at_any_thread_count() {
    let cfg = ChaosConfig::default();
    let render = |threads: usize| {
        let set = alert_sweep(&TrialHarness::new(threads), SEED, 1, &cfg);
        set.rows
            .into_iter()
            .flat_map(|t| t.rows)
            .flat_map(|row| [row.report.render(), row.export])
            .collect::<String>()
    };
    let baseline = render(1);
    assert!(
        baseline.contains("\"incident\":"),
        "incident export should be present"
    );
    assert!(baseline.contains("alerts profile="), "report should fold the summary");
    for threads in [2, 4, 8] {
        assert_eq!(
            render(threads),
            baseline,
            "thread count {threads} changed incident export bytes"
        );
    }
}

#[test]
fn default_profile_detects_every_core_quartet_kind() {
    let mut cfg = ChaosConfig::default();
    cfg.supervisor = true;
    let plan = FaultPlan::core_quartet(SEED, cfg.horizon);
    let (report, export) = run_chaos_trial_alerts(
        SEED,
        BackupMode::AdcConsistencyGroup,
        &plan,
        &cfg,
        AlertProfile::default_profile(),
    );
    assert!(report.is_clean(), "{}", report.render());

    let summary = report.alerts.as_ref().expect("alert trial carries a summary");
    assert!(
        summary.full_recall(),
        "default profile must detect every injected kind:\n{}",
        report.render()
    );
    for kind in &summary.kinds {
        assert!(
            export.contains(&format!("\"kind\":\"{}\"", kind.kind)),
            "no incident root-cause bundle names the injected {} fault:\n{export}",
            kind.kind
        );
    }
    // True positives carry the injected fault's span id in their bundle.
    assert!(
        export.contains("\"span\":"),
        "matched incidents must reference fault span ids:\n{export}"
    );
}

#[test]
fn incident_opens_before_the_auditor_convicts() {
    // The PR-3 stale-retry regression, watched live: the core plan's
    // journal squeeze makes the naive per-volume mode stall writes and
    // apply them in retry order, which the auditor convicts post-hoc as
    // write-order violations (see `tests/trace.rs`). The squeeze also
    // breaches the journal/RPO rules while it is still open — and the
    // auditor only convicts on its 5ms audit cadence, so the tight
    // profile's 500µs evaluation ticks must open an incident strictly
    // before the first violation edge.
    let cfg = ChaosConfig::default();
    let plan = FaultPlan::random(SEED, cfg.horizon);
    let (report, export) = run_chaos_trial_alerts(
        SEED,
        BackupMode::AdcPerVolume,
        &plan,
        &cfg,
        AlertProfile::tight(),
    );
    assert!(!report.is_clean(), "naive mode must violate under this plan");

    let first_violation_ns = report
        .violations
        .iter()
        .map(|v| v.at.as_nanos())
        .min()
        .expect("unclean report carries violations");
    let first_incident_ns = export
        .lines()
        .map(|l| parse_field(l, "\"opened_ns\":"))
        .min()
        .expect("the squeeze must open at least one incident");
    assert!(
        first_incident_ns < first_violation_ns,
        "the live alert ({first_incident_ns}ns) must fire before the auditor's \
         first violation ({first_violation_ns}ns):\n{}",
        report.render()
    );
}

/// Extract the integer following `key` in a JSONL line.
fn parse_field(line: &str, key: &str) -> u64 {
    let at = line.find(key).expect("key present") + key.len();
    line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("integer field")
}
