//! Telemetry acceptance for the chaos engine:
//!
//! - traced trials export byte-identical JSONL/Chrome traces at any
//!   harness thread count;
//! - fault spans are causally linked to write-lifecycle spans (records
//!   emitted inside a fault window carry the fault's span id);
//! - the naive mode's write-order violations (the overtaking regression
//!   that `storage/tests/write_order.rs` pins at the engine level) attach
//!   a trace window that shows the stale-retry (`journal_stall`) spans.

use tsuru_core::{BackupMode, TrialHarness};
use tsuru_chaos::{run_chaos_trial, run_chaos_trial_traced, ChaosConfig, FaultPlan};

const SEED: u64 = 0xC0FFEE;

#[test]
fn traced_exports_identical_at_any_thread_count() {
    let cfg = ChaosConfig::default();
    let render = |threads: usize| {
        let set = TrialHarness::new(threads).run(SEED, 2, |ctx| {
            let plan = FaultPlan::random(ctx.seed, cfg.horizon);
            let (report, export) =
                run_chaos_trial_traced(ctx.seed, BackupMode::AdcConsistencyGroup, &plan, &cfg);
            (report.render(), export)
        });
        set.rows
            .into_iter()
            .flat_map(|(render, export)| [render, export.jsonl, export.chrome])
            .collect::<String>()
    };
    let baseline = render(1);
    assert!(baseline.contains("\"ev\":"), "jsonl export should be present");
    assert!(baseline.contains("traceEvents"), "chrome export should be present");
    for threads in [2, 4, 8] {
        assert_eq!(
            render(threads),
            baseline,
            "thread count {threads} changed traced export bytes"
        );
    }
}

#[test]
fn fault_spans_causally_link_to_write_lifecycles() {
    let cfg = ChaosConfig::default();
    let plan = FaultPlan::random(SEED, cfg.horizon);
    let (report, export) =
        run_chaos_trial_traced(SEED, BackupMode::AdcConsistencyGroup, &plan, &cfg);
    assert!(report.is_clean(), "{}", report.render());

    // Collect every fault span id from the export.
    let fault_ids: Vec<u64> = export
        .jsonl
        .lines()
        .filter(|l| l.contains("\"name\":\"fault\"") && l.contains("\"ev\":\"start\""))
        .map(|l| parse_field(l, "\"id\":"))
        .collect();
    assert!(!fault_ids.is_empty(), "traced chaos trial must record fault spans");

    // At least one write-lifecycle record was emitted inside a fault
    // window: the tracer stamps it with the open fault's span id.
    let lifecycle = ["host_write", "journal_append", "wan_transfer", "backup_apply"];
    let linked = export.jsonl.lines().any(|l| {
        lifecycle.iter().any(|n| l.contains(&format!("\"name\":\"{n}\"")))
            && l.contains("\"fault\":")
            && fault_ids.contains(&parse_field(l, "\"fault\":"))
    });
    assert!(
        linked,
        "no write-lifecycle record carries a fault span id; fault windows \
         are not causally linked to write lifecycles"
    );
}

#[test]
fn naive_violation_trace_window_shows_stale_retry_spans() {
    // The acceptance plan's core quartet always includes a journal
    // squeeze, so the naive per-volume mode both stalls writes (stale
    // retries) and violates write-order fidelity under fault.
    let cfg = ChaosConfig::default();
    let plan = FaultPlan::random(SEED, cfg.horizon);
    let (report, export) = run_chaos_trial_traced(SEED, BackupMode::AdcPerVolume, &plan, &cfg);
    assert!(!report.is_clean(), "naive mode must violate under this plan");

    // Every violation on a traced trial attaches a non-empty trailing
    // trace window whose lines reference span ids.
    for v in &report.violations {
        assert!(!v.trace.is_empty(), "traced violation without a trace window: {v:?}");
        assert!(
            v.trace.iter().all(|l| l.starts_with('#')),
            "trace lines must lead with their span id: {:?}",
            v.trace
        );
    }

    // The squeeze produced stale-retry spans, and at least one violation's
    // attached window captures them — the auditor report points straight
    // at the retries that reordered the writes.
    assert!(
        export.jsonl.contains("\"name\":\"journal_stall\""),
        "journal squeeze must produce stall-retry spans"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.trace.iter().any(|l| l.contains("journal_stall"))),
        "no violation trace window shows the stale-retry span:\n{}",
        report.render()
    );

    // The rendered report carries the windows (untraced renders don't).
    assert!(report.render().contains("      trace #"));
    let untraced = run_chaos_trial(SEED, BackupMode::AdcPerVolume, &plan, &cfg);
    assert!(!untraced.render().contains("trace #"));
}

/// Extract the integer following `key` in a JSONL line.
fn parse_field(line: &str, key: &str) -> u64 {
    let at = line.find(key).expect("key present") + key.len();
    line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("integer field")
}
