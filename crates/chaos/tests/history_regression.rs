//! Regression, restated as a client-visible history: the journal-stall
//! retry reordering bug.
//!
//! `crates/storage/tests/write_order.rs` pins the engine-level bug: two
//! stalled same-LBA writes could apply in *retry* order instead of
//! issue order, so the older content landed last. For a database WAL —
//! whose tail block is rewritten by every commit — that rolls the tail
//! back in time and truncates the record stream.
//!
//! This test records what that bug looked like *from the client's
//! side*, as the history checkers would have caught it without any
//! knowledge of journals or LBAs:
//!
//! - appends 1..4 to one list are acked (each commit rewrote the WAL
//!   tail block);
//! - the stale retry then rolled the tail back to the state after
//!   append 2, so every later backup image recovers only `[1, 2]`;
//! - the backup reader, which had already observed `[1, 2, 3]`, sees
//!   the list *rewind* (a stale read), and the final drained backup
//!   image is missing acked appends 3 and 4 (lost appends).
//!
//! The engine fix (per-volume ordering gate) makes this history
//! impossible; the checker exists so any regression of that gate is
//! caught as a client-visible anomaly, not only by the byte-level
//! auditor.

use tsuru_history::{
    check_history, AnomalyKind, CheckConfig, OpData, OpId, Recorder, Site, TxnOps,
};
use tsuru_sim::SimTime;

fn append(r: &Recorder, t_us: u64, key: u64, value: u64) -> OpId {
    let op = r.invoke(1, SimTime::from_micros(t_us), OpData::Append { key, value });
    r.ok(
        1,
        op,
        SimTime::from_micros(t_us + 50),
        OpData::Txn(TxnOps::default()),
    );
    op
}

fn backup_read(r: &Recorder, t_us: u64, key: u64, site: Site, values: &[u64]) -> OpId {
    let op = r.invoke(
        tsuru_history::process::BACKUP_READER,
        SimTime::from_micros(t_us),
        OpData::ReadList { key, site },
    );
    r.ok(
        tsuru_history::process::BACKUP_READER,
        op,
        SimTime::from_micros(t_us),
        OpData::List {
            key,
            values: values.to_vec(),
        },
    );
    op
}

#[test]
fn stale_retry_rollback_is_client_visible() {
    let r = Recorder::enabled();

    // Four acked appends; each commit rewrote the WAL tail block.
    append(&r, 100, 0, 1);
    append(&r, 200, 0, 2);
    append(&r, 300, 0, 3);
    append(&r, 400, 0, 4);

    // The backup reader tracked the replicated image faithfully while
    // the writes were in flight...
    backup_read(&r, 250, 0, Site::Backup, &[1, 2]);
    backup_read(&r, 350, 0, Site::Backup, &[1, 2, 3]);

    // ...then the stale retry applied the OLD tail block last, rolling
    // the WAL back to the post-append-2 state. Every later image — the
    // next mid-run read and the fully drained final image — recovers
    // the truncated stream.
    backup_read(&r, 500, 0, Site::Backup, &[1, 2]);
    backup_read(&r, 600, 0, Site::BackupFinal, &[1, 2]);

    let verdict = check_history(&r.history(), &CheckConfig::default());
    assert!(!verdict.is_clean(), "the rollback must be caught");

    let kinds: Vec<AnomalyKind> = verdict.anomalies().map(|a| a.kind).collect();
    assert!(
        kinds.contains(&AnomalyKind::StaleRead),
        "the backup reader saw the list rewind: {kinds:?}"
    );
    assert!(
        kinds.contains(&AnomalyKind::LostAppend),
        "acked appends 3 and 4 vanished from the drained image: {kinds:?}"
    );

    // The lost-append anomaly names exactly the two swallowed appends.
    let lost = verdict
        .anomalies()
        .find(|a| a.kind == AnomalyKind::LostAppend)
        .expect("lost-append anomaly present");
    assert!(
        lost.detail.contains("[3,4]"),
        "must name the swallowed values: {}",
        lost.detail
    );
}

/// The fixed engine produces the faithful version of the same story:
/// the tail never rolls back, images only advance, nothing is lost.
#[test]
fn issue_order_apply_is_clean() {
    let r = Recorder::enabled();
    append(&r, 100, 0, 1);
    append(&r, 200, 0, 2);
    append(&r, 300, 0, 3);
    append(&r, 400, 0, 4);
    backup_read(&r, 250, 0, Site::Backup, &[1, 2]);
    backup_read(&r, 350, 0, Site::Backup, &[1, 2, 3]);
    backup_read(&r, 500, 0, Site::Backup, &[1, 2, 3, 4]);
    backup_read(&r, 600, 0, Site::BackupFinal, &[1, 2, 3, 4]);

    let verdict = check_history(&r.history(), &CheckConfig::default());
    assert!(verdict.is_clean(), "{}", verdict.render());
}
