//! # tsuru-minidb — a WAL-based transactional storage engine
//!
//! The stand-in for the paper's Oracle 23c databases: a redo-only, no-steal
//! key-value engine over two volumes (WAL + data), with CRC-protected pages,
//! a shadow-paging B+tree, epoch-tagged log records and automatic
//! checkpoints.
//!
//! MiniDB executes logically in memory and expresses its durability
//! discipline as ordered [`IoPlan`] phases that a driver pushes through the
//! simulated storage array (DESIGN.md §5.2). Its crash recovery
//! ([`MiniDb::recover`]) is the behavioural oracle of the reproduction: it
//! succeeds on every prefix-consistent backup image and surfaces exactly
//! which physical property a collapsed image violates
//! ([`RecoveryError::DataAheadOfWal`], torn pages, missing pages).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod checksum;
mod db;
mod io;
mod node;
mod superblock;
mod wal;

pub use btree::{BTree, PageAllocator};
pub use checksum::{crc32, crc32_update};
pub use db::{DbConfig, DbStats, MiniDb, RecoveryError, RecoveryReport, TableId, TxId};
pub use io::{DbVol, IoPlan, IoRequest};
pub use node::{Node, PageError, MAX_VALUE, PAGE_SIZE};
pub use superblock::{Superblock, MAX_FREE_LIST};
pub use wal::{encode_record, scan_wal, WalOp, WalRecord, WalWriter};
