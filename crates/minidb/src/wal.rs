//! The write-ahead log: redo-only, one record per committed transaction.
//!
//! MiniDB uses a *no-steal* buffer policy (uncommitted changes never reach
//! storage), so the log needs no undo information: each record carries the
//! complete write-set of one committed transaction and recovery simply
//! re-applies records in LSN order. Records are packed into a byte stream
//! laid over the WAL volume's blocks; each record is CRC-protected and
//! tagged with the WAL *epoch*, which increments at every checkpoint so a
//! scanner never confuses a stale pre-checkpoint tail with live log.

use tsuru_storage::{BlockDevice, BLOCK_SIZE};

use crate::checksum::crc32_update;
use crate::io::{DbVol, IoRequest};

const HEADER_BYTES: usize = 12; // epoch u32 | payload len u32 | crc u32

/// One logged operation: an absolute put or a delete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalOp {
    /// Tree key (table id folded into the high bits by the layer above).
    pub key: u64,
    /// `Some(value)` for a put, `None` for a delete.
    pub value: Option<Vec<u8>>,
}

/// One committed transaction's redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number; strictly increasing across the database's life.
    pub lsn: u64,
    /// Transaction id (diagnostic only; redo keys off the LSN).
    pub txid: u64,
    /// The write-set, in operation order.
    pub ops: Vec<WalOp>,
}

impl WalRecord {
    /// Encoded size including the record header.
    pub fn encoded_len(&self) -> usize {
        let mut n = HEADER_BYTES + 8 + 8 + 4;
        for op in &self.ops {
            n += 8 + 1;
            if let Some(v) = &op.value {
                n += 4 + v.len();
            }
        }
        n
    }

    fn encode_payload_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.lsn.to_le_bytes());
        out.extend_from_slice(&self.txid.to_le_bytes());
        out.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            out.extend_from_slice(&op.key.to_le_bytes());
            match &op.value {
                Some(v) => {
                    out.push(1);
                    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    out.extend_from_slice(v);
                }
                None => out.push(0),
            }
        }
    }

    fn decode_payload(buf: &[u8]) -> Option<WalRecord> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = buf.get(*pos..pos.checked_add(n)?)?;
            *pos += n;
            Some(s)
        };
        let lsn = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let txid = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let nops = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let mut ops = Vec::with_capacity(nops);
        for _ in 0..nops {
            let key = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
            let flag = take(&mut pos, 1)?.first().copied()?;
            let value = match flag {
                1 => {
                    let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
                    Some(take(&mut pos, len)?.to_vec())
                }
                0 => None,
                _ => return None,
            };
            ops.push(WalOp { key, value });
        }
        if pos != buf.len() {
            return None; // trailing garbage
        }
        Some(WalRecord { lsn, txid, ops })
    }
}

/// Encode a full record (header + payload) for the given epoch: exactly one
/// allocation, sized by [`WalRecord::encoded_len`].
pub fn encode_record(epoch: u32, rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(rec.encoded_len());
    encode_record_into(epoch, rec, &mut out);
    out
}

/// Append a full record to `out`, reserving exact capacity up front. The
/// CRC streams over the header-prefix and payload spans in place, so no
/// intermediate buffer is built.
pub fn encode_record_into(epoch: u32, rec: &WalRecord, out: &mut Vec<u8>) {
    let total = rec.encoded_len();
    out.reserve(total);
    let start = out.len();
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&((total - HEADER_BYTES) as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // CRC, backpatched below
    rec.encode_payload_into(out);
    debug_assert_eq!(out.len() - start, total);
    let span = |r: std::ops::Range<usize>| {
        out.get(r).expect("invariant: record bytes were just written")
    };
    let mut st = crc32_update(0xFFFF_FFFF, span(start..start + 8));
    st = crc32_update(st, span(start + HEADER_BYTES..out.len()));
    let crc = st ^ 0xFFFF_FFFF;
    out.get_mut(start + 8..start + HEADER_BYTES)
        .expect("invariant: record bytes were just written")
        .copy_from_slice(&crc.to_le_bytes());
}

/// The in-memory WAL tail: an image of the WAL volume for the current
/// epoch, from which block writes are cut as records are appended.
#[derive(Debug)]
pub struct WalWriter {
    epoch: u32,
    capacity: usize,
    image: Vec<u8>,
    offset: usize,
    // Encode scratch, reused across appends (capacity persists over epoch
    // resets): steady-state appends allocate nothing for encoding.
    scratch: Vec<u8>,
}

impl WalWriter {
    /// A writer over a WAL volume of `wal_blocks` blocks, starting at the
    /// given epoch with an empty log.
    pub fn new(wal_blocks: u64, epoch: u32) -> Self {
        let capacity = wal_blocks as usize * BLOCK_SIZE;
        WalWriter {
            epoch,
            capacity,
            image: vec![0; capacity],
            offset: 0,
            scratch: Vec::new(),
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Bytes already used in this epoch.
    pub fn used_bytes(&self) -> usize {
        self.offset
    }

    /// Total byte capacity of the WAL volume.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Would this record fit in the remaining space?
    pub fn fits(&self, rec: &WalRecord) -> bool {
        self.offset + rec.encoded_len() <= self.capacity
    }

    /// Append a record, returning the block writes (whole tail blocks) the
    /// driver must perform to make it durable.
    ///
    /// # Panics
    /// Panics if the record does not fit — callers must checkpoint first
    /// (see [`WalWriter::fits`]).
    pub fn append(&mut self, rec: &WalRecord) -> Vec<IoRequest> {
        assert!(
            self.fits(rec),
            "WAL record of {} bytes does not fit ({} of {} used)",
            rec.encoded_len(),
            self.offset,
            self.capacity
        );
        self.scratch.clear();
        encode_record_into(self.epoch, rec, &mut self.scratch);
        let start = self.offset;
        self.image
            .get_mut(start..start + self.scratch.len())
            .expect("invariant: fits() was asserted above")
            .copy_from_slice(&self.scratch);
        self.offset += self.scratch.len();

        let first_block = start / BLOCK_SIZE;
        let last_block = (self.offset - 1) / BLOCK_SIZE;
        (first_block..=last_block)
            .map(|b| IoRequest {
                vol: DbVol::Wal,
                lba: b as u64,
                data: tsuru_storage::block_from(
                    self.image
                        .get(b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE)
                        .expect("invariant: tail blocks lie within the image"),
                ),
            })
            .collect()
    }

    /// Start a fresh epoch (after a checkpoint): the log restarts at block
    /// zero and old blocks are logically invalidated by the epoch bump.
    pub fn reset(&mut self, new_epoch: u32) {
        assert!(new_epoch > self.epoch, "epoch must increase");
        self.epoch = new_epoch;
        self.offset = 0;
        self.image.iter_mut().for_each(|b| *b = 0);
    }
}

/// Scan a WAL volume image for epoch `epoch`, returning every valid record
/// in order. Stops at the first record that is absent, torn (CRC), from a
/// different epoch, or structurally invalid — everything after a damaged
/// record is unreachable, exactly as in a production redo scan.
pub fn scan_wal(dev: &dyn BlockDevice, wal_blocks: u64, epoch: u32) -> Vec<WalRecord> {
    let capacity = wal_blocks as usize * BLOCK_SIZE;
    // Materialize the byte stream (absent blocks read as zeros, which
    // terminate the scan at the length field).
    let mut image = vec![0u8; capacity];
    for b in 0..wal_blocks {
        if let Some(data) = dev.read_block(b) {
            let at = b as usize * BLOCK_SIZE;
            image
                .get_mut(at..at + BLOCK_SIZE)
                .expect("invariant: image is sized to wal_blocks blocks")
                .copy_from_slice(&data);
        }
    }
    let read_u32 = |at: usize| -> u32 {
        u32::from_le_bytes(
            image
                .get(at..at + 4)
                .expect("invariant: header bounds checked against capacity")
                .try_into()
                .expect("invariant: a 4-byte slice"),
        )
    };
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos + HEADER_BYTES > capacity {
            break;
        }
        let rec_epoch = read_u32(pos);
        let len = read_u32(pos + 4) as usize;
        let crc = read_u32(pos + 8);
        if rec_epoch != epoch || len == 0 || pos + HEADER_BYTES + len > capacity {
            break;
        }
        let payload = image
            .get(pos + HEADER_BYTES..pos + HEADER_BYTES + len)
            .expect("invariant: record bounds checked against capacity");
        // Stream the CRC over the two covered spans — no scratch buffer.
        let header = image
            .get(pos..pos + 8)
            .expect("invariant: header bounds checked against capacity");
        let st = crc32_update(crc32_update(0xFFFF_FFFF, header), payload);
        if st ^ 0xFFFF_FFFF != crc {
            break;
        }
        match WalRecord::decode_payload(payload) {
            Some(rec) => out.push(rec),
            None => break,
        }
        pos += HEADER_BYTES + len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsuru_storage::{BlockDeviceMut, MemDevice};

    fn rec(lsn: u64, nops: usize) -> WalRecord {
        WalRecord {
            lsn,
            txid: lsn * 10,
            ops: (0..nops as u64)
                .map(|i| WalOp {
                    key: i,
                    value: if i % 3 == 2 {
                        None
                    } else {
                        Some(vec![i as u8; (i as usize % 50) + 1])
                    },
                })
                .collect(),
        }
    }

    fn apply(dev: &mut MemDevice, ios: &[IoRequest]) {
        for io in ios {
            assert_eq!(io.vol, DbVol::Wal);
            dev.write_block(io.lba, &io.data);
        }
    }

    #[test]
    fn encode_len_matches() {
        for r in [rec(1, 0), rec(2, 1), rec(3, 7)] {
            assert_eq!(encode_record(5, &r).len(), r.encoded_len());
        }
    }

    #[test]
    fn roundtrip_through_device() {
        let mut w = WalWriter::new(16, 1);
        let mut dev = MemDevice::new(16);
        let records: Vec<_> = (1..=20).map(|i| rec(i, (i % 5) as usize)).collect();
        for r in &records {
            assert!(w.fits(r));
            let ios = w.append(r);
            assert!(!ios.is_empty());
            apply(&mut dev, &ios);
        }
        let scanned = scan_wal(&dev, 16, 1);
        assert_eq!(scanned, records);
    }

    #[test]
    fn scan_with_wrong_epoch_finds_nothing() {
        let mut w = WalWriter::new(4, 3);
        let mut dev = MemDevice::new(4);
        apply(&mut dev, &w.append(&rec(1, 2)));
        assert!(scan_wal(&dev, 4, 4).is_empty());
        assert_eq!(scan_wal(&dev, 4, 3).len(), 1);
    }

    #[test]
    fn torn_tail_stops_the_scan_cleanly() {
        let mut w = WalWriter::new(8, 1);
        let mut dev = MemDevice::new(8);
        apply(&mut dev, &w.append(&rec(1, 3)));
        apply(&mut dev, &w.append(&rec(2, 3)));
        // Third record's blocks never reach the device (lost tail).
        let _ = w.append(&rec(3, 3));
        let scanned = scan_wal(&dev, 8, 1);
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[1].lsn, 2);
    }

    #[test]
    fn corrupted_record_stops_the_scan() {
        let mut w = WalWriter::new(8, 1);
        let mut dev = MemDevice::new(8);
        apply(&mut dev, &w.append(&rec(1, 1)));
        apply(&mut dev, &w.append(&rec(2, 1)));
        apply(&mut dev, &w.append(&rec(3, 1)));
        // Flip one byte in the middle record's payload region.
        dev.corrupt(0, rec(1, 1).encoded_len() + HEADER_BYTES + 3);
        let scanned = scan_wal(&dev, 8, 1);
        assert_eq!(scanned.len(), 1, "scan must stop at the damaged record");
    }

    #[test]
    fn records_span_block_boundaries() {
        let mut w = WalWriter::new(8, 1);
        let mut dev = MemDevice::new(8);
        // A record with a large value crosses at least one block boundary.
        let big = WalRecord {
            lsn: 1,
            txid: 1,
            ops: vec![WalOp {
                key: 42,
                value: Some(vec![7u8; 6000]),
            }],
        };
        let ios = w.append(&big);
        assert!(ios.len() >= 2, "6 KB record must span blocks");
        apply(&mut dev, &ios);
        let scanned = scan_wal(&dev, 8, 1);
        assert_eq!(scanned, vec![big]);
    }

    #[test]
    fn tail_block_is_rewritten_as_it_fills() {
        let mut w = WalWriter::new(8, 1);
        let ios1 = w.append(&rec(1, 1));
        let ios2 = w.append(&rec(2, 1));
        // Both small records live in block 0: the block is rewritten.
        assert_eq!(ios1.len(), 1);
        assert_eq!(ios2.len(), 1);
        assert_eq!(ios1[0].lba, 0);
        assert_eq!(ios2[0].lba, 0);
        assert_ne!(ios1[0].data, ios2[0].data);
    }

    #[test]
    fn reset_starts_a_new_epoch_at_block_zero() {
        let mut w = WalWriter::new(8, 1);
        let mut dev = MemDevice::new(8);
        apply(&mut dev, &w.append(&rec(1, 2)));
        apply(&mut dev, &w.append(&rec(2, 2)));
        w.reset(2);
        assert_eq!(w.used_bytes(), 0);
        apply(&mut dev, &w.append(&rec(10, 1)));
        // Epoch-2 scan sees only the new record; epoch-1 history is dead.
        let scanned = scan_wal(&dev, 8, 2);
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].lsn, 10);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_panics() {
        let mut w = WalWriter::new(1, 1);
        let big = WalRecord {
            lsn: 1,
            txid: 1,
            ops: vec![WalOp {
                key: 1,
                value: Some(vec![0u8; 5000]),
            }],
        };
        let _ = w.append(&big);
    }

    #[test]
    fn fits_is_exact_at_the_boundary() {
        let mut w = WalWriter::new(1, 1);
        // Fill to exactly capacity with a crafted value size.
        let overhead = rec(1, 0).encoded_len(); // header + lsn + txid + nops
        let val_len = BLOCK_SIZE - overhead - 8 - 1 - 4;
        let exact = WalRecord {
            lsn: 1,
            txid: 1,
            ops: vec![WalOp {
                key: 1,
                value: Some(vec![0u8; val_len]),
            }],
        };
        assert_eq!(exact.encoded_len(), BLOCK_SIZE);
        assert!(w.fits(&exact));
        let _ = w.append(&exact);
        assert!(!w.fits(&rec(2, 0)));
    }
}
