//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Used on every database page and WAL record so that recovery can detect
//! torn or corrupted blocks — the mechanism by which a database notices
//! that its backup image violates write-order fidelity.

/// Lazily built lookup table for the reflected polynomial 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update (pass `0xFFFF_FFFF` initially, xor with it at the end).
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    let t = table();
    for &b in data {
        let entry = t
            .get(((state ^ b as u32) & 0xFF) as usize)
            .copied()
            .expect("invariant: index is masked to 0..=255");
        state = entry ^ (state >> 8);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"The quick brown fox jumps over the lazy dog".to_vec();
        let original = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x01;
            assert_ne!(crc32(&data), original, "flip at byte {i} undetected");
            data[i] ^= 0x01;
        }
        assert_eq!(crc32(&data), original);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello world, this is a streaming test";
        let oneshot = crc32(data);
        let mut st = 0xFFFF_FFFFu32;
        for chunk in data.chunks(7) {
            st = crc32_update(st, chunk);
        }
        assert_eq!(st ^ 0xFFFF_FFFF, oneshot);
    }
}
