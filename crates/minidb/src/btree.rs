//! An in-memory B+tree with shadow-paging checkpoints.
//!
//! Between checkpoints the tree mutates nodes in place (in memory) and
//! tracks which are dirty. A checkpoint performs a *path copy*: every dirty
//! node that has an on-disk incarnation is written to a **fresh** page id,
//! parents are rewritten to point at the new ids, and the old pages are
//! queued for reuse only after the next superblock is durable. Live on-disk
//! pages are therefore never overwritten, which is what makes any
//! prefix-consistent storage cut recoverable (DESIGN.md §5).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use tsuru_storage::BlockDevice;

use crate::io::{DbVol, IoRequest};
use crate::node::{Node, PageError, MAX_VALUE, PAGE_SIZE};

/// Allocates page ids; recycles pages freed by earlier checkpoints.
#[derive(Debug, Clone, Default)]
pub struct PageAllocator {
    next: u64,
    free: Vec<u64>,
    pending_free: Vec<u64>,
}

impl PageAllocator {
    /// An allocator whose first fresh page is `first_page`.
    pub fn new(first_page: u64) -> Self {
        PageAllocator {
            next: first_page,
            free: Vec::new(),
            pending_free: Vec::new(),
        }
    }

    /// Rebuild from superblock state.
    pub fn restore(next: u64, free: Vec<u64>) -> Self {
        PageAllocator {
            next,
            free,
            pending_free: Vec::new(),
        }
    }

    /// Allocate a page id.
    pub fn alloc(&mut self) -> u64 {
        self.free.pop().unwrap_or_else(|| {
            let id = self.next;
            self.next += 1;
            id
        })
    }

    /// Queue a page for reuse after the *next* checkpoint becomes durable
    /// (it may still be referenced by the current on-disk tree).
    pub fn free_later(&mut self, id: u64) {
        self.pending_free.push(id);
    }

    /// Called once the checkpoint superblock has been emitted: pages freed
    /// by that checkpoint become allocatable.
    pub fn promote_pending(&mut self) {
        self.free.append(&mut self.pending_free);
    }

    /// Highest page id ever allocated plus one.
    pub fn next_page(&self) -> u64 {
        self.next
    }

    /// Currently reusable page ids (persisted in the superblock).
    pub fn free_list(&self) -> &[u64] {
        &self.free
    }
}

/// The B+tree.
#[derive(Debug)]
pub struct BTree {
    nodes: BTreeMap<u64, Node>,
    root: u64,
    dirty: BTreeSet<u64>,
    on_disk: BTreeSet<u64>,
}

impl BTree {
    /// A new tree with a single empty leaf as root.
    pub fn new(alloc: &mut PageAllocator) -> Self {
        let root = alloc.alloc();
        let mut nodes = BTreeMap::new();
        nodes.insert(root, Node::empty_leaf());
        let mut dirty = BTreeSet::new();
        dirty.insert(root);
        BTree {
            nodes,
            root,
            dirty,
            on_disk: BTreeSet::new(),
        }
    }

    /// Root page id.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Number of nodes currently cached (== all nodes; the tree is fully
    /// memory-resident).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Are there unflushed changes?
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    fn node(&self, id: u64) -> &Node {
        self.nodes.get(&id).unwrap_or_else(|| panic!("btree node {id} missing from cache"))
    }

    // ----- reads -------------------------------------------------------------

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Leaf { entries } => {
                    return entries
                        .binary_search_by_key(&key, |(k, _)| *k)
                        .ok()
                        .map(|i| entries[i].1.as_slice());
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    id = children[idx];
                }
            }
        }
    }

    /// All `(key, value)` pairs with `lo <= key <= hi`, in key order.
    pub fn scan_range(&self, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        self.scan_into(self.root, lo, hi, &mut out);
        out
    }

    fn scan_into(&self, id: u64, lo: u64, hi: u64, out: &mut Vec<(u64, Vec<u8>)>) {
        match self.node(id) {
            Node::Leaf { entries } => {
                for (k, v) in entries {
                    if *k >= lo && *k <= hi {
                        out.push((*k, v.clone()));
                    }
                }
            }
            Node::Internal { keys, children } => {
                let first = keys.partition_point(|&k| k <= lo);
                let last = keys.partition_point(|&k| k <= hi);
                for child in &children[first..=last] {
                    self.scan_into(*child, lo, hi, out);
                }
            }
        }
    }

    /// Total number of entries (walks the tree; for tests and stats).
    pub fn len(&self) -> usize {
        fn count(t: &BTree, id: u64) -> usize {
            match t.node(id) {
                Node::Leaf { entries } => entries.len(),
                Node::Internal { children, .. } => {
                    children.iter().map(|&c| count(t, c)).sum()
                }
            }
        }
        count(self, self.root)
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ----- writes ------------------------------------------------------------

    /// Insert or overwrite a key.
    ///
    /// # Panics
    /// Panics if `value` exceeds [`MAX_VALUE`] bytes.
    pub fn put(&mut self, alloc: &mut PageAllocator, key: u64, value: Vec<u8>) {
        assert!(
            value.len() <= MAX_VALUE,
            "value of {} bytes exceeds MAX_VALUE ({MAX_VALUE})",
            value.len()
        );
        if let Some((sep, right)) = self.insert_rec(self.root, key, value, alloc) {
            // Root split: grow the tree by one level.
            let new_root = alloc.alloc();
            self.nodes.insert(
                new_root,
                Node::Internal {
                    keys: vec![sep],
                    children: vec![self.root, right],
                },
            );
            self.dirty.insert(new_root);
            self.root = new_root;
        }
    }

    /// Returns `Some((separator, new_right_id))` if the child split.
    fn insert_rec(
        &mut self,
        id: u64,
        key: u64,
        value: Vec<u8>,
        alloc: &mut PageAllocator,
    ) -> Option<(u64, u64)> {
        let descend = match self.nodes.get_mut(&id).expect("node in cache") {
            Node::Leaf { .. } => None,
            Node::Internal { keys, .. } => Some(keys.partition_point(|&k| k <= key)),
        };
        self.dirty.insert(id);
        if let Some(idx) = descend {
            let child = match self.node(id) {
                Node::Internal { children, .. } => children[idx],
                Node::Leaf { .. } => unreachable!(),
            };
            if let Some((sep, right)) = self.insert_rec(child, key, value, alloc) {
                if let Node::Internal { keys, children } =
                    self.nodes.get_mut(&id).expect("node in cache")
                {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                }
            }
        } else if let Node::Leaf { entries } = self.nodes.get_mut(&id).expect("node in cache") {
            match entries.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(i) => entries[i].1 = value,
                Err(i) => entries.insert(i, (key, value)),
            }
        }
        self.maybe_split(id, alloc)
    }

    /// Split `id` if it overflows a page; returns the promotion.
    fn maybe_split(&mut self, id: u64, alloc: &mut PageAllocator) -> Option<(u64, u64)> {
        if self.node(id).serialized_size() <= PAGE_SIZE {
            return None;
        }
        let right_id = alloc.alloc();
        let (sep, right) = match self.nodes.get_mut(&id).expect("node in cache") {
            Node::Leaf { entries } => {
                // Split at the byte midpoint so variably-sized values
                // balance reasonably.
                let total: usize = entries.iter().map(|(_, v)| 12 + v.len()).sum();
                let mut acc = 0usize;
                let mut cut = entries.len() / 2;
                for (i, (_, v)) in entries.iter().enumerate() {
                    acc += 12 + v.len();
                    if acc * 2 >= total {
                        cut = (i + 1).min(entries.len() - 1).max(1);
                        break;
                    }
                }
                let right_entries = entries.split_off(cut);
                let sep = right_entries[0].0;
                (
                    sep,
                    Node::Leaf {
                        entries: right_entries,
                    },
                )
            }
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let sep = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // `sep` moves up, not right
                let right_children = children.split_off(mid + 1);
                (
                    sep,
                    Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                )
            }
        };
        self.nodes.insert(right_id, right);
        self.dirty.insert(right_id);
        self.dirty.insert(id);
        Some((sep, right_id))
    }

    /// Remove a key; returns whether it existed. Leaves are not rebalanced
    /// on underflow (acceptable for the simulated working-set sizes; space
    /// is reclaimed when a checkpoint rewrites the page).
    pub fn delete(&mut self, key: u64) -> bool {
        let mut id = self.root;
        loop {
            match self.nodes.get_mut(&id).expect("node in cache") {
                Node::Leaf { entries } => {
                    return match entries.binary_search_by_key(&key, |(k, _)| *k) {
                        Ok(i) => {
                            entries.remove(i);
                            self.dirty.insert(id);
                            true
                        }
                        Err(_) => false,
                    };
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    id = children[idx];
                }
            }
        }
    }

    /// Rebuild the tree densely from its own entries, queueing every old
    /// page for reuse. Deletions leave underfilled leaves behind (the tree
    /// does not merge); a rebuild followed by a checkpoint reclaims that
    /// space — the engine's `VACUUM`.
    pub fn rebuild(&mut self, alloc: &mut PageAllocator) {
        let entries = self.scan_range(0, u64::MAX);
        for (&id, _) in self.nodes.iter() {
            if self.on_disk.contains(&id) {
                alloc.free_later(id);
            }
        }
        *self = BTree::new(alloc);
        for (k, v) in entries {
            self.put(alloc, k, v);
        }
    }

    // ----- checkpoint / load ---------------------------------------------------

    /// Shadow-paging flush: serialize every dirty node (and every ancestor
    /// of a remapped node) to fresh page ids, stamping them with `lsn`.
    /// Returns the page writes and updates the root id.
    pub fn checkpoint_flush(
        &mut self,
        alloc: &mut PageAllocator,
        lsn: u64,
    ) -> Vec<IoRequest> {
        let mut ios = Vec::new();
        let root = self.root;
        // One scratch page serves every node flushed this checkpoint.
        let mut scratch = vec![0u8; crate::node::PAGE_SIZE];
        let (new_root, _) = self.flush_rec(root, alloc, lsn, &mut ios, &mut scratch);
        self.root = new_root;
        self.dirty.clear();
        self.on_disk = self.nodes.keys().copied().collect();
        ios
    }

    /// Returns `(new_id, changed)`.
    fn flush_rec(
        &mut self,
        id: u64,
        alloc: &mut PageAllocator,
        lsn: u64,
        ios: &mut Vec<IoRequest>,
        scratch: &mut [u8],
    ) -> (u64, bool) {
        // Recurse into children first (post-order) so parents can pick up
        // remapped ids.
        let mut self_dirty = self.dirty.contains(&id);
        if let Node::Internal { children, .. } = self.node(id) {
            let child_ids = children.clone();
            let mut new_children = Vec::with_capacity(child_ids.len());
            let mut any_child_changed = false;
            for c in child_ids {
                let (nc, changed) = self.flush_rec(c, alloc, lsn, ios, scratch);
                any_child_changed |= changed;
                new_children.push(nc);
            }
            if any_child_changed {
                if let Node::Internal { children, .. } =
                    self.nodes.get_mut(&id).expect("node in cache")
                {
                    *children = new_children;
                }
                self_dirty = true;
            }
        }
        if !self_dirty {
            return (id, false);
        }
        // Path copy: a node with an on-disk incarnation moves to a fresh
        // page; a node born since the last checkpoint keeps its id.
        let new_id = if self.on_disk.contains(&id) {
            let fresh = alloc.alloc();
            alloc.free_later(id);
            let node = self.nodes.remove(&id).expect("node in cache");
            self.nodes.insert(fresh, node);
            fresh
        } else {
            id
        };
        self.node(new_id).serialize_into(new_id, lsn, scratch);
        ios.push(IoRequest {
            vol: DbVol::Data,
            lba: new_id,
            data: tsuru_storage::block_from(scratch),
        });
        // A rewritten node always reports "changed" so ancestors re-serialize
        // their (possibly updated) child lists.
        (new_id, true)
    }

    /// Load a tree from a device, starting at `root`. Every reachable page
    /// must be present and intact.
    pub fn load(dev: &dyn BlockDevice, root: u64) -> Result<(BTree, u64), PageError> {
        let mut nodes = BTreeMap::new();
        let mut max_lsn = 0u64;
        let mut queue = VecDeque::from([root]);
        while let Some(id) = queue.pop_front() {
            if nodes.contains_key(&id) {
                return Err(PageError::BadStructure(id, "page referenced twice"));
            }
            let buf = dev.read_block(id).ok_or(PageError::Missing(id))?;
            let (node, lsn) = Node::deserialize(&buf, id)?;
            max_lsn = max_lsn.max(lsn);
            if let Node::Internal { children, .. } = &node {
                queue.extend(children.iter().copied());
            }
            nodes.insert(id, node);
        }
        let on_disk = nodes.keys().copied().collect();
        Ok((
            BTree {
                nodes,
                root,
                dirty: BTreeSet::new(),
                on_disk,
            },
            max_lsn,
        ))
    }

    /// Check structural invariants (tests and recovery verification):
    /// sorted keys, correct fan-out, separator ordering, key ranges.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_rec(self.root, None, None)?;
        Ok(())
    }

    fn validate_rec(&self, id: u64, lo: Option<u64>, hi: Option<u64>) -> Result<(), String> {
        match self.nodes.get(&id) {
            None => Err(format!("node {id} missing")),
            Some(Node::Leaf { entries }) => {
                for w in entries.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return Err(format!("leaf {id} keys not strictly sorted"));
                    }
                }
                for (k, _) in entries {
                    if lo.is_some_and(|l| *k < l) || hi.is_some_and(|h| *k >= h) {
                        return Err(format!("leaf {id} key {k} outside range"));
                    }
                }
                Ok(())
            }
            Some(Node::Internal { keys, children }) => {
                if children.len() != keys.len() + 1 {
                    return Err(format!("internal {id} fan-out mismatch"));
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err(format!("internal {id} keys not strictly sorted"));
                    }
                }
                for (i, &child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    self.validate_rec(child, clo, chi)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsuru_storage::{BlockDeviceMut, MemDevice};

    fn tree() -> (BTree, PageAllocator) {
        let mut alloc = PageAllocator::new(1);
        let t = BTree::new(&mut alloc);
        (t, alloc)
    }

    #[test]
    fn put_get_overwrite_delete() {
        let (mut t, mut a) = tree();
        assert!(t.get(1).is_none());
        t.put(&mut a, 1, b"one".to_vec());
        t.put(&mut a, 2, b"two".to_vec());
        assert_eq!(t.get(1), Some(b"one".as_slice()));
        t.put(&mut a, 1, b"uno".to_vec());
        assert_eq!(t.get(1), Some(b"uno".as_slice()));
        assert!(t.delete(1));
        assert!(!t.delete(1));
        assert!(t.get(1).is_none());
        assert_eq!(t.get(2), Some(b"two".as_slice()));
        t.validate().unwrap();
    }

    #[test]
    fn thousands_of_keys_split_correctly() {
        let (mut t, mut a) = tree();
        let n = 5000u64;
        for i in 0..n {
            // Insert in a scrambled order to exercise splits everywhere.
            let k = (i * 2_654_435_761) % n;
            t.put(&mut a, k, k.to_le_bytes().to_vec());
        }
        t.validate().unwrap();
        assert!(t.node_count() > 10, "tree must actually have split");
        for i in 0..n {
            assert_eq!(
                t.get(i),
                Some(i.to_le_bytes().as_slice()),
                "key {i} lost"
            );
        }
        assert_eq!(t.len(), n as usize);
    }

    #[test]
    fn large_values_split_by_bytes() {
        let (mut t, mut a) = tree();
        for i in 0..64u64 {
            t.put(&mut a, i, vec![i as u8; 1000]);
        }
        t.validate().unwrap();
        for i in 0..64u64 {
            assert_eq!(t.get(i).unwrap().len(), 1000);
        }
    }

    #[test]
    #[should_panic(expected = "MAX_VALUE")]
    fn oversized_value_rejected() {
        let (mut t, mut a) = tree();
        t.put(&mut a, 1, vec![0; MAX_VALUE + 1]);
    }

    #[test]
    fn range_scan_is_ordered_and_bounded() {
        let (mut t, mut a) = tree();
        for i in (0..1000u64).rev() {
            t.put(&mut a, i * 2, vec![i as u8]);
        }
        let hits = t.scan_range(100, 200);
        let keys: Vec<u64> = hits.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (50..=100).map(|i| i * 2).collect::<Vec<_>>());
        // Full scan.
        assert_eq!(t.scan_range(0, u64::MAX).len(), 1000);
        // Empty scan.
        assert!(t.scan_range(1, 1).is_empty());
    }

    #[test]
    fn checkpoint_roundtrips_through_device() {
        let (mut t, mut a) = tree();
        for i in 0..2000u64 {
            t.put(&mut a, i, (i * 7).to_le_bytes().to_vec());
        }
        let ios = t.checkpoint_flush(&mut a, 99);
        assert!(!t.is_dirty());
        let mut dev = MemDevice::new(a.next_page());
        for io in &ios {
            assert_eq!(io.vol, DbVol::Data);
            dev.write_block(io.lba, &io.data);
        }
        let (loaded, max_lsn) = BTree::load(&dev, t.root()).unwrap();
        assert_eq!(max_lsn, 99);
        loaded.validate().unwrap();
        assert_eq!(loaded.len(), 2000);
        for i in 0..2000u64 {
            assert_eq!(loaded.get(i), Some((i * 7).to_le_bytes().as_slice()));
        }
    }

    #[test]
    fn shadow_paging_never_overwrites_live_pages() {
        let (mut t, mut a) = tree();
        for i in 0..500u64 {
            t.put(&mut a, i, vec![1]);
        }
        let ios1 = t.checkpoint_flush(&mut a, 1);
        let gen1_pages: BTreeSet<u64> = ios1.iter().map(|io| io.lba).collect();
        a.promote_pending(); // superblock 1 is durable

        // Modify a fraction of the keys and checkpoint again.
        for i in 0..50u64 {
            t.put(&mut a, i, vec![2]);
        }
        let ios2 = t.checkpoint_flush(&mut a, 2);
        let gen2_pages: BTreeSet<u64> = ios2.iter().map(|io| io.lba).collect();
        // No page of checkpoint 2 overwrites a live page of checkpoint 1.
        assert!(
            gen1_pages.is_disjoint(&gen2_pages),
            "checkpoint 2 overwrote live checkpoint-1 pages: {:?}",
            gen1_pages.intersection(&gen2_pages).collect::<Vec<_>>()
        );
        // And checkpoint 1's image alone is still fully loadable.
        let mut dev = MemDevice::new(a.next_page());
        for io in ios1.iter() {
            dev.write_block(io.lba, &io.data);
        }
        let root1 = ios1.last().expect("non-empty").lba; // root is written last (post-order)
        let (loaded, _) = BTree::load(&dev, root1).unwrap();
        loaded.validate().unwrap();
        assert_eq!(loaded.len(), 500);
    }

    #[test]
    fn incremental_checkpoint_only_rewrites_dirty_paths() {
        let (mut t, mut a) = tree();
        for i in 0..3000u64 {
            t.put(&mut a, i, vec![0u8; 32]);
        }
        let full = t.checkpoint_flush(&mut a, 1).len();
        a.promote_pending();
        // One point update: only the leaf path should be rewritten.
        t.put(&mut a, 1500, vec![9u8; 32]);
        let incremental = t.checkpoint_flush(&mut a, 2).len();
        assert!(
            incremental <= 4,
            "point update rewrote {incremental} pages (expected a root-to-leaf path)"
        );
        assert!(incremental < full / 10);
    }

    #[test]
    fn allocator_recycles_after_promote() {
        let mut a = PageAllocator::new(10);
        let p1 = a.alloc();
        assert_eq!(p1, 10);
        a.free_later(p1);
        // Not yet reusable.
        assert_eq!(a.alloc(), 11);
        a.promote_pending();
        assert_eq!(a.alloc(), 10);
        assert_eq!(a.next_page(), 12);
    }

    #[test]
    fn load_detects_missing_and_corrupt_pages() {
        let (mut t, mut a) = tree();
        for i in 0..300u64 {
            t.put(&mut a, i, vec![0u8; 64]);
        }
        let ios = t.checkpoint_flush(&mut a, 5);
        let mut dev = MemDevice::new(a.next_page());
        for io in &ios {
            dev.write_block(io.lba, &io.data);
        }
        // Corrupt one page.
        let victim = ios[0].lba;
        dev.corrupt(victim, 100);
        assert!(matches!(
            BTree::load(&dev, t.root()),
            Err(PageError::BadChecksum(p)) if p == victim
        ));
        // Drop it entirely.
        dev.drop_block(victim);
        assert!(matches!(
            BTree::load(&dev, t.root()),
            Err(PageError::Missing(p)) if p == victim
        ));
    }

    #[test]
    fn empty_tree_checkpoint_and_reload() {
        let (mut t, mut a) = tree();
        let ios = t.checkpoint_flush(&mut a, 0);
        assert_eq!(ios.len(), 1); // just the empty root leaf
        let mut dev = MemDevice::new(a.next_page());
        for io in &ios {
            dev.write_block(io.lba, &io.data);
        }
        let (loaded, _) = BTree::load(&dev, t.root()).unwrap();
        assert!(loaded.is_empty());
    }
}
