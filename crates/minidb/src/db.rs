//! The database façade: transactions, commit, checkpoint, recovery.
//!
//! MiniDB stands in for the paper's Oracle 23c instances. It is a
//! redo-only, no-steal engine over two volumes (WAL + data), whose entire
//! durability discipline is expressed as ordered [`IoPlan`] phases — see
//! `io.rs`. Crash recovery (`MiniDb::recover`) is the behavioural oracle of
//! the whole reproduction: it succeeds on every prefix-consistent backup
//! image and reports precisely which consistency property a collapsed image
//! violates.

use std::collections::BTreeMap;

use crate::btree::{BTree, PageAllocator};
use crate::io::{DbVol, IoPlan, IoRequest};
use crate::node::PageError;
use crate::superblock::Superblock;
use crate::wal::{scan_wal, WalOp, WalRecord, WalWriter};
use tsuru_storage::BlockDevice;

/// A table identifier chosen by the application (folded into tree keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u16);

/// A transaction handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId(pub u64);

const KEY_BITS: u32 = 48;
const KEY_MASK: u64 = (1 << KEY_BITS) - 1;

fn tree_key(table: TableId, key: u64) -> u64 {
    assert!(key <= KEY_MASK, "user key {key} exceeds 48 bits");
    ((table.0 as u64) << KEY_BITS) | key
}

/// Static configuration of one database instance.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Data volume size in blocks (pages).
    pub data_blocks: u64,
    /// WAL volume size in blocks.
    pub wal_blocks: u64,
    /// Checkpoint when WAL usage exceeds this fraction of capacity.
    pub checkpoint_threshold: f64,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            data_blocks: 4096,
            wal_blocks: 1024,
            checkpoint_threshold: 0.8,
        }
    }
}

/// Operation counters.
#[derive(Debug, Default, Clone)]
pub struct DbStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions.
    pub aborts: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// WAL bytes appended.
    pub wal_bytes_written: u64,
    /// Data-page writes emitted.
    pub page_writes: u64,
}

/// Why recovery failed — each variant is a distinct way a backup image can
/// betray write-order infidelity.
#[derive(Debug, Clone)]
pub enum RecoveryError {
    /// Superblock unreadable (missing / torn / corrupt).
    BadSuperblock(String),
    /// A tree page referenced by the superblock is missing or damaged.
    Page(PageError),
    /// A data page carries an LSN newer than anything the WAL can account
    /// for: the data volume ran ahead of the WAL volume — the smoking gun
    /// of a collapsed multi-volume backup.
    DataAheadOfWal {
        /// The offending page LSN.
        page_lsn: u64,
        /// Highest LSN the recovered WAL accounts for.
        wal_end: u64,
    },
    /// WAL records out of order or overlapping the checkpoint (engine bug
    /// or forged image).
    BadWal(String),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::BadSuperblock(why) => write!(f, "bad superblock: {why}"),
            RecoveryError::Page(e) => write!(f, "damaged tree page: {e}"),
            RecoveryError::DataAheadOfWal { page_lsn, wal_end } => write!(
                f,
                "data volume ahead of WAL (page lsn {page_lsn} > wal end {wal_end})"
            ),
            RecoveryError::BadWal(why) => write!(f, "bad WAL: {why}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What recovery found and did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// WAL epoch recovered into.
    pub epoch: u32,
    /// LSN covered by the checkpointed tree.
    pub ckpt_lsn: u64,
    /// Highest LSN made durable by the WAL (== recovered state).
    pub wal_end: u64,
    /// Committed transactions re-applied from the WAL.
    pub redo_records: usize,
    /// Tree pages loaded from the data volume.
    pub pages_loaded: usize,
}

#[derive(Debug)]
struct ActiveTx {
    ops: Vec<WalOp>,
    overlay: BTreeMap<u64, Option<Vec<u8>>>,
}

/// A MiniDB instance (fully memory-resident; durability via emitted I/O).
#[derive(Debug)]
pub struct MiniDb {
    name: String,
    config: DbConfig,
    tree: BTree,
    alloc: PageAllocator,
    wal: WalWriter,
    next_lsn: u64,
    next_txid: u64,
    ckpt_lsn: u64,
    active: BTreeMap<u64, ActiveTx>,
    stats: DbStats,
}

impl MiniDb {
    /// Create and format a new database. The returned [`IoPlan`] carries
    /// the initial image (root page, then superblock) that must be written
    /// to the volumes before the database is considered durable.
    pub fn create(name: impl Into<String>, config: DbConfig) -> (MiniDb, IoPlan) {
        assert!(config.data_blocks >= 8, "data volume too small");
        assert!(config.wal_blocks >= 2, "wal volume too small");
        assert!(
            (0.1..=0.95).contains(&config.checkpoint_threshold),
            "checkpoint threshold out of range"
        );
        let mut alloc = PageAllocator::new(1);
        let tree = BTree::new(&mut alloc);
        let mut db = MiniDb {
            name: name.into(),
            config,
            tree,
            alloc,
            wal: WalWriter::new(0, 1), // replaced below
            next_lsn: 1,
            next_txid: 1,
            ckpt_lsn: 0,
            active: BTreeMap::new(),
            stats: DbStats::default(),
        };
        db.wal = WalWriter::new(db.config.wal_blocks, 0);
        // The initial image is checkpoint #1 of an empty tree.
        let plan = db.checkpoint_plan();
        (db, plan)
    }

    /// Database name (for operator consoles and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// LSN of the last committed transaction (0 if none).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Current WAL usage as a fraction of capacity.
    pub fn wal_usage(&self) -> f64 {
        self.wal.used_bytes() as f64 / self.wal.capacity_bytes() as f64
    }

    // ----- transactions ---------------------------------------------------------

    /// Start a transaction.
    pub fn begin(&mut self) -> TxId {
        let id = self.next_txid;
        self.next_txid += 1;
        self.active.insert(
            id,
            ActiveTx {
                ops: Vec::new(),
                overlay: BTreeMap::new(),
            },
        );
        TxId(id)
    }

    fn tx_mut(&mut self, tx: TxId) -> &mut ActiveTx {
        self.active
            .get_mut(&tx.0)
            .expect("invariant: a TxId is minted by begin() and retired only at commit/abort")
    }

    /// Buffer a put in the transaction's write-set.
    pub fn put(&mut self, tx: TxId, table: TableId, key: u64, value: &[u8]) {
        let tk = tree_key(table, key);
        let t = self.tx_mut(tx);
        t.ops.push(WalOp {
            key: tk,
            value: Some(value.to_vec()),
        });
        t.overlay.insert(tk, Some(value.to_vec()));
    }

    /// Buffer a delete in the transaction's write-set.
    pub fn delete(&mut self, tx: TxId, table: TableId, key: u64) {
        let tk = tree_key(table, key);
        let t = self.tx_mut(tx);
        t.ops.push(WalOp { key: tk, value: None });
        t.overlay.insert(tk, None);
    }

    /// Read through the transaction (own writes first, then committed
    /// state).
    pub fn get(&self, tx: TxId, table: TableId, key: u64) -> Option<Vec<u8>> {
        let tk = tree_key(table, key);
        if let Some(t) = self.active.get(&tx.0) {
            if let Some(v) = t.overlay.get(&tk) {
                return v.clone();
            }
        }
        self.tree.get(tk).map(<[u8]>::to_vec)
    }

    /// Read committed state only.
    pub fn get_committed(&self, table: TableId, key: u64) -> Option<Vec<u8>> {
        self.tree.get(tree_key(table, key)).map(<[u8]>::to_vec)
    }

    /// All committed `(key, value)` pairs of a table, in key order.
    pub fn scan_table(&self, table: TableId) -> Vec<(u64, Vec<u8>)> {
        let lo = tree_key(table, 0);
        let hi = tree_key(table, KEY_MASK);
        self.tree
            .scan_range(lo, hi)
            .into_iter()
            .map(|(k, v)| (k & KEY_MASK, v))
            .collect()
    }

    /// Drop a transaction without any durable effect.
    pub fn abort(&mut self, tx: TxId) {
        self.active
            .remove(&tx.0)
            .unwrap_or_else(|| panic!("transaction {} is not active", tx.0));
        self.stats.aborts += 1;
    }

    /// Commit: apply the write-set to the tree, append one redo record, and
    /// return the ordered writes that make it durable. A commit whose WAL
    /// record would not fit triggers a checkpoint first (earlier phases of
    /// the same plan).
    pub fn commit(&mut self, tx: TxId) -> IoPlan {
        let t = self
            .active
            .remove(&tx.0)
            .expect("invariant: a TxId is minted by begin() and retired only at commit/abort");
        self.stats.commits += 1;
        if t.ops.is_empty() {
            return IoPlan::empty();
        }
        let record = WalRecord {
            lsn: self.next_lsn,
            txid: tx.0,
            ops: t.ops,
        };
        let mut plan = IoPlan::empty();
        let threshold =
            (self.wal.capacity_bytes() as f64 * self.config.checkpoint_threshold) as usize;
        if !self.wal.fits(&record) || self.wal.used_bytes() + record.encoded_len() > threshold {
            plan.extend(self.checkpoint_plan());
            assert!(
                self.wal.fits(&record),
                "single transaction larger than the WAL volume"
            );
        }
        // Apply to the in-memory tree; recovery redoes this from the WAL.
        for op in &record.ops {
            match &op.value {
                Some(v) => self.tree.put(&mut self.alloc, op.key, v.clone()),
                None => {
                    self.tree.delete(op.key);
                }
            }
        }
        self.next_lsn += 1;
        let wal_ios = self.wal.append(&record);
        self.stats.wal_bytes_written += record.encoded_len() as u64;
        plan.push_phase(wal_ios);
        plan
    }

    /// Take a checkpoint now (also invoked automatically by `commit`).
    pub fn checkpoint(&mut self) -> IoPlan {
        self.checkpoint_plan()
    }

    /// Rebuild the tree densely and checkpoint: reclaims the space that
    /// deletions leave in underfilled pages. Returns the ordered writes of
    /// the compact image.
    pub fn vacuum(&mut self) -> IoPlan {
        assert!(
            self.active.is_empty(),
            "vacuum requires no active transactions"
        );
        self.tree.rebuild(&mut self.alloc);
        self.checkpoint_plan()
    }

    /// Number of B+tree nodes currently resident (== pages the next full
    /// image would occupy).
    pub fn tree_nodes(&self) -> usize {
        self.tree.node_count()
    }

    fn checkpoint_plan(&mut self) -> IoPlan {
        let lsn = self.last_lsn();
        let data_ios = self.tree.checkpoint_flush(&mut self.alloc, lsn);
        self.stats.page_writes += data_ios.len() as u64;
        // Pages freed by this checkpoint become reusable once the
        // superblock is durable; the driver's phase barrier guarantees that
        // ordering, so promote before persisting the free list.
        self.alloc.promote_pending();
        let epoch = self.wal.epoch() + 1;
        let sb = Superblock {
            epoch,
            root: self.tree.root(),
            next_page: self.alloc.next_page(),
            ckpt_lsn: lsn,
            next_txid: self.next_txid,
            wal_blocks: self.config.wal_blocks,
            free_list: self.alloc.free_list().to_vec(),
        };
        assert!(
            self.alloc.next_page() <= self.config.data_blocks,
            "database outgrew its data volume ({} pages > {} blocks)",
            self.alloc.next_page(),
            self.config.data_blocks
        );
        let sb_io = IoRequest {
            vol: DbVol::Data,
            lba: 0,
            data: tsuru_storage::block_from(&sb.serialize()),
        };
        self.wal.reset(epoch);
        self.ckpt_lsn = lsn;
        self.stats.checkpoints += 1;
        let mut plan = IoPlan::empty();
        plan.push_phase(data_ios);
        plan.push_phase(vec![sb_io]);
        plan
    }

    // ----- recovery ---------------------------------------------------------------

    /// Open a database from the images of its two volumes (live volumes at
    /// the backup site, snapshot views, or test devices). Applies redo and
    /// verifies physical integrity.
    pub fn recover(
        name: impl Into<String>,
        wal_dev: &dyn BlockDevice,
        data_dev: &dyn BlockDevice,
        config: DbConfig,
    ) -> Result<(MiniDb, RecoveryReport), RecoveryError> {
        let sb_img = data_dev
            .read_block(0)
            .ok_or_else(|| RecoveryError::BadSuperblock("missing".into()))?;
        let sb = Superblock::deserialize(&sb_img).map_err(RecoveryError::BadSuperblock)?;

        let (mut tree, max_page_lsn) =
            BTree::load(data_dev, sb.root).map_err(RecoveryError::Page)?;
        let pages_loaded = tree.node_count();

        let records = scan_wal(wal_dev, sb.wal_blocks, sb.epoch);
        // Records must be strictly increasing and strictly newer than the
        // checkpoint they follow.
        let mut prev = sb.ckpt_lsn;
        for r in &records {
            if r.lsn <= prev {
                return Err(RecoveryError::BadWal(format!(
                    "record lsn {} not increasing past {prev}",
                    r.lsn
                )));
            }
            prev = r.lsn;
        }
        let wal_end = records.last().map(|r| r.lsn).unwrap_or(sb.ckpt_lsn);
        if max_page_lsn > wal_end {
            return Err(RecoveryError::DataAheadOfWal {
                page_lsn: max_page_lsn,
                wal_end,
            });
        }

        let mut alloc = PageAllocator::restore(sb.next_page, sb.free_list.clone());
        let mut max_txid = sb.next_txid;
        // Rebuild the WAL writer by replaying the surviving records so a
        // promoted backup can continue service exactly where the log ends.
        let mut wal = WalWriter::new(sb.wal_blocks, sb.epoch);
        for r in &records {
            for op in &r.ops {
                match &op.value {
                    Some(v) => tree.put(&mut alloc, op.key, v.clone()),
                    None => {
                        tree.delete(op.key);
                    }
                }
            }
            max_txid = max_txid.max(r.txid + 1);
            let _ = wal.append(r);
        }
        tree.validate()
            .map_err(|e| RecoveryError::BadWal(format!("post-redo validation: {e}")))?;

        let report = RecoveryReport {
            epoch: sb.epoch,
            ckpt_lsn: sb.ckpt_lsn,
            wal_end,
            redo_records: records.len(),
            pages_loaded,
        };
        let db = MiniDb {
            name: name.into(),
            config: DbConfig {
                wal_blocks: sb.wal_blocks,
                ..config
            },
            tree,
            alloc,
            wal,
            next_lsn: wal_end + 1,
            next_txid: max_txid,
            ckpt_lsn: sb.ckpt_lsn,
            active: BTreeMap::new(),
            stats: DbStats::default(),
        };
        Ok((db, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsuru_storage::{BlockDeviceMut, MemDevice};

    /// Apply a plan to devices immediately (a perfectly faithful "storage").
    fn apply(plan: &IoPlan, wal: &mut MemDevice, data: &mut MemDevice) {
        for phase in &plan.phases {
            for io in phase {
                match io.vol {
                    DbVol::Wal => wal.write_block(io.lba, &io.data),
                    DbVol::Data => data.write_block(io.lba, &io.data),
                }
            }
        }
    }

    fn fresh() -> (MiniDb, MemDevice, MemDevice) {
        let cfg = DbConfig {
            data_blocks: 2048,
            wal_blocks: 64,
            checkpoint_threshold: 0.8,
        };
        let (db, plan) = MiniDb::create("t", cfg.clone());
        let mut wal = MemDevice::new(cfg.wal_blocks);
        let mut data = MemDevice::new(cfg.data_blocks);
        apply(&plan, &mut wal, &mut data);
        (db, wal, data)
    }

    const T: TableId = TableId(1);

    #[test]
    fn commit_makes_data_visible() {
        let (mut db, _, _) = fresh();
        let tx = db.begin();
        db.put(tx, T, 1, b"hello");
        assert_eq!(db.get(tx, T, 1), Some(b"hello".to_vec()));
        assert_eq!(db.get_committed(T, 1), None, "not visible before commit");
        let _ = db.commit(tx);
        assert_eq!(db.get_committed(T, 1), Some(b"hello".to_vec()));
        assert_eq!(db.stats().commits, 1);
    }

    #[test]
    fn abort_discards_writes() {
        let (mut db, _, _) = fresh();
        let tx = db.begin();
        db.put(tx, T, 1, b"x");
        db.abort(tx);
        assert_eq!(db.get_committed(T, 1), None);
        assert_eq!(db.stats().aborts, 1);
    }

    #[test]
    fn transaction_reads_its_own_writes_and_deletes() {
        let (mut db, _, _) = fresh();
        let t0 = db.begin();
        db.put(t0, T, 5, b"committed");
        let _ = db.commit(t0);
        let tx = db.begin();
        assert_eq!(db.get(tx, T, 5), Some(b"committed".to_vec()));
        db.delete(tx, T, 5);
        assert_eq!(db.get(tx, T, 5), None, "own delete visible");
        assert_eq!(db.get_committed(T, 5), Some(b"committed".to_vec()));
        db.put(tx, T, 5, b"again");
        assert_eq!(db.get(tx, T, 5), Some(b"again".to_vec()));
        let _ = db.commit(tx);
        assert_eq!(db.get_committed(T, 5), Some(b"again".to_vec()));
    }

    #[test]
    fn tables_are_disjoint() {
        let (mut db, _, _) = fresh();
        let tx = db.begin();
        db.put(tx, TableId(1), 7, b"a");
        db.put(tx, TableId(2), 7, b"b");
        let _ = db.commit(tx);
        assert_eq!(db.get_committed(TableId(1), 7), Some(b"a".to_vec()));
        assert_eq!(db.get_committed(TableId(2), 7), Some(b"b".to_vec()));
        assert_eq!(db.scan_table(TableId(1)).len(), 1);
    }

    #[test]
    fn empty_commit_is_free() {
        let (mut db, _, _) = fresh();
        let tx = db.begin();
        let plan = db.commit(tx);
        assert!(plan.is_empty());
    }

    #[test]
    fn recover_empty_database() {
        let (db, wal, data) = fresh();
        let (rec, report) = MiniDb::recover("r", &wal, &data, db.config().clone()).unwrap();
        assert_eq!(report.redo_records, 0);
        assert!(rec.scan_table(T).is_empty());
    }

    #[test]
    fn recover_replays_committed_transactions() {
        let (mut db, mut wal, mut data) = fresh();
        for i in 0..50u64 {
            let tx = db.begin();
            db.put(tx, T, i, format!("value-{i}").as_bytes());
            let plan = db.commit(tx);
            apply(&plan, &mut wal, &mut data);
        }
        let (rec, report) = MiniDb::recover("r", &wal, &data, db.config().clone()).unwrap();
        assert_eq!(report.redo_records, 50);
        for i in 0..50u64 {
            assert_eq!(
                rec.get_committed(T, i),
                Some(format!("value-{i}").into_bytes())
            );
        }
        assert_eq!(rec.last_lsn(), db.last_lsn());
    }

    #[test]
    fn recover_across_checkpoints() {
        let (mut db, mut wal, mut data) = fresh();
        // Enough volume to force several automatic checkpoints (64-block
        // WAL at 0.8 threshold).
        for i in 0..1200u64 {
            let tx = db.begin();
            db.put(tx, T, i % 100, vec![(i % 251) as u8; 300].as_slice());
            let plan = db.commit(tx);
            apply(&plan, &mut wal, &mut data);
        }
        assert!(db.stats().checkpoints > 1, "expected automatic checkpoints");
        let (rec, _) = MiniDb::recover("r", &wal, &data, db.config().clone()).unwrap();
        for i in 0..100u64 {
            assert_eq!(rec.get_committed(T, i), db.get_committed(T, i), "key {i}");
        }
    }

    #[test]
    fn recovery_drops_uncommitted_tail() {
        let (mut db, mut wal, mut data) = fresh();
        let tx = db.begin();
        db.put(tx, T, 1, b"durable");
        apply(&db.commit(tx), &mut wal, &mut data);
        // Second commit's plan is produced but never reaches storage
        // (crash before the WAL write completed).
        let tx = db.begin();
        db.put(tx, T, 2, b"lost");
        let _unwritten = db.commit(tx);
        let (rec, report) = MiniDb::recover("r", &wal, &data, db.config().clone()).unwrap();
        assert_eq!(rec.get_committed(T, 1), Some(b"durable".to_vec()));
        assert_eq!(rec.get_committed(T, 2), None);
        assert_eq!(report.redo_records, 1);
    }

    #[test]
    fn recovered_database_can_continue_service() {
        let (mut db, mut wal, mut data) = fresh();
        for i in 0..20u64 {
            let tx = db.begin();
            db.put(tx, T, i, b"first-life");
            apply(&db.commit(tx), &mut wal, &mut data);
        }
        let (mut rec, _) = MiniDb::recover("r", &wal, &data, db.config().clone()).unwrap();
        // Continue committing on the recovered instance.
        for i in 20..40u64 {
            let tx = rec.begin();
            rec.put(tx, T, i, b"second-life");
            apply(&rec.commit(tx), &mut wal, &mut data);
        }
        let (rec2, _) = MiniDb::recover("r2", &wal, &data, rec.config().clone()).unwrap();
        assert_eq!(rec2.scan_table(T).len(), 40);
        assert_eq!(rec2.get_committed(T, 0), Some(b"first-life".to_vec()));
        assert_eq!(rec2.get_committed(T, 39), Some(b"second-life".to_vec()));
    }

    #[test]
    fn torn_wal_tail_recovers_prefix() {
        let (mut db, mut wal, mut data) = fresh();
        for i in 0..5u64 {
            let tx = db.begin();
            db.put(tx, T, i, b"v");
            apply(&db.commit(tx), &mut wal, &mut data);
        }
        let used_before = (db.wal_usage() * db.config().wal_blocks as f64 * 4096.0) as u64;
        let tx = db.begin();
        db.put(tx, T, 99, b"torn");
        let plan = db.commit(tx);
        // Corrupt the WAL write: apply, then flip a byte inside the new
        // record (14 bytes past its start, i.e. in the payload).
        apply(&plan, &mut wal, &mut data);
        let victim = used_before + 14;
        wal.corrupt(victim / 4096, (victim % 4096) as usize);
        let (rec, _) = MiniDb::recover("r", &wal, &data, db.config().clone()).unwrap();
        // The damaged record (and only it) is lost.
        assert_eq!(rec.get_committed(T, 99), None);
        assert_eq!(rec.get_committed(T, 4), Some(b"v".to_vec()));
    }

    #[test]
    fn missing_superblock_is_reported() {
        let (db, wal, mut data) = fresh();
        data.drop_block(0);
        match MiniDb::recover("r", &wal, &data, db.config().clone()) {
            Err(RecoveryError::BadSuperblock(w)) => assert!(w.contains("missing")),
            other => panic!("expected BadSuperblock, got {other:?}"),
        }
    }

    #[test]
    fn damaged_tree_page_is_reported() {
        let (mut db, mut wal, mut data) = fresh();
        for i in 0..300u64 {
            let tx = db.begin();
            db.put(tx, T, i, vec![0u8; 200].as_slice());
            apply(&db.commit(tx), &mut wal, &mut data);
        }
        apply(&db.checkpoint(), &mut wal, &mut data);
        // Find a data page other than the superblock and corrupt it.
        let sb = Superblock::deserialize(&data.read_block(0).unwrap()).unwrap();
        data.corrupt(sb.root, 50);
        match MiniDb::recover("r", &wal, &data, db.config().clone()) {
            Err(RecoveryError::Page(PageError::BadChecksum(p))) => assert_eq!(p, sb.root),
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    #[test]
    fn data_ahead_of_wal_is_detected() {
        // Build a database, checkpoint, commit more, checkpoint again —
        // then present the NEW data volume with the OLD wal volume, with a
        // forged superblock pointing at new pages but the old epoch... The
        // honest equivalent: replay data-volume writes fully but hold the
        // WAL volume at an earlier state *within the same epoch*. Since
        // epochs change at checkpoints, the in-epoch skew is: WAL blocks of
        // the current epoch missing while data pages (flushed at the *next*
        // checkpoint) present. Construct it directly: take the final image,
        // then erase the current epoch's WAL records.
        let (mut db, mut wal, mut data) = fresh();
        for i in 0..10u64 {
            let tx = db.begin();
            db.put(tx, T, i, b"a");
            apply(&db.commit(tx), &mut wal, &mut data);
        }
        apply(&db.checkpoint(), &mut wal, &mut data); // epoch bump, pages have lsn 10
        for i in 10..20u64 {
            let tx = db.begin();
            db.put(tx, T, i, b"b");
            apply(&db.commit(tx), &mut wal, &mut data);
        }
        apply(&db.checkpoint(), &mut wal, &mut data); // pages now carry lsn 20
        // Forge the collapse: superblock+pages of the last checkpoint, WAL
        // truncated to nothing, superblock epoch rolled back by hand is not
        // possible without breaking the CRC — so emulate the skewed cut by
        // rolling the superblock back to the previous checkpoint while the
        // data pages have already been recycled... Simplest honest vector:
        // pages with lsn 20 + superblock(epoch N) requires wal_end >= 20.
        // Wipe the WAL volume entirely: wal_end collapses to ckpt_lsn=20,
        // which is still consistent. So instead corrupt the page LSN path:
        // feed recover() a *stale* superblock with fresh pages.
        let stale_sb = {
            // Reconstruct the previous superblock (epoch-1) from history:
            // easiest is to recover the current image and then write a
            // superblock with ckpt_lsn rolled back.
            let cur = Superblock::deserialize(&data.read_block(0).unwrap()).unwrap();
            Superblock {
                ckpt_lsn: 5, // pretends the tree only covers lsn 5
                ..cur
            }
        };
        data.write_block(0, &stale_sb.serialize());
        // Erase the WAL so nothing can account for lsns 6..20.
        for b in 0..db.config().wal_blocks {
            wal.drop_block(b);
        }
        match MiniDb::recover("r", &wal, &data, db.config().clone()) {
            Err(RecoveryError::DataAheadOfWal { page_lsn, wal_end }) => {
                assert!(page_lsn > wal_end);
                assert_eq!(wal_end, 5);
            }
            other => panic!("expected DataAheadOfWal, got {other:?}"),
        }
    }

    #[test]
    fn deletes_survive_recovery() {
        let (mut db, mut wal, mut data) = fresh();
        let tx = db.begin();
        db.put(tx, T, 1, b"x");
        db.put(tx, T, 2, b"y");
        apply(&db.commit(tx), &mut wal, &mut data);
        let tx = db.begin();
        db.delete(tx, T, 1);
        apply(&db.commit(tx), &mut wal, &mut data);
        let (rec, _) = MiniDb::recover("r", &wal, &data, db.config().clone()).unwrap();
        assert_eq!(rec.get_committed(T, 1), None);
        assert_eq!(rec.get_committed(T, 2), Some(b"y".to_vec()));
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn oversized_user_key_rejected() {
        let (mut db, _, _) = fresh();
        let tx = db.begin();
        db.put(tx, T, 1 << 48, b"nope");
    }

    #[test]
    fn vacuum_reclaims_deleted_space() {
        let (mut db, mut wal, mut data) = fresh();
        for i in 0..3000u64 {
            let tx = db.begin();
            db.put(tx, T, i, &[7u8; 64]);
            apply(&db.commit(tx), &mut wal, &mut data);
        }
        apply(&db.checkpoint(), &mut wal, &mut data);
        let before = db.tree_nodes();
        // Delete 95% of the rows.
        for i in 0..2850u64 {
            let tx = db.begin();
            db.delete(tx, T, i);
            apply(&db.commit(tx), &mut wal, &mut data);
        }
        apply(&db.checkpoint(), &mut wal, &mut data);
        // Without merge, the tree stays bloated after deletions...
        assert!(db.tree_nodes() > before / 2);
        // ...until a vacuum rebuilds it densely.
        apply(&db.vacuum(), &mut wal, &mut data);
        assert!(
            db.tree_nodes() < before / 5,
            "vacuum should shrink {before} nodes to a handful, got {}",
            db.tree_nodes()
        );
        // The compact image recovers correctly.
        let (rec, _) = MiniDb::recover("r", &wal, &data, db.config().clone()).unwrap();
        assert_eq!(rec.scan_table(T).len(), 150);
        for i in 2850..3000u64 {
            assert_eq!(rec.get_committed(T, i), Some(vec![7u8; 64]));
        }
    }

    #[test]
    fn vacuum_then_continue_service() {
        let (mut db, mut wal, mut data) = fresh();
        for i in 0..100u64 {
            let tx = db.begin();
            db.put(tx, T, i, b"x");
            apply(&db.commit(tx), &mut wal, &mut data);
        }
        apply(&db.vacuum(), &mut wal, &mut data);
        let tx = db.begin();
        db.put(tx, T, 1000, b"after-vacuum");
        apply(&db.commit(tx), &mut wal, &mut data);
        let (rec, _) = MiniDb::recover("r", &wal, &data, db.config().clone()).unwrap();
        assert_eq!(rec.scan_table(T).len(), 101);
        assert_eq!(rec.get_committed(T, 1000), Some(b"after-vacuum".to_vec()));
    }

    #[test]
    #[should_panic(expected = "active transactions")]
    fn vacuum_rejects_active_transactions() {
        let (mut db, _, _) = fresh();
        let _tx = db.begin();
        let _ = db.vacuum();
    }

    #[test]
    fn wal_usage_reports_fill_level() {
        let (mut db, _, _) = fresh();
        assert_eq!(db.wal_usage(), 0.0);
        let tx = db.begin();
        db.put(tx, T, 1, &[0u8; 500]);
        let _ = db.commit(tx);
        assert!(db.wal_usage() > 0.0);
    }
}
