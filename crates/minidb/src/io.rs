//! I/O requests emitted by the database for the storage driver to execute.
//!
//! MiniDB is a *logical-execution / timed-I/O* engine (DESIGN.md §5.2): it
//! mutates its in-memory state synchronously and hands the resulting block
//! writes to the caller as ordered [`IoPlan`] phases. The driver (the
//! e-commerce workload in `tsuru-ecom` / `tsuru-core`) pushes those writes
//! through the simulated array with real timing, and the database's
//! durability discipline is encoded purely in the phase ordering:
//! *all writes of phase `k` must be acknowledged before any write of phase
//! `k + 1` is issued.*

use tsuru_storage::BlockBuf;

/// Which of the database's two volumes a write targets — matching the
/// paper's testbed where each Oracle instance keeps redo logs and data
/// files on separate LDEVs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbVol {
    /// The write-ahead-log volume.
    Wal,
    /// The data (pages) volume.
    Data,
}

/// One block write the driver must perform.
#[derive(Debug, Clone)]
pub struct IoRequest {
    /// Target volume.
    pub vol: DbVol,
    /// Target block.
    pub lba: u64,
    /// Full-block payload.
    pub data: BlockBuf,
}

/// An ordered sequence of write phases with a barrier between phases.
#[derive(Debug, Clone, Default)]
pub struct IoPlan {
    /// The phases; every phase is a set of writes that may be issued
    /// concurrently, but phase `k+1` may only start after phase `k` is
    /// fully acknowledged.
    pub phases: Vec<Vec<IoRequest>>,
}

impl IoPlan {
    /// An empty plan (nothing to write).
    pub fn empty() -> Self {
        IoPlan::default()
    }

    /// Append a phase (skipped if the phase has no writes).
    pub fn push_phase(&mut self, phase: Vec<IoRequest>) {
        if !phase.is_empty() {
            self.phases.push(phase);
        }
    }

    /// Total number of block writes across phases.
    pub fn total_writes(&self) -> usize {
        self.phases.iter().map(Vec::len).sum()
    }

    /// True when there is nothing to write.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Concatenate another plan after this one (its phases keep their
    /// internal ordering).
    pub fn extend(&mut self, other: IoPlan) {
        self.phases.extend(other.phases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsuru_storage::block_from;

    #[test]
    fn plan_building() {
        let mut plan = IoPlan::empty();
        assert!(plan.is_empty());
        plan.push_phase(vec![]); // empty phases are dropped
        assert!(plan.is_empty());
        plan.push_phase(vec![IoRequest {
            vol: DbVol::Wal,
            lba: 0,
            data: block_from(b"w"),
        }]);
        plan.push_phase(vec![
            IoRequest {
                vol: DbVol::Data,
                lba: 1,
                data: block_from(b"d1"),
            },
            IoRequest {
                vol: DbVol::Data,
                lba: 2,
                data: block_from(b"d2"),
            },
        ]);
        assert_eq!(plan.phases.len(), 2);
        assert_eq!(plan.total_writes(), 3);

        let mut head = IoPlan::empty();
        head.push_phase(vec![IoRequest {
            vol: DbVol::Data,
            lba: 9,
            data: block_from(b"x"),
        }]);
        head.extend(plan);
        assert_eq!(head.phases.len(), 3);
        assert_eq!(head.phases[0][0].lba, 9);
    }
}
