//! The superblock: data-volume page 0, root of all recovery.
//!
//! Rewritten once per checkpoint, strictly *after* that checkpoint's data
//! pages are durable (driver phase barrier), so a prefix-consistent cut
//! always contains a superblock whose whole tree is present.

use crate::checksum::crc32;
use crate::node::PAGE_SIZE;

const SB_MAGIC: u32 = 0x54_535542; // "TSUB"
const SB_VERSION: u32 = 1;
const CRC_OFFSET: usize = 56;
const FREE_LIST_OFFSET: usize = 64;
/// Maximum free-list entries persisted; extras are leaked (reported).
pub const MAX_FREE_LIST: usize = (PAGE_SIZE - FREE_LIST_OFFSET) / 8;

/// Superblock contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// WAL epoch (increments at every checkpoint).
    pub epoch: u32,
    /// Root page of the B+tree as of the last checkpoint.
    pub root: u64,
    /// Page-id bump-allocator watermark.
    pub next_page: u64,
    /// LSN through which the checkpointed tree is complete.
    pub ckpt_lsn: u64,
    /// Next transaction id to hand out.
    pub next_txid: u64,
    /// Size of the WAL volume in blocks.
    pub wal_blocks: u64,
    /// Reusable page ids.
    pub free_list: Vec<u64>,
}

impl Superblock {
    /// Serialize into a full page image. Free-list entries beyond
    /// [`MAX_FREE_LIST`] are dropped (leaked space, never corruption).
    pub fn serialize(&self) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        let put = |buf: &mut Vec<u8>, at: usize, src: &[u8]| {
            buf.get_mut(at..at + src.len())
                .expect("invariant: superblock layout fits one page")
                .copy_from_slice(src);
        };
        put(&mut buf, 0, &SB_MAGIC.to_le_bytes());
        put(&mut buf, 4, &SB_VERSION.to_le_bytes());
        put(&mut buf, 8, &self.epoch.to_le_bytes());
        let n = self.free_list.len().min(MAX_FREE_LIST) as u32;
        put(&mut buf, 12, &n.to_le_bytes());
        put(&mut buf, 16, &self.root.to_le_bytes());
        put(&mut buf, 24, &self.next_page.to_le_bytes());
        put(&mut buf, 32, &self.ckpt_lsn.to_le_bytes());
        put(&mut buf, 40, &self.next_txid.to_le_bytes());
        put(&mut buf, 48, &self.wal_blocks.to_le_bytes());
        let mut pos = FREE_LIST_OFFSET;
        for &p in self.free_list.iter().take(MAX_FREE_LIST) {
            put(&mut buf, pos, &p.to_le_bytes());
            pos += 8;
        }
        let crc = crc32(&buf);
        put(&mut buf, CRC_OFFSET, &crc.to_le_bytes());
        buf
    }

    /// Parse and verify a superblock image.
    pub fn deserialize(buf: &[u8]) -> Result<Superblock, String> {
        if buf.len() != PAGE_SIZE {
            return Err("superblock: short page".into());
        }
        let stored =
            u32::from_le_bytes(buf[CRC_OFFSET..CRC_OFFSET + 4].try_into().expect("sized"));
        let mut check = buf.to_vec();
        check[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&[0; 4]);
        if crc32(&check) != stored {
            return Err("superblock: checksum mismatch".into());
        }
        if u32::from_le_bytes(buf[0..4].try_into().expect("sized")) != SB_MAGIC {
            return Err("superblock: bad magic".into());
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().expect("sized"));
        if version != SB_VERSION {
            return Err(format!("superblock: unsupported version {version}"));
        }
        let epoch = u32::from_le_bytes(buf[8..12].try_into().expect("sized"));
        let n = u32::from_le_bytes(buf[12..16].try_into().expect("sized")) as usize;
        if n > MAX_FREE_LIST {
            return Err("superblock: free list overruns page".into());
        }
        let root = u64::from_le_bytes(buf[16..24].try_into().expect("sized"));
        let next_page = u64::from_le_bytes(buf[24..32].try_into().expect("sized"));
        let ckpt_lsn = u64::from_le_bytes(buf[32..40].try_into().expect("sized"));
        let next_txid = u64::from_le_bytes(buf[40..48].try_into().expect("sized"));
        let wal_blocks = u64::from_le_bytes(buf[48..56].try_into().expect("sized"));
        let mut free_list = Vec::with_capacity(n);
        let mut pos = FREE_LIST_OFFSET;
        for _ in 0..n {
            free_list.push(u64::from_le_bytes(
                buf[pos..pos + 8].try_into().expect("sized"),
            ));
            pos += 8;
        }
        Ok(Superblock {
            epoch,
            root,
            next_page,
            ckpt_lsn,
            next_txid,
            wal_blocks,
            free_list,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> Superblock {
        Superblock {
            epoch: 3,
            root: 17,
            next_page: 120,
            ckpt_lsn: 999,
            next_txid: 55,
            wal_blocks: 256,
            free_list: vec![4, 9, 12],
        }
    }

    #[test]
    fn roundtrip() {
        let s = sb();
        let buf = s.serialize();
        assert_eq!(Superblock::deserialize(&buf).unwrap(), s);
    }

    #[test]
    fn corruption_detected() {
        let mut buf = sb().serialize();
        buf[20] ^= 0xFF;
        assert!(Superblock::deserialize(&buf)
            .unwrap_err()
            .contains("checksum"));
    }

    #[test]
    fn garbage_rejected() {
        assert!(Superblock::deserialize(&vec![0u8; PAGE_SIZE]).is_err());
        assert!(Superblock::deserialize(&[1, 2, 3]).is_err());
    }

    #[test]
    fn free_list_truncated_at_capacity() {
        let mut s = sb();
        s.free_list = (0..MAX_FREE_LIST as u64 + 100).collect();
        let buf = s.serialize();
        let back = Superblock::deserialize(&buf).unwrap();
        assert_eq!(back.free_list.len(), MAX_FREE_LIST);
        assert_eq!(back.free_list[0], 0);
    }
}
