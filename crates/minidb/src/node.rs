//! On-disk node format for the B+tree: one node per 4 KiB page.
//!
//! Layout (little-endian):
//! ```text
//! magic u32 | kind u8 | pad u8 | count u16 | page_id u64 | lsn u64 | crc u32
//! leaf body:     count × (key u64 | vlen u32 | value bytes)
//! internal body: count × key u64, then (count + 1) × child page-id u64
//! ```
//! The CRC covers the whole page with the CRC field zeroed, so any torn or
//! misdirected write is detected at load time.

use crate::checksum::{crc32, crc32_update};
use tsuru_storage::BLOCK_SIZE;

/// Page size (equals the storage block size: one page = one block write).
pub const PAGE_SIZE: usize = BLOCK_SIZE;
/// Node header size in bytes.
pub const NODE_HEADER: usize = 28;
/// Maximum value size accepted by the tree; keeps every leaf ≥ 3 entries.
pub const MAX_VALUE: usize = 1024;

const NODE_MAGIC: u32 = 0x5442_5452; // "TBTR"
const KIND_LEAF: u8 = 1;
const KIND_INTERNAL: u8 = 2;
const CRC_OFFSET: usize = 24;

/// A B+tree node, in memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Sorted `(key, value)` entries.
    Leaf {
        /// Entries in strictly increasing key order.
        entries: Vec<(u64, Vec<u8>)>,
    },
    /// `keys.len() + 1` children; subtree `children[i]` holds keys
    /// `< keys[i]`, subtree `children[i+1]` holds keys `>= keys[i]`.
    Internal {
        /// Separator keys, strictly increasing.
        keys: Vec<u64>,
        /// Child page ids.
        children: Vec<u64>,
    },
}

/// Why a page failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// The block was never written.
    Missing(u64),
    /// CRC mismatch — torn or corrupted write.
    BadChecksum(u64),
    /// Magic/kind/self-id mismatch — the block is not the expected node.
    BadStructure(u64, &'static str),
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::Missing(p) => write!(f, "page {p} missing"),
            PageError::BadChecksum(p) => write!(f, "page {p} failed checksum"),
            PageError::BadStructure(p, why) => write!(f, "page {p} malformed: {why}"),
        }
    }
}

impl std::error::Error for PageError {}

impl Node {
    /// An empty leaf.
    pub fn empty_leaf() -> Node {
        Node::Leaf {
            entries: Vec::new(),
        }
    }

    /// True for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Serialized byte size (must stay ≤ [`PAGE_SIZE`]; the tree splits
    /// before that bound is exceeded).
    pub fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries } => {
                NODE_HEADER
                    + entries
                        .iter()
                        .map(|(_, v)| 8 + 4 + v.len())
                        .sum::<usize>()
            }
            Node::Internal { keys, children } => NODE_HEADER + keys.len() * 8 + children.len() * 8,
        }
    }

    /// Serialize into a full page image.
    ///
    /// # Panics
    /// Panics if the node exceeds the page (a tree-logic bug, not a runtime
    /// condition).
    pub fn serialize(&self, page_id: u64, lsn: u64) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.serialize_into(page_id, lsn, &mut buf);
        buf
    }

    /// Serialize into a caller-provided page buffer, overwriting it fully —
    /// a checkpoint reuses one scratch page for every flushed node instead
    /// of allocating per page.
    ///
    /// # Panics
    /// Panics if the node exceeds the page or `buf` is not page-sized.
    pub fn serialize_into(&self, page_id: u64, lsn: u64, buf: &mut [u8]) {
        assert!(
            self.serialized_size() <= PAGE_SIZE,
            "node for page {page_id} overflows the page"
        );
        assert_eq!(buf.len(), PAGE_SIZE, "page buffer must be page-sized");
        buf.fill(0);
        put(buf, 0, &NODE_MAGIC.to_le_bytes());
        let (kind, count) = match self {
            Node::Leaf { entries } => (KIND_LEAF, entries.len() as u16),
            Node::Internal { keys, .. } => (KIND_INTERNAL, keys.len() as u16),
        };
        put(buf, 4, &[kind]);
        put(buf, 6, &count.to_le_bytes());
        put(buf, 8, &page_id.to_le_bytes());
        put(buf, 16, &lsn.to_le_bytes());
        let mut pos = NODE_HEADER;
        match self {
            Node::Leaf { entries } => {
                for (k, v) in entries {
                    put(buf, pos, &k.to_le_bytes());
                    put(buf, pos + 8, &(v.len() as u32).to_le_bytes());
                    put(buf, pos + 12, v);
                    pos += 12 + v.len();
                }
            }
            Node::Internal { keys, children } => {
                for k in keys {
                    put(buf, pos, &k.to_le_bytes());
                    pos += 8;
                }
                for c in children {
                    put(buf, pos, &c.to_le_bytes());
                    pos += 8;
                }
            }
        }
        let crc = crc32(buf);
        put(buf, CRC_OFFSET, &crc.to_le_bytes());
    }

    /// Deserialize a page image, verifying checksum and identity.
    /// Returns the node and its on-disk LSN.
    pub fn deserialize(buf: &[u8], expect_page: u64) -> Result<(Node, u64), PageError> {
        if buf.len() != PAGE_SIZE {
            return Err(PageError::BadStructure(expect_page, "short page"));
        }
        let stored_crc =
            u32::from_le_bytes(buf[CRC_OFFSET..CRC_OFFSET + 4].try_into().expect("sized"));
        // The CRC covers the page with its own field zeroed; stream over
        // the surrounding spans instead of building a zeroed copy.
        let st = crc32_update(0xFFFF_FFFF, &buf[..CRC_OFFSET]);
        let st = crc32_update(st, &[0u8; 4]);
        let st = crc32_update(st, &buf[CRC_OFFSET + 4..]);
        if st ^ 0xFFFF_FFFF != stored_crc {
            return Err(PageError::BadChecksum(expect_page));
        }
        if u32::from_le_bytes(buf[0..4].try_into().expect("sized")) != NODE_MAGIC {
            return Err(PageError::BadStructure(expect_page, "bad magic"));
        }
        let kind = buf[4];
        let count = u16::from_le_bytes(buf[6..8].try_into().expect("sized")) as usize;
        let page_id = u64::from_le_bytes(buf[8..16].try_into().expect("sized"));
        if page_id != expect_page {
            return Err(PageError::BadStructure(expect_page, "page id mismatch"));
        }
        let lsn = u64::from_le_bytes(buf[16..24].try_into().expect("sized"));
        let mut pos = NODE_HEADER;
        let node = match kind {
            KIND_LEAF => {
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    if pos + 12 > PAGE_SIZE {
                        return Err(PageError::BadStructure(expect_page, "leaf truncated"));
                    }
                    let k = u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("sized"));
                    let vlen = u32::from_le_bytes(
                        buf[pos + 8..pos + 12].try_into().expect("sized"),
                    ) as usize;
                    if pos + 12 + vlen > PAGE_SIZE {
                        return Err(PageError::BadStructure(expect_page, "value truncated"));
                    }
                    entries.push((k, buf[pos + 12..pos + 12 + vlen].to_vec()));
                    pos += 12 + vlen;
                }
                Node::Leaf { entries }
            }
            KIND_INTERNAL => {
                if NODE_HEADER + count * 8 + (count + 1) * 8 > PAGE_SIZE {
                    return Err(PageError::BadStructure(expect_page, "internal truncated"));
                }
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(u64::from_le_bytes(
                        buf[pos..pos + 8].try_into().expect("sized"),
                    ));
                    pos += 8;
                }
                let mut children = Vec::with_capacity(count + 1);
                for _ in 0..=count {
                    children.push(u64::from_le_bytes(
                        buf[pos..pos + 8].try_into().expect("sized"),
                    ));
                    pos += 8;
                }
                Node::Internal { keys, children }
            }
            _ => return Err(PageError::BadStructure(expect_page, "unknown kind")),
        };
        Ok((node, lsn))
    }
}

/// Copy `src` into the page at `at`. The caller has already asserted the
/// serialized node fits the page, so an out-of-range span is a tree-logic bug.
fn put(buf: &mut [u8], at: usize, src: &[u8]) {
    buf.get_mut(at..at + src.len())
        .expect("invariant: serialized node fits the page (asserted by caller)")
        .copy_from_slice(src);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let node = Node::Leaf {
            entries: vec![(1, b"one".to_vec()), (5, b"five".to_vec()), (9, vec![])],
        };
        let buf = node.serialize(7, 42);
        assert_eq!(buf.len(), PAGE_SIZE);
        let (back, lsn) = Node::deserialize(&buf, 7).unwrap();
        assert_eq!(back, node);
        assert_eq!(lsn, 42);
    }

    #[test]
    fn internal_roundtrip() {
        let node = Node::Internal {
            keys: vec![10, 20, 30],
            children: vec![100, 200, 300, 400],
        };
        let buf = node.serialize(3, 9);
        let (back, lsn) = Node::deserialize(&buf, 3).unwrap();
        assert_eq!(back, node);
        assert_eq!(lsn, 9);
    }

    #[test]
    fn checksum_catches_corruption() {
        let node = Node::Leaf {
            entries: vec![(1, vec![1, 2, 3])],
        };
        let mut buf = node.serialize(1, 1);
        buf[NODE_HEADER + 2] ^= 0xFF;
        assert_eq!(Node::deserialize(&buf, 1), Err(PageError::BadChecksum(1)));
    }

    #[test]
    fn wrong_page_id_is_a_misdirected_write() {
        let node = Node::empty_leaf();
        let buf = node.serialize(5, 0);
        match Node::deserialize(&buf, 6) {
            Err(PageError::BadStructure(6, why)) => assert!(why.contains("mismatch")),
            other => panic!("expected structure error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_rejected() {
        let buf = vec![0xABu8; PAGE_SIZE];
        assert!(Node::deserialize(&buf, 0).is_err());
        let short = vec![0u8; 100];
        assert!(matches!(
            Node::deserialize(&short, 0),
            Err(PageError::BadStructure(0, _))
        ));
    }

    #[test]
    fn serialized_size_is_exact_for_leaves() {
        let mut entries = Vec::new();
        for i in 0..10u64 {
            entries.push((i, vec![0u8; i as usize * 10]));
        }
        let node = Node::Leaf { entries };
        // Size formula matches reality: serialize succeeds iff it fits.
        assert!(node.serialized_size() < PAGE_SIZE);
        let _ = node.serialize(0, 0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_node_panics_on_serialize() {
        let node = Node::Leaf {
            entries: (0..10u64).map(|i| (i, vec![0u8; 500])).collect(),
        };
        assert!(node.serialized_size() > PAGE_SIZE);
        let _ = node.serialize(0, 0);
    }

    #[test]
    fn display_of_errors() {
        assert_eq!(PageError::Missing(3).to_string(), "page 3 missing");
        assert!(PageError::BadChecksum(4).to_string().contains("checksum"));
    }
}
