//! Property-based crash-recovery testing.
//!
//! The fundamental durability contract of MiniDB (and the property the
//! paper's consistency groups preserve end-to-end): if storage applies any
//! *prefix* of the database's ordered I/O stream — a crash at an arbitrary
//! point — then recovery succeeds and yields exactly the state after some
//! prefix of the committed transactions, including at least every
//! transaction whose I/O plan was fully acknowledged.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tsuru_minidb::{DbConfig, DbVol, IoPlan, MiniDb, TableId};
use tsuru_storage::{BlockDevice, BlockDeviceMut, MemDevice};

const T: TableId = TableId(7);

#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Delete(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..48, prop::collection::vec(any::<u8>(), 0..240))
            .prop_map(|(k, v)| Op::Put(k, v)),
        1 => (0u64..48).prop_map(Op::Delete),
    ]
}

fn txn_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(op_strategy(), 1..4)
}

/// Flatten a plan into a totally ordered I/O list. Within a phase the order
/// is arbitrary in reality, so we shuffle it with a seeded RNG; across
/// phases the barrier is preserved.
fn flatten(plan: &IoPlan, rng: &mut tsuru_sim::DetRng) -> Vec<tsuru_minidb::IoRequest> {
    let mut out = Vec::new();
    for phase in &plan.phases {
        let mut phase: Vec<_> = phase.clone();
        rng.shuffle(&mut phase);
        out.extend(phase);
    }
    out
}

fn apply(io: &tsuru_minidb::IoRequest, wal: &mut MemDevice, data: &mut MemDevice) {
    match io.vol {
        DbVol::Wal => wal.write_block(io.lba, &io.data),
        DbVol::Data => data.write_block(io.lba, &io.data),
    }
}

/// Model state after the first `m` transactions.
fn model_after(txns: &[Vec<Op>], m: usize) -> BTreeMap<u64, Vec<u8>> {
    let mut state = BTreeMap::new();
    for txn in &txns[..m] {
        for op in txn {
            match op {
                Op::Put(k, v) => {
                    state.insert(*k, v.clone());
                }
                Op::Delete(k) => {
                    state.remove(k);
                }
            }
        }
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn recovery_from_any_io_prefix_is_a_committed_prefix(
        txns in prop::collection::vec(txn_strategy(), 1..80),
        crash_frac in 0.0f64..1.0,
        shuffle_seed in any::<u64>(),
    ) {
        let cfg = DbConfig { data_blocks: 4096, wal_blocks: 16, checkpoint_threshold: 0.7 };
        let (mut db, create_plan) = MiniDb::create("prop", cfg.clone());
        let mut wal = MemDevice::new(cfg.wal_blocks);
        let mut data = MemDevice::new(cfg.data_blocks);
        // Setup image is fully durable before the workload starts.
        for phase in &create_plan.phases {
            for io in phase {
                apply(io, &mut wal, &mut data);
            }
        }

        let mut rng = tsuru_sim::DetRng::new(shuffle_seed);
        let mut stream = Vec::new();
        let mut commit_end = Vec::new(); // stream index after which txn i is durable
        for txn in &txns {
            let tx = db.begin();
            for op in txn {
                match op {
                    Op::Put(k, v) => db.put(tx, T, *k, v),
                    Op::Delete(k) => db.delete(tx, T, *k),
                }
            }
            let plan = db.commit(tx);
            stream.extend(flatten(&plan, &mut rng));
            commit_end.push(stream.len());
        }

        // Crash: only the first `k` I/Os reach storage.
        let k = ((stream.len() as f64) * crash_frac) as usize;
        for io in &stream[..k] {
            apply(io, &mut wal, &mut data);
        }

        let (rec, report) = MiniDb::recover("rec", &wal, &data, cfg)
            .expect("recovery must succeed on any I/O prefix");

        // Recovered state is the state after the first M transactions,
        // where M = recovered last LSN (each txn is one record, lsn = i+1).
        let m = rec.last_lsn() as usize;
        prop_assert!(m <= txns.len(), "recovered more txns than committed");

        // Durability: every fully-acknowledged transaction must survive.
        let fully_acked = commit_end.iter().filter(|&&e| e <= k).count();
        prop_assert!(
            m >= fully_acked,
            "lost acked transactions: recovered {m}, acked {fully_acked}"
        );

        let expect = model_after(&txns, m);
        let got: BTreeMap<u64, Vec<u8>> = rec.scan_table(T).into_iter().collect();
        prop_assert_eq!(got, expect, "state mismatch at prefix {}", m);
        // Report sanity.
        prop_assert_eq!(report.wal_end, rec.last_lsn());
    }

    /// A crash can leave the *last* WAL block half-written — the classic
    /// torn tail. Model it as prefix-of-new-bytes + suffix-of-old-bytes:
    /// the drive wrote the first `cut` bytes of the new block image and
    /// lost power. Recovery must still succeed, keep every transaction
    /// that was fully durable before the torn write, and land on a clean
    /// committed prefix.
    #[test]
    fn recovery_survives_a_torn_wal_tail(
        txns in prop::collection::vec(txn_strategy(), 2..40),
        tear_at in any::<prop::sample::Index>(),
        cut_at in any::<prop::sample::Index>(),
        shuffle_seed in any::<u64>(),
    ) {
        let cfg = DbConfig { data_blocks: 4096, wal_blocks: 16, checkpoint_threshold: 0.7 };
        let (mut db, create_plan) = MiniDb::create("torn", cfg.clone());
        let mut wal = MemDevice::new(cfg.wal_blocks);
        let mut data = MemDevice::new(cfg.data_blocks);
        for phase in &create_plan.phases {
            for io in phase {
                apply(io, &mut wal, &mut data);
            }
        }

        let mut rng = tsuru_sim::DetRng::new(shuffle_seed);
        let mut stream = Vec::new();
        let mut commit_end = Vec::new();
        for txn in &txns {
            let tx = db.begin();
            for op in txn {
                match op {
                    Op::Put(k, v) => db.put(tx, T, *k, v),
                    Op::Delete(k) => db.delete(tx, T, *k),
                }
            }
            let plan = db.commit(tx);
            stream.extend(flatten(&plan, &mut rng));
            commit_end.push(stream.len());
        }

        // Pick a WAL write to tear.
        let wal_ios: Vec<usize> = stream
            .iter()
            .enumerate()
            .filter(|(_, io)| matches!(io.vol, DbVol::Wal))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!wal_ios.is_empty());
        let t = wal_ios[tear_at.index(wal_ios.len())];

        // Everything before the torn write lands intact…
        for io in &stream[..t] {
            apply(io, &mut wal, &mut data);
        }
        // …then the torn write: only the first `cut` bytes of the new
        // block image reach the medium, the rest keeps its old content.
        let io = &stream[t];
        let cut = 1 + cut_at.index(io.data.len().saturating_sub(1).max(1));
        let mut torn = wal
            .read_block(io.lba)
            .map(|b| b.to_vec())
            .unwrap_or_else(|| vec![0u8; io.data.len()]);
        torn.resize(io.data.len(), 0);
        torn[..cut].copy_from_slice(&io.data[..cut]);
        wal.write_block(io.lba, &torn);

        let (rec, report) = MiniDb::recover("torn-rec", &wal, &data, cfg)
            .expect("recovery must survive a torn WAL tail");

        let m = rec.last_lsn() as usize;
        prop_assert!(m <= txns.len(), "recovered more txns than committed");
        // Every transaction fully durable *before* the torn write survives.
        let fully_acked = commit_end.iter().filter(|&&e| e <= t).count();
        prop_assert!(
            m >= fully_acked,
            "torn tail lost durable transactions: recovered {m}, durable {fully_acked}"
        );
        let expect = model_after(&txns, m);
        let got: BTreeMap<u64, Vec<u8>> = rec.scan_table(T).into_iter().collect();
        prop_assert_eq!(got, expect, "state mismatch at prefix {}", m);
        prop_assert_eq!(report.wal_end, rec.last_lsn());
    }

    #[test]
    fn btree_matches_model_under_random_ops(
        ops in prop::collection::vec(op_strategy(), 1..600),
    ) {
        let cfg = DbConfig { data_blocks: 8192, wal_blocks: 64, checkpoint_threshold: 0.8 };
        let (mut db, _) = MiniDb::create("model", cfg);
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            let tx = db.begin();
            match op {
                Op::Put(k, v) => {
                    db.put(tx, T, *k, v);
                    model.insert(*k, v.clone());
                }
                Op::Delete(k) => {
                    db.delete(tx, T, *k);
                    model.remove(k);
                }
            }
            let _ = db.commit(tx);
        }
        let got: BTreeMap<u64, Vec<u8>> = db.scan_table(T).into_iter().collect();
        prop_assert_eq!(got, model);
    }
}
