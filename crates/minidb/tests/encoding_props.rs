//! Property tests of the on-disk encodings: node pages, WAL records and
//! superblocks must round-trip for arbitrary content, and every single-bit
//! corruption must be detected.

use proptest::prelude::*;
use tsuru_minidb::{encode_record, Node, Superblock, WalOp, WalRecord};

fn wal_record_strategy() -> impl Strategy<Value = WalRecord> {
    (
        1u64..u64::MAX / 2,
        any::<u64>(),
        prop::collection::vec(
            (any::<u64>(), prop::option::of(prop::collection::vec(any::<u8>(), 0..200))),
            0..12,
        ),
    )
        .prop_map(|(lsn, txid, ops)| WalRecord {
            lsn,
            txid,
            ops: ops
                .into_iter()
                .map(|(key, value)| WalOp { key, value })
                .collect(),
        })
}

fn leaf_strategy() -> impl Strategy<Value = Node> {
    prop::collection::btree_map(any::<u64>(), prop::collection::vec(any::<u8>(), 0..100), 0..25)
        .prop_map(|m| Node::Leaf {
            entries: m.into_iter().collect(),
        })
}

fn internal_strategy() -> impl Strategy<Value = Node> {
    prop::collection::btree_set(any::<u64>(), 1..40).prop_flat_map(|keys| {
        let n = keys.len();
        prop::collection::vec(any::<u64>(), n + 1..=n + 1).prop_map(move |children| {
            Node::Internal {
                keys: keys.iter().copied().collect(),
                children,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wal_records_roundtrip_and_length_matches(rec in wal_record_strategy()) {
        let encoded = encode_record(7, &rec);
        prop_assert_eq!(encoded.len(), rec.encoded_len());
        // Round-trip through a scan over a device image.
        use tsuru_storage::{BlockDeviceMut, MemDevice};
        let blocks = encoded.len().div_ceil(4096).max(1) as u64;
        let mut dev = MemDevice::new(blocks);
        let mut image = encoded.clone();
        image.resize(blocks as usize * 4096, 0);
        for b in 0..blocks {
            dev.write_block(b, &image[b as usize * 4096..(b as usize + 1) * 4096]);
        }
        let scanned = tsuru_minidb::scan_wal(&dev, blocks, 7);
        prop_assert_eq!(scanned.len(), 1);
        prop_assert_eq!(&scanned[0], &rec);
        // Wrong epoch: invisible.
        prop_assert!(tsuru_minidb::scan_wal(&dev, blocks, 8).is_empty());
    }

    #[test]
    fn wal_bit_flips_are_detected(rec in wal_record_strategy(), flip in any::<prop::sample::Index>()) {
        let mut encoded = encode_record(3, &rec);
        let i = flip.index(encoded.len());
        encoded[i] ^= 0x01;
        use tsuru_storage::{BlockDeviceMut, MemDevice};
        let blocks = encoded.len().div_ceil(4096).max(1) as u64;
        let mut dev = MemDevice::new(blocks);
        let mut image = encoded.clone();
        image.resize(blocks as usize * 4096, 0);
        for b in 0..blocks {
            dev.write_block(b, &image[b as usize * 4096..(b as usize + 1) * 4096]);
        }
        let scanned = tsuru_minidb::scan_wal(&dev, blocks, 3);
        // A flipped record must never decode to something different.
        if let Some(got) = scanned.first() {
            prop_assert_eq!(got, &rec, "corruption yielded a different record");
        }
    }

    #[test]
    fn leaf_nodes_roundtrip(node in leaf_strategy()) {
        prop_assume!(node.serialized_size() <= tsuru_minidb::PAGE_SIZE);
        let buf = node.serialize(9, 42);
        let (back, lsn) = Node::deserialize(&buf, 9).unwrap();
        prop_assert_eq!(back, node);
        prop_assert_eq!(lsn, 42);
    }

    #[test]
    fn internal_nodes_roundtrip(node in internal_strategy()) {
        prop_assume!(node.serialized_size() <= tsuru_minidb::PAGE_SIZE);
        let buf = node.serialize(3, 7);
        let (back, _) = Node::deserialize(&buf, 3).unwrap();
        prop_assert_eq!(back, node);
    }

    #[test]
    fn node_bit_flips_are_detected(node in leaf_strategy(), flip in any::<prop::sample::Index>()) {
        prop_assume!(node.serialized_size() <= tsuru_minidb::PAGE_SIZE);
        let mut buf = node.serialize(1, 1);
        let i = flip.index(buf.len());
        buf[i] ^= 0x10;
        // Either rejected, or (if the flip hit truly dead padding whose bits
        // are covered by the CRC — impossible) identical. CRC covers the
        // whole page, so any flip must be rejected.
        prop_assert!(Node::deserialize(&buf, 1).is_err());
    }

    #[test]
    fn superblock_roundtrips(
        epoch in any::<u32>(),
        root in any::<u64>(),
        next_page in any::<u64>(),
        ckpt_lsn in any::<u64>(),
        next_txid in any::<u64>(),
        wal_blocks in any::<u64>(),
        free_list in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let sb = Superblock {
            epoch, root, next_page, ckpt_lsn, next_txid, wal_blocks, free_list,
        };
        let buf = sb.serialize();
        let back = Superblock::deserialize(&buf).unwrap();
        prop_assert_eq!(back, sb);
    }

    #[test]
    fn superblock_bit_flips_are_detected(flip in any::<prop::sample::Index>()) {
        let sb = Superblock {
            epoch: 5, root: 10, next_page: 99, ckpt_lsn: 1234,
            next_txid: 55, wal_blocks: 64, free_list: vec![1, 2, 3],
        };
        let mut buf = sb.serialize();
        let i = flip.index(buf.len());
        buf[i] ^= 0x01;
        prop_assert!(Superblock::deserialize(&buf).is_err());
    }
}
