//! # tsuru-nso — the namespace operator
//!
//! The paper's own contribution (§III-B1): an operator that watches
//! namespaces for the backup tag (`tsuru.io/backup=ConsistentCopyToCloud`,
//! Fig. 3), extracts every claim in the tagged namespace, and creates the
//! `ReplicationGroup` + `VolumeReplication` custom resources that drive the
//! Replication Plug-in — automating asynchronous-data-copy configuration
//! *including the consistency-group setting* without any knowledge of the
//! external storage system. Untagging tears the configuration down again.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tsuru_container::{
    ApiServer, ObjectMeta, Reconciler, ReplicationGroup, ReplicationMode, ReplicationState,
    VolumeReplication, BACKUP_TAG_KEY, BACKUP_TAG_VALUE,
};
use tsuru_storage::StorageWorld;

/// Operator policy.
#[derive(Debug, Clone)]
pub struct NsoConfig {
    /// Request one consistency group per namespace (the paper's design).
    /// `false` reproduces the naive per-volume replication for the
    /// collapse ablation (experiment E2).
    pub consistency_group: bool,
    /// Replication mode for tagged namespaces.
    pub mode: ReplicationMode,
}

impl Default for NsoConfig {
    fn default() -> Self {
        NsoConfig {
            consistency_group: true,
            mode: ReplicationMode::Async,
        }
    }
}

/// The namespace operator.
#[derive(Debug)]
pub struct NamespaceOperator {
    /// Policy.
    pub config: NsoConfig,
    /// Namespaces configured over this operator's lifetime.
    pub namespaces_configured: u64,
    /// Namespaces torn down.
    pub namespaces_torn_down: u64,
}

impl NamespaceOperator {
    /// An operator with the given policy.
    pub fn new(config: NsoConfig) -> Self {
        NamespaceOperator {
            config,
            namespaces_configured: 0,
            namespaces_torn_down: 0,
        }
    }

    /// The ReplicationGroup CR name used for a namespace.
    pub fn group_name(ns: &str) -> String {
        format!("{ns}-backup")
    }

    /// The VolumeReplication CR name used for a claim.
    pub fn replication_name(pvc: &str) -> String {
        format!("{pvc}-repl")
    }
}

impl Reconciler<StorageWorld> for NamespaceOperator {
    fn name(&self) -> &str {
        "namespace-operator"
    }

    fn reconcile(&mut self, api: &mut ApiServer, _st: &mut StorageWorld) {
        let namespaces: Vec<(String, bool)> = api
            .namespaces
            .list()
            .map(|ns| {
                let tagged = ns.meta.labels.get(BACKUP_TAG_KEY).map(String::as_str)
                    == Some(BACKUP_TAG_VALUE);
                (ns.meta.name.clone(), tagged)
            })
            .collect();

        for (ns, tagged) in namespaces {
            let rg_name = Self::group_name(&ns);
            let rg_key = format!("{ns}/{rg_name}");
            if tagged {
                // Extract every claim in the namespace (§II: "the operator
                // identifies the data volumes related to the business
                // process").
                let mut members: Vec<String> = api
                    .pvcs
                    .list_namespace(&ns)
                    .map(|pvc| pvc.meta.name.clone())
                    .collect();
                members.sort();

                if !api.replication_groups.contains(&rg_key) {
                    api.replication_groups.create(ReplicationGroup {
                        meta: ObjectMeta::namespaced(&ns, &rg_name),
                        mode: self.config.mode,
                        consistency_group: self.config.consistency_group,
                        member_pvcs: members.clone(),
                        state: ReplicationState::Unknown,
                        group_handles: Vec::new(),
                    });
                    self.namespaces_configured += 1;
                    api.record_event(
                        format!("Namespace/{ns}"),
                        "BackupConfigured",
                        format!(
                            "tag {BACKUP_TAG_VALUE} observed; replication group \
                             created for {} volume(s)",
                            members.len()
                        ),
                    );
                } else {
                    // Membership follows the namespace's current claims.
                    api.replication_groups.update(&rg_key, |rg| {
                        if rg.member_pvcs != members {
                            rg.member_pvcs = members.clone();
                            true
                        } else {
                            false
                        }
                    });
                }

                for pvc in &members {
                    let vr_name = Self::replication_name(pvc);
                    let vr_key = format!("{ns}/{vr_name}");
                    if !api.replications.contains(&vr_key) {
                        api.replications.create(VolumeReplication {
                            meta: ObjectMeta::namespaced(&ns, &vr_name),
                            source_pvc: pvc.clone(),
                            group_name: rg_name.clone(),
                            state: ReplicationState::Unknown,
                            pair_handle: None,
                        });
                    }
                }
            } else if api.replication_groups.contains(&rg_key) {
                // Untagged: tear down this namespace's replication CRs.
                let vr_keys: Vec<String> = api
                    .replications
                    .list_namespace(&ns)
                    .filter(|vr| vr.group_name == rg_name)
                    .map(|vr| vr.meta.key())
                    .collect();
                for key in vr_keys {
                    api.replications.delete(&key);
                }
                api.replication_groups.delete(&rg_key);
                self.namespaces_torn_down += 1;
                api.record_event(
                    format!("Namespace/{ns}"),
                    "BackupRemoved",
                    "backup tag removed; replication configuration deleted",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsuru_container::{ClaimPhase, ControllerManager, Namespace, PersistentVolumeClaim};
    use tsuru_storage::EngineConfig;

    fn world() -> StorageWorld {
        StorageWorld::new(1, EngineConfig::default())
    }

    fn api_with_namespace(tagged: bool, pvcs: &[&str]) -> ApiServer {
        let mut api = ApiServer::new();
        let mut meta = ObjectMeta::cluster("shop");
        if tagged {
            meta = meta.with_label(BACKUP_TAG_KEY, BACKUP_TAG_VALUE);
        }
        api.namespaces.create(Namespace { meta });
        for name in pvcs {
            api.pvcs.create(PersistentVolumeClaim {
                meta: ObjectMeta::namespaced("shop", *name),
                storage_class: "tsuru-block".into(),
                size_blocks: 64,
                phase: ClaimPhase::Pending,
                volume_name: None,
            });
        }
        api
    }

    #[test]
    fn tagging_creates_group_and_replications() {
        let mut api = api_with_namespace(true, &["sales-data", "sales-wal", "stock-data"]);
        let mut st = world();
        let mut nso = NamespaceOperator::new(NsoConfig::default());
        let report =
            ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut nso], 10);
        assert!(report.converged);
        let rg = api.replication_groups.get("shop/shop-backup").unwrap();
        assert!(rg.consistency_group);
        assert_eq!(rg.member_pvcs, vec!["sales-data", "sales-wal", "stock-data"]);
        assert_eq!(api.replications.len(), 3);
        assert!(api.replications.contains("shop/sales-data-repl"));
        assert_eq!(nso.namespaces_configured, 1);
    }

    #[test]
    fn untagged_namespace_is_left_alone() {
        let mut api = api_with_namespace(false, &["sales-data"]);
        let mut st = world();
        let mut nso = NamespaceOperator::new(NsoConfig::default());
        ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut nso], 10);
        assert_eq!(api.replication_groups.len(), 0);
        assert_eq!(api.replications.len(), 0);
    }

    #[test]
    fn wrong_tag_value_is_ignored() {
        let mut api = ApiServer::new();
        api.namespaces.create(Namespace {
            meta: ObjectMeta::cluster("shop").with_label(BACKUP_TAG_KEY, "SomethingElse"),
        });
        let mut st = world();
        let mut nso = NamespaceOperator::new(NsoConfig::default());
        ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut nso], 10);
        assert_eq!(api.replication_groups.len(), 0);
    }

    #[test]
    fn untagging_tears_down() {
        let mut api = api_with_namespace(true, &["a", "b"]);
        let mut st = world();
        let mut nso = NamespaceOperator::new(NsoConfig::default());
        ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut nso], 10);
        assert_eq!(api.replications.len(), 2);
        // Remove the tag.
        api.namespaces.update("shop", |ns| {
            ns.meta.labels.remove(BACKUP_TAG_KEY);
            true
        });
        ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut nso], 10);
        assert_eq!(api.replication_groups.len(), 0);
        assert_eq!(api.replications.len(), 0);
        assert_eq!(nso.namespaces_torn_down, 1);
    }

    #[test]
    fn new_claims_join_the_group() {
        let mut api = api_with_namespace(true, &["a"]);
        let mut st = world();
        let mut nso = NamespaceOperator::new(NsoConfig::default());
        ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut nso], 10);
        api.pvcs.create(PersistentVolumeClaim {
            meta: ObjectMeta::namespaced("shop", "late"),
            storage_class: "tsuru-block".into(),
            size_blocks: 64,
            phase: ClaimPhase::Pending,
            volume_name: None,
        });
        ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut nso], 10);
        let rg = api.replication_groups.get("shop/shop-backup").unwrap();
        assert_eq!(rg.member_pvcs, vec!["a", "late"]);
        assert!(api.replications.contains("shop/late-repl"));
    }

    #[test]
    fn naive_policy_is_recorded_on_the_cr() {
        let mut api = api_with_namespace(true, &["a"]);
        let mut st = world();
        let mut nso = NamespaceOperator::new(NsoConfig {
            consistency_group: false,
            mode: ReplicationMode::Async,
        });
        ControllerManager::run_to_convergence(&mut api, &mut st, &mut [&mut nso], 10);
        assert!(
            !api.replication_groups
                .get("shop/shop-backup")
                .unwrap()
                .consistency_group
        );
    }
}
