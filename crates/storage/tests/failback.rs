//! Failover → repair → failback: the full disaster-recovery round trip.
//!
//! The paper demonstrates failover readiness; real deployments also need
//! the way back. This exercises the extension: after promoting the backup
//! site, the repaired original site becomes the replication *target* of a
//! reversed consistency group, catches up, and can itself survive a
//! failure of the (formerly backup) site.

use tsuru_sim::{Sim, SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::engine::host_write;
use tsuru_storage::{
    block_from, ArrayPerf, EngineConfig, GroupState, HasStorage, StorageWorld, VolumeRole,
    WriteAck,
};

struct World {
    st: StorageWorld,
    acks: u64,
    rejected: u64,
}

impl HasStorage for World {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

#[test]
fn full_disaster_recovery_round_trip() {
    let mut st = StorageWorld::new(11, EngineConfig::default());
    let main = st.add_array("vsp-main", ArrayPerf::default());
    let backup = st.add_array("vsp-backup", ArrayPerf::default());
    let link = st.add_link(LinkConfig::metro());
    let rev = st.add_link(LinkConfig::metro());

    let g = st.create_adc_group("cg", link, rev, 1 << 24);
    let p1 = st.create_volume(main, "v1", 256);
    let p2 = st.create_volume(main, "v2", 256);
    let s1 = st.create_volume(backup, "v1r", 256);
    let s2 = st.create_volume(backup, "v2r", 256);
    st.add_pair(g, p1, s1);
    st.add_pair(g, p2, s2);

    let mut world = World {
        st,
        acks: 0,
        rejected: 0,
    };
    let mut sim: Sim<World> = Sim::new();

    // Phase 1: normal operation, then disaster.
    for i in 0..100u64 {
        let vol = if i % 2 == 0 { p1 } else { p2 };
        sim.schedule_at(SimTime::from_nanos(i * 100_000), move |w: &mut World, sim| {
            host_write(w, sim, vol, i / 2, block_from(&i.to_le_bytes()), |w, _, ack| {
                if ack.is_persisted() {
                    w.acks += 1;
                }
            });
        });
    }
    sim.schedule_at(SimTime::from_millis(6), move |w: &mut World, sim| {
        w.st.fail_array(main, sim.now());
    });
    sim.run_until(&mut world, SimTime::from_millis(100));
    world.st.promote_group(g);
    assert!(world.st.verify_consistency(&[g]).is_consistent());
    assert_eq!(world.st.fabric.group(g).state, GroupState::Promoted);

    // Phase 2: business continues at the backup site (promoted volumes are
    // writable now).
    for i in 100..160u64 {
        let vol = if i % 2 == 0 { s1 } else { s2 };
        sim.schedule_at(
            SimTime::from_millis(100) + tsuru_sim::SimDuration::from_nanos((i - 100) * 100_000),
            move |w: &mut World, sim| {
                host_write(w, sim, vol, i / 2, block_from(&i.to_le_bytes()), |w, _, ack| {
                    match ack {
                        WriteAck::Failed(_) => w.rejected += 1,
                        _ => w.acks += 1,
                    }
                });
            },
        );
    }
    sim.run_until(&mut world, SimTime::from_millis(150));
    assert_eq!(world.rejected, 0, "promoted volumes accept writes");

    // Phase 3: the original site is repaired; reverse protection.
    world.st.array_mut(main).recover();
    let back_link = world.st.add_link(LinkConfig::metro());
    let back_rev = world.st.add_link(LinkConfig::metro());
    let rg = world
        .st
        .establish_reverse_group(g, back_link, back_rev, 1 << 24);
    // The original volumes are now fenced replication targets.
    assert_eq!(
        world.st.array(main).volume(p1.volume).role(),
        VolumeRole::Secondary
    );

    // Phase 4: more business at the (new) primary site; replication flows
    // backwards.
    for i in 160..220u64 {
        let vol = if i % 2 == 0 { s1 } else { s2 };
        sim.schedule_at(
            SimTime::from_millis(150) + tsuru_sim::SimDuration::from_nanos((i - 160) * 100_000),
            move |w: &mut World, sim| {
                host_write(w, sim, vol, i / 2, block_from(&i.to_le_bytes()), |w, _, ack| {
                    if ack.is_persisted() {
                        w.acks += 1;
                    }
                });
            },
        );
    }
    sim.run(&mut world);

    // The original site caught up: content matches the promoted site.
    for (promoted, original) in [(s1, p1), (s2, p2)] {
        assert_eq!(
            world
                .st
                .array(backup)
                .volume(promoted.volume)
                .content_hashes(),
            world
                .st
                .array(main)
                .volume(original.volume)
                .content_hashes(),
            "failback target must converge to the promoted content"
        );
    }
    let rep = world.st.verify_consistency(&[rg]);
    assert!(rep.is_consistent(), "{rep:?}");

    // Phase 5: the reversed protection actually protects — fail the
    // (formerly backup) site and promote the original one again.
    let fail2 = sim.now();
    world.st.fail_array(backup, fail2);
    sim.run_until(&mut world, fail2 + SimDuration::from_millis(100));
    world.st.promote_group(rg);
    assert!(world.st.verify_consistency(&[rg]).is_consistent());
    assert_eq!(
        world.st.array(main).volume(p1.volume).role(),
        VolumeRole::Primary,
        "original volumes writable again after the second failover"
    );
}

#[test]
#[should_panic(expected = "must be recovered")]
fn failback_requires_a_repaired_array() {
    let mut st = StorageWorld::new(1, EngineConfig::default());
    let main = st.add_array("m", ArrayPerf::default());
    let backup = st.add_array("b", ArrayPerf::default());
    let link = st.add_link(LinkConfig::metro());
    let rev = st.add_link(LinkConfig::metro());
    let g = st.create_adc_group("g", link, rev, 1 << 20);
    let p = st.create_volume(main, "p", 16);
    let s = st.create_volume(backup, "s", 16);
    st.add_pair(g, p, s);
    st.fail_array(main, SimTime::from_secs(1));
    st.promote_group(g);
    // Array still failed: failback must refuse.
    let _ = st.establish_reverse_group(g, link, rev, 1 << 20);
}

#[test]
#[should_panic(expected = "requires a promoted group")]
fn failback_requires_a_promoted_group() {
    let mut st = StorageWorld::new(1, EngineConfig::default());
    let main = st.add_array("m", ArrayPerf::default());
    let backup = st.add_array("b", ArrayPerf::default());
    let link = st.add_link(LinkConfig::metro());
    let rev = st.add_link(LinkConfig::metro());
    let g = st.create_adc_group("g", link, rev, 1 << 20);
    let p = st.create_volume(main, "p", 16);
    let s = st.create_volume(backup, "s", 16);
    st.add_pair(g, p, s);
    let _ = st.establish_reverse_group(g, link, rev, 1 << 20);
}
