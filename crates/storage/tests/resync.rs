//! Suspension and resynchronisation: operator suspend, link-down suspend,
//! delta vs full resync, and epoch safety against in-flight frames.

use tsuru_sim::{Sim, SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::engine::{host_write, kick_all_pumps};
use tsuru_storage::{
    block_from, ArrayId, ArrayPerf, EngineConfig, GroupId, HasStorage, StorageWorld, VolRef,
};

struct World {
    st: StorageWorld,
}
impl HasStorage for World {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

struct Rig {
    world: World,
    sim: Sim<World>,
    main: ArrayId,
    backup: ArrayId,
    p: [VolRef; 2],
    s: [VolRef; 2],
    g: GroupId,
}

fn rig(seed: u64) -> Rig {
    let mut st = StorageWorld::new(seed, EngineConfig::default());
    let main = st.add_array("m", ArrayPerf::default());
    let backup = st.add_array("b", ArrayPerf::default());
    let link = st.add_link(LinkConfig::metro());
    let rev = st.add_link(LinkConfig::metro());
    let g = st.create_adc_group("cg", link, rev, 1 << 24);
    let p0 = st.create_volume(main, "p0", 512);
    let p1 = st.create_volume(main, "p1", 512);
    let s0 = st.create_volume(backup, "s0", 512);
    let s1 = st.create_volume(backup, "s1", 512);
    // Pre-populate so a full resync would copy many blocks.
    for lba in 0..200 {
        st.write_direct(p0, lba, &lba.to_le_bytes());
        st.write_direct(p1, lba, &lba.to_le_bytes());
    }
    st.add_pair(g, p0, s0);
    st.add_pair(g, p1, s1);
    Rig {
        world: World { st },
        sim: Sim::new(),
        main,
        backup,
        p: [p0, p1],
        s: [s0, s1],
        g,
    }
}

fn write_at(sim: &mut Sim<World>, at: SimTime, vol: VolRef, lba: u64, tag: u64) {
    sim.schedule_at(at, move |w: &mut World, sim| {
        host_write(w, sim, vol, lba, block_from(&tag.to_le_bytes()), |_, _, _| {});
    });
}

#[test]
fn delta_resync_copies_only_the_dirty_set() {
    let mut r = rig(1);
    // Normal replication for a while.
    for i in 0..50u64 {
        write_at(&mut r.sim, SimTime::from_nanos(i * 100_000), r.p[i as usize % 2], i, i);
    }
    r.sim.run(&mut r.world);

    // Operator suspends; a handful of writes land while split.
    r.world.st.suspend_group(r.g, r.sim.now());
    let base = r.sim.now();
    for i in 0..12u64 {
        write_at(
            &mut r.sim,
            base + SimDuration::from_nanos((i + 1) * 100_000),
            r.p[i as usize % 2],
            300 + i,
            1000 + i,
        );
    }
    r.sim.run(&mut r.world);
    // The backup did not advance while suspended.
    assert!(r.world.st.read_direct(r.s[0], 300).is_none());

    let report = r.world.st.resync_group(r.g);
    assert!(report.delta, "suspended group gets a delta resync");
    assert!(
        report.blocks_copied >= 12 && report.blocks_copied < 50,
        "only the dirty set is copied, not all ~250 blocks: {report:?}"
    );
    // Content converged.
    for i in 0..2 {
        assert_eq!(
            r.world.st.array(r.main).volume(r.p[i].volume).content_hashes(),
            r.world
                .st
                .array(r.backup)
                .volume(r.s[i].volume)
                .content_hashes()
        );
    }
    // And replication works again in the new epoch.
    let now = r.sim.now();
    for i in 0..20u64 {
        write_at(&mut r.sim, now + SimDuration::from_nanos((i + 1) * 100_000), r.p[0], i, 2000 + i);
    }
    r.sim.run(&mut r.world);
    assert_eq!(
        r.world.st.array(r.main).volume(r.p[0].volume).content_hashes(),
        r.world
            .st
            .array(r.backup)
            .volume(r.s[0].volume)
            .content_hashes()
    );
    let rep = r.world.st.verify_consistency(&[r.g]);
    assert!(rep.is_consistent(), "{rep:?}");
}

#[test]
fn resync_of_active_group_is_a_full_copy() {
    let mut r = rig(2);
    let report = r.world.st.resync_group(r.g);
    assert!(!report.delta);
    assert_eq!(report.blocks_copied, 400, "two volumes × 200 blocks");
}

#[test]
fn stale_in_flight_frames_are_discarded_after_resync() {
    // Slow link so frames are in flight when we suspend + resync.
    let mut st = StorageWorld::new(3, EngineConfig::default());
    let main = st.add_array("m", ArrayPerf::default());
    let backup = st.add_array("b", ArrayPerf::default());
    let link = st.add_link(LinkConfig::with(SimDuration::from_millis(50), 10_000_000));
    let rev = st.add_link(LinkConfig::with(SimDuration::from_millis(50), 10_000_000));
    let g = st.create_adc_group("cg", link, rev, 1 << 24);
    let p = st.create_volume(main, "p", 512);
    let s = st.create_volume(backup, "s", 512);
    st.add_pair(g, p, s);
    let mut world = World { st };
    let mut sim: Sim<World> = Sim::new();
    for i in 0..40u64 {
        sim.schedule_at(SimTime::from_nanos(i * 100_000), move |w: &mut World, sim| {
            host_write(w, sim, p, i, block_from(&i.to_le_bytes()), |_, _, _| {});
        });
    }
    // Suspend + resync at 10 ms: frames offered before that are still on
    // the 50 ms wire and must be dropped on arrival (old generation).
    sim.schedule_at(SimTime::from_millis(10), move |w: &mut World, sim| {
        w.st.suspend_group(g, sim.now());
        let report = w.st.resync_group(g);
        assert!(report.delta);
        kick_all_pumps(w, sim);
    });
    sim.run(&mut world);
    // No out-of-order panic, and the end state is exact + consistent.
    assert_eq!(
        world.st.array(main).volume(p.volume).content_hashes(),
        world.st.array(backup).volume(s.volume).content_hashes()
    );
    let rep = world.st.verify_consistency(&[g]);
    assert!(rep.is_consistent(), "{rep:?}");
}

#[test]
fn generation_bumps_on_resync_and_promote() {
    let mut r = rig(4);
    assert_eq!(r.world.st.fabric.group(r.g).generation, 0);
    r.world.st.suspend_group(r.g, SimTime::from_secs(1));
    r.world.st.resync_group(r.g);
    assert_eq!(r.world.st.fabric.group(r.g).generation, 1);
    r.world.st.fail_array(r.main, SimTime::from_secs(2));
    r.world.st.promote_group(r.g);
    assert_eq!(r.world.st.fabric.group(r.g).generation, 2);
}

#[test]
fn dirty_tracking_starts_at_suspension_only() {
    let mut r = rig(5);
    for i in 0..10u64 {
        write_at(&mut r.sim, SimTime::from_nanos(i * 100_000), r.p[0], i, i);
    }
    r.sim.run(&mut r.world);
    // Active writes do not populate the dirty set.
    let pid = r.world.st.fabric.group(r.g).pairs[0];
    assert!(r.world.st.fabric.pair(pid).dirty_since_suspend.is_empty());
    r.world.st.suspend_group(r.g, r.sim.now());
    let now = r.sim.now();
    write_at(&mut r.sim, now + SimDuration::from_millis(1), r.p[0], 77, 77);
    r.sim.run(&mut r.world);
    assert!(r.world.st.fabric.pair(pid).dirty_since_suspend.contains(&77));
}
