//! Link-fault regression tests: parked transfer pumps across indefinite
//! outages, and lossy/flapping links never reordering journal apply.
//!
//! These cover the two seams the chaos engine leans on hardest:
//!
//! - `TransferOutcome::Down(None)` parks the transfer pump, and only a new
//!   append or an explicit kick restarts it — every heal path must go
//!   through [`heal_link`]/[`heal_all_links`] or a silent group stays
//!   silent forever;
//! - random frame loss and scheduled outages force retransmissions, which
//!   must never let a later journal entry overtake an earlier one (the
//!   backup journal asserts contiguous sequence numbers on arrival).

#![allow(clippy::field_reassign_with_default)]

use proptest::prelude::*;
use tsuru_sim::{Sim, SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::engine::{heal_link, host_write};
use tsuru_storage::{
    block_from, ArrayPerf, EngineConfig, GroupId, HasStorage, StorageWorld, VolRef,
};

struct World {
    st: StorageWorld,
}

impl HasStorage for World {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

struct Rig {
    world: World,
    sim: Sim<World>,
    group: GroupId,
    link: tsuru_simnet::LinkId,
    primaries: Vec<VolRef>,
}

/// Two arrays, one ADC consistency group with two pairs over `link_cfg`.
fn rig(seed: u64, config: EngineConfig, link_cfg: LinkConfig) -> Rig {
    let mut st = StorageWorld::new(seed, config);
    let main = st.add_array("vsp-main", ArrayPerf::default());
    let backup = st.add_array("vsp-backup", ArrayPerf::default());
    let link = st.add_link(link_cfg);
    let reverse = st.add_link(LinkConfig::metro());
    let group = st.create_adc_group("g", link, reverse, 1 << 24);
    let mut primaries = Vec::new();
    for i in 0..2u64 {
        let p = st.create_volume(main, &format!("p{i}"), 64);
        let s = st.create_volume(backup, &format!("s{i}"), 64);
        st.add_pair(group, p, s);
        primaries.push(p);
    }
    Rig {
        world: World { st },
        sim: Sim::new(),
        group,
        link,
        primaries,
    }
}

fn write_at(sim: &mut Sim<World>, at: SimTime, vol: VolRef, lba: u64, tag: u64) {
    sim.schedule_at(at, move |w: &mut World, sim| {
        host_write(w, sim, vol, lba, block_from(&tag.to_le_bytes()), |_, _, _| {});
    });
}

fn assert_group_consistent(r: &Rig) {
    let report = r.world.st.verify_consistency(&[r.group]);
    assert!(
        report.prefix.consistent,
        "prefix violations: {:?}",
        report.prefix.violations
    );
    assert!(
        report.content_mismatches.is_empty(),
        "content mismatches: {:?}",
        report.content_mismatches
    );
}

/// Regression for the parked-pump path: a group that goes completely
/// silent during an indefinite outage (no further appends) must resume
/// draining when the link heals — `heal_link` kicks the parked pump.
#[test]
fn silent_group_resumes_after_indefinite_outage_heal() {
    let mut r = rig(7, EngineConfig::default(), LinkConfig::metro());
    let [p0, p1] = [r.primaries[0], r.primaries[1]];

    // A few replicated writes, fully drained.
    for i in 0..4 {
        write_at(&mut r.sim, SimTime::from_millis(i), p0, i, 100 + i);
        write_at(&mut r.sim, SimTime::from_millis(i), p1, i, 200 + i);
    }
    r.sim.run_until(&mut r.world, SimTime::from_millis(20));

    // Indefinite partition, then more writes while down. The transfer
    // pump observes Down(None) and parks; after the last ack the group is
    // silent.
    let now = r.sim.now();
    r.world.st.net.link_mut(r.link).set_down(now, None);
    for i in 4..8 {
        write_at(&mut r.sim, SimTime::from_millis(16 + i), p0, i, 100 + i);
        write_at(&mut r.sim, SimTime::from_millis(16 + i), p1, i, 200 + i);
    }
    r.sim.run_until(&mut r.world, SimTime::from_millis(200));
    assert_eq!(r.sim.pending(), 0, "group should be fully silent (parked)");

    let g = r.world.st.fabric.group(r.group);
    assert!(!g.pump_scheduled, "pump must be parked during the outage");
    let jnl = r.world.st.fabric.journal(g.primary_jnl.unwrap());
    assert!(
        !jnl.peek_unsent(1, u64::MAX).is_empty(),
        "outage-era writes must be stuck in the primary journal"
    );

    // Heal through the public API: link up + kick. The backlog drains with
    // no new appends needed.
    heal_link(&mut r.world, &mut r.sim, r.link);
    r.sim.run(&mut r.world);

    let jnl = r.world.st.fabric.journal(
        r.world.st.fabric.group(r.group).primary_jnl.unwrap(),
    );
    assert!(jnl.is_empty(), "journal must drain after heal");
    assert_group_consistent(&r);
    for i in 0..8u64 {
        assert_eq!(
            &r.world.st.read_direct(r.primaries[0], i).unwrap()[..8],
            &(100 + i).to_le_bytes(),
        );
    }
}

/// Without the kick a parked pump really does stay parked — this pins the
/// hazard the heal API exists to fix (and documents why `Link::set_up`
/// alone is not a heal).
#[test]
fn set_up_alone_leaves_pump_parked() {
    let mut r = rig(8, EngineConfig::default(), LinkConfig::metro());
    let p0 = r.primaries[0];
    write_at(&mut r.sim, SimTime::ZERO, p0, 0, 1);
    r.sim.run_until(&mut r.world, SimTime::from_millis(20));
    let now = r.sim.now();
    r.world.st.net.link_mut(r.link).set_down(now, None);
    write_at(&mut r.sim, SimTime::from_millis(21), p0, 1, 2);
    r.sim.run_until(&mut r.world, SimTime::from_millis(200));

    r.world.st.net.link_mut(r.link).set_up();
    r.sim.run(&mut r.world);
    let g = r.world.st.fabric.group(r.group);
    assert!(
        !r.world
            .st
            .fabric
            .journal(g.primary_jnl.unwrap())
            .is_empty(),
        "set_up without a kick must leave the backlog stuck (parked pump)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random frame loss plus a scheduled mid-run outage: retransmitted
    /// frames must never reorder journal apply (the backup journal panics
    /// on any out-of-order arrival), and the backup converges to an exact
    /// consistent copy once the backlog drains.
    #[test]
    fn lossy_flapping_link_never_reorders_apply(
        seed in 0u64..64,
        loss in 0.0f64..0.4,
        outage_at_ms in 2u64..20,
        outage_len_ms in 1u64..30,
    ) {
        let mut link_cfg = LinkConfig::wan_lossy();
        link_cfg.loss_probability = loss;
        let mut r = rig(seed, EngineConfig::default(), link_cfg);
        let [p0, p1] = [r.primaries[0], r.primaries[1]];

        for i in 0..24u64 {
            write_at(&mut r.sim, SimTime::from_micros(i * 700), p0, i % 8, 1000 + i);
            write_at(&mut r.sim, SimTime::from_micros(i * 700 + 350), p1, i % 8, 2000 + i);
        }
        // Scheduled outage with an auto-expiring end: Down(Some) paths
        // retry at the advertised up instant, no manual heal needed.
        let start = SimTime::from_millis(outage_at_ms);
        let end = start + SimDuration::from_millis(outage_len_ms);
        r.sim.schedule_at(start, move |w: &mut World, _| {
            let link = w.st.fabric.group(GroupId(0)).link;
            w.st.net.link_mut(link).set_down(start, Some(end));
        });

        r.sim.run(&mut r.world);

        let g = r.world.st.fabric.group(r.group);
        prop_assert!(r.world.st.fabric.journal(g.primary_jnl.unwrap()).is_empty());
        prop_assert!(r.world.st.fabric.journal(g.secondary_jnl.unwrap()).is_empty());
        let report = r.world.st.verify_consistency(&[r.group]);
        prop_assert!(report.prefix.consistent, "{:?}", report.prefix.violations);
        prop_assert!(report.content_mismatches.is_empty(), "{:?}", report.content_mismatches);
    }
}
