//! Multi-target (3DC) protection: one primary volume replicating
//! simultaneously over metro SDC and WAN ADC — the combined
//! synchronous/asynchronous topology the paper's related work (§V,
//! [12]–[15]) discusses. The host acknowledgement waits only for the
//! synchronous leg; the asynchronous leg journals and lags.

use tsuru_sim::{Sim, SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::engine::host_write;
use tsuru_storage::{
    block_from, ArrayId, ArrayPerf, EngineConfig, GroupId, HasStorage, StorageWorld, VolRef,
    WriteAck,
};

struct World {
    st: StorageWorld,
    latencies: Vec<SimDuration>,
    degraded: u64,
}

impl HasStorage for World {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

struct Rig {
    world: World,
    sim: Sim<World>,
    main: ArrayId,
    metro: ArrayId,
    far: ArrayId,
    p: [VolRef; 2],
    metro_s: [VolRef; 2],
    far_s: [VolRef; 2],
    sdc_group: GroupId,
    adc_group: GroupId,
}

/// Main site + metro site (1 ms one way, SDC) + far site (25 ms, ADC CG).
fn rig(seed: u64) -> Rig {
    let mut st = StorageWorld::new(seed, EngineConfig::default());
    let main = st.add_array("vsp-main", ArrayPerf::default());
    let metro = st.add_array("vsp-metro", ArrayPerf::default());
    let far = st.add_array("vsp-far", ArrayPerf::default());
    let metro_link = st.add_link(LinkConfig::with(SimDuration::from_millis(1), 10_000_000_000 / 8));
    let metro_rev = st.add_link(LinkConfig::with(SimDuration::from_millis(1), 10_000_000_000 / 8));
    let far_link = st.add_link(LinkConfig::with(SimDuration::from_millis(25), 1_000_000_000 / 8));
    let far_rev = st.add_link(LinkConfig::with(SimDuration::from_millis(25), 1_000_000_000 / 8));

    let sdc_group = st.create_sdc_group("metro-sdc", metro_link, metro_rev);
    let adc_group = st.create_adc_group("far-adc", far_link, far_rev, 1 << 24);

    let mut p = Vec::new();
    let mut ms = Vec::new();
    let mut fs = Vec::new();
    for i in 0..2 {
        let pv = st.create_volume(main, format!("v{i}"), 256);
        let mv = st.create_volume(metro, format!("v{i}-metro"), 256);
        let fv = st.create_volume(far, format!("v{i}-far"), 256);
        st.add_pair(sdc_group, pv, mv);
        st.add_pair(adc_group, pv, fv);
        p.push(pv);
        ms.push(mv);
        fs.push(fv);
    }
    Rig {
        world: World {
            st,
            latencies: Vec::new(),
            degraded: 0,
        },
        sim: Sim::new(),
        main,
        metro,
        far,
        p: [p[0], p[1]],
        metro_s: [ms[0], ms[1]],
        far_s: [fs[0], fs[1]],
        sdc_group,
        adc_group,
    }
}

fn write_at(sim: &mut Sim<World>, at: SimTime, vol: VolRef, lba: u64, tag: u64) {
    sim.schedule_at(at, move |w: &mut World, sim| {
        host_write(w, sim, vol, lba, block_from(&tag.to_le_bytes()), |w, _, ack| match ack {
            WriteAck::Ok { latency, .. } => w.latencies.push(latency),
            WriteAck::Degraded { latency, .. } => {
                w.degraded += 1;
                w.latencies.push(latency);
            }
            WriteAck::Failed(_) => {}
        });
    });
}

#[test]
fn ack_latency_is_metro_rtt_and_both_targets_converge() {
    let mut r = rig(1);
    for i in 0..120u64 {
        write_at(&mut r.sim, SimTime::from_nanos(i * 400_000), r.p[(i % 2) as usize], i / 2, i);
    }
    r.sim.run(&mut r.world);

    assert_eq!(r.world.latencies.len(), 120);
    assert_eq!(r.world.degraded, 0);
    // Ack waits for the metro round trip (≈2 ms) but NOT the far one
    // (≈50 ms): the async leg is free.
    for &lat in &r.world.latencies {
        assert!(lat >= SimDuration::from_millis(2), "got {lat}");
        assert!(lat < SimDuration::from_millis(5), "got {lat}");
    }
    // Both targets hold the exact primary content.
    for i in 0..2 {
        let expect = r.world.st.array(r.main).volume(r.p[i].volume).content_hashes();
        assert_eq!(
            r.world.st.array(r.metro).volume(r.metro_s[i].volume).content_hashes(),
            expect,
            "metro leg diverged"
        );
        assert_eq!(
            r.world.st.array(r.far).volume(r.far_s[i].volume).content_hashes(),
            expect,
            "far leg diverged"
        );
    }
    // The far CG is a consistent prefix at all times.
    let rep = r.world.st.verify_consistency(&[r.adc_group]);
    assert!(rep.is_consistent(), "{rep:?}");
}

#[test]
fn disaster_metro_has_everything_far_has_a_prefix() {
    let mut r = rig(2);
    for i in 0..200u64 {
        write_at(&mut r.sim, SimTime::from_nanos(i * 400_000), r.p[(i % 2) as usize], i / 2, i);
    }
    let fail_at = SimTime::from_millis(40);
    let main = r.main;
    r.sim.schedule_at(fail_at, move |w: &mut World, sim| {
        w.st.fail_array(main, sim.now());
    });
    r.sim.run_until(&mut r.world, SimTime::from_millis(400));

    let acked = r.world.latencies.len() as u64;
    assert!(acked > 50, "workload ran before the disaster");

    // Metro (synchronous): every acknowledged write is present.
    let metro_pairs = r.world.st.fabric.group(r.sdc_group).pairs.clone();
    let metro_applied: u64 = metro_pairs
        .iter()
        .map(|&pid| r.world.st.fabric.pair(pid).applied_writes)
        .sum();
    assert!(
        metro_applied >= acked,
        "SDC target must hold every acked write ({metro_applied} < {acked})"
    );

    // Far (asynchronous): a consistent prefix, possibly behind.
    r.world.st.promote_group(r.adc_group);
    let rep = r.world.st.verify_consistency(&[r.adc_group]);
    assert!(rep.is_consistent(), "{rep:?}");
    let far_applied: u64 = r
        .world
        .st
        .fabric
        .group(r.adc_group)
        .pairs
        .iter()
        .map(|&pid| r.world.st.fabric.pair(pid).applied_writes)
        .sum();
    assert!(far_applied <= acked + 2, "far cannot exceed acked writes");
}

#[test]
fn far_link_outage_degrades_only_the_async_leg() {
    let mut r = rig(3);
    // Take the far link down permanently; metro SDC keeps the business
    // protected and acknowledged as Ok — wait: the ADC leg's group will
    // stall silently (journal grows), not degrade the ack. Writes stay Ok.
    let far_link = r.world.st.fabric.group(r.adc_group).link;
    r.sim.schedule_at(SimTime::ZERO, move |w: &mut World, _| {
        w.st.net.link_mut(far_link).set_down(SimTime::ZERO, None);
    });
    for i in 0..40u64 {
        write_at(&mut r.sim, SimTime::from_nanos(1 + i * 400_000), r.p[0], i, i);
    }
    r.sim.run_until(&mut r.world, SimTime::from_millis(100));
    assert_eq!(r.world.latencies.len(), 40);
    assert_eq!(r.world.degraded, 0, "SDC leg keeps acks green");
    // Metro is current; far is empty.
    assert_eq!(
        r.world.st.array(r.metro).volume(r.metro_s[0].volume).allocated_blocks(),
        40
    );
    assert_eq!(
        r.world.st.array(r.far).volume(r.far_s[0].volume).allocated_blocks(),
        0
    );
    // The far journal is holding the backlog for later catch-up.
    let jid = r.world.st.fabric.group(r.adc_group).primary_jnl.unwrap();
    assert_eq!(r.world.st.fabric.journal(jid).len(), 40);
}

#[test]
fn metro_outage_degrades_acks_but_far_leg_continues() {
    let mut r = rig(4);
    let metro_link = r.world.st.fabric.group(r.sdc_group).link;
    r.sim.schedule_at(SimTime::ZERO, move |w: &mut World, _| {
        w.st.net.link_mut(metro_link).set_down(SimTime::ZERO, None);
    });
    for i in 0..40u64 {
        write_at(&mut r.sim, SimTime::from_nanos(1 + i * 400_000), r.p[0], i, i);
    }
    r.sim.run(&mut r.world);
    // First write degrades (link down → SDC group suspends); the rest are
    // suspended-group degraded acks too... but the ADC leg still protects.
    assert!(r.world.degraded > 0);
    assert_eq!(
        r.world.st.array(r.far).volume(r.far_s[0].volume).allocated_blocks(),
        40,
        "ADC leg unaffected by the metro outage"
    );
    let rep = r.world.st.verify_consistency(&[r.adc_group]);
    assert!(rep.is_consistent(), "{rep:?}");
}

#[test]
fn three_dc_runs_are_deterministic() {
    let run = |seed| {
        let mut r = rig(seed);
        for i in 0..100u64 {
            write_at(&mut r.sim, SimTime::from_nanos(i * 300_000), r.p[(i % 2) as usize], i / 2, i);
        }
        r.sim.run(&mut r.world);
        (
            r.world.latencies.clone(),
            r.world.st.ack_log.len(),
            r.world
                .st
                .fabric
                .group(r.adc_group)
                .stats
                .entries_applied,
        )
    };
    assert_eq!(run(9), run(9));
}
