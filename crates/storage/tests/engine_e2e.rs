//! End-to-end tests of the replication engine: ADC, SDC, consistency
//! groups, journal overflow, snapshots under replication, failover, RPO.

#![allow(clippy::field_reassign_with_default)]

use tsuru_sim::{Sim, SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::engine::{host_read, host_write, kick_all_pumps};
use tsuru_storage::{
    block_from, ArrayId, ArrayPerf, EngineConfig, GroupId, GroupState, HasStorage,
    JournalFullPolicy, StorageWorld, VolRef, WriteAck, WriteError,
};

/// Test world: the storage world plus collected acknowledgements.
struct World {
    st: StorageWorld,
    acks: Vec<(u64, WriteAck, SimTime)>,
}

impl HasStorage for World {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

struct Rig {
    world: World,
    sim: Sim<World>,
    main: ArrayId,
    backup: ArrayId,
    link: tsuru_simnet::LinkId,
    reverse: tsuru_simnet::LinkId,
}

fn rig_with(config: EngineConfig, link_cfg: LinkConfig) -> Rig {
    let mut st = StorageWorld::new(42, config);
    let main = st.add_array("vsp-main", ArrayPerf::default());
    let backup = st.add_array("vsp-backup", ArrayPerf::default());
    let link = st.add_link(link_cfg.clone());
    let reverse = st.add_link(link_cfg);
    Rig {
        world: World {
            st,
            acks: Vec::new(),
        },
        sim: Sim::new(),
        main,
        backup,
        link,
        reverse,
    }
}

fn rig() -> Rig {
    rig_with(EngineConfig::default(), LinkConfig::metro())
}

/// Make a block whose content encodes `tag`.
fn blk(tag: u64) -> tsuru_storage::BlockBuf {
    block_from(&tag.to_le_bytes())
}

/// Issue a tagged write whose ack is recorded in `world.acks`.
fn write_tagged(world: &mut World, sim: &mut Sim<World>, vol: VolRef, lba: u64, tag: u64) {
    host_write(world, sim, vol, lba, blk(tag), move |w, sim, ack| {
        w.acks.push((tag, ack, sim.now()));
    });
}

/// Schedule a tagged write at an absolute time.
fn write_at(sim: &mut Sim<World>, at: SimTime, vol: VolRef, lba: u64, tag: u64) {
    sim.schedule_at(at, move |w: &mut World, sim| {
        write_tagged(w, sim, vol, lba, tag);
    });
}

#[test]
fn unpaired_write_acks_at_local_service_time() {
    let mut r = rig();
    let vol = r.world.st.create_volume(r.main, "solo", 64);
    write_at(&mut r.sim, SimTime::ZERO, vol, 0, 1);
    r.sim.run(&mut r.world);
    assert_eq!(r.world.acks.len(), 1);
    let (_, ack, at) = r.world.acks[0];
    assert_eq!(
        ack,
        WriteAck::Ok {
            latency: SimDuration::from_micros(100),
            global: 0
        }
    );
    assert_eq!(at, SimTime::from_micros(100));
    assert_eq!(&r.world.st.read_direct(vol, 0).unwrap()[..8], &1u64.to_le_bytes());
}

#[test]
fn adc_ack_is_local_even_on_a_slow_wan() {
    // 50 ms one-way: SDC would pay 100 ms; ADC must still ack in ~100 us.
    let mut r = rig_with(
        EngineConfig::default(),
        LinkConfig::with(SimDuration::from_millis(50), 1_000_000_000 / 8),
    );
    let p = r.world.st.create_volume(r.main, "p", 64);
    let s = r.world.st.create_volume(r.backup, "s", 64);
    let g = r.world.st.create_adc_group("g", r.link, r.reverse, 1 << 24);
    r.world.st.add_pair(g, p, s);

    write_at(&mut r.sim, SimTime::ZERO, p, 0, 7);
    r.sim.run(&mut r.world);

    let (_, ack, _) = r.world.acks[0];
    match ack {
        WriteAck::Ok { latency, .. } => {
            assert!(
                latency < SimDuration::from_millis(1),
                "ADC ack latency should be local, got {latency}"
            );
        }
        other => panic!("unexpected ack {other:?}"),
    }
    // After the run drains, the secondary holds the data.
    assert_eq!(&r.world.st.read_direct(s, 0).unwrap()[..8], &7u64.to_le_bytes());
    let rep = r.world.st.verify_consistency(&[GroupId(0)]);
    assert!(rep.is_consistent(), "{rep:?}");
}

#[test]
fn sdc_ack_pays_the_round_trip() {
    let one_way = SimDuration::from_millis(10);
    let mut r = rig_with(
        EngineConfig::default(),
        LinkConfig::with(one_way, 1_000_000_000 / 8),
    );
    let p = r.world.st.create_volume(r.main, "p", 64);
    let s = r.world.st.create_volume(r.backup, "s", 64);
    let g = r.world.st.create_sdc_group("g", r.link, r.reverse);
    r.world.st.add_pair(g, p, s);

    write_at(&mut r.sim, SimTime::ZERO, p, 0, 9);
    r.sim.run(&mut r.world);

    let (_, ack, _) = r.world.acks[0];
    match ack {
        WriteAck::Ok { latency, .. } => {
            assert!(
                latency >= one_way * 2,
                "SDC must include the round trip, got {latency}"
            );
            assert!(latency < one_way * 2 + SimDuration::from_millis(1));
        }
        other => panic!("unexpected ack {other:?}"),
    }
    assert_eq!(&r.world.st.read_direct(s, 0).unwrap()[..8], &9u64.to_le_bytes());
}

#[test]
fn adc_applies_in_ack_order_across_the_group() {
    let mut r = rig();
    let p1 = r.world.st.create_volume(r.main, "wal", 256);
    let p2 = r.world.st.create_volume(r.main, "data", 256);
    let s1 = r.world.st.create_volume(r.backup, "wal-r", 256);
    let s2 = r.world.st.create_volume(r.backup, "data-r", 256);
    let g = r.world.st.create_adc_group("cg", r.link, r.reverse, 1 << 24);
    r.world.st.add_pair(g, p1, s1);
    r.world.st.add_pair(g, p2, s2);

    // Alternate writes across the two volumes every 300 us.
    for i in 0..200u64 {
        let vol = if i % 2 == 0 { p1 } else { p2 };
        write_at(
            &mut r.sim,
            SimTime::from_nanos(i * 300_000),
            vol,
            i / 2,
            i,
        );
    }
    r.sim.run(&mut r.world);

    assert_eq!(r.world.acks.len(), 200);
    assert!(r.world.acks.iter().all(|(_, a, _)| a.is_persisted()));
    let rep = r.world.st.verify_consistency(&[g]);
    assert!(rep.is_consistent(), "{rep:?}");
    // Fully drained: secondary content equals primary content.
    for (pv, sv) in [(p1, s1), (p2, s2)] {
        let pc = r.world.st.array(r.main).volume(pv.volume).content_hashes();
        let sc = r
            .world
            .st
            .array(r.backup)
            .volume(sv.volume)
            .content_hashes();
        assert_eq!(pc, sc);
    }
}

/// The paper's §I collapse scenario, reproduced at block level: with a
/// consistency group, any surprise failure leaves a prefix-consistent
/// backup; with naive per-volume groups, lag between the volumes leaves a
/// non-prefix cut.
#[test]
fn consistency_group_survives_surprise_failure() {
    for fail_ms in [5u64, 17, 31, 49, 73] {
        let mut r = rig();
        let p1 = r.world.st.create_volume(r.main, "v1", 1024);
        let p2 = r.world.st.create_volume(r.main, "v2", 1024);
        let s1 = r.world.st.create_volume(r.backup, "v1r", 1024);
        let s2 = r.world.st.create_volume(r.backup, "v2r", 1024);
        let g = r.world.st.create_adc_group("cg", r.link, r.reverse, 1 << 24);
        r.world.st.add_pair(g, p1, s1);
        r.world.st.add_pair(g, p2, s2);

        for i in 0..1000u64 {
            let vol = if i % 2 == 0 { p1 } else { p2 };
            write_at(&mut r.sim, SimTime::from_nanos(i * 100_000), vol, i / 2, i);
        }
        let main = r.main;
        r.sim
            .schedule_at(SimTime::from_millis(fail_ms), move |w: &mut World, sim| {
                w.st.fail_array(main, sim.now());
            });
        r.sim.run(&mut r.world);
        r.world.st.promote_group(g);
        let rep = r.world.st.verify_consistency(&[g]);
        assert!(
            rep.is_consistent(),
            "CG backup must be prefix-consistent at fail_ms={fail_ms}: {rep:?}"
        );
    }
}

#[test]
fn naive_per_volume_groups_collapse_under_lag() {
    let mut r = rig();
    let p1 = r.world.st.create_volume(r.main, "v1", 1024);
    let p2 = r.world.st.create_volume(r.main, "v2", 1024);
    let s1 = r.world.st.create_volume(r.backup, "v1r", 1024);
    let s2 = r.world.st.create_volume(r.backup, "v2r", 1024);
    // Two links so one volume's replication can lag independently —
    // equivalent to two independent replication sessions.
    let link2 = r.world.st.add_link(LinkConfig::metro());
    let rev2 = r.world.st.add_link(LinkConfig::metro());
    let g1 = r.world.st.create_adc_group("solo1", r.link, r.reverse, 1 << 24);
    let g2 = r.world.st.create_adc_group("solo2", link2, rev2, 1 << 24);
    r.world.st.add_pair(g1, p1, s1);
    r.world.st.add_pair(g2, p2, s2);

    // v2's link stalls from 2 ms on: v2's backup freezes while v1 advances.
    r.sim.schedule_at(SimTime::from_millis(2), move |w: &mut World, _| {
        w.st.net.link_mut(link2).set_down(SimTime::from_millis(2), None);
    });
    // Strictly alternating dependent writes: v2's write i+1 "depends on"
    // v1's write i (like WAL before data).
    for i in 0..600u64 {
        let vol = if i % 2 == 0 { p2 } else { p1 };
        write_at(&mut r.sim, SimTime::from_nanos(i * 100_000), vol, i / 2, i);
    }
    let main = r.main;
    r.sim
        .schedule_at(SimTime::from_millis(40), move |w: &mut World, sim| {
            w.st.fail_array(main, sim.now());
        });
    r.sim.run(&mut r.world);
    r.world.st.promote_group(g1);
    r.world.st.promote_group(g2);

    let rep = r.world.st.verify_consistency(&[g1, g2]);
    assert!(
        !rep.prefix.consistent,
        "independent groups with skew must produce a non-prefix cut"
    );
    // But each group in isolation is fine — the damage is cross-volume.
    assert!(r.world.st.verify_consistency(&[g1]).is_consistent());
    assert!(r.world.st.verify_consistency(&[g2]).is_consistent());
}

#[test]
fn journal_full_block_policy_stalls_but_loses_nothing() {
    // A journal that fits ~4 entries and a very slow link.
    let mut cfg = EngineConfig::default();
    cfg.journal_full_policy = JournalFullPolicy::Block;
    let mut r = rig_with(
        cfg,
        LinkConfig::with(SimDuration::from_millis(5), 200_000), // 200 KB/s
    );
    let p = r.world.st.create_volume(r.main, "p", 256);
    let s = r.world.st.create_volume(r.backup, "s", 256);
    let g = r
        .world
        .st
        .create_adc_group("g", r.link, r.reverse, 4 * (4096 + 64));
    r.world.st.add_pair(g, p, s);

    for i in 0..64u64 {
        write_at(&mut r.sim, SimTime::from_nanos(i * 50_000), p, i, i);
    }
    r.sim.run(&mut r.world);

    assert_eq!(r.world.acks.len(), 64, "every write eventually acks");
    assert!(r.world.acks.iter().all(|(_, a, _)| a.is_persisted()));
    assert!(
        r.world.st.metrics.counter(tsuru_storage::metric_names::JOURNAL_STALL_RETRIES) > 0,
        "the tiny journal must have caused stalls"
    );
    // Nothing lost: fully applied and consistent.
    let rep = r.world.st.verify_consistency(&[g]);
    assert!(rep.is_consistent(), "{rep:?}");
    assert_eq!(
        r.world.st.array(r.backup).volume(s.volume).content_hashes(),
        r.world.st.array(r.main).volume(p.volume).content_hashes()
    );
}

#[test]
fn journal_full_suspend_policy_degrades_and_resync_recovers() {
    let mut cfg = EngineConfig::default();
    cfg.journal_full_policy = JournalFullPolicy::Suspend;
    let mut r = rig_with(
        cfg,
        LinkConfig::with(SimDuration::from_millis(5), 100_000),
    );
    let p = r.world.st.create_volume(r.main, "p", 256);
    let s = r.world.st.create_volume(r.backup, "s", 256);
    let g = r
        .world
        .st
        .create_adc_group("g", r.link, r.reverse, 2 * (4096 + 64));
    r.world.st.add_pair(g, p, s);

    for i in 0..32u64 {
        write_at(&mut r.sim, SimTime::from_nanos(i * 50_000), p, i, i);
    }
    r.sim.run(&mut r.world);

    let degraded = r
        .world
        .acks
        .iter()
        .filter(|(_, a, _)| matches!(a, WriteAck::Degraded { .. }))
        .count();
    assert!(degraded > 0, "suspend policy must degrade under overflow");
    assert!(matches!(
        r.world.st.fabric.group(g).state,
        GroupState::Suspended { .. }
    ));
    // Operator resync brings the backup to a faithful copy again.
    r.world.st.resync_group(g);
    assert!(r.world.st.fabric.group(g).is_active());
    assert_eq!(
        r.world.st.array(r.backup).volume(s.volume).content_hashes(),
        r.world.st.array(r.main).volume(p.volume).content_hashes()
    );
}

#[test]
fn rpo_counts_unreplicated_writes_on_failure() {
    // Slow link so a backlog accumulates, then a site failure. 2 MB/s moves
    // one 4 KiB entry in ~2 ms; with 4-entry frames the earliest frames
    // finish serializing (and survive) before the 15 ms failure, while the
    // backlog behind them is lost with the site.
    let mut cfg = EngineConfig::default();
    cfg.batch_max_entries = 4;
    let mut r = rig_with(
        cfg,
        LinkConfig::with(SimDuration::from_millis(20), 2_000_000),
    );
    let p = r.world.st.create_volume(r.main, "p", 512);
    let s = r.world.st.create_volume(r.backup, "s", 512);
    let g = r.world.st.create_adc_group("g", r.link, r.reverse, 1 << 24);
    r.world.st.add_pair(g, p, s);

    for i in 0..100u64 {
        write_at(&mut r.sim, SimTime::from_nanos(i * 100_000), p, i, i);
    }
    let fail_at = SimTime::from_millis(15);
    let main = r.main;
    r.sim.schedule_at(fail_at, move |w: &mut World, sim| {
        w.st.fail_array(main, sim.now());
    });
    r.sim.run(&mut r.world);
    r.world.st.promote_group(g);

    let rpo = r.world.st.rpo_report(&[g], fail_at);
    assert!(rpo.acked_writes > 0);
    assert!(
        rpo.lost_writes > 0,
        "a slow link with early failure must lose the backlog"
    );
    assert!(rpo.lost_writes < rpo.acked_writes, "but not everything");
    assert!(rpo.rpo > SimDuration::ZERO);
    // The surviving image is still prefix-consistent (single volume).
    let rep = r.world.st.verify_consistency(&[g]);
    assert!(rep.is_consistent(), "{rep:?}");
}

#[test]
fn snapshot_group_stays_frozen_while_replication_continues() {
    let mut r = rig();
    let p1 = r.world.st.create_volume(r.main, "v1", 512);
    let p2 = r.world.st.create_volume(r.main, "v2", 512);
    let s1 = r.world.st.create_volume(r.backup, "v1r", 512);
    let s2 = r.world.st.create_volume(r.backup, "v2r", 512);
    let g = r.world.st.create_adc_group("cg", r.link, r.reverse, 1 << 24);
    r.world.st.add_pair(g, p1, s1);
    r.world.st.add_pair(g, p2, s2);

    // Phase 1: writes with tag < 100.
    for i in 0..100u64 {
        let vol = if i % 2 == 0 { p1 } else { p2 };
        write_at(&mut r.sim, SimTime::from_nanos(i * 200_000), vol, i / 2, i);
    }
    // Snapshot the backup volumes mid-run, then keep writing (tags >= 1000).
    let backup = r.backup;
    let (sv1, sv2) = (s1.volume, s2.volume);
    r.sim
        .schedule_at(SimTime::from_millis(60), move |w: &mut World, sim| {
            let snaps =
                w.st.snapshot_group(backup, &[sv1, sv2], "pit", sim.now());
            assert_eq!(snaps.len(), 2);
        });
    for i in 0..100u64 {
        let vol = if i % 2 == 0 { p1 } else { p2 };
        write_at(
            &mut r.sim,
            SimTime::from_millis(70) + SimDuration::from_nanos(i * 200_000),
            vol,
            i / 2,
            1000 + i,
        );
    }
    r.sim.run(&mut r.world);

    // Live secondary content caught up with phase 2...
    assert_eq!(
        r.world.st.array(r.backup).volume(sv1).content_hashes(),
        r.world.st.array(r.main).volume(p1.volume).content_hashes()
    );
    // ...while the snapshot still shows phase-1 data everywhere.
    let snaps = r.world.st.array(r.backup).snapshot_ids();
    assert_eq!(snaps.len(), 2);
    for sid in snaps {
        let snap = r.world.st.array(r.backup).snapshot(sid);
        let base = snap.base_volume();
        let nblocks = 50;
        for lba in 0..nblocks {
            let img = r.world.st.array(r.backup).read_snapshot_block(sid, lba);
            if let Some(b) = img {
                let tag = u64::from_le_bytes(b[..8].try_into().unwrap());
                assert!(tag < 100, "snapshot leaked post-snapshot tag {tag}");
            }
        }
        // COW happened: phase-2 overwrites forced preservation.
        assert!(snap.cow_blocks() > 0, "base {base:?} never overwritten?");
    }
    assert!(r.world.st.array(r.backup).cow_saves() > 0);
}

#[test]
fn writes_to_fenced_secondary_and_failed_array_are_rejected() {
    let mut r = rig();
    let p = r.world.st.create_volume(r.main, "p", 64);
    let s = r.world.st.create_volume(r.backup, "s", 64);
    let g = r.world.st.create_adc_group("g", r.link, r.reverse, 1 << 24);
    r.world.st.add_pair(g, p, s);

    write_at(&mut r.sim, SimTime::ZERO, s, 0, 1); // fenced secondary
    let main = r.main;
    r.sim.schedule_at(SimTime::from_millis(1), move |w: &mut World, sim| {
        w.st.fail_array(main, sim.now());
    });
    write_at(&mut r.sim, SimTime::from_millis(2), p, 0, 2); // failed array
    r.sim.run(&mut r.world);

    assert_eq!(r.world.acks.len(), 2);
    assert_eq!(
        r.world.acks[0].1,
        WriteAck::Failed(WriteError::VolumeFenced)
    );
    assert_eq!(r.world.acks[1].1, WriteAck::Failed(WriteError::ArrayFailed));
    assert_eq!(r.world.st.metrics.counter(tsuru_storage::metric_names::WRITES_FAILED), 2);
}

#[test]
fn reads_complete_with_service_latency() {
    let mut r = rig();
    let v = r.world.st.create_volume(r.main, "v", 64);
    r.world.st.write_direct(v, 5, b"readable");
    r.sim.schedule_at(SimTime::ZERO, move |w: &mut World, sim| {
        host_read(w, sim, v, 5, |w: &mut World, sim, data| {
            assert_eq!(&data.expect("block exists")[..8], b"readable");
            assert_eq!(sim.now(), SimTime::from_micros(200));
            w.acks.push((0, WriteAck::Ok { latency: SimDuration::ZERO, global: 0 }, sim.now()));
        });
        host_read(w, sim, v, 9, |w: &mut World, sim, data| {
            assert!(data.is_none(), "unwritten block reads as None");
            w.acks.push((1, WriteAck::Ok { latency: SimDuration::ZERO, global: 0 }, sim.now()));
        });
    });
    r.sim.run(&mut r.world);
    assert_eq!(r.world.acks.len(), 2);
}

#[test]
fn link_outage_with_auto_heal_catches_up() {
    let mut r = rig();
    let p = r.world.st.create_volume(r.main, "p", 512);
    let s = r.world.st.create_volume(r.backup, "s", 512);
    let g = r.world.st.create_adc_group("g", r.link, r.reverse, 1 << 24);
    r.world.st.add_pair(g, p, s);

    // Outage window 5..30 ms.
    let link = r.link;
    r.sim.schedule_at(SimTime::from_millis(5), move |w: &mut World, _| {
        w.st.net
            .link_mut(link)
            .set_down(SimTime::from_millis(5), Some(SimTime::from_millis(30)));
    });
    for i in 0..200u64 {
        write_at(&mut r.sim, SimTime::from_nanos(i * 100_000), p, i % 256, i);
    }
    r.sim.run(&mut r.world);

    assert_eq!(
        r.world.st.array(r.backup).volume(s.volume).content_hashes(),
        r.world.st.array(r.main).volume(p.volume).content_hashes(),
        "backup must fully catch up after the outage heals"
    );
    let rep = r.world.st.verify_consistency(&[g]);
    assert!(rep.is_consistent(), "{rep:?}");
}

#[test]
fn indefinite_outage_requires_manual_heal_and_pump_kick() {
    let mut r = rig();
    let p = r.world.st.create_volume(r.main, "p", 512);
    let s = r.world.st.create_volume(r.backup, "s", 512);
    let g = r.world.st.create_adc_group("g", r.link, r.reverse, 1 << 24);
    r.world.st.add_pair(g, p, s);

    let link = r.link;
    r.sim.schedule_at(SimTime::ZERO, move |w: &mut World, _| {
        w.st.net.link_mut(link).set_down(SimTime::ZERO, None);
    });
    for i in 0..50u64 {
        write_at(&mut r.sim, SimTime::from_nanos(1 + i * 100_000), p, i, i);
    }
    // Run a while: nothing must reach the backup.
    r.sim.run_until(&mut r.world, SimTime::from_millis(100));
    assert_eq!(
        r.world
            .st
            .array(r.backup)
            .volume(s.volume)
            .allocated_blocks(),
        0
    );
    // Heal + kick: replication drains.
    r.sim
        .schedule_at(SimTime::from_millis(101), move |w: &mut World, sim| {
            w.st.net.link_mut(link).set_up();
            kick_all_pumps(w, sim);
        });
    r.sim.run(&mut r.world);
    assert_eq!(
        r.world.st.array(r.backup).volume(s.volume).content_hashes(),
        r.world.st.array(r.main).volume(p.volume).content_hashes()
    );
}

#[test]
fn sdc_link_down_suspends_and_acks_degraded() {
    let mut r = rig();
    let p = r.world.st.create_volume(r.main, "p", 64);
    let s = r.world.st.create_volume(r.backup, "s", 64);
    let g = r.world.st.create_sdc_group("g", r.link, r.reverse);
    r.world.st.add_pair(g, p, s);

    let link = r.link;
    r.sim.schedule_at(SimTime::ZERO, move |w: &mut World, _| {
        w.st.net.link_mut(link).set_down(SimTime::ZERO, None);
    });
    write_at(&mut r.sim, SimTime::from_millis(1), p, 0, 1);
    write_at(&mut r.sim, SimTime::from_millis(2), p, 1, 2);
    r.sim.run(&mut r.world);

    assert!(r
        .world
        .acks
        .iter()
        .all(|(_, a, _)| matches!(a, WriteAck::Degraded { .. })));
    assert!(matches!(
        r.world.st.fabric.group(g).state,
        GroupState::Suspended { .. }
    ));
    // Data persisted locally despite the suspension.
    assert!(r.world.st.read_direct(p, 0).is_some());
    assert!(r.world.st.read_direct(s, 0).is_none());
}

#[test]
fn lossy_link_retransmits_until_complete() {
    let mut cfg = LinkConfig::with(SimDuration::from_millis(1), 100_000_000);
    cfg.loss_probability = 0.3;
    let mut r = rig_with(EngineConfig::default(), cfg);
    let p = r.world.st.create_volume(r.main, "p", 512);
    let s = r.world.st.create_volume(r.backup, "s", 512);
    let g = r.world.st.create_adc_group("g", r.link, r.reverse, 1 << 24);
    r.world.st.add_pair(g, p, s);

    for i in 0..100u64 {
        write_at(&mut r.sim, SimTime::from_nanos(i * 100_000), p, i, i);
    }
    r.sim.run(&mut r.world);
    assert_eq!(
        r.world.st.array(r.backup).volume(s.volume).content_hashes(),
        r.world.st.array(r.main).volume(p.volume).content_hashes()
    );
    assert!(r.world.st.net.link(r.link).frames_lost() > 0);
}

#[test]
fn runs_are_deterministic() {
    fn run_once() -> Vec<(u64, SimTime)> {
        let mut r = rig();
        let p1 = r.world.st.create_volume(r.main, "v1", 512);
        let p2 = r.world.st.create_volume(r.main, "v2", 512);
        let s1 = r.world.st.create_volume(r.backup, "v1r", 512);
        let s2 = r.world.st.create_volume(r.backup, "v2r", 512);
        let g = r.world.st.create_adc_group("cg", r.link, r.reverse, 1 << 24);
        r.world.st.add_pair(g, p1, s1);
        r.world.st.add_pair(g, p2, s2);
        for i in 0..300u64 {
            let vol = if i % 2 == 0 { p1 } else { p2 };
            write_at(&mut r.sim, SimTime::from_nanos(i * 137_000), vol, i / 2, i);
        }
        r.sim.run(&mut r.world);
        r.world.acks.iter().map(|&(tag, _, at)| (tag, at)).collect()
    }
    assert_eq!(run_once(), run_once());
}

#[test]
fn promote_drains_remote_journal() {
    // Slow apply so entries sit in the remote journal when we promote.
    let mut perf = ArrayPerf::default();
    perf.apply_service = SimDuration::from_millis(5);
    let mut st = StorageWorld::new(1, EngineConfig::default());
    let main = st.add_array("m", ArrayPerf::default());
    let backup = st.add_array("b", perf);
    let link = st.add_link(LinkConfig::metro());
    let rev = st.add_link(LinkConfig::metro());
    let g = st.create_adc_group("g", link, rev, 1 << 24);
    let p = st.create_volume(main, "p", 256);
    let s = st.create_volume(backup, "s", 256);
    st.add_pair(g, p, s);

    let mut world = World {
        st,
        acks: Vec::new(),
    };
    let mut sim: Sim<World> = Sim::new();
    for i in 0..50u64 {
        write_at(&mut sim, SimTime::from_nanos(i * 100_000), p, i, i);
    }
    // Stop mid-apply: fail main at 10 ms, then let arrivals land.
    sim.schedule_at(SimTime::from_millis(10), move |w: &mut World, sim| {
        w.st.fail_array(main, sim.now());
    });
    sim.run_until(&mut world, SimTime::from_millis(50));
    let applied_during_promote = world.st.promote_group(g);
    // The run stopped with the remote journal non-empty (slow apply), so
    // promotion had work to do.
    assert!(applied_during_promote > 0, "promote should drain the journal");
    let rep = world.st.verify_consistency(&[g]);
    assert!(rep.is_consistent(), "{rep:?}");
    assert_eq!(
        world
            .st
            .array(backup)
            .volume(s.volume)
            .role(),
        tsuru_storage::VolumeRole::Primary
    );
}

#[test]
fn backup_array_brownout_grows_lag_but_never_breaks_order() {
    // Mid-run the backup array degrades (apply service 100x slower). The
    // backup falls behind, yet every reachable state remains a consistent
    // prefix, and the lag drains once the array recovers.
    let mut r = rig();
    let p = r.world.st.create_volume(r.main, "p", 512);
    let s = r.world.st.create_volume(r.backup, "s", 512);
    let g = r.world.st.create_adc_group("g", r.link, r.reverse, 1 << 24);
    r.world.st.add_pair(g, p, s);

    let backup = r.backup;
    r.sim.schedule_at(SimTime::from_millis(5), move |w: &mut World, _| {
        let mut slow = ArrayPerf::default();
        slow.apply_service = SimDuration::from_millis(5);
        w.st.array_mut(backup).set_perf(slow);
    });
    for i in 0..300u64 {
        write_at(&mut r.sim, SimTime::from_nanos(i * 100_000), p, i % 256, i);
    }
    // Mid-brownout check: lag accumulated, consistency intact.
    r.sim.run_until(&mut r.world, SimTime::from_millis(40));
    let st = tsuru_storage::group_status(&r.world.st);
    assert!(st[0].lag_writes > 10, "brownout must grow lag: {st:?}");
    assert!(r.world.st.verify_consistency(&[g]).is_consistent());
    // Recovery: back to normal speed; everything drains.
    r.sim
        .schedule_at(SimTime::from_millis(41), move |w: &mut World, _| {
            w.st.array_mut(backup).set_perf(ArrayPerf::default());
        });
    r.sim.run(&mut r.world);
    assert_eq!(
        r.world.st.array(r.backup).volume(s.volume).content_hashes(),
        r.world.st.array(r.main).volume(p.volume).content_hashes()
    );
    assert_eq!(tsuru_storage::group_status(&r.world.st)[0].lag_writes, 0);
}

#[test]
fn snapshot_reads_are_timed_and_point_in_time() {
    let mut r = rig();
    let v = r.world.st.create_volume(r.main, "v", 64);
    r.world.st.write_direct(v, 3, b"original");
    let snap = r.world.st.snapshot(v, "pit", SimTime::ZERO);
    r.world.st.write_direct(v, 3, b"modified");
    let main = r.main;
    r.sim.schedule_at(SimTime::ZERO, move |w: &mut World, sim| {
        tsuru_storage::host_read_snapshot(w, sim, main, snap, 3, |w, sim, data| {
            assert_eq!(&data.expect("preserved")[..8], b"original");
            assert_eq!(sim.now(), SimTime::from_micros(200), "read service time");
            w.acks.push((0, WriteAck::Ok { latency: SimDuration::ZERO, global: 0 }, sim.now()));
        });
        tsuru_storage::host_read_snapshot(w, sim, main, snap, 9, |w, sim, data| {
            assert!(data.is_none(), "unwritten at snapshot time");
            w.acks.push((1, WriteAck::Ok { latency: SimDuration::ZERO, global: 0 }, sim.now()));
        });
    });
    r.sim.run(&mut r.world);
    assert_eq!(r.world.acks.len(), 2);
    // Reads on a failed array return None.
    r.world.st.fail_array(main, r.sim.now());
    r.sim.schedule_in(SimDuration::from_millis(1), move |w: &mut World, sim| {
        tsuru_storage::host_read_snapshot(w, sim, main, snap, 3, |w, sim, data| {
            assert!(data.is_none());
            w.acks.push((2, WriteAck::Ok { latency: SimDuration::ZERO, global: 0 }, sim.now()));
        });
    });
    r.sim.run(&mut r.world);
    assert_eq!(r.world.acks.len(), 3);
}
