//! Supervisor-specific regression tests: the stale-epoch pump guard and
//! the automatic failover → failback round trip.
//!
//! The chaos suite exercises the supervisor statistically; these tests pin
//! the two trickiest transitions deterministically — a pump event from a
//! superseded replication epoch must be discarded, and an array crash
//! followed by repair must walk PrimaryDown → FailedOver → FailingBack →
//! Healthy with exactly one failover and one failback.

use tsuru_sim::{Sim, SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::engine::host_write;
use tsuru_storage::supervisor::tick;
use tsuru_storage::{
    block_from, ArrayPerf, EngineConfig, GroupState, HasStorage, RecoveryStage, StorageWorld,
    SupervisorPolicy, SuspendReason, VolumeRole,
};

struct World {
    st: StorageWorld,
    acks: u64,
    rejected: u64,
}

impl HasStorage for World {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

/// A kicked transfer pump carries the group generation it was scheduled
/// under; a resync bumps the generation, so the pump event arriving later
/// must be a silent no-op — it must not ship from (or clear) the fresh
/// journals of the new epoch, and it must not wedge the new epoch's pumps.
#[test]
fn stale_epoch_pump_is_discarded_after_resync() {
    // A long, jitter-free pump interval opens a window where the pump
    // event is pending but has not yet fired.
    let cfg = EngineConfig {
        pump_interval: SimDuration::from_millis(5),
        pump_jitter: SimDuration::ZERO,
        ..EngineConfig::default()
    };
    let mut st = StorageWorld::new(7, cfg);
    let main = st.add_array("m", ArrayPerf::default());
    let backup = st.add_array("b", ArrayPerf::default());
    let link = st.add_link(LinkConfig::metro());
    let rev = st.add_link(LinkConfig::metro());
    let g = st.create_adc_group("g", link, rev, 1 << 20);
    let p = st.create_volume(main, "p", 64);
    let s = st.create_volume(backup, "s", 64);
    st.add_pair(g, p, s);
    let gen0 = st.fabric.group(g).generation;

    let mut world = World {
        st,
        acks: 0,
        rejected: 0,
    };
    let mut sim: Sim<World> = Sim::new();

    // t=0: one write journals an entry and schedules RunTransfer{gen0}
    // for t≈5ms.
    sim.schedule_at(SimTime::ZERO, move |w: &mut World, sim| {
        host_write(w, sim, p, 0, block_from(b"stale-epoch"), |w, _, ack| {
            if ack.is_persisted() {
                w.acks += 1;
            }
        });
    });
    // t=2ms: with that pump still pending, open a new replication epoch.
    sim.schedule_at(SimTime::from_millis(2), move |w: &mut World, sim| {
        assert!(
            w.st.fabric.group(g).pump_scheduled,
            "test premise: the gen-{gen0} pump must still be in flight"
        );
        w.st.fabric.group_mut(g).suspend(sim.now(), SuspendReason::Operator);
        let report = w.st.resync_group(g);
        assert!(report.delta, "a suspended group gets a delta resync");
        assert_eq!(w.st.fabric.group(g).generation, gen0 + 1);
        assert!(!w.st.fabric.group(g).pump_scheduled);
    });
    // The stale RunTransfer fires at ~5ms and must hit the epoch guard.
    sim.run(&mut world);

    assert_eq!(world.acks, 1);
    let grp = world.st.fabric.group(g);
    assert_eq!(grp.state, GroupState::Active);
    assert!(
        !grp.pump_scheduled,
        "the stale pump must not leave the new epoch marked as scheduled"
    );
    let fresh_jnl = grp.primary_jnl.expect("adc group keeps a primary journal");
    assert!(
        world.st.fabric.journal(fresh_jnl).is_empty(),
        "the stale pump must not touch the new epoch's journal"
    );
    assert!(world.st.verify_consistency(&[g]).is_consistent());

    // The new epoch still replicates: a post-resync write flows end to end.
    let at = sim.now();
    sim.schedule_at(at, move |w: &mut World, sim| {
        host_write(w, sim, p, 1, block_from(b"new-epoch"), |w, _, ack| {
            if ack.is_persisted() {
                w.acks += 1;
            }
        });
    });
    sim.run(&mut world);
    assert_eq!(world.acks, 2);
    assert_eq!(
        world.st.array(main).volume(p.volume).content_hashes(),
        world.st.array(backup).volume(s.volume).content_hashes(),
        "replication must keep working under the new generation"
    );
    assert!(world.st.verify_consistency(&[g]).is_consistent());
}

/// Crash the primary array, let the supervisor promote the backup site
/// (failover, step 1), repair the array and let the supervisor establish
/// reverse protection and return home (failback, step 2) — all without an
/// operator.
#[test]
fn supervisor_drives_failover_then_failback() {
    let mut st = StorageWorld::new(13, EngineConfig::default());
    let main = st.add_array("vsp-main", ArrayPerf::default());
    let backup = st.add_array("vsp-backup", ArrayPerf::default());
    let link = st.add_link(LinkConfig::metro());
    let rev = st.add_link(LinkConfig::metro());
    let g = st.create_adc_group("cg", link, rev, 1 << 22);
    let p = st.create_volume(main, "v", 128);
    let s = st.create_volume(backup, "vr", 128);
    st.add_pair(g, p, s);
    st.enable_supervisor(SupervisorPolicy {
        auto_failover: true,
        failover_grace: SimDuration::from_millis(3),
        auto_failback: true,
        ..SupervisorPolicy::default()
    });

    let mut world = World {
        st,
        acks: 0,
        rejected: 0,
    };
    let mut sim: Sim<World> = Sim::new();

    // Probe every millisecond until well past the round trip.
    fn probe(w: &mut World, sim: &mut Sim<World>) {
        tick(w, sim);
        if sim.now() < SimTime::from_millis(80) {
            sim.schedule_in(SimDuration::from_millis(1), probe);
        }
    }
    sim.schedule_at(SimTime::ZERO, probe);

    // Business at the main site, then disaster at t=10ms.
    for i in 0..16u64 {
        sim.schedule_at(
            SimTime::from_nanos(i * 500_000),
            move |w: &mut World, sim| {
                host_write(w, sim, p, i % 8, block_from(&i.to_le_bytes()), |w, _, ack| {
                    if ack.is_persisted() {
                        w.acks += 1;
                    }
                });
            },
        );
    }
    sim.schedule_at(SimTime::from_millis(10), move |w: &mut World, sim| {
        w.st.fail_array(main, sim.now());
    });

    // Step 1: after the grace period the supervisor promotes on its own.
    sim.run_until(&mut world, SimTime::from_millis(20));
    {
        let sv = world.st.supervisor().expect("armed");
        assert_eq!(sv.stats().failovers, 1, "grace elapsed → one auto-failover");
        assert_eq!(sv.stats().failbacks, 0);
        assert!(matches!(sv.stage(g), RecoveryStage::FailedOver { .. }));
    }
    assert_eq!(world.st.fabric.group(g).state, GroupState::Promoted);

    // Business continues against the promoted backup volumes.
    for i in 16..24u64 {
        sim.schedule_at(
            SimTime::from_millis(20) + SimDuration::from_nanos((i - 16) * 500_000),
            move |w: &mut World, sim| {
                host_write(w, sim, s, i % 16, block_from(&i.to_le_bytes()), |w, _, ack| {
                    match ack {
                        tsuru_storage::WriteAck::Failed(_) => w.rejected += 1,
                        _ => w.acks += 1,
                    }
                });
            },
        );
    }
    // Step 2: repair the main site at t=40ms; the supervisor establishes
    // reverse protection, waits for catch-up and completes the failback.
    sim.schedule_at(SimTime::from_millis(40), move |w: &mut World, _sim| {
        w.st.array_mut(main).recover();
    });
    sim.run(&mut world);

    assert_eq!(world.rejected, 0, "promoted volumes accept writes");
    let sv = world.st.supervisor().expect("armed");
    assert_eq!(sv.stats().failovers, 1);
    assert_eq!(sv.stats().failbacks, 1, "repair → reverse sync → one failback");
    assert_eq!(sv.parked_groups(), vec![]);
    assert!(matches!(sv.stage(g), RecoveryStage::Healthy));

    // The original group is a detached husk; the re-established forward
    // group replicates main → backup again.
    assert!(world.st.fabric.group(g).pairs.is_empty());
    let fwd = *world
        .st
        .fabric
        .group_ids()
        .last()
        .expect("failback created a forward group");
    assert_ne!(fwd, g);
    let fwd_grp = world.st.fabric.group(fwd);
    assert_eq!(fwd_grp.state, GroupState::Active);
    assert!(!fwd_grp.pairs.is_empty());
    assert_eq!(
        world.st.array(main).volume(p.volume).role(),
        VolumeRole::Primary,
        "after failback the business runs at the main site again"
    );
    assert_eq!(
        world.st.array(main).volume(p.volume).content_hashes(),
        world.st.array(backup).volume(s.volume).content_hashes(),
        "writes taken at the backup site during the outage made it home"
    );
    assert!(world.st.verify_consistency(&[fwd]).is_consistent());
}
