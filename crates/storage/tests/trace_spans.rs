//! Causal trace coverage: a traced host write under ADC with a consistency
//! group must leave a well-formed span tree whose lifecycle chain is
//! `host_write → journal_append → wan_transfer → backup_apply`.

use tsuru_sim::{Sim, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::engine::host_write;
use tsuru_storage::{
    block_from, span_names, ArrayPerf, EngineConfig, HasStorage, RecordKind, SpanId, StorageWorld,
    Tracer,
};

struct World {
    st: StorageWorld,
    acks: u64,
}

impl HasStorage for World {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

/// One ADC consistency group with two pairs, tracing enabled, two writes.
fn traced_run() -> (World, Tracer) {
    let mut st = StorageWorld::new(7, EngineConfig::default());
    let tracer = Tracer::enabled();
    st.set_tracer(tracer.clone());
    let main = st.add_array("main", ArrayPerf::default());
    let backup = st.add_array("backup", ArrayPerf::default());
    let link = st.add_link(LinkConfig::metro());
    let reverse = st.add_link(LinkConfig::metro());
    let p0 = st.create_volume(main, "p0", 64);
    let s0 = st.create_volume(backup, "s0", 64);
    let p1 = st.create_volume(main, "p1", 64);
    let s1 = st.create_volume(backup, "s1", 64);
    let g = st.create_adc_group("cg", link, reverse, 1 << 24);
    st.add_pair(g, p0, s0);
    st.add_pair(g, p1, s1);

    let mut world = World { st, acks: 0 };
    let mut sim: Sim<World> = Sim::new();
    for (i, vol) in [p0, p1].into_iter().enumerate() {
        sim.schedule_at(SimTime::from_micros(i as u64 * 10), move |w: &mut World, sim| {
            host_write(w, sim, vol, 3, block_from(b"traced"), |w, _sim, _ack| {
                w.acks += 1;
            });
        });
    }
    sim.run(&mut world);
    (world, tracer)
}

#[test]
fn traced_adc_write_yields_lifecycle_chain_ending_in_backup_apply() {
    let (world, tracer) = traced_run();
    assert_eq!(world.acks, 2);

    let records = tracer.records();
    assert!(!records.is_empty());

    // Every parent id must reference an earlier record (ids are dense and
    // allocated in emission order), so the records form a forest.
    for r in &records {
        assert!(r.id.0 >= 1, "record ids start at 1");
        if !r.parent.is_none() {
            assert!(r.parent.0 < r.id.0, "parent #{} not before #{}", r.parent.0, r.id.0);
        }
    }

    // Walk one lifecycle: host_write root → journal_append → wan_transfer
    // → backup_apply, linked by parent ids.
    let root = records
        .iter()
        .find(|r| r.name == span_names::HOST_WRITE)
        .expect("host_write span recorded");
    assert!(matches!(root.kind, RecordKind::Start));
    assert!(root.parent.is_none(), "host_write is a root span");

    let find_child = |name: &str, parent: SpanId| {
        records
            .iter()
            .find(|r| r.name == name && r.parent == parent)
            .unwrap_or_else(|| panic!("no {name} span with parent #{}", parent.0))
    };
    let append = find_child(span_names::JOURNAL_APPEND, root.id);
    let transfer = find_child(span_names::WAN_TRANSFER, append.id);
    let apply = find_child(span_names::BACKUP_APPLY, transfer.id);

    // The lifecycle's edges are causally ordered in sim time.
    let apply_end = match apply.kind {
        RecordKind::Span { end } => end,
        ref k => panic!("backup_apply should be a complete span, got {k:?}"),
    };
    assert!(append.t >= root.t);
    assert!(transfer.t >= append.t);
    assert!(apply_end >= apply.t && apply.t >= transfer.t);

    // The root span closed with an ack: a matching End record exists.
    assert!(
        records
            .iter()
            .any(|r| r.name == span_names::HOST_WRITE
                && r.id == root.id
                && matches!(r.kind, RecordKind::End)),
        "host_write span must be closed by its ack"
    );

    // Both writes completed the chain: two backup_apply spans in total.
    let applies = records
        .iter()
        .filter(|r| r.name == span_names::BACKUP_APPLY)
        .count();
    assert_eq!(applies, 2);
}

#[test]
fn traced_run_samples_replication_series_and_counts_metrics() {
    let (world, _tracer) = traced_run();
    let snap = world.st.metrics.snapshot();
    // RPO-lag and journal-occupancy series are sampled at transfer/apply
    // edges once tracing is installed.
    for name in [
        tsuru_storage::metric_names::JOURNAL_OCCUPANCY,
        tsuru_storage::metric_names::RPO_LAG,
    ] {
        assert!(
            snap.series.iter().any(|(n, _)| n == name),
            "series {name} missing from snapshot"
        );
    }
    // The final samples see a drained journal and zero lag.
    let last_lag = snap
        .series
        .iter()
        .filter(|(n, _)| n == tsuru_storage::metric_names::RPO_LAG)
        .next_back()
        .map(|(_, s)| s.last)
        .expect("at least one rpo.lag_writes sample");
    assert_eq!(last_lag, 0.0);
}
