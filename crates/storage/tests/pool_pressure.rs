//! Thin-provisioning pool pressure: allocation accounting through the data
//! path, host-write rejection at exhaustion, and space release.

use tsuru_sim::{Sim, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::engine::host_write;
use tsuru_storage::{
    block_from, ArrayPerf, EngineConfig, HasStorage, PoolId, StorageWorld, WriteAck, WriteError,
    DEFAULT_POOL_CAPACITY,
};

struct World {
    st: StorageWorld,
    acks: Vec<WriteAck>,
}
impl HasStorage for World {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

#[test]
fn default_pool_is_effectively_unbounded() {
    let mut st = StorageWorld::new(1, EngineConfig::default());
    let a = st.add_array("m", ArrayPerf::default());
    let v = st.create_volume(a, "v", 64);
    for lba in 0..64 {
        st.write_direct(v, lba, b"x");
    }
    let pool = st.array(a).pool(PoolId(0));
    assert_eq!(pool.allocated_blocks(), 64);
    assert_eq!(pool.capacity_blocks(), DEFAULT_POOL_CAPACITY);
    assert!(!pool.is_exhausted());
}

#[test]
fn exhausted_pool_rejects_new_allocations_but_allows_overwrites() {
    let mut st = StorageWorld::new(2, EngineConfig::default());
    let a = st.add_array("m", ArrayPerf::default());
    let tiny = st.array_mut(a).create_pool("tiny", 4);
    let vid = st.array_mut(a).create_volume_in_pool("thin", 64, tiny);
    let v = tsuru_storage::VolRef::new(a, vid);
    let mut world = World {
        st,
        acks: Vec::new(),
    };
    let mut sim: Sim<World> = Sim::new();
    // Five writes to distinct blocks: the fifth must be refused.
    for lba in 0..5u64 {
        sim.schedule_at(SimTime::from_millis(lba), move |w: &mut World, sim| {
            host_write(w, sim, v, lba, block_from(&[lba as u8]), |w, _, ack| {
                w.acks.push(ack)
            });
        });
    }
    // An overwrite of an existing block still succeeds afterwards.
    sim.schedule_at(SimTime::from_millis(10), move |w: &mut World, sim| {
        host_write(w, sim, v, 0, block_from(b"rewrite"), |w, _, ack| {
            w.acks.push(ack)
        });
    });
    sim.run(&mut world);

    let ok = world.acks.iter().filter(|a| a.is_persisted()).count();
    assert_eq!(ok, 5, "4 allocations + 1 overwrite");
    assert_eq!(
        world.acks[4],
        WriteAck::Failed(WriteError::PoolExhausted),
        "{:?}",
        world.acks
    );
    let pool = world.st.array(a).pool(tiny);
    assert!(pool.is_exhausted());
    assert_eq!(pool.rejections(), 1);
    assert_eq!(pool.peak_blocks(), 4);
}

#[test]
fn snapshot_cow_charges_and_deletion_releases() {
    let mut st = StorageWorld::new(3, EngineConfig::default());
    let a = st.add_array("m", ArrayPerf::default());
    let pool = st.array_mut(a).create_pool("snap-pool", 100);
    let vid = st.array_mut(a).create_volume_in_pool("v", 64, pool);
    for lba in 0..10 {
        st.array_mut(a).write_block(vid, lba, block_from(&[1]));
    }
    assert_eq!(st.array(a).pool(pool).allocated_blocks(), 10);
    let snap = st.array_mut(a).create_snapshot(vid, "s", SimTime::ZERO);
    // Overwrites preserve old data: each costs one pool block.
    for lba in 0..6 {
        st.array_mut(a).write_block(vid, lba, block_from(&[2]));
    }
    assert_eq!(st.array(a).pool(pool).allocated_blocks(), 16);
    // A write to a block that was empty at snapshot time costs only the
    // new allocation (the snapshot marker holds no data).
    st.array_mut(a).write_block(vid, 20, block_from(&[3]));
    assert_eq!(st.array(a).pool(pool).allocated_blocks(), 17);
    // Deleting the snapshot releases the preserved blocks.
    st.array_mut(a).delete_snapshot(snap);
    assert_eq!(st.array(a).pool(pool).allocated_blocks(), 11);
    // Deleting the volume releases the rest.
    st.array_mut(a).delete_volume(vid);
    assert_eq!(st.array(a).pool(pool).allocated_blocks(), 0);
}

#[test]
fn replication_apply_overcommits_rather_than_corrupting() {
    // The secondary's pool is too small for the replicated working set:
    // the apply path must not fail mid-stream (that would break write-order
    // fidelity); it overcommits and the exhaustion is observable.
    let mut st = StorageWorld::new(4, EngineConfig::default());
    let main = st.add_array("m", ArrayPerf::default());
    let backup = st.add_array("b", ArrayPerf::default());
    let link = st.add_link(LinkConfig::metro());
    let rev = st.add_link(LinkConfig::metro());
    let g = st.create_adc_group("g", link, rev, 1 << 24);
    let p = st.create_volume(main, "p", 64);
    let spool = st.array_mut(backup).create_pool("small", 8);
    let sid = st.array_mut(backup).create_volume_in_pool("s", 64, spool);
    let s = tsuru_storage::VolRef::new(backup, sid);
    st.add_pair(g, p, s);

    let mut world = World {
        st,
        acks: Vec::new(),
    };
    let mut sim: Sim<World> = Sim::new();
    for lba in 0..20u64 {
        sim.schedule_at(SimTime::from_micros(lba * 200), move |w: &mut World, sim| {
            host_write(w, sim, p, lba, block_from(&[lba as u8]), |w, _, ack| {
                w.acks.push(ack)
            });
        });
    }
    sim.run(&mut world);
    assert!(world.acks.iter().all(|a| a.is_persisted()));
    // Fully replicated despite the undersized pool...
    assert_eq!(
        world.st.array(backup).volume(sid).allocated_blocks(),
        20
    );
    // ...with the overcommit visible to the operator.
    let pool = world.st.array(backup).pool(spool);
    assert!(pool.allocated_blocks() > pool.capacity_blocks());
    assert!(pool.is_exhausted());
    // And the image is still write-order faithful.
    assert!(world.st.verify_consistency(&[g]).is_consistent());
}
