//! Regression: journal-full stall retries must not reorder host writes.
//!
//! Under the Block policy a stalled write re-attempts `persist` on its own
//! retry timer. Before the per-volume ordering gate, two stalled writes to
//! the same LBA could apply in retry-phase order rather than issue order
//! when the journal freed up, so the *older* content could land last. For
//! a database WAL, whose tail block is rewritten by every commit, that
//! rolls the tail back in time and permanently truncates the record
//! stream — the chaos auditor caught this as a stale recovered database.

use std::cell::Cell;
use std::rc::Rc;

use tsuru_sim::{Sim, SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::engine::host_write;
use tsuru_storage::{
    block_from, ArrayPerf, EngineConfig, HasStorage, StorageWorld, VolRef,
};

struct World {
    st: StorageWorld,
}

impl HasStorage for World {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

/// Two same-LBA writes stall on a squeezed journal with retry phases
/// arranged so the *second* write's retry fires first after the squeeze
/// heals. The volume must still end up holding the second write's bytes.
#[test]
fn stalled_writes_apply_in_issue_order() {
    let mut st = StorageWorld::new(3, EngineConfig::default());
    let main = st.add_array("vsp-main", ArrayPerf::default());
    let backup = st.add_array("vsp-backup", ArrayPerf::default());
    let link = st.add_link(LinkConfig::metro());
    let reverse = st.add_link(LinkConfig::metro());
    let group = st.create_adc_group("g", link, reverse, 1 << 24);
    let p = st.create_volume(main, "p", 16);
    let s = st.create_volume(backup, "s", 16);
    st.add_pair(group, p, s);

    // Squeeze the journal so every append stalls (Block policy).
    let jid = st.fabric.group(group).primary_jnl.unwrap();
    st.fabric.journal_mut(jid).set_capacity_bytes(64);

    let mut world = World { st };
    let mut sim: Sim<World> = Sim::new();

    // write_service = 100 µs, stall retry = 200 µs. Issue order: OLD then
    // NEW. Service completes at 100 µs / 200 µs, so the retry grids are
    // OLD @ {300, 500, …} and NEW @ {400, 600, …}.
    let acked = Rc::new(Cell::new(0u32));
    for (at, tag) in [(SimTime::ZERO, 0xDEAD_0001u64), (SimTime::from_micros(1), 0xDEAD_0002)] {
        let acked = Rc::clone(&acked);
        sim.schedule_at(at, move |w: &mut World, sim| {
            host_write(w, sim, p, 0, block_from(&tag.to_le_bytes()), move |_, _, ack| {
                assert!(ack.is_persisted(), "{ack:?}");
                acked.set(acked.get() + 1);
            });
        });
    }

    // Heal between the two retry phases: the NEW write's retry at 400 µs
    // finds space *before* the OLD write's retry at 500 µs.
    sim.schedule_at(SimTime::from_micros(350), move |w: &mut World, _| {
        w.st.fabric.journal_mut(jid).set_capacity_bytes(1 << 24);
    });

    sim.run(&mut world);

    assert_eq!(acked.get(), 2, "both writes must eventually persist");
    assert!(
        world.st.metrics.counter(tsuru_storage::metric_names::JOURNAL_STALL_RETRIES) > 0,
        "the squeeze must actually stall the writes"
    );
    assert!(
        world.st.metrics.counter(tsuru_storage::metric_names::WRITE_ORDER_WAITS) > 0,
        "the ordering gate must park the overtaking retry"
    );
    let newest = |vol: VolRef| {
        let b = world.st.read_direct(vol, 0).unwrap();
        u64::from_le_bytes(b[..8].try_into().unwrap())
    };
    assert_eq!(
        newest(p),
        0xDEAD_0002,
        "primary must hold the later-issued write"
    );
    let report = world.st.verify_consistency(&[group]);
    assert!(report.prefix.consistent, "{:?}", report.prefix.violations);
    assert!(
        report.content_mismatches.is_empty(),
        "{:?}",
        report.content_mismatches
    );
    assert_eq!(newest(s), 0xDEAD_0002, "backup must converge to the same bytes");
}
