//! Property-based tests of the storage layer.
//!
//! The headline property is the paper's central guarantee, checked over
//! randomized workloads and failure times: **a consistency-group backup is
//! a prefix-consistent cut of the primary's ack order, no matter when the
//! site dies.**

#![allow(clippy::field_reassign_with_default)]

use std::collections::BTreeMap;

use proptest::prelude::*;
use tsuru_sim::{Sim, SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::engine::host_write;
use tsuru_storage::{
    block_from, AckLog, ArrayPerf, DenseArena, EngineConfig, HasStorage, StorageWorld, VolRef,
};

// ---------------------------------------------------------------------
// AckLog prefix checker vs a brute-force reference
// ---------------------------------------------------------------------

/// Reference implementation: a cut (k_v per volume) is prefix-consistent
/// iff it equals the per-volume counts of some global prefix.
fn prefix_reference(order: &[usize], counts: &BTreeMap<usize, u64>) -> bool {
    let nvol = counts.keys().max().map(|m| m + 1).unwrap_or(0);
    let mut running = vec![0u64; nvol];
    let target: Vec<u64> = (0..nvol)
        .map(|v| counts.get(&v).copied().unwrap_or(0))
        .collect();
    let matches = |running: &[u64]| running == target.as_slice();
    if matches(&running) {
        return true;
    }
    for &v in order {
        running[v] += 1;
        if matches(&running) {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prefix_checker_matches_reference(
        order in prop::collection::vec(0usize..4, 1..60),
        cut_fracs in prop::collection::vec(0.0f64..=1.0, 4),
    ) {
        let mut log = AckLog::new();
        let volref = |v: usize| VolRef::new(
            tsuru_storage::ArrayId(0),
            tsuru_storage::VolumeId(v as u64),
        );
        let mut per_vol_total = [0u64; 4];
        for (i, &v) in order.iter().enumerate() {
            log.append(volref(v), i as u64, i as u64, SimTime::from_nanos(i as u64));
            per_vol_total[v] += 1;
        }
        // Build an arbitrary cut (not necessarily a prefix).
        let mut counts = BTreeMap::new();
        let mut ref_counts = BTreeMap::new();
        for v in 0..4usize {
            let k = (per_vol_total[v] as f64 * cut_fracs[v]).round() as u64;
            counts.insert(volref(v), k);
            ref_counts.insert(v, k);
        }
        let verdict = log.check_prefix(&counts).consistent;
        let reference = prefix_reference(&order, &ref_counts);
        prop_assert_eq!(verdict, reference, "order={:?} cut={:?}", order, ref_counts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every true prefix cut of the ack order is accepted, and a cut
    /// derived from a randomly *reordered* copy of the same write
    /// sequence is rejected whenever it is not also a prefix of the
    /// original order (checked against the brute-force reference).
    #[test]
    fn prefix_cuts_accepted_reordered_cuts_rejected(
        order in prop::collection::vec(0usize..4, 2..60),
        cut_at in any::<prop::sample::Index>(),
        take_at in any::<prop::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let volref = |v: usize| VolRef::new(
            tsuru_storage::ArrayId(0),
            tsuru_storage::VolumeId(v as u64),
        );
        let mut log = AckLog::new();
        for (i, &v) in order.iter().enumerate() {
            log.append(volref(v), i as u64, i as u64, SimTime::from_nanos(i as u64));
        }
        let counts_of = |prefix: &[usize]| -> (BTreeMap<VolRef, u64>, BTreeMap<usize, u64>) {
            let mut counts = BTreeMap::new();
            let mut ref_counts = BTreeMap::new();
            for v in 0..4usize {
                let k = prefix.iter().filter(|&&x| x == v).count() as u64;
                counts.insert(volref(v), k);
                ref_counts.insert(v, k);
            }
            (counts, ref_counts)
        };

        // Any prefix of the true ack order must be accepted.
        let k = cut_at.index(order.len() + 1);
        let (prefix_cut, _) = counts_of(&order[..k]);
        prop_assert!(
            log.check_prefix(&prefix_cut).consistent,
            "true prefix of length {} rejected", k
        );

        // A cut taken from a shuffled replay of the same writes models a
        // backup that applied writes out of order. Unless the shuffled
        // prefix happens to also be a prefix of the real order (the
        // reference decides), the checker must reject it.
        let mut shuffled = order.clone();
        tsuru_sim::DetRng::new(seed).shuffle(&mut shuffled);
        let m = 1 + take_at.index(order.len());
        let (reordered_cut, ref_counts) = counts_of(&shuffled[..m]);
        let is_genuine_prefix = prefix_reference(&order, &ref_counts);
        prop_assert_eq!(
            log.check_prefix(&reordered_cut).consistent,
            is_genuine_prefix,
            "order={:?} shuffled-cut={:?}", order, ref_counts
        );
    }
}

// ---------------------------------------------------------------------
// The engine property: CG backups are always prefix-consistent cuts
// ---------------------------------------------------------------------

struct World {
    st: StorageWorld,
}
impl HasStorage for World {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

/// One randomized write: (volume index, lba, issue-time offset ns).
#[derive(Debug, Clone)]
struct W {
    vol: usize,
    lba: u64,
    at_ns: u64,
}

fn writes_strategy() -> impl Strategy<Value = Vec<W>> {
    prop::collection::vec(
        (0usize..3, 0u64..64, 0u64..20_000_000u64)
            .prop_map(|(vol, lba, at_ns)| W { vol, lba, at_ns }),
        10..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cg_backup_is_always_a_prefix_cut(
        writes in writes_strategy(),
        fail_frac in 0.1f64..1.0,
        seed in any::<u64>(),
        jitter_us in 0u64..3000,
    ) {
        let mut cfg = EngineConfig::default();
        cfg.pump_jitter = SimDuration::from_micros(jitter_us);
        let mut st = StorageWorld::new(seed, cfg);
        let main = st.add_array("m", ArrayPerf::default());
        let backup = st.add_array("b", ArrayPerf::default());
        let link = st.add_link(LinkConfig::metro());
        let rev = st.add_link(LinkConfig::metro());
        let g = st.create_adc_group("cg", link, rev, 1 << 24);
        let mut vols = Vec::new();
        for i in 0..3 {
            let p = st.create_volume(main, format!("p{i}"), 64);
            let s = st.create_volume(backup, format!("s{i}"), 64);
            st.add_pair(g, p, s);
            vols.push(p);
        }
        let mut world = World { st };
        let mut sim: Sim<World> = Sim::new();
        let max_t = writes.iter().map(|w| w.at_ns).max().unwrap_or(0);
        for (i, w) in writes.iter().enumerate() {
            let vol = vols[w.vol];
            let lba = w.lba;
            let tag = i as u64;
            sim.schedule_at(SimTime::from_nanos(w.at_ns), move |s: &mut World, sim| {
                host_write(s, sim, vol, lba, block_from(&tag.to_le_bytes()), |_, _, _| {});
            });
        }
        let fail_at = SimTime::from_nanos((max_t as f64 * fail_frac) as u64 + 1);
        sim.schedule_at(fail_at, move |w: &mut World, sim| {
            w.st.fail_array(main, sim.now());
        });
        // Let everything settle (bounded: failed primary stops the flow).
        sim.run_until(&mut world, fail_at + SimDuration::from_millis(200));
        world.st.promote_group(g);
        // The checker must accept the backup image's cut vector directly…
        let cut = world.st.applied_counts(&[g]);
        prop_assert!(
            world.st.ack_log.check_prefix(&cut).consistent,
            "checker rejected a CG-ADC backup image: {:?}",
            cut
        );
        // …and the full report (cut + byte content) must also pass.
        let rep = world.st.verify_consistency(&[g]);
        prop_assert!(
            rep.is_consistent(),
            "CG backup must be prefix-consistent: {:?}",
            rep
        );
    }

    /// Without failures, the backup converges to an exact copy, and the
    /// number of applied entries equals the number of acked writes.
    #[test]
    fn cg_drains_to_exact_copy(
        writes in writes_strategy(),
        seed in any::<u64>(),
    ) {
        let mut st = StorageWorld::new(seed, EngineConfig::default());
        let main = st.add_array("m", ArrayPerf::default());
        let backup = st.add_array("b", ArrayPerf::default());
        let link = st.add_link(LinkConfig::metro());
        let rev = st.add_link(LinkConfig::metro());
        let g = st.create_adc_group("cg", link, rev, 1 << 24);
        let mut pairs = Vec::new();
        for i in 0..3 {
            let p = st.create_volume(main, format!("p{i}"), 64);
            let s = st.create_volume(backup, format!("s{i}"), 64);
            st.add_pair(g, p, s);
            pairs.push((p, s));
        }
        let mut world = World { st };
        let mut sim: Sim<World> = Sim::new();
        for (i, w) in writes.iter().enumerate() {
            let vol = pairs[w.vol].0;
            let lba = w.lba;
            let tag = i as u64;
            sim.schedule_at(SimTime::from_nanos(w.at_ns), move |s: &mut World, sim| {
                host_write(s, sim, vol, lba, block_from(&tag.to_le_bytes()), |_, _, _| {});
            });
        }
        sim.run(&mut world);
        for (p, s) in pairs {
            let pc = world.st.array(main).volume(p.volume).content_hashes();
            let sc = world.st.array(backup).volume(s.volume).content_hashes();
            prop_assert_eq!(pc, sc);
        }
        let grp = world.st.fabric.group(g);
        prop_assert_eq!(grp.stats.entries_applied, writes.len() as u64);
        let rep = world.st.verify_consistency(&[g]);
        prop_assert!(rep.is_consistent());
    }
}

// ---------------------------------------------------------------------
// DenseArena model test
// ---------------------------------------------------------------------

/// One randomized arena operation. `Remove`/`Get` pick from the live
/// handles (or probe a dead/out-of-range one when none fit), so long
/// sequences exercise the LIFO free list, not just append.
#[derive(Debug, Clone)]
enum AOp {
    Insert(u16),
    Remove(prop::sample::Index),
    Get(prop::sample::Index),
}

fn aop_strategy() -> impl Strategy<Value = AOp> {
    prop_oneof![
        5 => any::<u16>().prop_map(AOp::Insert),
        3 => any::<prop::sample::Index>().prop_map(AOp::Remove),
        2 => any::<prop::sample::Index>().prop_map(AOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The arena agrees with a `BTreeMap<u32, u16>` model under every
    /// insert/remove/get interleaving: same occupants, same lengths, same
    /// vacancy answers, and iteration yields exactly the model's entries
    /// in ascending handle order. Handle reuse is LIFO, so the handle
    /// sequence itself is a pure function of the op sequence — the model
    /// re-derives it and the test would fail on any divergence.
    #[test]
    fn dense_arena_matches_btreemap_model(ops in prop::collection::vec(aop_strategy(), 1..200)) {
        let mut arena: DenseArena<u16> = DenseArena::new();
        let mut model: BTreeMap<u32, u16> = BTreeMap::new();
        let mut high_water = 0u32;
        for op in ops {
            match op {
                AOp::Insert(v) => {
                    let h = arena.insert(v);
                    prop_assert!(
                        model.insert(h, v).is_none(),
                        "insert handed out a live handle {h}"
                    );
                    high_water = high_water.max(h + 1);
                }
                AOp::Remove(ix) => {
                    if model.is_empty() {
                        // Nothing live: removal must refuse any probe.
                        prop_assert_eq!(arena.remove(high_water + 1), None);
                    } else {
                        let &h = model
                            .keys()
                            .nth(ix.index(model.len()))
                            .expect("index < len");
                        prop_assert_eq!(arena.remove(h), model.remove(&h));
                        // A freed handle is dead until reissued.
                        prop_assert_eq!(arena.get(h), None);
                        prop_assert_eq!(arena.remove(h), None);
                    }
                }
                AOp::Get(ix) => {
                    // Probe across [0, high_water]: hits live slots,
                    // vacant (freed) slots and the never-allocated edge.
                    let h = ix.index(high_water as usize + 1) as u32;
                    prop_assert_eq!(arena.get(h), model.get(&h));
                    prop_assert_eq!(arena.contains(h), model.contains_key(&h));
                }
            }
            prop_assert_eq!(arena.len(), model.len());
            prop_assert_eq!(arena.is_empty(), model.is_empty());
            // Slots are only ever appended, never shrunk.
            prop_assert!(arena.capacity_slots() <= high_water as usize);
            let live: Vec<(u32, u16)> = arena.iter().map(|(h, &v)| (h, v)).collect();
            let expect: Vec<(u32, u16)> = model.iter().map(|(&h, &v)| (h, v)).collect();
            prop_assert_eq!(live, expect, "iteration order or occupancy diverged");
        }
    }
}

// ---------------------------------------------------------------------
// Journal model test
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum JOp {
    Append(u8),
    MarkSentUpTo,
    Release(u8),
}

fn jop_strategy() -> impl Strategy<Value = JOp> {
    prop_oneof![
        4 => (0u8..255).prop_map(JOp::Append),
        2 => Just(JOp::MarkSentUpTo),
        2 => (0u8..255).prop_map(JOp::Release),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn journal_accounting_never_desyncs(ops in prop::collection::vec(jop_strategy(), 1..80)) {
        use tsuru_storage::{Journal, JournalId, PairId};
        let mut j = Journal::new(JournalId(0), 20 * (4096 + 64), 64);
        let mut model_len = 0usize;
        let mut appended = 0u64;
        let mut released = 0u64;
        for op in ops {
            match op {
                JOp::Append(x) => {
                    let fits = j.has_space(4096);
                    let got = j.append(PairId(0), x as u64, block_from(&[x]), x as u64);
                    prop_assert_eq!(fits, got.is_some());
                    if let Some(seq) = got {
                        appended += 1;
                        model_len += 1;
                        prop_assert_eq!(seq, appended);
                    }
                }
                JOp::MarkSentUpTo => {
                    if appended > 0 {
                        j.mark_sent(appended);
                        prop_assert!(j.peek_unsent(100, u64::MAX).is_empty());
                    }
                }
                JOp::Release(n) => {
                    let upto = released + (n as u64 % 8);
                    let upto = upto.min(appended);
                    j.release_upto(upto);
                    if upto > released {
                        model_len -= (upto - released) as usize;
                        released = upto;
                    }
                }
            }
            prop_assert_eq!(j.len(), model_len);
            prop_assert_eq!(
                j.used_bytes(),
                model_len as u64 * (4096 + 64),
                "byte accounting drifted"
            );
            if let Some(front) = j.peek_front() {
                prop_assert_eq!(front.seq, released + 1);
            }
        }
    }
}
