//! Block-level primitives: identifiers, payload buffers and content hashing.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Size of one logical block, in bytes. Matches the database page size so a
/// page write is exactly one block write, as on the paper's testbed (Oracle
/// 4 KiB blocks on VSP LDEVs).
pub const BLOCK_SIZE: usize = 4096;

/// Identifier of a storage array (one per site in the demonstration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

/// Identifier of a volume within an array (an LDEV number, in Hitachi terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VolumeId(pub u64);

/// A fully qualified volume reference: which array, which volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VolRef {
    /// The owning array.
    pub array: ArrayId,
    /// The volume within that array.
    pub volume: VolumeId,
}

impl VolRef {
    /// Convenience constructor.
    pub fn new(array: ArrayId, volume: VolumeId) -> Self {
        VolRef { array, volume }
    }
}

impl fmt::Display for VolRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}/v{}", self.array.0, self.volume.0)
    }
}

/// Identifier of a journal volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JournalId(pub u32);

/// Identifier of a replication pair (one primary volume + one secondary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairId(pub u32);

/// Identifier of a replication group (the consistency-group unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupId(pub u32);

/// Identifier of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SnapshotId(pub u64);

/// The payload of one block write. `Bytes` gives cheap reference-counted
/// clones, which matters because a block travels host → volume → journal →
/// link → remote journal → secondary volume without copying.
pub type BlockBuf = Bytes;

/// FNV-1a 64-bit hash of a byte slice.
///
/// Used for content fingerprints in the ack log and write-order-fidelity
/// checker; not cryptographic, but collisions are irrelevant at the scales
/// simulated (≪ 2^32 samples).
pub fn content_hash(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Build a block-sized buffer from a possibly shorter payload, zero-padded.
/// Panics if `data` exceeds [`BLOCK_SIZE`].
pub fn block_from(data: &[u8]) -> BlockBuf {
    assert!(
        data.len() <= BLOCK_SIZE,
        "payload of {} bytes exceeds block size {BLOCK_SIZE}",
        data.len()
    );
    if data.len() == BLOCK_SIZE {
        return Bytes::copy_from_slice(data);
    }
    let mut buf = Vec::with_capacity(BLOCK_SIZE);
    buf.extend_from_slice(data);
    buf.resize(BLOCK_SIZE, 0);
    Bytes::from(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_discriminating() {
        let a = content_hash(b"hello");
        let b = content_hash(b"hello");
        let c = content_hash(b"hellp");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn block_from_pads_to_block_size() {
        let b = block_from(b"abc");
        assert_eq!(b.len(), BLOCK_SIZE);
        assert_eq!(&b[..3], b"abc");
        assert!(b[3..].iter().all(|&x| x == 0));
    }

    #[test]
    fn block_from_full_block_is_copied_verbatim() {
        let data = vec![7u8; BLOCK_SIZE];
        let b = block_from(&data);
        assert_eq!(&b[..], &data[..]);
    }

    #[test]
    #[should_panic(expected = "exceeds block size")]
    fn block_from_rejects_oversize() {
        let data = vec![0u8; BLOCK_SIZE + 1];
        let _ = block_from(&data);
    }

    #[test]
    fn volref_display() {
        let v = VolRef::new(ArrayId(1), VolumeId(42));
        assert_eq!(v.to_string(), "a1/v42");
    }
}
