//! Shard lanes: partitioning a metro-scale world's WAN transfer and
//! journal accounting into independent per-shard lanes.
//!
//! A *shard* owns one WAN data link, one reverse (acknowledgement) link
//! and a set of replication groups. Groups in the same shard contend for
//! the shard's WAN bandwidth (their transfer pumps offer frames on the
//! shared link) but never touch another shard's lane — which is the
//! minimal-coordination design SCAR-style replication argues for: cross-
//! shard ordering is never promised, so no cross-shard coordination is
//! ever paid.
//!
//! The layout is pure bookkeeping over dense ids (`Vec` indexed by
//! [`GroupId`]), so shard lookup on the sampling path is one array read.
//! [`crate::StorageWorld::sample_shard_series`] walks the lanes and feeds
//! the per-shard journal-occupancy and apply-lag series that E12 tables
//! and the E11 SLO engine read.

use tsuru_simnet::LinkId;

use crate::block::GroupId;

/// One shard's lane: its WAN link pair and member groups.
#[derive(Debug, Clone)]
pub struct ShardLane {
    /// Main → backup data link shared by the shard's transfer pumps.
    pub link: LinkId,
    /// Backup → main acknowledgement link.
    pub reverse: LinkId,
    /// Member groups, in assignment order.
    pub groups: Vec<GroupId>,
}

/// The shard partition of a world: lanes plus the group → shard map.
#[derive(Debug, Clone, Default)]
pub struct ShardLayout {
    lanes: Vec<ShardLane>,
    /// `of_group[group.0]` = owning shard; dense, grown at assignment.
    of_group: Vec<u32>,
}

impl ShardLayout {
    /// An empty layout (no lanes).
    pub fn new() -> Self {
        ShardLayout::default()
    }

    /// Register a shard lane over an existing link pair; returns the shard
    /// index (dense, starting at 0).
    pub fn add_lane(&mut self, link: LinkId, reverse: LinkId) -> u32 {
        let id = u32::try_from(self.lanes.len()).expect("shard count exceeds u32");
        self.lanes.push(ShardLane { link, reverse, groups: Vec::new() });
        id
    }

    /// Number of lanes.
    pub fn num_shards(&self) -> u32 {
        self.lanes.len() as u32
    }

    /// Borrow a lane.
    pub fn lane(&self, shard: u32) -> &ShardLane {
        self.lanes
            .get(shard as usize)
            .expect("invariant: shard index is only minted by add_lane")
    }

    /// Assign `group` to `shard` (layout bookkeeping only — the caller
    /// creates the group on the lane's links).
    pub fn assign(&mut self, group: GroupId, shard: u32) {
        assert!((shard as usize) < self.lanes.len(), "assign to unknown shard {shard}");
        let idx = group.0 as usize;
        if self.of_group.len() <= idx {
            self.of_group.resize(idx + 1, u32::MAX);
        }
        assert_eq!(self.of_group[idx], u32::MAX, "group {} assigned twice", group.0);
        self.of_group[idx] = shard;
        self.lanes[shard as usize].groups.push(group);
    }

    /// The shard owning `group`, if assigned.
    pub fn shard_of(&self, group: GroupId) -> Option<u32> {
        match self.of_group.get(group.0 as usize) {
            Some(&s) if s != u32::MAX => Some(s),
            _ => None,
        }
    }

    /// Iterate lanes as `(shard, &lane)` in shard order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &ShardLane)> {
        self.lanes.iter().enumerate().map(|(i, l)| (i as u32, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_assign_and_resolve() {
        let mut s = ShardLayout::new();
        let a = s.add_lane(LinkId(0), LinkId(1));
        let b = s.add_lane(LinkId(2), LinkId(3));
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.num_shards(), 2);
        s.assign(GroupId(0), 1);
        s.assign(GroupId(2), 0);
        assert_eq!(s.shard_of(GroupId(0)), Some(1));
        assert_eq!(s.shard_of(GroupId(1)), None);
        assert_eq!(s.shard_of(GroupId(2)), Some(0));
        assert_eq!(s.lane(1).groups, vec![GroupId(0)]);
        let sizes: Vec<usize> = s.iter().map(|(_, l)| l.groups.len()).collect();
        assert_eq!(sizes, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn double_assignment_is_rejected() {
        let mut s = ShardLayout::new();
        s.add_lane(LinkId(0), LinkId(1));
        s.assign(GroupId(0), 0);
        s.assign(GroupId(0), 0);
    }
}
