//! Copy-on-write snapshots and snapshot groups.
//!
//! A snapshot preserves the image of a volume at creation time: when the
//! base volume is later overwritten, the *old* block content is saved into
//! the snapshot before the overwrite lands (§III-A2 of the paper, Hitachi
//! Thin Image semantics). A snapshot group is a set of snapshots taken at
//! the same instant across several volumes, giving a crash-consistent
//! multi-volume image.

use std::collections::BTreeMap;

use tsuru_sim::SimTime;

use crate::block::{BlockBuf, SnapshotId, VolumeId};

/// One copy-on-write snapshot of a single volume.
#[derive(Debug, Clone)]
pub struct Snapshot {
    id: SnapshotId,
    name: String,
    base: VolumeId,
    created_at: SimTime,
    /// Old content saved on first overwrite after creation, keyed by LBA.
    saved: BTreeMap<u64, BlockBuf>,
    /// LBAs that were unwritten at snapshot time but have since been written
    /// on the base — reads of these must return "unwritten", not base data.
    was_empty: BTreeMap<u64, ()>,
    group: Option<u64>,
}

impl Snapshot {
    pub(crate) fn new(
        id: SnapshotId,
        name: impl Into<String>,
        base: VolumeId,
        created_at: SimTime,
        group: Option<u64>,
    ) -> Self {
        Snapshot {
            id,
            name: name.into(),
            base,
            created_at,
            saved: BTreeMap::new(),
            was_empty: BTreeMap::new(),
            group,
        }
    }

    /// Snapshot id.
    pub fn id(&self) -> SnapshotId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The volume this snapshot was taken from.
    pub fn base_volume(&self) -> VolumeId {
        self.base
    }

    /// Creation instant.
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// The snapshot-group identifier, if this snapshot was taken as part of
    /// an atomic group.
    pub fn group(&self) -> Option<u64> {
        self.group
    }

    /// Number of blocks that have been preserved by copy-on-write so far.
    pub fn cow_blocks(&self) -> usize {
        self.saved.len() + self.was_empty.len()
    }

    /// Preserved blocks that hold actual data (consume pool capacity).
    pub fn saved_blocks(&self) -> usize {
        self.saved.len()
    }

    /// Would a write to `lba` on the base volume trigger a copy-on-write
    /// preservation into this snapshot?
    pub(crate) fn needs_preserve(&self, lba: u64) -> bool {
        !self.saved.contains_key(&lba) && !self.was_empty.contains_key(&lba)
    }

    /// Called by the array before an overwrite of `lba` on the base volume.
    /// `old` is the pre-overwrite content (`None` if the block was never
    /// written). Returns `true` if a copy-on-write save actually happened
    /// (first overwrite of this LBA since the snapshot), which costs extra
    /// service time on the array.
    pub(crate) fn preserve(&mut self, lba: u64, old: Option<&BlockBuf>) -> bool {
        if self.saved.contains_key(&lba) || self.was_empty.contains_key(&lba) {
            return false;
        }
        match old {
            Some(b) => {
                self.saved.insert(lba, b.clone());
            }
            None => {
                self.was_empty.insert(lba, ());
            }
        }
        true
    }

    /// Read a block as of snapshot time, given access to the current base
    /// content. `base_read` supplies the base volume's *current* block.
    pub fn read_with<'a>(
        &'a self,
        lba: u64,
        base_read: impl FnOnce(u64) -> Option<&'a BlockBuf>,
    ) -> Option<&'a BlockBuf> {
        if let Some(saved) = self.saved.get(&lba) {
            return Some(saved);
        }
        if self.was_empty.contains_key(&lba) {
            return None;
        }
        // Block untouched since snapshot: base content is snapshot content.
        base_read(lba)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::block_from;

    #[test]
    fn unchanged_blocks_read_through_to_base() {
        let snap = Snapshot::new(SnapshotId(1), "s", VolumeId(1), SimTime::ZERO, None);
        let base = block_from(b"base");
        let got = snap.read_with(3, |_| Some(&base));
        assert_eq!(&got.unwrap()[..4], b"base");
    }

    #[test]
    fn preserved_blocks_shadow_base() {
        let mut snap = Snapshot::new(SnapshotId(1), "s", VolumeId(1), SimTime::ZERO, None);
        let old = block_from(b"old");
        assert!(snap.preserve(3, Some(&old)));
        // Second overwrite of the same LBA does not re-save.
        assert!(!snap.preserve(3, Some(&block_from(b"mid"))));
        let new = block_from(b"new");
        let got = snap.read_with(3, |_| Some(&new));
        assert_eq!(&got.unwrap()[..3], b"old");
        assert_eq!(snap.cow_blocks(), 1);
    }

    #[test]
    fn blocks_unwritten_at_snapshot_time_stay_unwritten() {
        let mut snap = Snapshot::new(SnapshotId(1), "s", VolumeId(1), SimTime::ZERO, None);
        assert!(snap.preserve(9, None));
        let new = block_from(b"new");
        assert!(snap.read_with(9, |_| Some(&new)).is_none());
    }

    #[test]
    fn group_membership_recorded() {
        let snap = Snapshot::new(SnapshotId(2), "g", VolumeId(1), SimTime::from_secs(5), Some(7));
        assert_eq!(snap.group(), Some(7));
        assert_eq!(snap.created_at(), SimTime::from_secs(5));
    }
}
