//! The timed data plane: host I/O, ADC journal transfer/apply, SDC.
//!
//! Every function here is generic over the simulation state `S:
//! [`HasStorage`]`, so higher layers can embed the
//! [`StorageWorld`](crate::StorageWorld) in a
//! larger world struct, and over the kernel event type `E:
//! [`StorageEvents`]`, so every scheduled hop is a typed
//! [`StorageOp`](crate::event::StorageOp) dispatched by match — zero
//! allocations per event — while closure-kernel worlds (`Sim<World>`)
//! keep working through the boxed escape hatch. The flow for one
//! asynchronously replicated write (the paper's §III-A1):
//!
//! ```text
//! host_write ──service──▶ persist: journal.append + volume write + ACK
//!                                   │ (host already acknowledged)
//!                      transfer pump▼ (batches, link bandwidth+latency)
//!                         backup-site journal ──apply pump──▶ secondary
//!                                   │ volumes, strictly in seq order
//!                     applied-ack ◀─┘ (frees main-site journal space)
//! ```
//!
//! SDC instead holds the host acknowledgement until the backup site has
//! persisted the block and the acknowledgement frame has crossed back —
//! which is exactly why SDC latency carries the WAN round trip (§V).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tsuru_sim::{Sim, SimDuration, SimTime};
use tsuru_simnet::TransferOutcome;
use tsuru_telemetry::{names, spans, SpanId};

use crate::array::WriteError;
use crate::block::{content_hash, BlockBuf, GroupId, PairId, VolRef, BLOCK_SIZE};
use crate::config::JournalFullPolicy;
use crate::event::{LegCb, StorageEvents, StorageOp, WriteCb};
use crate::fabric::{GroupMode, SuspendReason};
use crate::journal::JournalEntry;
use crate::world::HasStorage;

/// Host-visible completion of a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAck {
    /// Persisted with full replication protection.
    Ok {
        /// Submit-to-ack latency.
        latency: SimDuration,
        /// Position in the global ack order.
        global: u64,
    },
    /// Persisted locally, but the replication group is suspended — the
    /// backup is not advancing.
    Degraded {
        /// Submit-to-ack latency.
        latency: SimDuration,
        /// Position in the global ack order.
        global: u64,
    },
    /// Rejected.
    Failed(WriteError),
}

impl WriteAck {
    /// True for `Ok` and `Degraded`.
    pub fn is_persisted(&self) -> bool {
        !matches!(self, WriteAck::Failed(_))
    }

    /// The latency, if the write was persisted.
    pub fn latency(&self) -> Option<SimDuration> {
        match self {
            WriteAck::Ok { latency, .. } | WriteAck::Degraded { latency, .. } => Some(*latency),
            WriteAck::Failed(_) => None,
        }
    }

    fn trace_label(&self) -> &'static str {
        match self {
            WriteAck::Ok { .. } => "ok",
            WriteAck::Degraded { .. } => "degraded",
            WriteAck::Failed(_) => "failed",
        }
    }
}

/// Outcome of one synchronous replication leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegDone {
    /// The backup array persisted the block and acknowledged in time.
    Ok,
    /// The leg degraded (suspended group, down link, failed array); the
    /// host write completes as [`WriteAck::Degraded`].
    Degraded,
}

/// Submit a block write from a host. `cb` fires when the array
/// acknowledges (or rejects) the write.
pub fn host_write<S, E, F>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    vol: VolRef,
    lba: u64,
    data: BlockBuf,
    cb: F,
) where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
    F: FnOnce(&mut S, &mut Sim<S, E>, WriteAck) + 'static,
{
    assert_eq!(data.len(), BLOCK_SIZE, "host writes are whole blocks");
    let now = sim.now();
    let st = state.storage_mut();
    // Root of the write's lifecycle trace: every downstream span
    // (journal_append → wan_transfer → backup_apply) parents back here.
    let span = st.tracer.span_start(spans::HOST_WRITE, now, SpanId::NONE, || {
        vec![("vol", vol.to_string().into()), ("lba", lba.into())]
    });
    if let Err(e) = st.check_host_write(vol, lba) {
        st.metrics.inc(names::WRITES_FAILED);
        st.tracer
            .span_end(spans::HOST_WRITE, span, now, || vec![("ack", "failed".into())]);
        sim.schedule_event_in(
            SimDuration::ZERO,
            E::storage(StorageOp::AckNow {
                ack: WriteAck::Failed(e),
                cb: Box::new(cb),
            }),
        );
        return;
    }
    let service = st.array(vol.array).perf().write_service;
    let done = st.array_mut(vol.array).admit(vol.volume, now, service);
    let ticket = st.issue_write_ticket(vol);
    sim.schedule_event_at(
        done,
        E::storage(StorageOp::Persist {
            vol,
            lba,
            data,
            issued: now,
            ticket,
            span,
            cb: Box::new(cb),
        }),
    );
}

/// Submit a block read from a host; `cb` receives the content (`None` for a
/// never-written block or a failed array).
pub fn host_read<S, E, F>(state: &mut S, sim: &mut Sim<S, E>, vol: VolRef, lba: u64, cb: F)
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
    F: FnOnce(&mut S, &mut Sim<S, E>, Option<BlockBuf>) + 'static,
{
    let now = sim.now();
    let st = state.storage_mut();
    if st.array(vol.array).is_failed() {
        sim.schedule_event_in(
            SimDuration::ZERO,
            E::storage(StorageOp::ReadFail { cb: Box::new(cb) }),
        );
        return;
    }
    let service = st.array(vol.array).perf().read_service;
    let done = st.array_mut(vol.array).admit(vol.volume, now, service);
    sim.schedule_event_at(
        done,
        E::storage(StorageOp::ReadDone {
            vol,
            lba,
            cb: Box::new(cb),
        }),
    );
}

/// Submit a block read against a snapshot image; timing is charged to the
/// base volume's station (the snapshot shares the base's spindles). `cb`
/// receives the point-in-time content.
pub fn host_read_snapshot<S, E, F>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    array: crate::block::ArrayId,
    snap: crate::block::SnapshotId,
    lba: u64,
    cb: F,
) where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
    F: FnOnce(&mut S, &mut Sim<S, E>, Option<BlockBuf>) + 'static,
{
    let now = sim.now();
    let st = state.storage_mut();
    if st.array(array).is_failed() {
        sim.schedule_event_in(
            SimDuration::ZERO,
            E::storage(StorageOp::ReadFail { cb: Box::new(cb) }),
        );
        return;
    }
    let base = st.array(array).snapshot(snap).base_volume();
    let service = st.array(array).perf().read_service;
    let done = st.array_mut(array).admit(base, now, service);
    sim.schedule_event_at(
        done,
        E::storage(StorageOp::SnapReadDone {
            array,
            snap,
            lba,
            cb: Box::new(cb),
        }),
    );
}

enum PersistNext {
    Ack(WriteAck),
    Stall(SimDuration, BlockBuf),
    Legs {
        data: BlockBuf,
        adc_kicks: Vec<GroupId>,
        sdc_legs: Vec<(GroupId, PairId)>,
        any_degraded: bool,
    },
}

/// The array's cache-persist step, at the end of the front-end service
/// time. A volume may have several replication legs (multi-target
/// topologies: metro SDC plus WAN ADC); the host acknowledgement waits for
/// every synchronous leg, while asynchronous legs only journal.
#[allow(clippy::too_many_arguments)]
pub(crate) fn persist<S, E>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    vol: VolRef,
    lba: u64,
    data: BlockBuf,
    issued: SimTime,
    ticket: u64,
    span: SpanId,
    cb: WriteCb<S, E>,
) where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let now = sim.now();
    let hash = content_hash(&data);
    let next = {
        let st = state.storage_mut();
        // Pass 0 — per-volume ordering: apply strictly in issue order. A
        // write stalled by a full journal (Block policy) self-retries on an
        // independent timer, so without this gate a *stale* retry could
        // apply after newer writes to the same block and roll its content
        // back — the auditor catches that as a truncated WAL tail.
        if !st.is_write_turn(vol, ticket) {
            st.metrics.inc(names::WRITE_ORDER_WAITS);
            st.tracer
                .instant(spans::TICKET_WAIT, now, span, || vec![("ticket", ticket.into())]);
            PersistNext::Stall(st.config.journal_stall_retry, data)
        } else if st.array(vol.array).is_failed() {
            st.retire_write_ticket(vol);
            st.metrics.inc(names::WRITES_FAILED);
            PersistNext::Ack(WriteAck::Failed(WriteError::ArrayFailed))
        } else {
            let pids: Vec<PairId> = st.fabric.pairs_by_primary(vol).to_vec();
            if pids.is_empty() {
                st.retire_write_ticket(vol);
                let global = st.commit_local(now, vol, lba, data, hash);
                PersistNext::Ack(WriteAck::Ok {
                    latency: now - issued,
                    global,
                })
            } else {
                // Pass 1 — admission: under the Block policy, every active
                // ADC leg must have journal space before ANY side effect
                // happens, so a stalled write can retry without
                // double-appending.
                let mut stall = false;
                if st.journal_full_policy() == JournalFullPolicy::Block {
                    for &pid in &pids {
                        let gid = st.fabric.pair(pid).group;
                        let g = st.fabric.group(gid);
                        if g.is_active() && g.mode == GroupMode::Adc {
                            let jid = g.primary_jnl.expect("invariant: active ADC groups always carry a primary journal");
                            if !st.fabric.journal(jid).has_space(data.len()) {
                                stall = true;
                            }
                        }
                    }
                }
                if stall {
                    st.metrics.inc(names::JOURNAL_STALL_RETRIES);
                    st.metrics.inc(names::JOURNAL_OVERFLOW);
                    st.tracer.instant(spans::JOURNAL_STALL, now, span, || {
                        vec![("ticket", ticket.into())]
                    });
                    for &pid in &pids {
                        let gid = st.fabric.pair(pid).group;
                        st.fabric.group_mut(gid).stats.journal_stalls += 1;
                    }
                    PersistNext::Stall(st.config.journal_stall_retry, data)
                } else {
                    // Pass 2 — persist the primary copy once. The write is
                    // past admission, so the volume's turn advances.
                    st.retire_write_ticket(vol);
                    st.array_mut(vol.array).write_block(vol.volume, lba, data.clone());
                    // Pass 3 — drive each leg.
                    let mut adc_kicks = Vec::new();
                    let mut sdc_legs = Vec::new();
                    let mut any_degraded = false;
                    for &pid in &pids {
                        let gid = st.fabric.pair(pid).group;
                        let (mode, active) = {
                            let g = st.fabric.group(gid);
                            (g.mode, g.is_active())
                        };
                        if !active {
                            st.fabric.group_mut(gid).stats.writes_while_suspended += 1;
                            st.fabric.pair_mut(pid).dirty_since_suspend.insert(lba);
                            any_degraded = true;
                            continue;
                        }
                        match mode {
                            GroupMode::Adc => {
                                let jid = {
                                    let g = st.fabric.group(gid);
                                    g.primary_jnl.expect("invariant: active ADC groups always carry a primary journal")
                                };
                                if st.fabric.journal(jid).has_space(data.len()) {
                                    let seq = st
                                        .fabric
                                        .journal_mut(jid)
                                        .append(pid, lba, data.clone(), hash)
                                        .expect("invariant: space was checked immediately above");
                                    if st.tracer.is_enabled() {
                                        let jspan = st.tracer.span_complete(
                                            spans::JOURNAL_APPEND,
                                            now,
                                            now,
                                            span,
                                            || {
                                                vec![
                                                    ("seq", seq.into()),
                                                    ("group", (gid.0 as u64).into()),
                                                ]
                                            },
                                        );
                                        st.fabric.journal_mut(jid).set_last_span(jspan);
                                    }
                                    st.fabric.pair_mut(pid).acked_writes += 1;
                                    adc_kicks.push(gid);
                                } else {
                                    // Suspend policy (Block was handled in
                                    // pass 1).
                                    st.metrics.inc(names::JOURNAL_OVERFLOW);
                                    st.fabric
                                        .group_mut(gid)
                                        .suspend(now, SuspendReason::JournalFull);
                                    st.fabric.pair_mut(pid).dirty_since_suspend.insert(lba);
                                    any_degraded = true;
                                }
                            }
                            GroupMode::Sdc => sdc_legs.push((gid, pid)),
                        }
                    }
                    PersistNext::Legs {
                        data,
                        adc_kicks,
                        sdc_legs,
                        any_degraded,
                    }
                }
            }
        }
    };
    match next {
        PersistNext::Ack(ack) => {
            let label = ack.trace_label();
            state
                .storage_mut()
                .tracer
                .span_end(spans::HOST_WRITE, span, now, || vec![("ack", label.into())]);
            cb(state, sim, ack)
        }
        PersistNext::Stall(d, data) => {
            // The callback box rides along: a stalled retry costs zero
            // allocations, where the closure kernel re-boxed the whole
            // capture per attempt.
            sim.schedule_event_in(
                d,
                E::storage(StorageOp::Persist {
                    vol,
                    lba,
                    data,
                    issued,
                    ticket,
                    span,
                    cb,
                }),
            );
        }
        PersistNext::Legs {
            data,
            adc_kicks,
            sdc_legs,
            any_degraded,
        } => {
            if sdc_legs.is_empty() {
                // Asynchronous-only protection: acknowledge now.
                let st = state.storage_mut();
                let global = st.ack_log.append(vol, lba, hash, now);
                let ack = if any_degraded {
                    WriteAck::Degraded {
                        latency: now - issued,
                        global,
                    }
                } else {
                    WriteAck::Ok {
                        latency: now - issued,
                        global,
                    }
                };
                let label = ack.trace_label();
                st.tracer.span_end(spans::HOST_WRITE, span, now, || {
                    vec![("ack", label.into()), ("global", global.into())]
                });
                cb(state, sim, ack);
            } else {
                // Synchronous legs hold the host acknowledgement.
                let remaining = Rc::new(Cell::new(sdc_legs.len()));
                let degraded = Rc::new(Cell::new(any_degraded));
                let host_cb: Rc<RefCell<Option<WriteCb<S, E>>>> =
                    Rc::new(RefCell::new(Some(cb)));
                for (gid, pid) in sdc_legs {
                    let remaining = Rc::clone(&remaining);
                    let degraded = Rc::clone(&degraded);
                    let host_cb = Rc::clone(&host_cb);
                    sdc_leg_send(
                        state,
                        sim,
                        gid,
                        pid,
                        vol,
                        lba,
                        data.clone(),
                        Box::new(move |s, sim, done| {
                            if done == LegDone::Degraded {
                                degraded.set(true);
                            }
                            remaining.set(remaining.get() - 1);
                            if remaining.get() == 0 {
                                let st = s.storage_mut();
                                let at = sim.now();
                                let global = st.ack_log.append(vol, lba, hash, at);
                                let ack = if degraded.get() {
                                    WriteAck::Degraded {
                                        latency: at - issued,
                                        global,
                                    }
                                } else {
                                    WriteAck::Ok {
                                        latency: at - issued,
                                        global,
                                    }
                                };
                                let label = ack.trace_label();
                                st.tracer.span_end(spans::HOST_WRITE, span, at, || {
                                    vec![("ack", label.into()), ("global", global.into())]
                                });
                                let cb = host_cb
                                    .borrow_mut()
                                    .take()
                                    .expect("invariant: the host callback fires exactly once");
                                cb(s, sim, ack);
                            }
                        }),
                    );
                }
            }
            for gid in adc_kicks {
                kick_transfer(state, sim, gid, None);
            }
        }
    }
}

/// Send one synchronous leg's frame (retrying on loss); the leg callback
/// fires exactly once when the leg completes or degrades.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sdc_leg_send<S, E>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    gid: GroupId,
    pid: PairId,
    vol: VolRef,
    lba: u64,
    data: BlockBuf,
    leg_cb: LegCb<S, E>,
) where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let now = sim.now();
    enum R {
        Arrive(SimTime),
        Retry(SimDuration),
        Degraded,
    }
    let r = {
        let st = state.storage_mut();
        if !st.fabric.group(gid).is_active() {
            st.fabric.pair_mut(pid).acked_writes += 1;
            st.fabric.pair_mut(pid).dirty_since_suspend.insert(lba);
            R::Degraded
        } else {
            let link = st.fabric.group(gid).link;
            let bytes = data.len() as u64 + st.config.frame_overhead;
            match st.offer_link(link, now, bytes) {
                TransferOutcome::DeliveredAt { at, .. } => R::Arrive(at),
                TransferOutcome::Lost => R::Retry(st.config.loss_retry),
                TransferOutcome::Down(_) => {
                    st.fabric
                        .group_mut(gid)
                        .suspend(now, SuspendReason::LinkDown);
                    st.fabric.pair_mut(pid).dirty_since_suspend.insert(lba);
                    st.fabric.pair_mut(pid).acked_writes += 1;
                    R::Degraded
                }
            }
        }
    };
    match r {
        R::Arrive(at) => {
            sim.schedule_event_at(
                at,
                E::storage(StorageOp::SdcArrive {
                    gid,
                    pid,
                    lba,
                    data,
                    cb: leg_cb,
                }),
            );
        }
        R::Retry(d) => {
            sim.schedule_event_in(
                d,
                E::storage(StorageOp::SdcSend {
                    gid,
                    pid,
                    vol,
                    lba,
                    data,
                    cb: leg_cb,
                }),
            );
        }
        R::Degraded => leg_cb(state, sim, LegDone::Degraded),
    }
}

/// An SDC frame reached the backup array.
pub(crate) fn sdc_leg_arrive<S, E>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    gid: GroupId,
    pid: PairId,
    lba: u64,
    data: BlockBuf,
    leg_cb: LegCb<S, E>,
) where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let now = sim.now();
    enum A {
        Persist(SimTime),
        Degraded,
    }
    let a = {
        let st = state.storage_mut();
        let sec = st.fabric.pair(pid).secondary;
        if st.array(sec.array).is_failed() {
            st.fabric
                .group_mut(gid)
                .suspend(now, SuspendReason::LinkDown);
            st.fabric.pair_mut(pid).dirty_since_suspend.insert(lba);
            st.fabric.pair_mut(pid).acked_writes += 1;
            A::Degraded
        } else {
            let service = st.array(sec.array).perf().apply_service;
            let done = st.array_mut(sec.array).admit(sec.volume, now, service);
            A::Persist(done)
        }
    };
    match a {
        A::Persist(done) => {
            sim.schedule_event_at(
                done,
                E::storage(StorageOp::SdcPersisted {
                    gid,
                    pid,
                    lba,
                    data,
                    cb: leg_cb,
                }),
            );
        }
        A::Degraded => leg_cb(state, sim, LegDone::Degraded),
    }
}

/// The backup array persisted an SDC block; acknowledge across the reverse
/// link.
pub(crate) fn sdc_leg_done<S, E>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    gid: GroupId,
    pid: PairId,
    lba: u64,
    data: BlockBuf,
    leg_cb: LegCb<S, E>,
) where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let now = sim.now();
    enum D {
        AckAt(SimTime),
        Degraded,
    }
    let d = {
        let st = state.storage_mut();
        let sec = st.fabric.pair(pid).secondary;
        st.array_mut(sec.array).write_block(sec.volume, lba, data);
        st.fabric.pair_mut(pid).applied_writes += 1;
        st.fabric.group_mut(gid).stats.entries_applied += 1;
        let reverse = st.fabric.group(gid).reverse;
        let ack_bytes = st.config.ack_frame_bytes;
        match st.offer_link(reverse, now, ack_bytes) {
            TransferOutcome::DeliveredAt { at, .. } => D::AckAt(at),
            // A lost or undeliverable acknowledgement suspends the pair
            // (the array cannot distinguish the two within the timeout).
            TransferOutcome::Lost | TransferOutcome::Down(_) => {
                st.fabric
                    .group_mut(gid)
                    .suspend(now, SuspendReason::LinkDown);
                D::Degraded
            }
        }
    };
    match d {
        D::AckAt(at) => {
            sim.schedule_event_at(at, E::storage(StorageOp::SdcAck { pid, cb: leg_cb }));
        }
        D::Degraded => {
            state.storage_mut().fabric.pair_mut(pid).acked_writes += 1;
            leg_cb(state, sim, LegDone::Degraded);
        }
    }
}

/// Schedule a transfer-pump cycle for an ADC group if one is not already
/// pending. `delay` overrides the jittered pump interval.
pub fn kick_transfer<S, E>(state: &mut S, sim: &mut Sim<S, E>, gid: GroupId, delay: Option<SimDuration>)
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let st = state.storage_mut();
    {
        let g = st.fabric.group_mut(gid);
        if g.pump_scheduled || g.mode != GroupMode::Adc || !g.is_active() {
            return;
        }
        g.pump_scheduled = true;
    }
    let gen = st.fabric.group(gid).generation;
    let d = match delay {
        Some(d) => d,
        None => st.pump_delay(gid),
    };
    sim.schedule_event_in(d, E::storage(StorageOp::RunTransfer { gid, gen }));
}

pub(crate) fn run_transfer<S, E>(state: &mut S, sim: &mut Sim<S, E>, gid: GroupId, gen: u32)
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let now = sim.now();
    if state.storage().fabric.group(gid).generation != gen {
        return; // stale epoch: a resync/promote superseded this pump
    }
    enum T {
        Idle,
        Sent {
            batch: Vec<JournalEntry>,
            arrive_at: SimTime,
            serialized: SimTime,
        },
        RetryIn(SimDuration),
        RetryAt(SimTime),
    }
    let t = {
        let st = state.storage_mut();
        st.fabric.group_mut(gid).pump_scheduled = false;
        let (active, jid, link, first_pair) = {
            let g = st.fabric.group(gid);
            (g.is_active(), g.primary_jnl, g.link, g.pairs.first().copied())
        };
        let primary_failed = first_pair
            .map(|pid| {
                let arr = st.fabric.pair(pid).primary.array;
                st.array(arr).is_failed()
            })
            .unwrap_or(false);
        if !active || primary_failed {
            T::Idle
        } else {
            let jid = jid.expect("invariant: active ADC groups always carry a primary journal");
            // Flow control: while the sender-side serialization backlog is
            // deep, hold back — bits not yet on the wire die with the site.
            if st.net.link(link).backlog(now) > st.config.max_link_backlog {
                st.tracer.instant(spans::PUMP_STALL, now, SpanId::NONE, || {
                    vec![("group", (gid.0 as u64).into()), ("reason", "backlog".into())]
                });
                T::RetryIn(st.config.pump_interval)
            } else {
            let (max_e, max_b) = (st.config.batch_max_entries, st.config.batch_max_bytes);
            let batch = st.fabric.journal(jid).peek_unsent(max_e, max_b);
            if batch.is_empty() {
                T::Idle
            } else {
                let payload: u64 = batch
                    .iter()
                    .map(|e| st.fabric.journal(jid).entry_size(e.data.len()))
                    .sum::<u64>()
                    + st.config.frame_overhead;
                match st.offer_link(link, now, payload) {
                    TransferOutcome::DeliveredAt { at, serialized } => {
                        let mut batch = batch;
                        let last = batch.last().expect("invariant: batch checked non-empty above").seq;
                        st.fabric.journal_mut(jid).mark_sent(last);
                        let g = st.fabric.group_mut(gid);
                        g.stats.frames_sent += 1;
                        g.stats.entries_transferred += batch.len() as u64;
                        g.stats.bytes_transferred += payload;
                        if st.tracer.is_enabled() {
                            for e in &mut batch {
                                let seq = e.seq;
                                let w = st.tracer.span_complete(
                                    spans::WAN_TRANSFER,
                                    now,
                                    at,
                                    e.span,
                                    || {
                                        vec![
                                            ("seq", seq.into()),
                                            ("group", (gid.0 as u64).into()),
                                        ]
                                    },
                                );
                                e.span = w;
                            }
                        }
                        st.sample_replication_series(now);
                        T::Sent {
                            batch,
                            arrive_at: at,
                            serialized,
                        }
                    }
                    TransferOutcome::Lost => {
                        st.tracer.instant(spans::PUMP_STALL, now, SpanId::NONE, || {
                            vec![("group", (gid.0 as u64).into()), ("reason", "loss".into())]
                        });
                        T::RetryIn(st.config.loss_retry)
                    }
                    TransferOutcome::Down(Some(up)) => {
                        st.tracer.instant(spans::PUMP_STALL, now, SpanId::NONE, || {
                            vec![("group", (gid.0 as u64).into()), ("reason", "down".into())]
                        });
                        T::RetryAt(up.max(now + SimDuration::from_nanos(1)))
                    }
                    // Indefinite outage: the pump parks; a new append or an
                    // explicit kick_all_pumps after healing restarts it.
                    TransferOutcome::Down(None) => {
                        st.tracer.instant(spans::PUMP_STALL, now, SpanId::NONE, || {
                            vec![
                                ("group", (gid.0 as u64).into()),
                                ("reason", "down-parked".into()),
                            ]
                        });
                        T::Idle
                    }
                }
            }
            }
        }
    };
    match t {
        T::Idle => {}
        T::Sent {
            batch,
            arrive_at,
            serialized,
        } => {
            // The batch vector moves into the event — no per-frame copy.
            sim.schedule_event_at(
                arrive_at,
                E::storage(StorageOp::ReceiveBatch {
                    gid,
                    batch,
                    serialized,
                    gen,
                }),
            );
            let d = state.storage_mut().pump_delay(gid);
            kick_transfer(state, sim, gid, Some(d));
        }
        T::RetryIn(d) => {
            state.storage_mut().fabric.group_mut(gid).pump_scheduled = true;
            sim.schedule_event_in(d, E::storage(StorageOp::RunTransfer { gid, gen }));
        }
        T::RetryAt(t) => {
            state.storage_mut().fabric.group_mut(gid).pump_scheduled = true;
            sim.schedule_event_at(t, E::storage(StorageOp::RunTransfer { gid, gen }));
        }
    }
}

/// A batch of journal entries reached the backup-site journal volume.
/// `serialized` is the instant the frame's last bit left the main site: if
/// the main site failed before then, the frame never really made it out and
/// is discarded here.
pub(crate) fn receive_batch<S, E>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    gid: GroupId,
    batch: Vec<JournalEntry>,
    serialized: SimTime,
    gen: u32,
) where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let now = sim.now();
    {
        let st = state.storage_mut();
        if st.fabric.group(gid).generation != gen {
            let n = batch.len() as u64;
            st.tracer.instant(spans::FRAME_DISCARD, now, SpanId::NONE, || {
                vec![
                    ("group", (gid.0 as u64).into()),
                    ("entries", n.into()),
                    ("reason", "stale-generation".into()),
                ]
            });
            return; // frame from a superseded replication epoch
        }
        let (active, sjid, remote_failed, primary_lost_frame) = {
            let g = st.fabric.group(gid);
            let remote_failed = g
                .pairs
                .first()
                .map(|&pid| {
                    let arr = st.fabric.pair(pid).secondary.array;
                    st.array(arr).is_failed()
                })
                .unwrap_or(false);
            let primary_lost_frame = g
                .pairs
                .first()
                .and_then(|&pid| {
                    let arr = st.fabric.pair(pid).primary.array;
                    st.array(arr).failed_at()
                })
                .is_some_and(|failed_at| failed_at < serialized);
            (
                g.is_active(),
                g.secondary_jnl,
                remote_failed,
                primary_lost_frame,
            )
        };
        if !active || remote_failed || primary_lost_frame {
            let n = batch.len() as u64;
            st.tracer.instant(spans::FRAME_DISCARD, now, SpanId::NONE, || {
                let reason = if primary_lost_frame {
                    "primary-lost-frame"
                } else if remote_failed {
                    "remote-failed"
                } else {
                    "inactive"
                };
                vec![
                    ("group", (gid.0 as u64).into()),
                    ("entries", n.into()),
                    ("reason", reason.into()),
                ]
            });
            return; // in-flight data discarded on promote/suspend/disaster
        }
        let sjid = sjid.expect("invariant: active ADC groups always carry a secondary journal");
        for e in batch {
            st.fabric.journal_mut(sjid).push_arrived(e);
        }
    }
    kick_apply(state, sim, gid, None);
}

/// Schedule an apply-pump cycle for an ADC group if one is not pending.
pub fn kick_apply<S, E>(state: &mut S, sim: &mut Sim<S, E>, gid: GroupId, delay: Option<SimDuration>)
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    {
        let st = state.storage_mut();
        let g = st.fabric.group_mut(gid);
        if g.apply_scheduled || g.mode != GroupMode::Adc || !g.is_active() {
            return;
        }
        g.apply_scheduled = true;
    }
    let gen = state.storage().fabric.group(gid).generation;
    sim.schedule_event_in(
        delay.unwrap_or(SimDuration::ZERO),
        E::storage(StorageOp::RunApply { gid, gen }),
    );
}

pub(crate) fn run_apply<S, E>(state: &mut S, sim: &mut Sim<S, E>, gid: GroupId, gen: u32)
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let now = sim.now();
    if state.storage().fabric.group(gid).generation != gen {
        return;
    }
    let done_at = {
        let st = state.storage_mut();
        st.fabric.group_mut(gid).apply_scheduled = false;
        let (active, sjid) = {
            let g = st.fabric.group(gid);
            (g.is_active(), g.secondary_jnl)
        };
        if !active {
            None
        } else {
            let sjid = sjid.expect("invariant: active ADC groups always carry a secondary journal");
            match st.fabric.journal(sjid).peek_front() {
                None => None,
                Some(e) => {
                    let sec = st.fabric.pair(e.pair).secondary;
                    let lba = e.lba;
                    if st.array(sec.array).is_failed() {
                        None
                    } else {
                        let cow = st.array(sec.array).cow_would_save(sec.volume, lba);
                        let perf = st.array(sec.array).perf();
                        let service =
                            perf.apply_service + perf.cow_penalty.saturating_mul(cow as u64);
                        Some(st.array_mut(sec.array).admit(sec.volume, now, service))
                    }
                }
            }
        }
    };
    if let Some(done) = done_at {
        state.storage_mut().fabric.group_mut(gid).apply_scheduled = true;
        sim.schedule_event_at(
            done,
            E::storage(StorageOp::FinishApply {
                gid,
                gen,
                started: now,
            }),
        );
    }
}

pub(crate) fn finish_apply<S, E>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    gid: GroupId,
    gen: u32,
    started: SimTime,
) where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let now = sim.now();
    if state.storage().fabric.group(gid).generation != gen {
        return;
    }
    let ack = {
        let st = state.storage_mut();
        st.fabric.group_mut(gid).apply_scheduled = false;
        if !st.fabric.group(gid).is_active() {
            None
        } else {
            let sjid = st
                .fabric
                .group(gid)
                .secondary_jnl
                .expect("invariant: active ADC groups always carry a secondary journal");
            let e = st
                .fabric
                .journal_mut(sjid)
                .pop_front()
                .expect("invariant: an apply completion always has a queued journal entry");
            let sec = st.fabric.pair(e.pair).secondary;
            let parent = e.span;
            st.array_mut(sec.array).write_block(sec.volume, e.lba, e.data);
            st.fabric.pair_mut(e.pair).applied_writes += 1;
            let drained = st.fabric.journal(sjid).is_empty();
            let seq = e.seq;
            st.tracer.span_complete(spans::BACKUP_APPLY, started, now, parent, || {
                vec![("seq", seq.into()), ("group", (gid.0 as u64).into())]
            });
            st.sample_replication_series(now);
            let (reverse, ack_due) = {
                let g = st.fabric.group_mut(gid);
                g.stats.entries_applied += 1;
                (
                    g.reverse,
                    seq - g.applied_ack_sent >= st.config.applied_ack_every || drained,
                )
            };
            if ack_due {
                let bytes = st.config.ack_frame_bytes;
                match st.offer_link(reverse, now, bytes) {
                    TransferOutcome::DeliveredAt { at, .. } => {
                        st.fabric.group_mut(gid).applied_ack_sent = seq;
                        Some((seq, at))
                    }
                    // Ack loss is tolerated: the next apply retries.
                    TransferOutcome::Lost | TransferOutcome::Down(_) => None,
                }
            } else {
                None
            }
        }
    };
    if let Some((upto, t)) = ack {
        sim.schedule_event_at(t, E::storage(StorageOp::ReleaseUpto { gid, gen, upto }));
    }
    kick_apply(state, sim, gid, None);
}

/// The applied-ack frame arrived: free primary-journal entries up to the
/// acknowledged sequence (unless a resync/promote superseded the epoch).
pub(crate) fn release_primary_upto<S: HasStorage>(state: &mut S, gid: GroupId, gen: u32, upto: u64) {
    let st = state.storage_mut();
    if st.fabric.group(gid).generation != gen {
        return;
    }
    if let Some(jid) = st.fabric.group(gid).primary_jnl {
        st.fabric.journal_mut(jid).release_upto(upto);
    }
}

/// Restart every parked pump (after healing links or resuming groups).
pub fn kick_all_pumps<S, E>(state: &mut S, sim: &mut Sim<S, E>)
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let gids = state.storage_mut().fabric.group_ids();
    for gid in gids {
        kick_transfer(state, sim, gid, Some(SimDuration::ZERO));
        kick_apply(state, sim, gid, None);
    }
}

/// Bring one link back up and restart every parked pump.
///
/// An indefinite outage ([`TransferOutcome::Down`] with no scheduled end)
/// parks the transfer pump of any group whose journal drains over that
/// link; nothing restarts it until a new append arrives. Healing through
/// this function — rather than calling `Link::set_up` directly — is what
/// guarantees a group that went silent during the outage resumes draining.
pub fn heal_link<S, E>(state: &mut S, sim: &mut Sim<S, E>, link: tsuru_simnet::LinkId)
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    state.storage_mut().net.link_mut(link).set_up();
    kick_all_pumps(state, sim);
}

/// Bring every link back up and restart every parked pump (cluster-wide
/// heal after a full network partition).
pub fn heal_all_links<S, E>(state: &mut S, sim: &mut Sim<S, E>)
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    state.storage_mut().net.heal_all();
    kick_all_pumps(state, sim);
}
