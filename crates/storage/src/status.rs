//! Operator-facing status reporting — the array's `pairdisplay`.
//!
//! Renders replication groups, pairs, journals and pools as the text
//! tables a storage administrator would read on the console, and exposes
//! the same data structurally for the demo system's screens.

use crate::block::GroupId;
use crate::fabric::{GroupMode, GroupState};
use crate::world::StorageWorld;

/// Structured status of one replication group.
#[derive(Debug, Clone)]
pub struct GroupStatus {
    /// Group id.
    pub id: GroupId,
    /// Group name.
    pub name: String,
    /// `ADC` / `SDC`.
    pub mode: &'static str,
    /// Lifecycle state rendered for the console.
    pub state: String,
    /// Member pair count.
    pub pairs: usize,
    /// Acked-but-unapplied writes across the group (backup lag).
    pub lag_writes: u64,
    /// Primary journal usage `(used, capacity)` bytes, ADC only.
    pub journal: Option<(u64, u64)>,
    /// Replication epoch.
    pub generation: u32,
}

/// Snapshot the status of every group.
pub fn group_status(st: &StorageWorld) -> Vec<GroupStatus> {
    st.fabric
        .group_ids()
        .into_iter()
        .map(|gid| {
            let g = st.fabric.group(gid);
            let lag: u64 = g
                .pairs
                .iter()
                .map(|&pid| {
                    let p = st.fabric.pair(pid);
                    p.acked_writes - p.applied_writes
                })
                .sum();
            let journal = g.primary_jnl.map(|jid| {
                let j = st.fabric.journal(jid);
                (j.used_bytes(), j.capacity_bytes())
            });
            GroupStatus {
                id: gid,
                name: g.name.clone(),
                mode: match g.mode {
                    GroupMode::Adc => "ADC",
                    GroupMode::Sdc => "SDC",
                },
                state: match g.state {
                    GroupState::Active => "Active".to_owned(),
                    GroupState::Suspended { reason, .. } => format!("Suspended({reason:?})"),
                    GroupState::Promoted => "Promoted".to_owned(),
                },
                pairs: g.pairs.len(),
                lag_writes: lag,
                journal,
                generation: g.generation,
            }
        })
        .collect()
}

/// Render the replication status table (one line per group).
pub fn render_replication_status(st: &StorageWorld) -> Vec<String> {
    let mut out = vec![format!(
        "{:<4} {:<20} {:<4} {:<22} {:>5} {:>10} {:>18}",
        "GRP", "NAME", "MODE", "STATE", "PAIRS", "LAG", "JOURNAL"
    )];
    for g in group_status(st) {
        let journal = match g.journal {
            Some((used, cap)) => format!("{used}/{cap}"),
            None => "—".to_owned(),
        };
        out.push(format!(
            "g{:<3} {:<20} {:<4} {:<22} {:>5} {:>10} {:>18}",
            g.id.0, g.name, g.mode, g.state, g.pairs, g.lag_writes, journal
        ));
    }
    out
}

/// Render pool utilization for every array.
pub fn render_pool_status(st: &StorageWorld) -> Vec<String> {
    let mut out = vec![format!(
        "{:<12} {:<12} {:>12} {:>12} {:>6} {:>10}",
        "ARRAY", "POOL", "ALLOCATED", "CAPACITY", "USE%", "REJECTIONS"
    )];
    for i in 0..st.array_count() {
        let array = st.array(crate::block::ArrayId(i as u32));
        for pool in array.pools() {
            out.push(format!(
                "{:<12} {:<12} {:>12} {:>12} {:>5.1}% {:>10}",
                array.name(),
                pool.name(),
                pool.allocated_blocks(),
                pool.capacity_blocks(),
                pool.utilization() * 100.0,
                pool.rejections()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayPerf;
    use crate::config::EngineConfig;
    use tsuru_simnet::LinkConfig;

    fn world() -> StorageWorld {
        let mut st = StorageWorld::new(1, EngineConfig::default());
        let main = st.add_array("vsp-main", ArrayPerf::default());
        let backup = st.add_array("vsp-backup", ArrayPerf::default());
        let link = st.add_link(LinkConfig::metro());
        let rev = st.add_link(LinkConfig::metro());
        let g = st.create_adc_group("cg-shop", link, rev, 1 << 20);
        let p = st.create_volume(main, "p", 32);
        let s = st.create_volume(backup, "s", 32);
        st.add_pair(g, p, s);
        let sg = st.create_sdc_group("sdc-metro", link, rev);
        let p2 = st.create_volume(main, "p2", 32);
        let s2 = st.create_volume(backup, "s2", 32);
        st.add_pair(sg, p2, s2);
        st
    }

    #[test]
    fn group_status_reflects_fabric() {
        let st = world();
        let gs = group_status(&st);
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].name, "cg-shop");
        assert_eq!(gs[0].mode, "ADC");
        assert!(gs[0].journal.is_some());
        assert_eq!(gs[0].state, "Active");
        assert_eq!(gs[1].mode, "SDC");
        assert!(gs[1].journal.is_none());
        assert_eq!(gs[0].lag_writes, 0);
    }

    #[test]
    fn tables_render_with_headers() {
        let st = world();
        let rep = render_replication_status(&st);
        assert_eq!(rep.len(), 3);
        assert!(rep[0].contains("GRP"));
        assert!(rep[1].contains("cg-shop"));
        assert!(rep[2].contains("SDC"));
        let pools = render_pool_status(&st);
        assert_eq!(pools.len(), 3, "header + one default pool per array");
        assert!(pools[1].contains("vsp-main"));
        assert!(pools[2].contains("vsp-backup"));
    }

    #[test]
    fn suspended_state_is_visible() {
        let mut st = world();
        st.suspend_group(GroupId(0), tsuru_sim::SimTime::from_secs(1));
        let gs = group_status(&st);
        assert!(gs[0].state.contains("Suspended"));
        assert!(gs[0].state.contains("Operator"));
    }
}
