//! Journal volumes for asynchronous data copy.
//!
//! The ADC engine stores every primary update in a journal volume at the
//! main site, transfers journal entries to a journal volume at the backup
//! site, and applies them to the secondary volumes in sequence order
//! (§III-A1 of the paper). One journal may be shared by many volumes —
//! that sharing *is* the consistency-group mechanism: a single sequence
//! number space across all member volumes.

use std::collections::VecDeque;

use tsuru_telemetry::SpanId;

use crate::block::{BlockBuf, JournalId, PairId};

/// One logged update: a block write destined for a secondary volume.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Sequence number within the journal, starting at 1. Apply order at
    /// the backup site is strictly increasing in `seq`.
    pub seq: u64,
    /// Which replication pair (hence which secondary volume) this is for.
    pub pair: PairId,
    /// Target block address.
    pub lba: u64,
    /// Block payload.
    pub data: BlockBuf,
    /// Content fingerprint (for the write-order-fidelity checker).
    pub hash: u64,
    /// Latest trace span of this entry's write lifecycle
    /// (`journal_append` on the primary side, `wan_transfer` once
    /// shipped); [`SpanId::NONE`] when tracing is off.
    pub span: SpanId,
}

/// A journal volume: bounded FIFO of [`JournalEntry`] with sequence
/// watermarks.
///
/// On the primary side entries are retained until the backup site confirms
/// apply (`release_upto`); `sent` tracks how far the transfer engine has
/// handed entries to the link. On the secondary side the same structure
/// holds arrived-but-unapplied entries.
#[derive(Debug)]
pub struct Journal {
    id: JournalId,
    capacity_bytes: u64,
    used_bytes: u64,
    entry_overhead: u64,
    entries: VecDeque<JournalEntry>,
    /// Sequence number of the front entry (0 when empty and nothing ever
    /// released; in general `front().seq` when non-empty).
    first_seq: u64,
    next_seq: u64,
    sent: u64,
    highest_released: u64,
    overflow_hits: u64,
    total_appended: u64,
}

impl Journal {
    /// An empty journal of the given byte capacity. `entry_overhead` is the
    /// per-entry metadata cost added to each payload.
    pub fn new(id: JournalId, capacity_bytes: u64, entry_overhead: u64) -> Self {
        Journal {
            id,
            capacity_bytes,
            used_bytes: 0,
            entry_overhead,
            entries: VecDeque::new(),
            first_seq: 1,
            next_seq: 1,
            sent: 0,
            highest_released: 0,
            overflow_hits: 0,
            total_appended: 0,
        }
    }

    /// Journal id.
    pub fn id(&self) -> JournalId {
        self.id
    }

    /// Byte size charged for one entry with the given payload length.
    pub fn entry_size(&self, payload_len: usize) -> u64 {
        self.entry_overhead + payload_len as u64
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Configured capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Change the capacity mid-run (fault injection: journal-pressure
    /// squeeze). Entries already held are never discarded, even if they
    /// exceed the new capacity; only new appends observe the squeeze.
    pub fn set_capacity_bytes(&mut self, capacity_bytes: u64) {
        self.capacity_bytes = capacity_bytes;
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Times an append was refused for lack of space.
    pub fn overflow_hits(&self) -> u64 {
        self.overflow_hits
    }

    /// Entries ever appended.
    pub fn total_appended(&self) -> u64 {
        self.total_appended
    }

    /// Would an entry with `payload_len` bytes fit right now?
    pub fn has_space(&self, payload_len: usize) -> bool {
        self.used_bytes + self.entry_size(payload_len) <= self.capacity_bytes
    }

    /// Append a new update, assigning the next sequence number (primary
    /// side). Returns `None` — and counts an overflow — if the journal is
    /// full.
    pub fn append(
        &mut self,
        pair: PairId,
        lba: u64,
        data: BlockBuf,
        hash: u64,
    ) -> Option<u64> {
        if !self.has_space(data.len()) {
            self.overflow_hits += 1;
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.used_bytes += self.entry_size(data.len());
        self.total_appended += 1;
        self.entries.push_back(JournalEntry {
            seq,
            pair,
            lba,
            data,
            hash,
            span: SpanId::NONE,
        });
        Some(seq)
    }

    /// Tag the most recently appended entry with its `journal_append`
    /// trace span (the tracer allocates the id only after [`Journal::append`]
    /// has assigned the sequence number it is attributed with).
    pub fn set_last_span(&mut self, span: SpanId) {
        if let Some(e) = self.entries.back_mut() {
            e.span = span;
        }
    }

    /// Accept an entry arriving from the main site (secondary side).
    /// Sequence numbers must arrive contiguously — the transfer path is
    /// FIFO, so a gap is a bug, not a runtime condition.
    pub fn push_arrived(&mut self, entry: JournalEntry) {
        let expected = self
            .entries
            .back()
            .map(|e| e.seq + 1)
            .unwrap_or(self.first_seq);
        assert_eq!(
            entry.seq, expected,
            "journal j{} received out-of-order seq {} (expected {expected})",
            self.id.0, entry.seq
        );
        self.used_bytes += self.entry_size(entry.data.len());
        self.total_appended += 1;
        self.entries.push_back(entry);
    }

    /// Entries not yet handed to the link, up to `max_entries`/`max_bytes`
    /// (at least one entry if any is unsent, so a single oversized entry
    /// cannot wedge the pump). Does not advance the `sent` watermark.
    pub fn peek_unsent(&self, max_entries: usize, max_bytes: u64) -> Vec<JournalEntry> {
        // Sequence numbers are contiguous within the deque, so the first
        // unsent entry sits at a computable offset — no scan over the
        // already-sent prefix.
        let start = match self.entries.front() {
            Some(front) => (self.sent + 1).saturating_sub(front.seq) as usize,
            None => return Vec::new(),
        };
        // Pass 1: find the batch boundary without cloning anything.
        let mut take = 0usize;
        let mut bytes = 0u64;
        for e in self.entries.iter().skip(start) {
            let sz = self.entry_size(e.data.len());
            if take > 0 && (take >= max_entries || bytes + sz > max_bytes) {
                break;
            }
            bytes += sz;
            take += 1;
            if take >= max_entries || bytes >= max_bytes {
                break;
            }
        }
        // Pass 2: one exact allocation; the entry clones themselves are
        // cheap (`Bytes` payloads clone by refcount).
        let mut out = Vec::with_capacity(take);
        out.extend(self.entries.iter().skip(start).take(take).cloned());
        out
    }

    /// Record that all entries up to `seq` have been handed to the link.
    pub fn mark_sent(&mut self, seq: u64) {
        assert!(seq >= self.sent, "sent watermark may not move backwards");
        assert!(seq < self.next_seq, "cannot mark unappended entries sent");
        self.sent = seq;
    }

    /// Highest sequence handed to the link.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// On link failure the unacknowledged-but-sent suffix must be resent;
    /// rewind the sent watermark to the released watermark.
    pub fn rewind_sent(&mut self) {
        self.sent = self.highest_released.max(self.first_seq.saturating_sub(1));
    }

    /// Free all entries with `seq <= upto` (primary side, after the backup
    /// site confirmed apply). Tolerates duplicate/stale acknowledgements.
    pub fn release_upto(&mut self, upto: u64) {
        while let Some(front) = self.entries.front() {
            if front.seq > upto {
                break;
            }
            let sz = self.entry_size(front.data.len());
            self.used_bytes -= sz;
            self.first_seq = front.seq + 1;
            self.entries.pop_front();
        }
        self.highest_released = self.highest_released.max(upto.min(self.next_seq - 1));
        // `sent` can never be behind what is released.
        self.sent = self.sent.max(self.highest_released);
    }

    /// Next entry to apply (secondary side); `None` when drained.
    pub fn peek_front(&self) -> Option<&JournalEntry> {
        self.entries.front()
    }

    /// Remove and return the front entry (secondary side, after apply).
    pub fn pop_front(&mut self) -> Option<JournalEntry> {
        let e = self.entries.pop_front();
        if let Some(ref entry) = e {
            self.used_bytes -= self.entry_size(entry.data.len());
            self.first_seq = entry.seq + 1;
        }
        e
    }

    /// LBAs of retained entries belonging to one pair (delta-resync
    /// working set).
    pub fn entries_for(&self, pair: PairId) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|e| e.pair == pair)
            .map(|e| e.lba)
            .collect()
    }

    /// Drain every held entry in order (failover apply).
    pub fn drain_all(&mut self) -> Vec<JournalEntry> {
        let mut out = Vec::with_capacity(self.entries.len());
        while let Some(e) = self.pop_front() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::block_from;

    fn jnl(capacity: u64) -> Journal {
        Journal::new(JournalId(0), capacity, 64)
    }

    fn blk(tag: &str) -> BlockBuf {
        block_from(tag.as_bytes())
    }

    #[test]
    fn append_assigns_contiguous_seqs() {
        let mut j = jnl(1 << 20);
        let a = j.append(PairId(0), 1, blk("a"), 1).expect("invariant: journal has capacity");
        let b = j.append(PairId(1), 2, blk("b"), 2).expect("invariant: journal has capacity");
        assert_eq!((a, b), (1, 2));
        assert_eq!(j.len(), 2);
        assert_eq!(j.total_appended(), 2);
    }

    #[test]
    fn capacity_is_enforced() {
        // Two entries of (64 + 4096) fit in 9000 bytes; the third does not.
        let mut j = jnl(9000);
        assert!(j.append(PairId(0), 0, blk("x"), 0).is_some());
        assert!(j.append(PairId(0), 1, blk("y"), 0).is_some());
        assert!(!j.has_space(4096));
        assert!(j.append(PairId(0), 2, blk("z"), 0).is_none());
        assert_eq!(j.overflow_hits(), 1);
        // Releasing the first entry makes room again.
        j.release_upto(1);
        assert!(j.append(PairId(0), 2, blk("z"), 0).is_some());
    }

    #[test]
    fn peek_unsent_respects_limits_and_watermark() {
        let mut j = jnl(1 << 20);
        for i in 0..10 {
            j.append(PairId(0), i, blk("d"), 0).expect("invariant: journal has capacity");
        }
        let batch = j.peek_unsent(3, u64::MAX);
        assert_eq!(batch.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        j.mark_sent(3);
        let batch = j.peek_unsent(100, 2 * (64 + 4096));
        assert_eq!(batch.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);
        j.mark_sent(10);
        assert!(j.peek_unsent(100, u64::MAX).is_empty());
    }

    #[test]
    fn oversized_single_entry_still_batches() {
        let mut j = jnl(1 << 20);
        j.append(PairId(0), 0, blk("big"), 0).expect("invariant: journal has capacity");
        // max_bytes smaller than one entry: we still get that entry.
        let batch = j.peek_unsent(10, 16);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn release_frees_space_and_tolerates_stale_acks() {
        let mut j = jnl(1 << 20);
        for i in 0..5 {
            j.append(PairId(0), i, blk("d"), 0).expect("invariant: journal has capacity");
        }
        j.mark_sent(5);
        j.release_upto(3);
        assert_eq!(j.len(), 2);
        assert_eq!(j.peek_front().expect("invariant: two entries remain").seq, 4);
        // Stale ack is a no-op.
        j.release_upto(2);
        assert_eq!(j.len(), 2);
        j.release_upto(100);
        assert!(j.is_empty());
        assert_eq!(j.used_bytes(), 0);
    }

    #[test]
    fn remote_side_arrival_and_apply() {
        let mut main = jnl(1 << 20);
        let mut remote = jnl(1 << 20);
        for i in 0..4 {
            main.append(PairId(0), i, blk("d"), i).expect("invariant: journal has capacity");
        }
        for e in main.peek_unsent(10, u64::MAX) {
            remote.push_arrived(e);
        }
        main.mark_sent(4);
        assert_eq!(remote.len(), 4);
        let first = remote.pop_front().expect("invariant: remote holds arrived entries");
        assert_eq!(first.seq, 1);
        let rest = remote.drain_all();
        assert_eq!(rest.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(remote.is_empty());
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_arrival_panics() {
        let mut remote = jnl(1 << 20);
        remote.push_arrived(JournalEntry {
            seq: 5,
            pair: PairId(0),
            lba: 0,
            data: blk("x"),
            hash: 0,
            span: SpanId::NONE,
        });
        remote.push_arrived(JournalEntry {
            seq: 7,
            pair: PairId(0),
            lba: 0,
            data: blk("y"),
            hash: 0,
            span: SpanId::NONE,
        });
    }

    #[test]
    fn first_arrival_sets_base_seq() {
        let mut remote = jnl(1 << 20);
        remote.first_seq = 5; // simulates entries 1..4 already applied+freed
        remote.push_arrived(JournalEntry {
            seq: 5,
            pair: PairId(0),
            lba: 0,
            data: blk("x"),
            hash: 0,
            span: SpanId::NONE,
        });
        assert_eq!(remote.peek_front().expect("invariant: entry 5 just arrived").seq, 5);
    }

    #[test]
    fn rewind_sent_resends_unacked() {
        let mut j = jnl(1 << 20);
        for i in 0..6 {
            j.append(PairId(0), i, blk("d"), 0).expect("invariant: journal has capacity");
        }
        j.mark_sent(6);
        j.release_upto(2);
        j.rewind_sent();
        let batch = j.peek_unsent(100, u64::MAX);
        assert_eq!(batch.first().expect("invariant: rewind re-exposed entries").seq, 3);
        assert_eq!(batch.len(), 4);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn sent_watermark_cannot_regress_via_mark() {
        let mut j = jnl(1 << 20);
        j.append(PairId(0), 0, blk("a"), 0).expect("invariant: journal has capacity");
        j.append(PairId(0), 1, blk("b"), 0).expect("invariant: journal has capacity");
        j.mark_sent(2);
        j.mark_sent(1);
    }
}
