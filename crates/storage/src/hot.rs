//! Struct-of-arrays hot state, indexed by dense `(array, volume)` handles.
//!
//! Volume ids are minted sequentially per array, so a [`VolRef`] is already
//! a dense two-level handle: `array.0` indexes a lane, `volume.0` indexes a
//! slot inside it. The structures here exploit that to keep the engine's
//! per-write bookkeeping in flat arrays — the paths that run once per host
//! write (ticket issue/turn/retire, replication-leg fan-out lookup) touch
//! contiguous memory instead of walking `BTreeMap` nodes.
//!
//! Lanes grow on first touch and are never shrunk; absent slots carry the
//! same meaning the old map encodings gave a missing key, so swapping the
//! containers changes no observable behaviour (verified by the byte-identity
//! gate over every experiment output).

use crate::block::{PairId, VolRef};

/// Per-volume host-write ordering state in struct-of-arrays layout.
///
/// A write takes a ticket at submission (`issue`) and may only apply when
/// its ticket equals the volume's turn (`is_turn`), retiring the turn once
/// applied (`retire`). The two counters live in *separate* parallel arrays
/// because the hot loops touch them asymmetrically: `is_turn` polls only
/// the turn array, so ticket issuance never drags those cache lines in.
#[derive(Debug, Default)]
pub struct TicketLanes {
    /// `next_ticket[array][volume]`: tickets issued so far (0 = never).
    next_ticket: Vec<Vec<u64>>,
    /// `turn[array][volume]`: the ticket currently allowed to apply.
    turn: Vec<Vec<u64>>,
}

impl TicketLanes {
    /// Empty lanes.
    pub fn new() -> Self {
        TicketLanes::default()
    }

    fn grow_to(&mut self, vol: VolRef) {
        let a = vol.array.0 as usize;
        let v = vol.volume.0 as usize;
        if self.next_ticket.len() <= a {
            self.next_ticket.resize_with(a + 1, Vec::new);
            self.turn.resize_with(a + 1, Vec::new);
        }
        let tickets = self
            .next_ticket
            .get_mut(a)
            .expect("invariant: the lane vector was just resized past a");
        if tickets.len() <= v {
            tickets.resize(v + 1, 0);
            self.turn
                .get_mut(a)
                .expect("invariant: turn is resized in lockstep with next_ticket")
                .resize(v + 1, 0);
        }
    }

    /// Issue the next ticket for `vol` (first issue returns 0).
    pub fn issue(&mut self, vol: VolRef) -> u64 {
        self.grow_to(vol);
        let slot = self
            .next_ticket
            .get_mut(vol.array.0 as usize)
            .and_then(|l| l.get_mut(vol.volume.0 as usize))
            .expect("invariant: grow_to sized the lane for this volume");
        let ticket = *slot;
        *slot += 1;
        ticket
    }

    /// Is `ticket` the one allowed to apply on `vol` right now? False for a
    /// volume that never issued a ticket (matching the old map's missing-key
    /// answer).
    pub fn is_turn(&self, vol: VolRef, ticket: u64) -> bool {
        let a = vol.array.0 as usize;
        let v = vol.volume.0 as usize;
        match (
            self.next_ticket.get(a).and_then(|l| l.get(v)),
            self.turn.get(a).and_then(|l| l.get(v)),
        ) {
            (Some(&next), Some(&turn)) if next > 0 => turn == ticket,
            _ => false,
        }
    }

    /// Advance `vol`'s turn (no-op for a volume that never issued a ticket).
    pub fn retire(&mut self, vol: VolRef) {
        let a = vol.array.0 as usize;
        let v = vol.volume.0 as usize;
        let issued = self.next_ticket.get(a).and_then(|l| l.get(v)).copied().unwrap_or(0);
        if issued > 0 {
            *self
                .turn
                .get_mut(a)
                .and_then(|l| l.get_mut(v))
                .expect("invariant: turn is sized in lockstep with next_ticket, which has this slot") += 1;
        }
    }
}

/// Dense primary-volume → replication-leg index.
///
/// Replaces the fabric's `BTreeMap<VolRef, Vec<PairId>>`: `check_host_write`
/// resolves the fan-out of every host write through this index, so the
/// lookup is two array reads instead of a tree descent. Leg order within a
/// slot is insertion order, exactly as the map's `Vec` payload kept it.
#[derive(Debug, Default)]
pub struct PrimaryIndex {
    legs: Vec<Vec<Vec<PairId>>>,
}

impl PrimaryIndex {
    /// Empty index.
    pub fn new() -> Self {
        PrimaryIndex::default()
    }

    /// Register a replication leg whose primary is `vol`.
    pub fn attach(&mut self, vol: VolRef, pair: PairId) {
        let a = vol.array.0 as usize;
        let v = vol.volume.0 as usize;
        if self.legs.len() <= a {
            self.legs.resize_with(a + 1, Vec::new);
        }
        let lane = self
            .legs
            .get_mut(a)
            .expect("invariant: the lane vector was just resized past a");
        if lane.len() <= v {
            lane.resize_with(v + 1, Vec::new);
        }
        lane.get_mut(v)
            .expect("invariant: the lane was just resized past v")
            .push(pair);
    }

    /// Remove a leg (operator teardown); no-op if absent.
    pub fn detach(&mut self, vol: VolRef, pair: PairId) {
        if let Some(slot) = self
            .legs
            .get_mut(vol.array.0 as usize)
            .and_then(|l| l.get_mut(vol.volume.0 as usize))
        {
            slot.retain(|&p| p != pair);
        }
    }

    /// Every leg whose primary volume is `vol`, in attach order.
    pub fn legs(&self, vol: VolRef) -> &[PairId] {
        self.legs
            .get(vol.array.0 as usize)
            .and_then(|l| l.get(vol.volume.0 as usize))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{ArrayId, VolumeId};

    fn volref(a: u32, v: u64) -> VolRef {
        VolRef::new(ArrayId(a), VolumeId(v))
    }

    #[test]
    fn tickets_issue_in_sequence_and_turns_advance() {
        let mut t = TicketLanes::new();
        let v = volref(0, 3);
        assert!(!t.is_turn(v, 0), "no ticket issued yet");
        assert_eq!(t.issue(v), 0);
        assert_eq!(t.issue(v), 1);
        assert!(t.is_turn(v, 0));
        assert!(!t.is_turn(v, 1));
        t.retire(v);
        assert!(t.is_turn(v, 1));
        // Independent volumes do not interfere.
        assert_eq!(t.issue(volref(1, 0)), 0);
        assert!(t.is_turn(v, 1));
    }

    #[test]
    fn retire_without_issue_is_a_no_op() {
        let mut t = TicketLanes::new();
        t.retire(volref(2, 9));
        assert!(!t.is_turn(volref(2, 9), 0));
    }

    #[test]
    fn primary_index_attach_detach_order() {
        let mut ix = PrimaryIndex::new();
        let v = volref(0, 1);
        assert!(ix.legs(v).is_empty());
        ix.attach(v, PairId(4));
        ix.attach(v, PairId(2));
        assert_eq!(ix.legs(v), &[PairId(4), PairId(2)]);
        ix.detach(v, PairId(4));
        assert_eq!(ix.legs(v), &[PairId(2)]);
        ix.detach(volref(9, 9), PairId(2)); // absent slot: no-op
        ix.detach(v, PairId(2));
        assert!(ix.legs(v).is_empty());
    }
}
