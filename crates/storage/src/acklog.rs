//! The global acknowledgement log and write-order-fidelity checker.
//!
//! The paper's central correctness argument (§I) is that a backup is usable
//! iff the backup site's state corresponds to a *prefix* of the order in
//! which the main-site storage acknowledged writes to the hosts. This
//! module records that total ack order and decides, for a given per-volume
//! applied-count vector at the backup site, whether the combined image is
//! such a prefix.

use std::collections::BTreeMap;

use tsuru_sim::SimTime;

use crate::block::VolRef;

/// One acknowledged write in global ack order.
#[derive(Debug, Clone)]
pub struct AckEntry {
    /// Position in the global ack order (0-based).
    pub global: u64,
    /// Which volume was written.
    pub vol: VolRef,
    /// Block address.
    pub lba: u64,
    /// Content fingerprint of the written block.
    pub hash: u64,
    /// Instant the ack was delivered to the host.
    pub time: SimTime,
}

/// Verdict of the prefix-consistency check.
#[derive(Debug, Clone)]
pub struct PrefixReport {
    /// True iff the applied vector is a prefix-consistent cut.
    pub consistent: bool,
    /// Global index of the latest write included in the cut (`None` when
    /// the cut is empty).
    pub cut_global: Option<u64>,
    /// Ack time of that write (the backup image's logical timestamp).
    pub cut_time: Option<SimTime>,
    /// Human-readable description of each violation found.
    pub violations: Vec<String>,
}

/// The global ack-order log.
#[derive(Debug, Default)]
pub struct AckLog {
    entries: Vec<AckEntry>,
    per_vol: BTreeMap<VolRef, Vec<u64>>,
}

impl AckLog {
    /// An empty log.
    pub fn new() -> Self {
        AckLog::default()
    }

    /// Record an acknowledged write; returns its global index.
    pub fn append(&mut self, vol: VolRef, lba: u64, hash: u64, time: SimTime) -> u64 {
        let global = self.entries.len() as u64;
        self.entries.push(AckEntry {
            global,
            vol,
            lba,
            hash,
            time,
        });
        self.per_vol.entry(vol).or_default().push(global);
        global
    }

    /// Total acknowledged writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been acknowledged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in ack order.
    pub fn entries(&self) -> &[AckEntry] {
        &self.entries
    }

    /// Acked writes for one volume, in ack order.
    pub fn writes_for(&self, vol: VolRef) -> &[u64] {
        self.per_vol.get(&vol).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of acked writes for one volume.
    pub fn count_for(&self, vol: VolRef) -> u64 {
        self.writes_for(vol).len() as u64
    }

    /// Check whether applying the first `applied[v]` acked writes of each
    /// volume `v` yields a prefix-consistent cut of the global ack order.
    ///
    /// Per-volume apply is FIFO, so the image of volume `v` is exactly its
    /// first `k_v` acked writes. The cut is a prefix iff no volume is
    /// missing a write that is globally older than some write another
    /// volume already has: with `M = max_v G(v, k_v)` (global index of the
    /// newest included write), every volume's first *excluded* write must
    /// have a global index `> M`.
    pub fn check_prefix(&self, applied: &BTreeMap<VolRef, u64>) -> PrefixReport {
        let mut violations = Vec::new();
        let mut cut_global: Option<u64> = None;

        for (&vol, &k) in applied {
            let writes = self.writes_for(vol);
            if k as usize > writes.len() {
                violations.push(format!(
                    "{vol}: applied {k} writes but only {} were acknowledged",
                    writes.len()
                ));
                continue;
            }
            if k > 0 {
                let last = writes[k as usize - 1];
                cut_global = Some(cut_global.map_or(last, |m| m.max(last)));
            }
        }

        if let Some(m) = cut_global {
            for (&vol, &k) in applied {
                let writes = self.writes_for(vol);
                if (k as usize) < writes.len() {
                    let first_missing = writes[k as usize];
                    if first_missing <= m {
                        violations.push(format!(
                            "{vol}: missing write with global ack index {first_missing} \
                             while the cut already contains index {m}"
                        ));
                    }
                }
            }
        }

        let cut_time = cut_global.map(|g| self.entries[g as usize].time);
        PrefixReport {
            consistent: violations.is_empty(),
            cut_global,
            cut_time,
            violations,
        }
    }

    /// The expected block-content fingerprints of volume `vol` after `k`
    /// acked writes starting at per-volume position `from`, overlaid on
    /// `initial` (the pair-creation image, which already contains the
    /// effects of the first `from` writes). Used to verify that a
    /// secondary volume's bytes match the claimed prefix.
    pub fn expected_content(
        &self,
        vol: VolRef,
        from: u64,
        k: u64,
        initial: &BTreeMap<u64, u64>,
    ) -> BTreeMap<u64, u64> {
        let mut expect = initial.clone();
        for &g in self
            .writes_for(vol)
            .iter()
            .skip(from as usize)
            .take(k as usize)
        {
            let e = &self.entries[g as usize];
            expect.insert(e.lba, e.hash);
        }
        expect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{ArrayId, VolumeId};

    fn v(n: u64) -> VolRef {
        VolRef::new(ArrayId(0), VolumeId(n))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Build the motivating scenario: alternating writes to two volumes.
    /// Global order: v1#0, v2#1, v1#2, v2#3.
    fn log() -> AckLog {
        let mut l = AckLog::new();
        l.append(v(1), 0, 11, t(1));
        l.append(v(2), 0, 21, t(2));
        l.append(v(1), 1, 12, t(3));
        l.append(v(2), 1, 22, t(4));
        l
    }

    #[test]
    fn full_and_empty_cuts_are_consistent() {
        let l = log();
        let all: BTreeMap<_, _> = [(v(1), 2), (v(2), 2)].into();
        let r = l.check_prefix(&all);
        assert!(r.consistent, "{:?}", r.violations);
        assert_eq!(r.cut_global, Some(3));
        assert_eq!(r.cut_time, Some(t(4)));

        let none: BTreeMap<_, _> = [(v(1), 0), (v(2), 0)].into();
        let r = l.check_prefix(&none);
        assert!(r.consistent);
        assert_eq!(r.cut_global, None);
    }

    #[test]
    fn proper_prefix_is_consistent() {
        let l = log();
        // First three global writes: v1 has 2, v2 has 1.
        let cut: BTreeMap<_, _> = [(v(1), 2), (v(2), 1)].into();
        let r = l.check_prefix(&cut);
        assert!(r.consistent, "{:?}", r.violations);
        assert_eq!(r.cut_global, Some(2));
    }

    #[test]
    fn skewed_cut_is_detected() {
        let l = log();
        // v2 applied both writes but v1 applied none: the cut contains
        // global #3 while missing global #0 — the paper's collapse.
        let cut: BTreeMap<_, _> = [(v(1), 0), (v(2), 2)].into();
        let r = l.check_prefix(&cut);
        assert!(!r.consistent);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].contains("missing write"));
    }

    #[test]
    fn over_applied_is_detected() {
        let l = log();
        let cut: BTreeMap<_, _> = [(v(1), 5)].into();
        let r = l.check_prefix(&cut);
        assert!(!r.consistent);
        assert!(r.violations[0].contains("only 2 were acknowledged"));
    }

    #[test]
    fn single_volume_any_prefix_is_consistent() {
        let l = log();
        for k in 0..=2 {
            let cut: BTreeMap<_, _> = [(v(1), k)].into();
            assert!(l.check_prefix(&cut).consistent, "k={k}");
        }
    }

    #[test]
    fn expected_content_overlays_initial_image() {
        let l = log();
        let initial: BTreeMap<u64, u64> = [(0, 99), (7, 77)].into();
        // After 1 write to v1 (lba 0, hash 11): lba0 overwritten, lba7 kept.
        let e = l.expected_content(v(1), 0, 1, &initial);
        assert_eq!(e[&0], 11);
        assert_eq!(e[&7], 77);
        // After 2 writes: lba1 now present.
        let e = l.expected_content(v(1), 0, 2, &initial);
        assert_eq!(e[&1], 12);
        // k = 0 is just the initial image.
        let e = l.expected_content(v(1), 0, 0, &initial);
        assert_eq!(e, initial);
    }

    #[test]
    fn expected_content_with_offset_skips_baked_in_history() {
        let l = log();
        // A pair created after v1's first write: the initial image already
        // holds hash 11 at lba 0; replaying k=1 from offset 1 adds lba 1.
        let initial: BTreeMap<u64, u64> = [(0, 11)].into();
        let e = l.expected_content(v(1), 1, 1, &initial);
        assert_eq!(e[&0], 11);
        assert_eq!(e[&1], 12);
        // Zero replay returns just the image.
        let e = l.expected_content(v(1), 1, 0, &initial);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn counts_per_volume() {
        let l = log();
        assert_eq!(l.count_for(v(1)), 2);
        assert_eq!(l.count_for(v(2)), 2);
        assert_eq!(l.count_for(v(9)), 0);
        assert_eq!(l.len(), 4);
    }
}
