//! Typed kernel events for the storage data plane.
//!
//! Every hop of a write's lifecycle — front-end service completion,
//! journal-batch WAN arrival, apply service, SDC leg frames, pump cycles —
//! is a [`StorageOp`] variant dispatched by `match`. Scheduling one costs
//! **zero heap allocations** (the op moves by value into the timer wheel),
//! where the old kernel boxed a fresh closure per hop.
//!
//! The engine stays generic over the world's event type through
//! [`StorageEvents`]: any kernel event enum that can absorb a `StorageOp`
//! gets the allocation-free path; the boxed-closure default kernel
//! ([`DynEvent`]) gets a blanket impl that wraps the op in one closure, so
//! every existing `Sim<World>` test world keeps working unmodified.
//!
//! Host-facing completion callbacks ([`WriteCb`], [`ReadCb`]) are still
//! boxed — once, at submit — and then ride through however many typed hops
//! the write takes (stall retries, SDC leg chains) without re-boxing.

use tsuru_sim::{DynEvent, Event, Sim, SimTime};
use tsuru_telemetry::SpanId;

use crate::block::{ArrayId, BlockBuf, GroupId, PairId, SnapshotId, VolRef};
use crate::engine::{self, LegDone, WriteAck};
use crate::journal::JournalEntry;
use crate::world::HasStorage;

/// Boxed host-write completion callback (allocated once per write, at
/// submit; moved through every subsequent typed hop).
pub type WriteCb<S, E> = Box<dyn FnOnce(&mut S, &mut Sim<S, E>, WriteAck)>;

/// Boxed host-read completion callback.
pub type ReadCb<S, E> = Box<dyn FnOnce(&mut S, &mut Sim<S, E>, Option<BlockBuf>)>;

/// Boxed SDC leg completion callback (allocated once per leg).
pub type LegCb<S, E> = Box<dyn FnOnce(&mut S, &mut Sim<S, E>, LegDone)>;

/// One scheduled step of the storage data plane.
///
/// Variants mirror the engine's continuation functions one-to-one; the
/// schedule-call order (and therefore the kernel's deterministic `seq`
/// tie-breaking) is exactly the order the closure kernel produced.
pub enum StorageOp<S, E> {
    /// Deliver a write acknowledgement on the next tick (admission-failure
    /// path: the array rejected the write at submit).
    AckNow {
        /// The acknowledgement to deliver.
        ack: WriteAck,
        /// Host completion callback.
        cb: WriteCb<S, E>,
    },
    /// Front-end service completed: journal-append, persist the primary
    /// copy and drive the replication legs.
    Persist {
        /// Target volume.
        vol: VolRef,
        /// Target block address.
        lba: u64,
        /// Block payload.
        data: BlockBuf,
        /// Submit instant (latency accounting).
        issued: SimTime,
        /// Per-volume ordering ticket.
        ticket: u64,
        /// Root trace span of the write lifecycle.
        span: SpanId,
        /// Host completion callback.
        cb: WriteCb<S, E>,
    },
    /// Deliver `None` to a read whose array was already failed at submit.
    ReadFail {
        /// Host completion callback.
        cb: ReadCb<S, E>,
    },
    /// Read service completed: deliver the block content.
    ReadDone {
        /// Source volume.
        vol: VolRef,
        /// Block address.
        lba: u64,
        /// Host completion callback.
        cb: ReadCb<S, E>,
    },
    /// Snapshot read service completed: deliver the point-in-time content.
    SnapReadDone {
        /// Owning array.
        array: ArrayId,
        /// Snapshot image.
        snap: SnapshotId,
        /// Block address.
        lba: u64,
        /// Host completion callback.
        cb: ReadCb<S, E>,
    },
    /// (Re)send one synchronous-replication frame (loss retry path).
    SdcSend {
        /// Replication group.
        gid: GroupId,
        /// Replication pair.
        pid: PairId,
        /// Primary volume.
        vol: VolRef,
        /// Block address.
        lba: u64,
        /// Block payload.
        data: BlockBuf,
        /// Leg completion callback.
        cb: LegCb<S, E>,
    },
    /// An SDC frame reached the backup array.
    SdcArrive {
        /// Replication group.
        gid: GroupId,
        /// Replication pair.
        pid: PairId,
        /// Block address.
        lba: u64,
        /// Block payload.
        data: BlockBuf,
        /// Leg completion callback.
        cb: LegCb<S, E>,
    },
    /// The backup array's service completed: persist the SDC block and
    /// send the acknowledgement back across the reverse link.
    SdcPersisted {
        /// Replication group.
        gid: GroupId,
        /// Replication pair.
        pid: PairId,
        /// Block address.
        lba: u64,
        /// Block payload.
        data: BlockBuf,
        /// Leg completion callback.
        cb: LegCb<S, E>,
    },
    /// The SDC acknowledgement frame crossed the reverse link.
    SdcAck {
        /// Replication pair.
        pid: PairId,
        /// Leg completion callback.
        cb: LegCb<S, E>,
    },
    /// Run one transfer-pump cycle (journal drain → WAN frame depart).
    RunTransfer {
        /// Replication group.
        gid: GroupId,
        /// Replication generation the pump was armed in.
        gen: u32,
    },
    /// A journal batch's WAN frame arrived at the backup site.
    ReceiveBatch {
        /// Replication group.
        gid: GroupId,
        /// The entries (moved, not copied, from the transfer pump).
        batch: Vec<JournalEntry>,
        /// Instant the frame's last bit left the main site.
        serialized: SimTime,
        /// Replication generation the frame was sent in.
        gen: u32,
    },
    /// Run one apply-pump cycle (backup journal → secondary volume).
    RunApply {
        /// Replication group.
        gid: GroupId,
        /// Replication generation the pump was armed in.
        gen: u32,
    },
    /// Apply service completed for the backup journal's front entry.
    FinishApply {
        /// Replication group.
        gid: GroupId,
        /// Replication generation the apply was armed in.
        gen: u32,
        /// Instant the apply service began (span accounting).
        started: SimTime,
    },
    /// The applied-ack frame arrived back at the main site: release
    /// primary journal entries up to the acknowledged sequence.
    ReleaseUpto {
        /// Replication group.
        gid: GroupId,
        /// Replication generation the ack belongs to.
        gen: u32,
        /// Highest applied sequence number.
        upto: u64,
    },
}

impl<S, E> StorageOp<S, E>
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    /// Fire this step: the typed-event analogue of the closure the old
    /// kernel would have boxed.
    pub fn dispatch(self, state: &mut S, sim: &mut Sim<S, E>) {
        match self {
            StorageOp::AckNow { ack, cb } => cb(state, sim, ack),
            StorageOp::Persist {
                vol,
                lba,
                data,
                issued,
                ticket,
                span,
                cb,
            } => engine::persist(state, sim, vol, lba, data, issued, ticket, span, cb),
            StorageOp::ReadFail { cb } => cb(state, sim, None),
            StorageOp::ReadDone { vol, lba, cb } => {
                let data = state
                    .storage()
                    .array(vol.array)
                    .read_block(vol.volume, lba)
                    .cloned();
                cb(state, sim, data)
            }
            StorageOp::SnapReadDone {
                array,
                snap,
                lba,
                cb,
            } => {
                let data = state
                    .storage()
                    .array(array)
                    .read_snapshot_block(snap, lba)
                    .cloned();
                cb(state, sim, data)
            }
            StorageOp::SdcSend {
                gid,
                pid,
                vol,
                lba,
                data,
                cb,
            } => engine::sdc_leg_send(state, sim, gid, pid, vol, lba, data, cb),
            StorageOp::SdcArrive {
                gid,
                pid,
                lba,
                data,
                cb,
            } => engine::sdc_leg_arrive(state, sim, gid, pid, lba, data, cb),
            StorageOp::SdcPersisted {
                gid,
                pid,
                lba,
                data,
                cb,
            } => engine::sdc_leg_done(state, sim, gid, pid, lba, data, cb),
            StorageOp::SdcAck { pid, cb } => {
                state.storage_mut().fabric.pair_mut(pid).acked_writes += 1;
                cb(state, sim, LegDone::Ok)
            }
            StorageOp::RunTransfer { gid, gen } => engine::run_transfer(state, sim, gid, gen),
            StorageOp::ReceiveBatch {
                gid,
                batch,
                serialized,
                gen,
            } => engine::receive_batch(state, sim, gid, batch, serialized, gen),
            StorageOp::RunApply { gid, gen } => engine::run_apply(state, sim, gid, gen),
            StorageOp::FinishApply { gid, gen, started } => {
                engine::finish_apply(state, sim, gid, gen, started)
            }
            StorageOp::ReleaseUpto { gid, gen, upto } => {
                engine::release_primary_upto(state, gid, gen, upto)
            }
        }
    }
}

/// A kernel event type that can carry storage data-plane steps.
///
/// World-level event enums implement this with a plain wrapping variant
/// (zero-allocation); the boxed-closure kernel gets the blanket impl
/// below, which costs the one box the old kernel paid anyway.
pub trait StorageEvents<S>: Event<S> {
    /// Wrap a storage step as a kernel event.
    fn storage(op: StorageOp<S, Self>) -> Self;
}

impl<S: HasStorage + 'static> StorageEvents<S> for DynEvent<S> {
    fn storage(op: StorageOp<S, Self>) -> Self {
        DynEvent::from_fn(Box::new(move |s, sim| op.dispatch(s, sim)))
    }
}
