//! The volume: a sparse array of blocks with write-generation tracking.

use std::collections::BTreeMap;

use crate::arena::DenseArena;
use crate::block::{content_hash, BlockBuf, VolumeId, BLOCK_SIZE};

/// Role a volume plays in replication, mirroring array semantics: secondary
/// volumes reject host writes until promoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolumeRole {
    /// Accepts host I/O (default).
    Primary,
    /// Target of replication; host writes are fenced.
    Secondary,
}

/// A logical volume: sparse block store plus bookkeeping.
///
/// Block payloads live in a dense-handle slab ([`DenseArena`]); the
/// `BTreeMap` holds only `lba → handle`, which keeps the ascending-LBA
/// iteration the consistency checkers rely on while overwrites — the hot
/// path once a working set is allocated — update the slab in place without
/// touching the tree.
#[derive(Debug, Clone)]
pub struct Volume {
    id: VolumeId,
    name: String,
    size_blocks: u64,
    index: BTreeMap<u64, u32>,
    bufs: DenseArena<BlockBuf>,
    role: VolumeRole,
    writes: u64,
}

impl Volume {
    /// A new, entirely unwritten volume.
    pub fn new(id: VolumeId, name: impl Into<String>, size_blocks: u64) -> Self {
        assert!(size_blocks > 0, "volume must have at least one block");
        Volume {
            id,
            name: name.into(),
            size_blocks,
            index: BTreeMap::new(),
            bufs: DenseArena::new(),
            role: VolumeRole::Primary,
            writes: 0,
        }
    }

    /// The volume id.
    pub fn id(&self) -> VolumeId {
        self.id
    }

    /// Human-readable name (e.g. `sales-data`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in blocks.
    pub fn size_blocks(&self) -> u64 {
        self.size_blocks
    }

    /// Capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_blocks * BLOCK_SIZE as u64
    }

    /// Current replication role.
    pub fn role(&self) -> VolumeRole {
        self.role
    }

    /// Change the replication role (array control plane only).
    pub fn set_role(&mut self, role: VolumeRole) {
        self.role = role;
    }

    /// Number of blocks that have ever been written.
    pub fn allocated_blocks(&self) -> usize {
        self.index.len()
    }

    /// Total write operations applied.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Read a block; `None` if it was never written.
    pub fn read(&self, lba: u64) -> Option<&BlockBuf> {
        assert!(lba < self.size_blocks, "lba {lba} out of range on {}", self.name);
        self.index.get(&lba).map(|&h| self.bufs.slot(h))
    }

    /// Overwrite a block, returning the previous content (for copy-on-write
    /// snapshot bookkeeping by the owning array).
    pub fn write(&mut self, lba: u64, data: BlockBuf) -> Option<BlockBuf> {
        assert!(lba < self.size_blocks, "lba {lba} out of range on {}", self.name);
        assert_eq!(
            data.len(),
            BLOCK_SIZE,
            "block write must be exactly {BLOCK_SIZE} bytes"
        );
        self.writes += 1;
        if let Some(&h) = self.index.get(&lba) {
            return Some(std::mem::replace(self.bufs.slot_mut(h), data));
        }
        let h = self.bufs.insert(data);
        self.index.insert(lba, h);
        None
    }

    /// Remove all content (volume format).
    pub fn wipe(&mut self) {
        self.index.clear();
        self.bufs.clear();
    }

    /// Iterate over `(lba, block)` in ascending LBA order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (u64, &BlockBuf)> {
        self.index.iter().map(|(&lba, &h)| (lba, self.bufs.slot(h)))
    }

    /// Content fingerprint of every allocated block, keyed by LBA.
    /// Used by the write-order-fidelity checker to compare a secondary
    /// volume against the expected prefix state.
    pub fn content_hashes(&self) -> BTreeMap<u64, u64> {
        self.iter_blocks()
            .map(|(lba, b)| (lba, content_hash(b)))
            .collect()
    }

    /// Copy every allocated block from `src` (replication initial copy).
    pub fn clone_content_from(&mut self, src: &Volume) {
        assert!(
            src.size_blocks <= self.size_blocks,
            "initial copy source larger than target"
        );
        self.index = src.index.clone();
        self.bufs = src.bufs.clone();
        self.writes += src.index.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::block_from;

    fn vol() -> Volume {
        Volume::new(VolumeId(1), "test", 100)
    }

    #[test]
    fn read_your_writes() {
        let mut v = vol();
        assert!(v.read(5).is_none());
        v.write(5, block_from(b"data"));
        assert_eq!(&v.read(5).unwrap()[..4], b"data");
        assert_eq!(v.allocated_blocks(), 1);
        assert_eq!(v.write_count(), 1);
    }

    #[test]
    fn overwrite_returns_old_content() {
        let mut v = vol();
        v.write(5, block_from(b"old"));
        let prev = v.write(5, block_from(b"new")).unwrap();
        assert_eq!(&prev[..3], b"old");
        assert_eq!(&v.read(5).unwrap()[..3], b"new");
        assert_eq!(v.allocated_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_out_of_range_panics() {
        let v = vol();
        let _ = v.read(100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_out_of_range_panics() {
        let mut v = vol();
        v.write(100, block_from(b"x"));
    }

    #[test]
    #[should_panic(expected = "exactly")]
    fn short_write_panics() {
        let mut v = vol();
        v.write(0, BlockBuf::from_static(b"tiny"));
    }

    #[test]
    fn clone_content_copies_everything() {
        let mut a = vol();
        a.write(1, block_from(b"one"));
        a.write(2, block_from(b"two"));
        let mut b = Volume::new(VolumeId(2), "copy", 100);
        b.clone_content_from(&a);
        assert_eq!(&b.read(1).unwrap()[..3], b"one");
        assert_eq!(&b.read(2).unwrap()[..3], b"two");
        assert_eq!(b.allocated_blocks(), 2);
    }

    #[test]
    fn content_hashes_match_equal_content() {
        let mut a = vol();
        let mut b = vol();
        a.write(3, block_from(b"same"));
        b.write(3, block_from(b"same"));
        assert_eq!(a.content_hashes(), b.content_hashes());
        b.write(4, block_from(b"more"));
        assert_ne!(a.content_hashes(), b.content_hashes());
    }

    #[test]
    fn wipe_clears_blocks() {
        let mut v = vol();
        v.write(0, block_from(b"x"));
        v.wipe();
        assert_eq!(v.allocated_blocks(), 0);
        assert!(v.read(0).is_none());
    }
}
