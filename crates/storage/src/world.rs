//! The storage world: arrays + network + replication fabric + ack log.
//!
//! [`StorageWorld`] is the single mutable state that the discrete-event
//! engine (see [`crate::engine`]) operates on. Control-plane operations
//! (volume/pair/group lifecycle, snapshots, failover) are synchronous
//! methods here; the timed data plane lives in `engine`.

use std::collections::BTreeMap;

use tsuru_history::Recorder;
use tsuru_sim::{DetRng, SimDuration, SimTime};
use tsuru_simnet::{LinkConfig, LinkId, Network, TransferOutcome};
use tsuru_telemetry::{names, spans, AlertEngine, AlertProfile, MetricsRegistry, SpanId, Tracer};

use crate::acklog::{AckLog, PrefixReport};
use crate::array::{ArrayPerf, StorageArray, WriteError};
use crate::block::{block_from, ArrayId, BlockBuf, GroupId, PairId, SnapshotId, VolRef, VolumeId};
use crate::config::{EngineConfig, JournalFullPolicy};
use crate::fabric::{
    Group, GroupMode, GroupState, Pair, ReplicationFabric, SuspendReason,
};
use crate::hot::TicketLanes;
use crate::shard::ShardLayout;
use crate::journal::JournalEntry;
use crate::supervisor::{Supervisor, SupervisorPolicy};
use crate::volume::VolumeRole;

/// Access to the storage world from an arbitrary simulation state type.
///
/// The discrete-event engine functions are generic over the world type `S`,
/// so higher layers (database drivers, the demo system) can embed a
/// [`StorageWorld`] in a larger state struct and still use the engine.
pub trait HasStorage {
    /// Borrow the storage world.
    fn storage(&self) -> &StorageWorld;
    /// Mutably borrow the storage world.
    fn storage_mut(&mut self) -> &mut StorageWorld;
}

impl HasStorage for StorageWorld {
    fn storage(&self) -> &StorageWorld {
        self
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        self
    }
}

/// Result of the write-order-fidelity verification of a backup image.
#[derive(Debug, Clone)]
pub struct ConsistencyReport {
    /// Formal prefix-consistency verdict against the global ack order.
    pub prefix: PrefixReport,
    /// Blocks whose secondary content does not match the expected prefix
    /// image (always empty unless there is an engine bug).
    pub content_mismatches: Vec<String>,
}

impl ConsistencyReport {
    /// True iff both the ordering and the content checks passed.
    pub fn is_consistent(&self) -> bool {
        self.prefix.consistent && self.content_mismatches.is_empty()
    }
}

/// Recovery-point metrics at failover time (experiment E3).
#[derive(Debug, Clone)]
pub struct RpoReport {
    /// Writes acknowledged at the main site but absent from the backup.
    pub lost_writes: u64,
    /// Writes acknowledged at the main site in total (across the groups).
    pub acked_writes: u64,
    /// Age of the backup image: failure time minus the ack time of the
    /// newest write present at the backup site.
    pub rpo: SimDuration,
}

/// What a group resynchronisation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResyncReport {
    /// Blocks copied from primary to secondary volumes.
    pub blocks_copied: u64,
    /// True if only the suspended-era delta was copied (vs a full copy).
    pub delta: bool,
}

/// The complete storage-layer state of a multi-site deployment.
#[derive(Debug)]
pub struct StorageWorld {
    /// Engine tunables.
    pub config: EngineConfig,
    arrays: Vec<StorageArray>,
    /// Inter-site links.
    pub net: Network,
    /// Pairs, groups, journals.
    pub fabric: ReplicationFabric,
    /// Global ack-order log (the write-order-fidelity oracle).
    pub ack_log: AckLog,
    /// Named counters, gauges and time series (see
    /// [`tsuru_telemetry::names`] for the keys the engine uses).
    pub metrics: MetricsRegistry,
    /// Causal span tracer; disabled (free) unless
    /// [`StorageWorld::set_tracer`] installed a recording handle.
    pub tracer: Tracer,
    /// Client-visible op-history recorder; disabled (free) unless
    /// [`StorageWorld::set_history`] installed a recording handle. The
    /// storage layer never records into it itself — it is the rendezvous
    /// point where application drivers and image readers, which only
    /// share the world, find the same history.
    pub history: Recorder,
    /// Per-volume host-write ordering in SoA lanes. A write takes a ticket
    /// at submission and may only apply when its ticket equals the volume's
    /// turn, so a stalled write can never be overtaken by a later one
    /// (tail-block rewrites would otherwise go back in time).
    write_order: TicketLanes,
    /// Self-healing replication supervisor; absent unless armed via
    /// [`StorageWorld::enable_supervisor`] (experiments that hand-drive
    /// recovery keep it off).
    supervisor: Option<Supervisor>,
    /// SLO/alerting engine; absent unless armed via
    /// [`StorageWorld::enable_alerts`] — a true no-op when off.
    alerts: Option<AlertEngine>,
    rng: DetRng,
    control_time: SimTime,
}

impl StorageWorld {
    /// A new world with the given seed and configuration.
    pub fn new(seed: u64, config: EngineConfig) -> Self {
        StorageWorld {
            config,
            arrays: Vec::new(),
            net: Network::new(),
            fabric: ReplicationFabric::new(),
            ack_log: AckLog::new(),
            metrics: MetricsRegistry::new(),
            tracer: Tracer::disabled(),
            history: Recorder::disabled(),
            write_order: TicketLanes::new(),
            supervisor: None,
            alerts: None,
            rng: DetRng::new(seed),
            control_time: SimTime::ZERO,
        }
    }

    /// Arm the self-healing replication supervisor with the given policy.
    /// The supervisor's backoff-jitter stream derives from the world seed
    /// (stream `0x5AFE`), so recovery schedules are deterministic per
    /// trial. The caller still has to drive [`crate::supervisor::tick`]
    /// from a timer event (see `tsuru-core`'s `SupervisorTick`).
    pub fn enable_supervisor(&mut self, policy: SupervisorPolicy) {
        let rng = self.rng.derive(0x5AFE);
        self.supervisor = Some(Supervisor::new(policy, rng));
    }

    /// The armed supervisor, if any.
    pub fn supervisor(&self) -> Option<&Supervisor> {
        self.supervisor.as_ref()
    }

    /// Mutable access to the armed supervisor, if any.
    pub fn supervisor_mut(&mut self) -> Option<&mut Supervisor> {
        self.supervisor.as_mut()
    }

    /// Detach the supervisor for one probe pass (borrow split: the tick
    /// walks groups mutably while consulting supervisor state).
    pub(crate) fn take_supervisor(&mut self) -> Option<Supervisor> {
        self.supervisor.take()
    }

    /// Re-attach the supervisor after a probe pass.
    pub(crate) fn put_supervisor(&mut self, sv: Supervisor) {
        self.supervisor = Some(sv);
    }

    /// Arm the SLO/alerting engine with the given rule profile, with
    /// `now` as the arming instant (the absence-rule reference before a
    /// series' first sample). Turns on time-series sampling so the
    /// rules' signals exist. The caller still has to drive
    /// [`StorageWorld::slo_tick`] from a timer event (see `tsuru-core`'s
    /// `SloTick`).
    pub fn enable_alerts(&mut self, profile: AlertProfile, now: SimTime) {
        self.metrics.enable_sampling();
        self.alerts = Some(AlertEngine::new(profile, now));
    }

    /// The armed alert engine, if any.
    pub fn alerts(&self) -> Option<&AlertEngine> {
        self.alerts.as_ref()
    }

    /// Detach the alert engine (e.g. to harvest its incident log after a
    /// run).
    pub fn take_alerts(&mut self) -> Option<AlertEngine> {
        self.alerts.take()
    }

    /// One SLO evaluation pass at `now`: sample the health series, then
    /// evaluate every rule of the armed profile. No-op without an armed
    /// engine.
    pub fn slo_tick(&mut self, now: SimTime) {
        let Some(mut engine) = self.alerts.take() else {
            return;
        };
        self.sample_health_series(now);
        let supervisor = self.supervisor_stage_summary();
        engine.evaluate(now, &self.metrics, &self.tracer, &supervisor);
        self.alerts = Some(engine);
    }

    /// One-line supervisor stage summary ("off" when unarmed, "idle"
    /// when no groups exist) — captured into incidents at open time.
    pub fn supervisor_stage_summary(&self) -> String {
        let Some(sv) = &self.supervisor else {
            return "off".to_string();
        };
        let parts: Vec<String> = self
            .fabric
            .group_ids()
            .into_iter()
            .map(|gid| format!("g{}={}", gid.0, sv.stage(gid).label()))
            .collect();
        if parts.is_empty() {
            "idle".to_string()
        } else {
            parts.join(" ")
        }
    }

    /// Sample the SLO health series (observed cluster state, not rule
    /// state): RPO lag, journal occupancy, down links, failed arrays,
    /// degraded groups. Runs only on SLO ticks, so the series exist only
    /// while the alert engine is armed.
    fn sample_health_series(&mut self, now: SimTime) {
        let mut occupancy = 0u64;
        let mut lag = 0u64;
        let mut degraded = 0u64;
        for gid in self.fabric.group_ids() {
            let g = self.fabric.group(gid);
            if let Some(jid) = g.primary_jnl {
                occupancy += self.fabric.journal(jid).used_bytes();
            }
            for &pid in &g.pairs {
                let p = self.fabric.pair(pid);
                lag += p.acked_writes.saturating_sub(p.applied_writes);
            }
            if !g.pairs.is_empty() && !g.is_active() {
                degraded += 1;
            }
        }
        let links_down = self.net.iter().filter(|(_, l)| !l.is_up(now)).count() as u64;
        let arrays_failed = self.arrays.iter().filter(|a| a.is_failed()).count() as u64;
        self.metrics.sample(names::HEALTH_RPO_LAG, now, lag as f64);
        self.metrics
            .sample(names::HEALTH_JOURNAL_OCCUPANCY, now, occupancy as f64);
        self.metrics
            .sample(names::HEALTH_LINKS_DOWN, now, links_down as f64);
        self.metrics
            .sample(names::HEALTH_ARRAYS_FAILED, now, arrays_failed as f64);
        self.metrics
            .sample(names::HEALTH_GROUPS_DEGRADED, now, degraded as f64);
    }

    /// Install a tracing handle on the world, its network and every link,
    /// and turn on time-series sampling (RPO lag, journal occupancy) at
    /// the replication edges. Install before the first engine event so
    /// the trace covers the whole run.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.net.set_tracer(tracer.clone());
        self.tracer = tracer;
        self.metrics.enable_sampling();
    }

    /// Install a client-visible history recorder. Install after setup
    /// (formatting, seeding) so the recorded history starts at the
    /// workload's first operation, like the tracer.
    pub fn set_history(&mut self, history: Recorder) {
        self.history = history;
    }

    /// The control-plane clock: set by the orchestrator before running
    /// reconcilers so that control operations (snapshots, suspensions)
    /// carry the right simulated timestamp.
    pub fn control_time(&self) -> SimTime {
        self.control_time
    }

    /// Advance the control-plane clock (monotonic).
    pub fn set_control_time(&mut self, now: SimTime) {
        self.control_time = self.control_time.max(now);
    }

    // ----- arrays / volumes -------------------------------------------------

    /// Register a new array.
    pub fn add_array(&mut self, name: impl Into<String>, perf: ArrayPerf) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(StorageArray::new(id, name, perf));
        id
    }

    /// Borrow an array.
    pub fn array(&self, id: ArrayId) -> &StorageArray {
        self.arrays.get(id.0 as usize).expect("invariant: ArrayId is only minted by add_array")
    }

    /// Mutably borrow an array.
    pub fn array_mut(&mut self, id: ArrayId) -> &mut StorageArray {
        self.arrays.get_mut(id.0 as usize).expect("invariant: ArrayId is only minted by add_array")
    }

    /// Number of registered arrays.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Create a volume and return a fully qualified reference.
    pub fn create_volume(
        &mut self,
        array: ArrayId,
        name: impl Into<String>,
        size_blocks: u64,
    ) -> VolRef {
        let volume = self.array_mut(array).create_volume(name, size_blocks);
        VolRef { array, volume }
    }

    /// Zero-time block write that bypasses the data path and replication.
    /// For initial formatting before pairs exist (e.g. `mkfs` of the
    /// databases); payload shorter than a block is zero-padded.
    pub fn write_direct(&mut self, vol: VolRef, lba: u64, data: &[u8]) {
        self.array_mut(vol.array)
            .write_block(vol.volume, lba, block_from(data));
    }

    /// Zero-time block read bypassing the data path.
    pub fn read_direct(&self, vol: VolRef, lba: u64) -> Option<&BlockBuf> {
        self.array(vol.array).read_block(vol.volume, lba)
    }

    /// Register an inter-site link with a dedicated jitter/loss stream.
    pub fn add_link(&mut self, config: LinkConfig) -> LinkId {
        let stream = 0x1000 + self.net.len() as u64;
        let rng = self.rng.derive(stream);
        self.net.add_link(config, rng)
    }

    // ----- replication groups / pairs ----------------------------------------

    /// Create an ADC replication group with fresh journals on both sites.
    /// With more than one member pair this *is* a consistency group: all
    /// members share the journal's sequence space.
    pub fn create_adc_group(
        &mut self,
        name: impl Into<String>,
        link: LinkId,
        reverse: LinkId,
        journal_capacity_bytes: u64,
    ) -> GroupId {
        let overhead = self.config.journal_entry_overhead;
        let pj = self.fabric.add_journal(journal_capacity_bytes, overhead);
        let sj = self.fabric.add_journal(journal_capacity_bytes, overhead);
        let id = self.fabric.next_group_id();
        let rng = self.rng.derive(0x2000 + id.0 as u64);
        self.fabric.add_group(Group {
            id,
            name: name.into(),
            mode: GroupMode::Adc,
            primary_jnl: Some(pj),
            secondary_jnl: Some(sj),
            link,
            reverse,
            pairs: Vec::new(),
            state: GroupState::Active,
            pump_scheduled: false,
            apply_scheduled: false,
            applied_ack_sent: 0,
            generation: 0,
            rng,
            stats: Default::default(),
        })
    }

    /// Create a synchronous (SDC) replication group.
    pub fn create_sdc_group(
        &mut self,
        name: impl Into<String>,
        link: LinkId,
        reverse: LinkId,
    ) -> GroupId {
        let id = self.fabric.next_group_id();
        let rng = self.rng.derive(0x2000 + id.0 as u64);
        self.fabric.add_group(Group {
            id,
            name: name.into(),
            mode: GroupMode::Sdc,
            primary_jnl: None,
            secondary_jnl: None,
            link,
            reverse,
            pairs: Vec::new(),
            state: GroupState::Active,
            pump_scheduled: false,
            apply_scheduled: false,
            applied_ack_sent: 0,
            generation: 0,
            rng,
            stats: Default::default(),
        })
    }

    /// Add a primary→secondary pair to a group. Performs the initial copy
    /// (all current primary content is cloned to the secondary, §III-A1)
    /// and fences the secondary against host writes.
    pub fn add_pair(&mut self, group: GroupId, primary: VolRef, secondary: VolRef) -> PairId {
        assert_ne!(
            primary, secondary,
            "a volume cannot replicate to itself"
        );
        // Initial copy: snapshot of the primary's current content.
        let (content, initial_hashes) = {
            let pv = self.array(primary.array).volume(primary.volume);
            let blocks: Vec<(u64, BlockBuf)> =
                pv.iter_blocks().map(|(lba, b)| (lba, b.clone())).collect();
            (blocks, pv.content_hashes())
        };
        {
            let sa = self.array_mut(secondary.array);
            let sv = sa.volume_mut(secondary.volume);
            assert!(
                sv.size_blocks() >= initial_hashes.len() as u64,
                "secondary too small for initial copy"
            );
            sv.wipe();
            for (lba, b) in content {
                sv.write(lba, b);
            }
            sv.set_role(VolumeRole::Secondary);
        }
        let id = self.fabric.next_pair_id();
        let ack_offset = self.ack_log.count_for(primary);
        self.fabric.add_pair(Pair {
            id,
            group,
            primary,
            secondary,
            ack_offset,
            acked_writes: 0,
            applied_writes: 0,
            initial_hashes,
            dirty_since_suspend: std::collections::BTreeSet::new(),
        })
    }

    /// Tear down a pair: stop intercepting writes and unfence the secondary.
    pub fn remove_pair(&mut self, id: PairId) {
        let secondary = self.fabric.pair(id).secondary;
        self.fabric.detach_pair(id);
        self.array_mut(secondary.array)
            .volume_mut(secondary.volume)
            .set_role(VolumeRole::Primary);
    }

    /// Operator suspend of a group.
    pub fn suspend_group(&mut self, id: GroupId, now: SimTime) {
        self.fabric
            .group_mut(id)
            .suspend(now, SuspendReason::Operator);
    }

    /// Resume a suspended group by resynchronising every member pair and
    /// opening a fresh replication epoch.
    ///
    /// A *suspended* group gets a **delta resync**: only the blocks written
    /// while suspended (the dirty bitmap) plus whatever was stranded in the
    /// journal are recopied — mirroring how arrays avoid full re-copies
    /// after short splits. Any other group gets a full initial copy. Both
    /// journals are replaced and the group's generation is bumped so that
    /// in-flight frames and pump events from the old epoch are discarded.
    pub fn resync_group(&mut self, id: GroupId) -> ResyncReport {
        self.resync_group_with(id, false)
    }

    /// [`StorageWorld::resync_group`] with an explicit degradation switch:
    /// `force_full` demands a full initial copy even where a delta resync
    /// would be legal. The supervisor uses this once the accumulated
    /// journal debt plus dirty-bitmap working set makes a delta
    /// uneconomical (graceful degradation instead of an oversized delta).
    pub fn resync_group_with(&mut self, id: GroupId, force_full: bool) -> ResyncReport {
        let suspended = matches!(self.fabric.group(id).state, GroupState::Suspended { .. });
        let pair_ids = self.fabric.group(id).pairs.clone();
        let mut blocks_copied = 0u64;
        let delta = suspended && !force_full;
        for pid in pair_ids {
            let (primary, secondary) = {
                let p = self.fabric.pair(pid);
                (p.primary, p.secondary)
            };
            // The working set: blocks dirtied while suspended, plus
            // whatever still sat in the primary journal (sent or not —
            // recopying an already-applied block is harmless).
            let lbas: Vec<u64> = if delta {
                let mut set = std::mem::take(&mut self.fabric.pair_mut(pid).dirty_since_suspend);
                if let Some(jid) = self.fabric.group(id).primary_jnl {
                    let jnl = self.fabric.journal(jid);
                    let mut e = jnl.peek_front().map(|x| x.seq);
                    // Walk the retained entries of this pair.
                    let _ = &mut e;
                    for entry in jnl.entries_for(pid) {
                        set.insert(entry);
                    }
                }
                set.into_iter().collect()
            } else {
                self.array(primary.array)
                    .volume(primary.volume)
                    .iter_blocks()
                    .map(|(lba, _)| lba)
                    .collect()
            };
            let blocks: Vec<(u64, BlockBuf)> = {
                let pv = self.array(primary.array).volume(primary.volume);
                lbas.iter()
                    .filter_map(|&lba| pv.read(lba).map(|b| (lba, b.clone())))
                    .collect()
            };
            blocks_copied += blocks.len() as u64;
            if !delta {
                self.array_mut(secondary.array)
                    .volume_mut(secondary.volume)
                    .wipe();
            }
            for (lba, b) in blocks {
                self.array_mut(secondary.array)
                    .write_block(secondary.volume, lba, b);
            }
            let hashes = self
                .array(primary.array)
                .volume(primary.volume)
                .content_hashes();
            let offset = self.ack_log.count_for(primary);
            let p = self.fabric.pair_mut(pid);
            p.initial_hashes = hashes;
            p.ack_offset = offset;
            p.acked_writes = 0;
            p.applied_writes = 0;
            p.dirty_since_suspend.clear();
        }
        // Fresh journals and a new replication epoch: in-flight frames and
        // pump events from the old epoch are discarded by their generation
        // tag.
        let capacity_overhead = {
            let g = self.fabric.group(id);
            g.primary_jnl.map(|j| {
                let jnl = self.fabric.journal(j);
                (jnl.capacity_bytes(), self.config.journal_entry_overhead)
            })
        };
        if let Some((capacity, overhead)) = capacity_overhead {
            let pj = self.fabric.add_journal(capacity, overhead);
            let sj = self.fabric.add_journal(capacity, overhead);
            let g = self.fabric.group_mut(id);
            g.primary_jnl = Some(pj);
            g.secondary_jnl = Some(sj);
        }
        let g = self.fabric.group_mut(id);
        g.generation += 1;
        g.pump_scheduled = false;
        g.apply_scheduled = false;
        g.applied_ack_sent = 0;
        g.resume();
        ResyncReport {
            blocks_copied,
            delta,
        }
    }

    // ----- failure & failover -------------------------------------------------

    /// Site disaster at `now`: the array stops serving I/O and replication
    /// frames that had not fully left the site are lost.
    pub fn fail_array(&mut self, id: ArrayId, now: SimTime) {
        self.array_mut(id).fail(now);
    }

    /// Failover a group to the backup site: apply every journal entry that
    /// reached the backup, promote the secondaries to writable primaries
    /// and freeze replication. Returns the number of entries applied during
    /// promotion. Synchronous: RTO accounting is done by the caller.
    pub fn promote_group(&mut self, id: GroupId) -> u64 {
        let (sjnl, pair_ids) = {
            let g = self.fabric.group(id);
            (g.secondary_jnl, g.pairs.clone())
        };
        let mut applied = 0u64;
        if let Some(jid) = sjnl {
            let entries: Vec<JournalEntry> = self.fabric.journal_mut(jid).drain_all();
            for e in entries {
                let secondary = self.fabric.pair(e.pair).secondary;
                self.array_mut(secondary.array)
                    .write_block(secondary.volume, e.lba, e.data);
                self.fabric.pair_mut(e.pair).applied_writes += 1;
                applied += 1;
            }
        }
        for pid in pair_ids {
            let secondary = self.fabric.pair(pid).secondary;
            self.array_mut(secondary.array)
                .volume_mut(secondary.volume)
                .set_role(VolumeRole::Primary);
        }
        let g = self.fabric.group_mut(id);
        g.state = GroupState::Promoted;
        g.generation += 1;
        g.stats.entries_applied += applied;
        applied
    }

    /// Failback step 1 — reverse protection: after a failover (the group is
    /// `Promoted`) and once the original site's array has been repaired
    /// (`StorageArray::recover`), re-protect the business in the opposite
    /// direction: the promoted volumes become primaries of a new ADC group
    /// replicating back to the original volumes. Performs a full initial
    /// copy (the original content is stale). Returns the new group.
    pub fn establish_reverse_group(
        &mut self,
        promoted: GroupId,
        link: LinkId,
        reverse: LinkId,
        journal_capacity_bytes: u64,
    ) -> GroupId {
        assert_eq!(
            self.fabric.group(promoted).state,
            GroupState::Promoted,
            "reverse protection requires a promoted group"
        );
        let old_pairs = self.fabric.group(promoted).pairs.clone();
        // Verify the target site is back before touching anything.
        for &pid in &old_pairs {
            let old_primary = self.fabric.pair(pid).primary;
            assert!(
                !self.array(old_primary.array).is_failed(),
                "original array must be recovered before failback"
            );
        }
        // Detach the old pairs: their primaries are about to become
        // replication targets.
        let endpoints: Vec<(VolRef, VolRef)> = old_pairs
            .iter()
            .map(|&pid| {
                let p = self.fabric.pair(pid);
                (p.primary, p.secondary)
            })
            .collect();
        for &pid in &old_pairs {
            self.fabric.detach_pair(pid);
        }
        let name = format!("{}-reversed", self.fabric.group(promoted).name);
        let new_group = self.create_adc_group(name, link, reverse, journal_capacity_bytes);
        for (old_primary, old_secondary) in endpoints {
            // Direction flips: promoted volume → original volume.
            self.add_pair(new_group, old_secondary, old_primary);
        }
        new_group
    }

    /// Failback step 2 — return home: once the reverse group has fully
    /// caught up (active, both journals drained, every pair applied what
    /// it acked), promote it — making the original volumes writable
    /// primaries again — and immediately re-protect the business in the
    /// original direction with a fresh forward group (full initial copy).
    /// Returns the new forward group's id.
    pub fn complete_failback(
        &mut self,
        reverse: GroupId,
        journal_capacity_bytes: u64,
    ) -> GroupId {
        {
            let g = self.fabric.group(reverse);
            assert!(
                g.is_active(),
                "failback requires an active, caught-up reverse group"
            );
            for jid in g.primary_jnl.into_iter().chain(g.secondary_jnl) {
                assert!(
                    self.fabric.journal(jid).is_empty(),
                    "reverse journals must be drained before failback"
                );
            }
            for &pid in &g.pairs {
                let p = self.fabric.pair(pid);
                assert_eq!(
                    p.acked_writes, p.applied_writes,
                    "reverse group must be caught up before failback"
                );
            }
        }
        self.promote_group(reverse);
        // The reverse group shipped backup→main over the original ack
        // link; the re-established forward group flips direction again.
        let (link, rev) = {
            let g = self.fabric.group(reverse);
            (g.reverse, g.link)
        };
        self.establish_reverse_group(reverse, link, rev, journal_capacity_bytes)
    }

    // ----- snapshots -----------------------------------------------------------

    /// Snapshot one volume.
    pub fn snapshot(&mut self, vol: VolRef, name: impl Into<String>, now: SimTime) -> SnapshotId {
        let name = name.into();
        self.metrics.inc(names::SNAPSHOTS_TAKEN);
        self.tracer.instant(spans::SNAPSHOT, now, SpanId::NONE, || {
            vec![("vol", vol.to_string().into()), ("name", name.clone().into())]
        });
        self.array_mut(vol.array)
            .create_snapshot(vol.volume, name, now)
    }

    /// Atomically snapshot several volumes on one array (snapshot group).
    pub fn snapshot_group(
        &mut self,
        array: ArrayId,
        vols: &[VolumeId],
        name_prefix: &str,
        now: SimTime,
    ) -> Vec<SnapshotId> {
        self.metrics.add(names::SNAPSHOTS_TAKEN, vols.len() as u64);
        self.tracer.instant(spans::SNAPSHOT, now, SpanId::NONE, || {
            vec![
                ("array", (array.0 as u64).into()),
                ("vols", (vols.len() as u64).into()),
                ("name", name_prefix.into()),
            ]
        });
        self.array_mut(array)
            .create_snapshot_group(vols, name_prefix, now)
    }

    // ----- verification ---------------------------------------------------------

    /// Applied-write counts per *primary* volume for the given groups
    /// (the cut vector the backup image represents).
    pub fn applied_counts(&self, groups: &[GroupId]) -> BTreeMap<VolRef, u64> {
        let mut out = BTreeMap::new();
        for &gid in groups {
            for &pid in &self.fabric.group(gid).pairs {
                let p = self.fabric.pair(pid);
                out.insert(p.primary, p.ack_offset + p.applied_writes);
            }
        }
        out
    }

    /// Verify that the backup image of the given groups is a
    /// prefix-consistent cut of the global ack order, and that the
    /// secondary volumes' bytes match that prefix exactly.
    pub fn verify_consistency(&self, groups: &[GroupId]) -> ConsistencyReport {
        let applied = self.applied_counts(groups);
        let prefix = self.ack_log.check_prefix(&applied);
        let mut content_mismatches = Vec::new();
        for &gid in groups {
            for &pid in &self.fabric.group(gid).pairs {
                let p = self.fabric.pair(pid);
                let expected = self.ack_log.expected_content(
                    p.primary,
                    p.ack_offset,
                    p.applied_writes,
                    &p.initial_hashes,
                );
                let actual = self
                    .array(p.secondary.array)
                    .volume(p.secondary.volume)
                    .content_hashes();
                if expected != actual {
                    let missing = expected
                        .iter()
                        .filter(|(lba, h)| actual.get(lba) != Some(h))
                        .count();
                    let extra = actual
                        .iter()
                        .filter(|(lba, h)| expected.get(lba) != Some(h))
                        .count();
                    content_mismatches.push(format!(
                        "pair {}→{}: {missing} blocks wrong/missing, {extra} unexpected",
                        p.primary, p.secondary
                    ));
                }
            }
        }
        ConsistencyReport {
            prefix,
            content_mismatches,
        }
    }

    /// Recovery-point metrics for the given groups after a main-site
    /// failure at `failure_time`.
    pub fn rpo_report(&self, groups: &[GroupId], failure_time: SimTime) -> RpoReport {
        let mut lost = 0u64;
        let mut acked = 0u64;
        for &gid in groups {
            for &pid in &self.fabric.group(gid).pairs {
                let p = self.fabric.pair(pid);
                acked += p.acked_writes;
                lost += p.acked_writes.saturating_sub(p.applied_writes);
            }
        }
        let applied = self.applied_counts(groups);
        let cut_time = self
            .ack_log
            .check_prefix(&applied)
            .cut_time
            .unwrap_or(SimTime::ZERO);
        RpoReport {
            lost_writes: lost,
            acked_writes: acked,
            rpo: failure_time.saturating_since(cut_time),
        }
    }

    // ----- internals shared with the engine -------------------------------------

    /// Persist a block locally and record the host acknowledgement.
    /// Returns the write's global ack index.
    pub(crate) fn commit_local(
        &mut self,
        now: SimTime,
        vol: VolRef,
        lba: u64,
        data: BlockBuf,
        hash: u64,
    ) -> u64 {
        self.array_mut(vol.array).write_block(vol.volume, lba, data);
        self.ack_log.append(vol, lba, hash, now)
    }

    /// Sample the next pump delay for a group (base interval plus jitter).
    pub(crate) fn pump_delay(&mut self, group: GroupId) -> SimDuration {
        let base = self.config.pump_interval;
        let jitter = self.config.pump_jitter;
        if jitter.is_zero() {
            return base;
        }
        let g = self.fabric.group_mut(group);
        base + SimDuration::from_nanos(g.rng.gen_range(jitter.as_nanos() + 1))
    }

    /// Check whether a host write may proceed.
    pub(crate) fn check_host_write(&mut self, vol: VolRef, lba: u64) -> Result<(), WriteError> {
        self.array_mut(vol.array).check_host_write(vol.volume, lba)
    }

    /// Take the next per-volume issue ticket for an admitted host write.
    pub(crate) fn issue_write_ticket(&mut self, vol: VolRef) -> u64 {
        self.write_order.issue(vol)
    }

    /// True iff `ticket` is the oldest host write to `vol` still pending
    /// its apply/reject decision.
    pub(crate) fn is_write_turn(&self, vol: VolRef, ticket: u64) -> bool {
        self.write_order.is_turn(vol, ticket)
    }

    /// Retire the volume's current turn holder once it has applied (or been
    /// rejected), unblocking the next ticket.
    pub(crate) fn retire_write_ticket(&mut self, vol: VolRef) {
        self.write_order.retire(vol)
    }

    /// Offer a frame on a link.
    pub(crate) fn offer_link(
        &mut self,
        link: LinkId,
        now: SimTime,
        bytes: u64,
    ) -> TransferOutcome {
        self.net.link_mut(link).offer(now, bytes)
    }

    /// Journal-full policy accessor (engine convenience).
    pub(crate) fn journal_full_policy(&self) -> JournalFullPolicy {
        self.config.journal_full_policy
    }

    /// Sample the derived replication time series (total primary-journal
    /// occupancy, acked-but-unapplied RPO lag) at a transfer or apply
    /// edge. No-op unless sampling was enabled by
    /// [`StorageWorld::set_tracer`].
    pub(crate) fn sample_replication_series(&mut self, now: SimTime) {
        if !self.metrics.sampling_enabled() {
            return;
        }
        let mut occupancy = 0u64;
        let mut lag = 0u64;
        for gid in self.fabric.group_ids() {
            let g = self.fabric.group(gid);
            if let Some(jid) = g.primary_jnl {
                occupancy += self.fabric.journal(jid).used_bytes();
            }
            for &pid in &g.pairs {
                let p = self.fabric.pair(pid);
                lag += p.acked_writes.saturating_sub(p.applied_writes);
            }
        }
        self.metrics
            .sample(names::JOURNAL_OCCUPANCY, now, occupancy as f64);
        self.metrics.sample(names::RPO_LAG, now, lag as f64);
    }

    /// Sample per-shard journal occupancy and apply lag into the metrics
    /// registry's shard lanes, plus the aggregate health series the E11
    /// SLO engine watches — one walk over the layout serves both readers.
    /// No-op (cheap) unless sampling is enabled.
    pub fn sample_shard_series(&mut self, layout: &ShardLayout, now: SimTime) {
        if !self.metrics.sampling_enabled() {
            return;
        }
        let mut total_occupancy = 0u64;
        let mut total_lag = 0u64;
        for (shard, lane) in layout.iter() {
            let mut occupancy = 0u64;
            let mut lag = 0u64;
            for &gid in &lane.groups {
                let g = self.fabric.group(gid);
                if let Some(jid) = g.primary_jnl {
                    occupancy += self.fabric.journal(jid).used_bytes();
                }
                for &pid in &g.pairs {
                    let p = self.fabric.pair(pid);
                    lag += p.acked_writes.saturating_sub(p.applied_writes);
                }
            }
            self.metrics
                .sample_shard(names::SHARD_JOURNAL_OCCUPANCY, shard, now, occupancy as f64);
            self.metrics
                .sample_shard(names::SHARD_APPLY_LAG, shard, now, lag as f64);
            total_occupancy += occupancy;
            total_lag += lag;
        }
        self.metrics.sample(names::HEALTH_RPO_LAG, now, total_lag as f64);
        self.metrics
            .sample(names::HEALTH_JOURNAL_OCCUPANCY, now, total_occupancy as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> StorageWorld {
        StorageWorld::new(7, EngineConfig::default())
    }

    #[test]
    fn two_site_setup() {
        let mut w = world();
        let main = w.add_array("vsp-main", ArrayPerf::default());
        let backup = w.add_array("vsp-backup", ArrayPerf::default());
        assert_eq!(w.array_count(), 2);
        let l = w.add_link(LinkConfig::metro());
        let r = w.add_link(LinkConfig::metro());
        let g = w.create_adc_group("cg-demo", l, r, 1 << 20);
        let p1 = w.create_volume(main, "sales-data", 64);
        let s1 = w.create_volume(backup, "sales-data-r", 64);
        let pid = w.add_pair(g, p1, s1);
        assert_eq!(w.fabric.pair_by_primary(p1), Some(pid));
        assert_eq!(
            w.array(backup).volume(s1.volume).role(),
            VolumeRole::Secondary
        );
    }

    #[test]
    fn initial_copy_clones_content() {
        let mut w = world();
        let main = w.add_array("m", ArrayPerf::default());
        let backup = w.add_array("b", ArrayPerf::default());
        let l = w.add_link(LinkConfig::metro());
        let r = w.add_link(LinkConfig::metro());
        let g = w.create_adc_group("g", l, r, 1 << 20);
        let p = w.create_volume(main, "p", 16);
        w.write_direct(p, 3, b"formatted");
        let s = w.create_volume(backup, "s", 16);
        w.add_pair(g, p, s);
        assert_eq!(&w.read_direct(s, 3).unwrap()[..9], b"formatted");
        let pair = w.fabric.pair(PairId(0));
        assert_eq!(pair.initial_hashes.len(), 1);
    }

    #[test]
    fn remove_pair_unfences_secondary() {
        let mut w = world();
        let main = w.add_array("m", ArrayPerf::default());
        let backup = w.add_array("b", ArrayPerf::default());
        let l = w.add_link(LinkConfig::metro());
        let r = w.add_link(LinkConfig::metro());
        let g = w.create_adc_group("g", l, r, 1 << 20);
        let p = w.create_volume(main, "p", 16);
        let s = w.create_volume(backup, "s", 16);
        let pid = w.add_pair(g, p, s);
        assert!(w.check_host_write(s, 0).is_err());
        w.remove_pair(pid);
        assert!(w.check_host_write(s, 0).is_ok());
        assert_eq!(w.fabric.pair_by_primary(p), None);
    }

    #[test]
    fn verify_consistency_on_fresh_pair_passes() {
        let mut w = world();
        let main = w.add_array("m", ArrayPerf::default());
        let backup = w.add_array("b", ArrayPerf::default());
        let l = w.add_link(LinkConfig::metro());
        let r = w.add_link(LinkConfig::metro());
        let g = w.create_adc_group("g", l, r, 1 << 20);
        let p = w.create_volume(main, "p", 16);
        w.write_direct(p, 0, b"base");
        let s = w.create_volume(backup, "s", 16);
        w.add_pair(g, p, s);
        let rep = w.verify_consistency(&[g]);
        assert!(rep.is_consistent(), "{rep:?}");
    }

    #[test]
    fn promote_empty_group_promotes_volumes() {
        let mut w = world();
        let main = w.add_array("m", ArrayPerf::default());
        let backup = w.add_array("b", ArrayPerf::default());
        let l = w.add_link(LinkConfig::metro());
        let r = w.add_link(LinkConfig::metro());
        let g = w.create_adc_group("g", l, r, 1 << 20);
        let p = w.create_volume(main, "p", 16);
        let s = w.create_volume(backup, "s", 16);
        w.add_pair(g, p, s);
        let applied = w.promote_group(g);
        assert_eq!(applied, 0);
        assert_eq!(
            w.array(backup).volume(s.volume).role(),
            VolumeRole::Primary
        );
        assert_eq!(w.fabric.group(g).state, GroupState::Promoted);
    }

    #[test]
    fn rpo_on_idle_groups_is_zero_loss() {
        let mut w = world();
        let main = w.add_array("m", ArrayPerf::default());
        let backup = w.add_array("b", ArrayPerf::default());
        let l = w.add_link(LinkConfig::metro());
        let r = w.add_link(LinkConfig::metro());
        let g = w.create_adc_group("g", l, r, 1 << 20);
        let p = w.create_volume(main, "p", 16);
        let s = w.create_volume(backup, "s", 16);
        w.add_pair(g, p, s);
        let rpo = w.rpo_report(&[g], SimTime::from_secs(10));
        assert_eq!(rpo.lost_writes, 0);
        assert_eq!(rpo.acked_writes, 0);
    }

    #[test]
    #[should_panic(expected = "replicate to itself")]
    fn self_pair_rejected() {
        let mut w = world();
        let main = w.add_array("m", ArrayPerf::default());
        let l = w.add_link(LinkConfig::metro());
        let r = w.add_link(LinkConfig::metro());
        let g = w.create_adc_group("g", l, r, 1 << 20);
        let p = w.create_volume(main, "p", 16);
        w.add_pair(g, p, p);
    }
}
