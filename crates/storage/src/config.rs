//! Engine-wide configuration knobs.

use serde::{Deserialize, Serialize};
use tsuru_sim::SimDuration;

/// What the primary array does when an ADC journal is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalFullPolicy {
    /// Host writes stall (retried on a short timer) until the backup site
    /// frees journal space — no data loss, but primary latency spikes.
    Block,
    /// The group suspends: subsequent writes are local-only and the backup
    /// image stops advancing (resynchronised out of band).
    Suspend,
}

/// Tunables of the replication engine and array data path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Per-entry journal metadata overhead in bytes.
    pub journal_entry_overhead: u64,
    /// Per-frame link protocol overhead in bytes.
    pub frame_overhead: u64,
    /// Size of an applied-acknowledgement frame (backup → main).
    pub ack_frame_bytes: u64,
    /// Base interval between transfer-pump cycles of a group.
    pub pump_interval: SimDuration,
    /// Maximum extra random delay added to each pump cycle (models
    /// independent replication sessions drifting apart; key source of
    /// cross-group skew in the naive per-volume configuration).
    pub pump_jitter: SimDuration,
    /// Maximum journal entries shipped per transfer frame.
    pub batch_max_entries: usize,
    /// Maximum payload bytes shipped per transfer frame.
    pub batch_max_bytes: u64,
    /// Send an applied-ack to the main site every N applied entries (an ack
    /// is always sent when the remote journal drains).
    pub applied_ack_every: u64,
    /// Behaviour when the primary journal fills.
    pub journal_full_policy: JournalFullPolicy,
    /// Retry interval for host writes stalled on a full journal.
    pub journal_stall_retry: SimDuration,
    /// Retry interval after a lost frame.
    pub loss_retry: SimDuration,
    /// Transfer-pump flow control: no new frame is offered while the link's
    /// sender-side serialization backlog exceeds this (bounds the data that
    /// can be "in flight" — and hence survive — when the main site dies).
    pub max_link_backlog: SimDuration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            journal_entry_overhead: 64,
            frame_overhead: 64,
            ack_frame_bytes: 64,
            pump_interval: SimDuration::from_micros(500),
            pump_jitter: SimDuration::from_micros(400),
            batch_max_entries: 64,
            batch_max_bytes: 1 << 20,
            applied_ack_every: 16,
            journal_full_policy: JournalFullPolicy::Block,
            journal_stall_retry: SimDuration::from_micros(200),
            loss_retry: SimDuration::from_millis(1),
            max_link_backlog: SimDuration::from_millis(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.batch_max_entries > 0);
        assert!(c.batch_max_bytes >= 4096);
        assert!(c.applied_ack_every > 0);
        assert_eq!(c.journal_full_policy, JournalFullPolicy::Block);
        assert!(!c.pump_interval.is_zero());
    }

    #[test]
    fn policies_compare() {
        assert_ne!(JournalFullPolicy::Block, JournalFullPolicy::Suspend);
    }
}
