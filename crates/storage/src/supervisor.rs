//! The self-healing replication supervisor.
//!
//! Real arrays do not wait for an operator after a fault: firmware watches
//! every consistency group and drives it back to PAIR on its own. This
//! module is that firmware, built as a deterministic control loop on the
//! sim kernel: a periodic probe ([`tick`]) observes group health (suspend
//! reasons, array state, link state, journal debt, pump progress) and
//! walks a staged recovery state machine per group:
//!
//! ```text
//!            suspension observed
//!  Healthy ──────────────────────▶ BackingOff(attempt)
//!     ▲                                  │ backoff elapsed & unblocked
//!     │ stage timeout survived           ▼
//!     └───────────────────────────  Recovering(attempt)
//!                                        │ re-suspended
//!                  attempt > N ◀─────────┘
//!                      │                 │ attempt ≤ N
//!                      ▼                 ▼
//!                   Parked          BackingOff(attempt+1)
//!
//!  Healthy ──primary array dead──▶ PrimaryDown ──grace──▶ FailedOver
//!  FailedOver ──site repaired──▶ FailingBack ──caught up──▶ Healthy
//! ```
//!
//! Recovery decisions are *jittered but seeded*: the backoff delays draw
//! from a `DetRng` stream derived from the world seed, so two groups that
//! suspend at the same instant do not retry-storm in lockstep, yet every
//! trial replays byte-identically at any harness thread count.
//!
//! Degradation ladder: a suspension is first healed with a **delta**
//! resync (dirty bitmap + stranded journal entries); once the accumulated
//! debt exceeds [`SupervisorPolicy::full_resync_debt_bytes`] the
//! supervisor degrades to a **full initial copy** (recopying a bounded
//! working set would be slower than restarting). After
//! [`SupervisorPolicy::max_attempts`] failed attempts the circuit breaker
//! **parks** the group and raises a telemetry alarm instead of retrying
//! forever.

use std::collections::BTreeMap;

use tsuru_sim::{DetRng, Sim, SimDuration, SimTime};
use tsuru_telemetry::{names, spans, SpanId};

use crate::block::{GroupId, BLOCK_SIZE};
use crate::engine::{kick_apply, kick_transfer};
use crate::fabric::{GroupMode, GroupState, SuspendReason};
use crate::event::StorageEvents;
use crate::world::HasStorage;

/// Tunables of the recovery state machine. The defaults are sized for the
/// chaos rig's 150 ms horizons (probe every 2 ms, heal within ~35 ms worst
/// case); experiments sweep alternatives (see `tsuru-chaos`'s E10).
#[derive(Debug, Clone)]
pub struct SupervisorPolicy {
    /// Health-probe period (the `SupervisorTick` cadence).
    pub probe_interval: SimDuration,
    /// First-attempt backoff delay.
    pub backoff_base: SimDuration,
    /// Exponential growth factor between attempts.
    pub backoff_factor: u32,
    /// Backoff ceiling.
    pub backoff_max: SimDuration,
    /// Uniform jitter added to every backoff delay (seeded stream).
    pub backoff_jitter: SimDuration,
    /// How long a resynced group must stay `Active` before the attempt
    /// counts as a heal (and how long the supervisor waits before judging
    /// the attempt).
    pub stage_timeout: SimDuration,
    /// Degradation threshold: once journal debt plus the dirty working
    /// set exceeds this many bytes, resync with a full initial copy
    /// instead of a delta.
    pub full_resync_debt_bytes: u64,
    /// Circuit breaker: park the group after this many failed attempts.
    pub max_attempts: u32,
    /// Promote a group whose primary arrays died (disaster takeover).
    /// Off by default: promotion makes the backup image writable, which
    /// most experiments want to drive explicitly.
    pub auto_failover: bool,
    /// How long a primary must stay dead before auto-failover promotes.
    pub failover_grace: SimDuration,
    /// After an auto-failover, re-protect in the reverse direction once
    /// the failed site recovers, and return home once caught up.
    pub auto_failback: bool,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            probe_interval: SimDuration::from_millis(2),
            backoff_base: SimDuration::from_millis(1),
            backoff_factor: 2,
            backoff_max: SimDuration::from_millis(8),
            backoff_jitter: SimDuration::from_micros(250),
            stage_timeout: SimDuration::from_millis(5),
            full_resync_debt_bytes: 1 << 20,
            max_attempts: 4,
            auto_failover: false,
            failover_grace: SimDuration::from_millis(10),
            auto_failback: false,
        }
    }
}

/// Where one group currently sits in the recovery state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStage {
    /// Replicating normally; nothing to do.
    Healthy,
    /// The group's primary array is dead; business writes are failing.
    PrimaryDown {
        /// When the supervisor first observed the dead primary.
        since: SimTime,
    },
    /// Waiting out a backoff delay before resync attempt `attempt`.
    BackingOff {
        /// 1-based attempt number.
        attempt: u32,
        /// When the underlying suspension began (time-to-heal anchor).
        since: SimTime,
        /// Earliest instant the attempt may run.
        until: SimTime,
    },
    /// A resync ran; the group must survive until `deadline` to count as
    /// healed.
    Recovering {
        /// 1-based attempt number.
        attempt: u32,
        /// When the underlying suspension began.
        since: SimTime,
        /// Instant at which a still-`Active` group counts as healed.
        deadline: SimTime,
    },
    /// The group was promoted at the backup site (disaster takeover).
    FailedOver {
        /// Promotion instant.
        at: SimTime,
    },
    /// Reverse protection is running; waiting for it to catch up before
    /// returning home.
    FailingBack {
        /// The reverse-direction group established for failback.
        reverse: GroupId,
    },
    /// Circuit breaker open: recovery abandoned after repeated failures;
    /// an operator (or the experiment) must intervene.
    Parked {
        /// Attempts consumed before parking.
        attempts: u32,
    },
}

impl RecoveryStage {
    /// Short stable label for summaries and incident bundles.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryStage::Healthy => "healthy",
            RecoveryStage::PrimaryDown { .. } => "primary-down",
            RecoveryStage::BackingOff { .. } => "backing-off",
            RecoveryStage::Recovering { .. } => "recovering",
            RecoveryStage::FailedOver { .. } => "failed-over",
            RecoveryStage::FailingBack { .. } => "failing-back",
            RecoveryStage::Parked { .. } => "parked",
        }
    }
}

/// Monotonic counters describing everything the supervisor did. These are
/// plain state (not registry metrics) so reports can read them even in
/// untraced trials where time-series sampling is off.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Probe passes executed.
    pub probes: u64,
    /// Resync attempts issued (delta + full).
    pub attempts: u64,
    /// Attempts that used a delta resync.
    pub delta_resyncs: u64,
    /// Attempts degraded to a full initial copy.
    pub full_resyncs: u64,
    /// Suspensions the supervisor itself issued (dead secondary array).
    pub suspends_issued: u64,
    /// Parked transfer/apply pumps restarted.
    pub pump_kicks: u64,
    /// Groups that completed recovery (stage timeout survived).
    pub heals: u64,
    /// Automatic failovers executed.
    pub failovers: u64,
    /// Automatic failbacks completed.
    pub failbacks: u64,
    /// Groups parked by the circuit breaker.
    pub circuit_broken: u64,
    /// Sum of suspension→healed durations across heals.
    pub time_to_heal_total: SimDuration,
    /// Worst suspension→healed duration.
    pub time_to_heal_max: SimDuration,
}

/// The supervisor: per-group recovery stages plus a seeded jitter stream.
/// Owned by the [`crate::StorageWorld`]; driven by [`tick`].
#[derive(Debug)]
pub struct Supervisor {
    policy: SupervisorPolicy,
    stages: BTreeMap<GroupId, RecoveryStage>,
    rng: DetRng,
    stats: SupervisorStats,
}

impl Supervisor {
    /// A supervisor with the given policy and jitter stream.
    pub fn new(policy: SupervisorPolicy, rng: DetRng) -> Self {
        Supervisor {
            policy,
            stages: BTreeMap::new(),
            rng,
            stats: SupervisorStats::default(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &SupervisorPolicy {
        &self.policy
    }

    /// Action counters.
    pub fn stats(&self) -> &SupervisorStats {
        &self.stats
    }

    /// The group's current recovery stage (`Healthy` if never touched).
    pub fn stage(&self, gid: GroupId) -> RecoveryStage {
        self.stages
            .get(&gid)
            .copied()
            .unwrap_or(RecoveryStage::Healthy)
    }

    /// Is the group's circuit breaker open?
    pub fn is_parked(&self, gid: GroupId) -> bool {
        matches!(self.stage(gid), RecoveryStage::Parked { .. })
    }

    /// Groups parked by the circuit breaker, in id order.
    pub fn parked_groups(&self) -> Vec<GroupId> {
        self.stages
            .iter()
            .filter(|(_, s)| matches!(s, RecoveryStage::Parked { .. }))
            .map(|(&g, _)| g)
            .collect()
    }

    fn set_stage(&mut self, gid: GroupId, stage: RecoveryStage) {
        self.stages.insert(gid, stage);
    }

    /// The jittered exponential backoff delay before `attempt` (1-based):
    /// `min(base·factor^(attempt-1), max) + U[0, jitter]` from the seeded
    /// stream.
    fn backoff_delay(&mut self, attempt: u32) -> SimDuration {
        let base = self.policy.backoff_base.as_nanos();
        let exp = u64::from(self.policy.backoff_factor)
            .saturating_pow(attempt.saturating_sub(1))
            .max(1);
        let raw = base
            .saturating_mul(exp)
            .min(self.policy.backoff_max.as_nanos());
        let jitter = self.policy.backoff_jitter.as_nanos();
        let jittered = if jitter == 0 {
            0
        } else {
            self.rng.gen_range(jitter + 1)
        };
        SimDuration::from_nanos(raw + jittered)
    }

    /// Enter backoff before `attempt`, or park if the attempt budget is
    /// exhausted. The sampled backoff wait lands in the
    /// `supervisor.backoff_wait_ns` histogram of `metrics`. Returns the
    /// alarm payload when parking (the caller owns the tracer).
    fn begin_backoff(
        &mut self,
        gid: GroupId,
        attempt: u32,
        since: SimTime,
        now: SimTime,
        metrics: &mut tsuru_telemetry::MetricsRegistry,
    ) -> bool {
        if attempt > self.policy.max_attempts {
            self.set_stage(gid, RecoveryStage::Parked { attempts: attempt - 1 });
            self.stats.circuit_broken += 1;
            return true;
        }
        let delay = self.backoff_delay(attempt);
        metrics.record(names::SUPERVISOR_BACKOFF_WAIT, delay.as_nanos());
        self.set_stage(
            gid,
            RecoveryStage::BackingOff {
                attempt,
                since,
                until: now + delay,
            },
        );
        false
    }

    fn record_heal(&mut self, healed_in: SimDuration) {
        self.stats.heals += 1;
        self.stats.time_to_heal_total = self.stats.time_to_heal_total + healed_in;
        self.stats.time_to_heal_max = self.stats.time_to_heal_max.max(healed_in);
    }
}

/// Can a resync run right now, or would it be wasted effort? Blocked while
/// the data link is down or any member array is failed — waiting does not
/// consume a recovery attempt.
fn recovery_blocked(st: &crate::StorageWorld, gid: GroupId, now: SimTime) -> bool {
    let g = st.fabric.group(gid);
    if !st.net.link(g.link).is_up(now) {
        return true;
    }
    g.pairs.iter().any(|&pid| {
        let p = st.fabric.pair(pid);
        st.array(p.primary.array).is_failed() || st.array(p.secondary.array).is_failed()
    })
}

/// Journal debt of a group: retained primary-journal bytes plus the dirty
/// working set accumulated while suspended. Drives the delta→full
/// degradation decision.
fn journal_debt(st: &crate::StorageWorld, gid: GroupId) -> u64 {
    let g = st.fabric.group(gid);
    let mut debt = g
        .primary_jnl
        .map(|jid| st.fabric.journal(jid).used_bytes())
        .unwrap_or(0);
    for &pid in &g.pairs {
        let dirty = st.fabric.pair(pid).dirty_since_suspend.len() as u64;
        debt += dirty * BLOCK_SIZE as u64;
    }
    debt
}

/// Per-pair array health: (any primary array failed, any secondary array
/// failed).
fn array_health(st: &crate::StorageWorld, gid: GroupId) -> (bool, bool) {
    let g = st.fabric.group(gid);
    let mut primary = false;
    let mut secondary = false;
    for &pid in &g.pairs {
        let p = st.fabric.pair(pid);
        primary |= st.array(p.primary.array).is_failed();
        secondary |= st.array(p.secondary.array).is_failed();
    }
    (primary, secondary)
}

/// Restart pumps that parked with work pending: a transfer pump with
/// unsent journal entries and the link up, or an apply pump with arrived
/// entries. Returns true if anything was kicked.
fn maybe_kick<S, E>(state: &mut S, sim: &mut Sim<S, E>, gid: GroupId, now: SimTime) -> bool
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let (kick_t, kick_a) = {
        let st = state.storage();
        let g = st.fabric.group(gid);
        if g.mode != GroupMode::Adc || !g.is_active() {
            return false;
        }
        // A pump kicked while either side's array is failed parks again
        // on its first cycle; wait for recovery instead of churning.
        let (primary_failed, secondary_failed) = {
            let mut p = false;
            let mut s = false;
            for &pid in &g.pairs {
                let pair = st.fabric.pair(pid);
                p |= st.array(pair.primary.array).is_failed();
                s |= st.array(pair.secondary.array).is_failed();
            }
            (p, s)
        };
        if primary_failed || secondary_failed {
            return false;
        }
        let kick_t = !g.pump_scheduled
            && st.net.link(g.link).is_up(now)
            && g.primary_jnl
                .map(|jid| !st.fabric.journal(jid).peek_unsent(1, u64::MAX).is_empty())
                .unwrap_or(false);
        let kick_a = !g.apply_scheduled
            && g.secondary_jnl
                .map(|jid| !st.fabric.journal(jid).is_empty())
                .unwrap_or(false);
        (kick_t, kick_a)
    };
    if kick_t {
        kick_transfer(state, sim, gid, Some(SimDuration::ZERO));
    }
    if kick_a {
        kick_apply(state, sim, gid, None);
    }
    kick_t || kick_a
}

/// Emit the circuit-breaker alarm for a freshly parked group.
fn raise_park_alarm<S: HasStorage>(state: &mut S, gid: GroupId, attempts: u32, now: SimTime) {
    let st = state.storage_mut();
    st.tracer
        .instant(spans::SUPERVISOR_ALARM, now, SpanId::NONE, || {
            vec![
                ("group", (gid.0 as u64).into()),
                ("attempts", u64::from(attempts).into()),
            ]
        });
}

/// Run one resync attempt: pick delta vs full from the journal debt,
/// resync, restart the pumps and move to `Recovering`.
fn attempt_resync<S, E>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    sv: &mut Supervisor,
    gid: GroupId,
    attempt: u32,
    since: SimTime,
    now: SimTime,
) where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let force_full = journal_debt(state.storage(), gid) > sv.policy.full_resync_debt_bytes;
    let report = state.storage_mut().resync_group_with(gid, force_full);
    sv.stats.attempts += 1;
    if report.delta {
        sv.stats.delta_resyncs += 1;
    } else {
        sv.stats.full_resyncs += 1;
    }
    state.storage_mut().metrics.inc(names::SUPERVISOR_ATTEMPTS);
    kick_transfer(state, sim, gid, Some(SimDuration::ZERO));
    kick_apply(state, sim, gid, None);
    sv.set_stage(
        gid,
        RecoveryStage::Recovering {
            attempt,
            since,
            deadline: now + sv.policy.stage_timeout,
        },
    );
}

/// After an auto-failover, establish reverse protection as soon as the
/// failed site's arrays are back.
fn try_begin_failback<S, E>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    sv: &mut Supervisor,
    gid: GroupId,
) where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let (ready, link, reverse, cap) = {
        let st = state.storage();
        let g = st.fabric.group(gid);
        if g.pairs.is_empty() {
            return;
        }
        let ready = g
            .pairs
            .iter()
            .all(|&pid| !st.array(st.fabric.pair(pid).primary.array).is_failed());
        let cap = g
            .primary_jnl
            .map(|jid| st.fabric.journal(jid).capacity_bytes())
            .unwrap_or(1 << 20);
        // Data now flows backup→main: the link roles swap.
        (ready, g.reverse, g.link, cap)
    };
    if !ready {
        return;
    }
    let new_gid = state
        .storage_mut()
        .establish_reverse_group(gid, link, reverse, cap);
    sv.set_stage(gid, RecoveryStage::FailingBack { reverse: new_gid });
    sv.set_stage(new_gid, RecoveryStage::Healthy);
    kick_transfer(state, sim, new_gid, Some(SimDuration::ZERO));
}

/// Complete the failback once the reverse group caught up: promote it
/// home and re-establish the original forward protection.
fn try_complete_failback<S, E>(
    state: &mut S,
    sim: &mut Sim<S, E>,
    sv: &mut Supervisor,
    gid: GroupId,
    reverse: GroupId,
) where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let (caught_up, cap) = {
        let st = state.storage();
        let rg = st.fabric.group(reverse);
        let drained = [rg.primary_jnl, rg.secondary_jnl]
            .into_iter()
            .flatten()
            .all(|jid| st.fabric.journal(jid).is_empty());
        let applied = rg.pairs.iter().all(|&pid| {
            let p = st.fabric.pair(pid);
            p.acked_writes == p.applied_writes
        });
        let cap = rg
            .primary_jnl
            .map(|jid| st.fabric.journal(jid).capacity_bytes())
            .unwrap_or(1 << 20);
        (rg.is_active() && !rg.pairs.is_empty() && drained && applied, cap)
    };
    if !caught_up {
        return;
    }
    let fwd = state.storage_mut().complete_failback(reverse, cap);
    sv.stats.failbacks += 1;
    sv.set_stage(gid, RecoveryStage::Healthy);
    sv.set_stage(reverse, RecoveryStage::Healthy);
    sv.set_stage(fwd, RecoveryStage::Healthy);
    kick_transfer(state, sim, fwd, Some(SimDuration::ZERO));
}

fn step_group<S, E>(state: &mut S, sim: &mut Sim<S, E>, sv: &mut Supervisor, gid: GroupId)
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let now = sim.now();
    let stage = sv.stage(gid);
    // Terminal / cross-group stages first: they outlive the group's own
    // pair list (failback detaches pairs from the promoted husk).
    match stage {
        RecoveryStage::Parked { .. } => return,
        RecoveryStage::FailingBack { reverse } => {
            try_complete_failback(state, sim, sv, gid, reverse);
            return;
        }
        _ => {}
    }
    let (has_pairs, gstate) = {
        let g = state.storage().fabric.group(gid);
        (!g.pairs.is_empty(), g.state)
    };
    if !has_pairs {
        // Detached husk (old direction of a completed failback): nothing
        // left to supervise.
        sv.set_stage(gid, RecoveryStage::Healthy);
        return;
    }
    match gstate {
        GroupState::Promoted => match stage {
            RecoveryStage::FailedOver { .. } => {
                if sv.policy.auto_failback {
                    try_begin_failback(state, sim, sv, gid);
                }
            }
            // Promoted by someone else (experiment code): adopt the state
            // so auto-failback can still take over.
            _ => sv.set_stage(gid, RecoveryStage::FailedOver { at: now }),
        },
        GroupState::Suspended { since, .. } => match stage {
            RecoveryStage::BackingOff { attempt, since, until } => {
                if now < until {
                    return;
                }
                if recovery_blocked(state.storage(), gid, now) {
                    // Blocked attempts are free: re-check next probe
                    // without consuming the attempt budget.
                    sv.set_stage(
                        gid,
                        RecoveryStage::BackingOff {
                            attempt,
                            since,
                            until: now + sv.policy.probe_interval,
                        },
                    );
                    return;
                }
                attempt_resync(state, sim, sv, gid, attempt, since, now);
            }
            RecoveryStage::Recovering { attempt, since, .. } => {
                // Re-suspended mid-recovery: the attempt failed.
                if sv.begin_backoff(gid, attempt + 1, since, now, &mut state.storage_mut().metrics)
                {
                    raise_park_alarm(state, gid, attempt, now);
                }
            }
            _ => {
                // Fresh suspension: enter the ladder at attempt 1,
                // anchored at the suspension instant.
                if sv.begin_backoff(gid, 1, since, now, &mut state.storage_mut().metrics) {
                    raise_park_alarm(state, gid, 0, now);
                }
            }
        },
        GroupState::Active => match stage {
            RecoveryStage::Recovering { attempt, since, deadline } => {
                if now >= deadline {
                    let healed_in = now.saturating_since(since);
                    sv.record_heal(healed_in);
                    sv.set_stage(gid, RecoveryStage::Healthy);
                    let st = state.storage_mut();
                    st.metrics.sample(
                        names::SUPERVISOR_TIME_TO_HEAL,
                        now,
                        healed_in.as_nanos() as f64,
                    );
                    st.metrics
                        .record(names::SUPERVISOR_RECOVERY_STAGE, healed_in.as_nanos());
                    st.tracer
                        .span_complete(spans::RECOVERY, since, now, SpanId::NONE, || {
                            vec![
                                ("group", (gid.0 as u64).into()),
                                ("attempts", u64::from(attempt).into()),
                            ]
                        });
                } else if maybe_kick(state, sim, gid, now) {
                    sv.stats.pump_kicks += 1;
                }
            }
            RecoveryStage::PrimaryDown { since } => {
                let (primary_failed, _) = array_health(state.storage(), gid);
                if !primary_failed {
                    // The site came back before the grace ran out; the
                    // business resumes against the original primary.
                    sv.set_stage(gid, RecoveryStage::Healthy);
                } else if sv.policy.auto_failover && now >= since + sv.policy.failover_grace {
                    state.storage_mut().promote_group(gid);
                    sv.stats.failovers += 1;
                    sv.set_stage(gid, RecoveryStage::FailedOver { at: now });
                    let st = state.storage_mut();
                    st.tracer.instant(spans::RECOVERY, now, SpanId::NONE, || {
                        vec![("group", (gid.0 as u64).into()), ("action", "failover".into())]
                    });
                }
            }
            _ => {
                let (primary_failed, secondary_failed) = array_health(state.storage(), gid);
                if secondary_failed {
                    // The backup site died while the group stayed Active:
                    // in-flight frames are being discarded, so suspend
                    // (starting dirty tracking) and heal by resync once
                    // the array is back.
                    state
                        .storage_mut()
                        .fabric
                        .group_mut(gid)
                        .suspend(now, SuspendReason::Operator);
                    sv.stats.suspends_issued += 1;
                    if sv.begin_backoff(gid, 1, now, now, &mut state.storage_mut().metrics) {
                        raise_park_alarm(state, gid, 0, now);
                    }
                } else if primary_failed {
                    sv.set_stage(gid, RecoveryStage::PrimaryDown { since: now });
                } else {
                    if stage != RecoveryStage::Healthy {
                        // Healed externally (operator resync) — adopt it.
                        sv.set_stage(gid, RecoveryStage::Healthy);
                    }
                    if maybe_kick(state, sim, gid, now) {
                        sv.stats.pump_kicks += 1;
                    }
                }
            }
        },
    }
}

/// One supervisor probe pass over every group. Drive this from a periodic
/// timer event (`tsuru-core`'s `ControlOp::SupervisorTick`); a pass with
/// no armed supervisor is a no-op.
pub fn tick<S, E>(state: &mut S, sim: &mut Sim<S, E>)
where
    S: HasStorage + 'static,
    E: StorageEvents<S>,
{
    let Some(mut sv) = state.storage_mut().take_supervisor() else {
        return;
    };
    sv.stats.probes += 1;
    let gids = state.storage().fabric.group_ids();
    for gid in gids {
        step_group(state, sim, &mut sv, gid);
    }
    state.storage_mut().put_supervisor(sv);
}
