//! # tsuru-storage — a two-site block-storage array simulator
//!
//! The storage substrate of the Tsuru reproduction: everything the paper's
//! Hitachi VSP G370 pair provides, built from scratch on the deterministic
//! simulation kernel:
//!
//! - volumes with per-volume FIFO service stations ([`StorageArray`]);
//! - **asynchronous data copy** through journal volumes, with transfer and
//!   apply pumps ([`engine`]);
//! - **consistency groups** — pairs sharing one journal and one sequence
//!   space ([`ReplicationFabric`]);
//! - **synchronous data copy** as the latency baseline;
//! - **copy-on-write snapshots** and atomic snapshot groups;
//! - failure injection (array/site failure, link outages) and failover;
//! - a formal **write-order-fidelity checker** ([`AckLog`]) that decides
//!   whether a backup image is a prefix-consistent cut of the primary's
//!   acknowledgement order — the property the paper's consistency groups
//!   exist to protect.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acklog;
pub mod arena;
mod array;
mod block;
mod config;
mod device;
pub mod engine;
pub mod event;
mod fabric;
pub mod hot;
mod journal;
mod pool;
pub mod shard;
mod snapshot;
mod status;
pub mod supervisor;
mod volume;
mod world;

pub use acklog::{AckEntry, AckLog, PrefixReport};
pub use arena::DenseArena;
pub use array::{ArrayPerf, StorageArray, WriteError, DEFAULT_POOL_CAPACITY};
pub use block::{
    block_from, content_hash, ArrayId, BlockBuf, GroupId, JournalId, PairId, SnapshotId, VolRef,
    VolumeId, BLOCK_SIZE,
};
pub use config::{EngineConfig, JournalFullPolicy};
pub use device::{BlockDevice, BlockDeviceMut, MemDevice, SnapshotView, VolumeView};
pub use engine::{
    heal_all_links, heal_link, host_read, host_read_snapshot, host_write, kick_all_pumps, LegDone,
    WriteAck,
};
pub use event::{LegCb, ReadCb, StorageEvents, StorageOp, WriteCb};
pub use fabric::{
    Group, GroupMode, GroupState, GroupStats, Pair, ReplicationFabric, SuspendReason,
};
pub use journal::{Journal, JournalEntry};
pub use pool::{Pool, PoolId};
pub use shard::{ShardLane, ShardLayout};
pub use status::{group_status, render_pool_status, render_replication_status, GroupStatus};
pub use snapshot::Snapshot;
pub use supervisor::{RecoveryStage, Supervisor, SupervisorPolicy, SupervisorStats};
pub use volume::{Volume, VolumeRole};
pub use world::{ConsistencyReport, HasStorage, RpoReport, StorageWorld};

// The observability layer this crate reports through, re-exported so
// downstream crates read metrics/spans without naming tsuru-telemetry.
pub use tsuru_telemetry::names as metric_names;
pub use tsuru_telemetry::spans as span_names;
pub use tsuru_telemetry::{
    AlertEngine, AlertProfile, FaultRef, Incident, IncidentLog, MetricsRegistry, RecordKind,
    SpanId, TraceRecord, Tracer,
};
