//! The replication fabric: pairs, groups and their journals.
//!
//! A *pair* links one primary volume to one secondary volume. A *group*
//! (the consistency-group unit) is a set of pairs that share one journal,
//! one replication link and one sequence-number space — which is exactly
//! what guarantees that the backup site applies updates in primary ack
//! order across all member volumes. The paper's "naive" configuration,
//! where backups of a multi-volume application can collapse, corresponds
//! to putting each volume in its own single-pair group.

use std::collections::BTreeMap;

use tsuru_sim::{DetRng, SimTime};
use tsuru_simnet::LinkId;

use crate::block::{GroupId, JournalId, PairId, VolRef};
use crate::hot::PrimaryIndex;
use crate::journal::Journal;

/// Replication mode of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupMode {
    /// Asynchronous data copy through journals.
    Adc,
    /// Synchronous data copy: host ack only after the backup site persists.
    Sdc,
}

/// Why a group left the `Active` state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspendReason {
    /// The primary journal filled and policy is `Suspend`.
    JournalFull,
    /// A replication leg observed a dead link or a lost acknowledgement.
    /// SDC legs suspend with this reason on any link failure; ADC groups
    /// ride out data-link outages while staying `Active` (the transfer
    /// pump parks and resumes on heal), so for ADC this reason only
    /// appears via reverse-path acknowledgement loss handling.
    LinkDown,
    /// An operator suspended the group.
    Operator,
}

/// Lifecycle state of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupState {
    /// Replicating normally.
    Active,
    /// Replication stopped; primary writes continue locally.
    Suspended {
        /// When the suspension happened.
        since: SimTime,
        /// What caused it.
        reason: SuspendReason,
    },
    /// Failover executed; secondaries are promoted and writable.
    Promoted,
}

impl GroupState {
    /// Is `next` a legal successor of `self` in the group lifecycle?
    ///
    /// Observations are coarse (an auditor samples states, it does not see
    /// every internal step), so staying in the same variant is always
    /// legal. `Promoted` is terminal: once a failover has promoted the
    /// secondaries, a group can never silently return to replication —
    /// re-protection requires tearing the group down and resyncing.
    pub fn can_transition_to(self, next: GroupState) -> bool {
        match (self, next) {
            (GroupState::Promoted, GroupState::Promoted) => true,
            (GroupState::Promoted, _) => false,
            // Active ⇄ Suspended in either direction (suspend / resync),
            // and either may be promoted by a failover.
            _ => true,
        }
    }

    /// Assert that `self → next` is a legal transition (auditor helper).
    #[track_caller]
    pub fn assert_transition(self, next: GroupState) {
        assert!(
            self.can_transition_to(next),
            "illegal group state transition {self:?} -> {next:?}"
        );
    }
}

/// One primary→secondary volume relationship.
#[derive(Debug)]
pub struct Pair {
    /// Pair id.
    pub id: PairId,
    /// Owning group.
    pub group: GroupId,
    /// Source volume at the main site.
    pub primary: VolRef,
    /// Target volume at the backup site.
    pub secondary: VolRef,
    /// Acked writes to the primary volume *before* this pair existed (the
    /// initial copy carries their effects; the write-order checker must
    /// skip them when replaying the pair's history).
    pub ack_offset: u64,
    /// Host writes acknowledged on the primary while the pair was active
    /// (i.e. journal entries created for this pair).
    pub acked_writes: u64,
    /// Journal entries applied to the secondary volume.
    pub applied_writes: u64,
    /// Content fingerprint of the primary volume at pair-creation time
    /// (the initial-copy image), for the write-order-fidelity checker.
    pub initial_hashes: BTreeMap<u64, u64>,
    /// Blocks written on the primary while the group was suspended — the
    /// delta-resync working set (mirrors array dirty bitmaps).
    pub dirty_since_suspend: std::collections::BTreeSet<u64>,
}

/// Per-group replication statistics.
#[derive(Debug, Default, Clone)]
pub struct GroupStats {
    /// Journal entries shipped to the backup site.
    pub entries_transferred: u64,
    /// Payload bytes shipped.
    pub bytes_transferred: u64,
    /// Transfer frames sent.
    pub frames_sent: u64,
    /// Entries applied at the backup site.
    pub entries_applied: u64,
    /// Host writes that found the group suspended (local-only).
    pub writes_while_suspended: u64,
    /// Host write stalls due to a full journal (Block policy).
    pub journal_stalls: u64,
    /// Times the group suspended.
    pub suspensions: u64,
}

/// A replication group (consistency group when it has > 1 pair).
#[derive(Debug)]
pub struct Group {
    /// Group id.
    pub id: GroupId,
    /// Operator-visible name.
    pub name: String,
    /// ADC or SDC.
    pub mode: GroupMode,
    /// Main-site journal (ADC only).
    pub primary_jnl: Option<JournalId>,
    /// Backup-site journal (ADC only).
    pub secondary_jnl: Option<JournalId>,
    /// Main → backup data link.
    pub link: LinkId,
    /// Backup → main acknowledgement link.
    pub reverse: LinkId,
    /// Member pairs.
    pub pairs: Vec<PairId>,
    /// Lifecycle state.
    pub state: GroupState,
    /// Transfer pump re-entrancy guard.
    pub pump_scheduled: bool,
    /// Apply pump re-entrancy guard.
    pub apply_scheduled: bool,
    /// Highest seq for which an applied-ack frame was dispatched.
    pub applied_ack_sent: u64,
    /// Replication epoch: bumped on resync/promote so that in-flight
    /// engine events from the previous epoch are discarded instead of
    /// corrupting the fresh journals.
    pub generation: u32,
    /// Per-group random stream (pump jitter).
    pub rng: DetRng,
    /// Counters.
    pub stats: GroupStats,
}

impl Group {
    /// Is the group replicating?
    pub fn is_active(&self) -> bool {
        self.state == GroupState::Active
    }

    /// Move to `Suspended` (idempotent; keeps the first reason).
    pub fn suspend(&mut self, now: SimTime, reason: SuspendReason) {
        if self.is_active() {
            self.state = GroupState::Suspended { since: now, reason };
            self.stats.suspensions += 1;
        }
    }

    /// Resume replication after an operator resync.
    pub fn resume(&mut self) {
        if matches!(self.state, GroupState::Suspended { .. }) {
            self.state = GroupState::Active;
        }
    }
}

/// Registry of groups, pairs and journals.
#[derive(Debug, Default)]
pub struct ReplicationFabric {
    groups: Vec<Group>,
    pairs: Vec<Pair>,
    journals: Vec<Journal>,
    by_primary: PrimaryIndex,
}

impl ReplicationFabric {
    /// An empty fabric.
    pub fn new() -> Self {
        ReplicationFabric::default()
    }

    // ----- registration ----------------------------------------------------

    pub(crate) fn add_journal(&mut self, capacity_bytes: u64, entry_overhead: u64) -> JournalId {
        let id = JournalId(self.journals.len() as u32);
        self.journals.push(Journal::new(id, capacity_bytes, entry_overhead));
        id
    }

    pub(crate) fn add_group(&mut self, group: Group) -> GroupId {
        let id = GroupId(self.groups.len() as u32);
        debug_assert_eq!(group.id, id);
        self.groups.push(group);
        id
    }

    pub(crate) fn next_group_id(&self) -> GroupId {
        GroupId(self.groups.len() as u32)
    }

    pub(crate) fn add_pair(&mut self, pair: Pair) -> PairId {
        let id = PairId(self.pairs.len() as u32);
        debug_assert_eq!(pair.id, id);
        assert!(
            self.by_primary
                .legs(pair.primary)
                .iter()
                .all(|&p| self.pair(p).secondary != pair.secondary),
            "volume {} already replicates to {}",
            pair.primary,
            pair.secondary
        );
        self.by_primary.attach(pair.primary, id);
        self.group_mut(pair.group).pairs.push(id);
        self.pairs.push(pair);
        id
    }

    pub(crate) fn next_pair_id(&self) -> PairId {
        PairId(self.pairs.len() as u32)
    }

    /// Remove a pair from replication (operator teardown). The pair record
    /// is retained for statistics but no longer matches host writes.
    pub fn detach_pair(&mut self, id: PairId) {
        let (primary, gid) = {
            let p = self.pair(id);
            (p.primary, p.group)
        };
        self.by_primary.detach(primary, id);
        self.group_mut(gid).pairs.retain(|&p| p != id);
    }

    // ----- lookups ----------------------------------------------------------

    /// The first pair whose primary volume is `vol`, if any (convenience
    /// for single-target deployments).
    pub fn pair_by_primary(&self, vol: VolRef) -> Option<PairId> {
        self.by_primary.legs(vol).first().copied()
    }

    /// Every replication leg whose primary volume is `vol` (multi-target
    /// topologies: e.g. metro SDC plus WAN ADC from the same volume).
    pub fn pairs_by_primary(&self, vol: VolRef) -> &[PairId] {
        self.by_primary.legs(vol)
    }

    /// Borrow a pair.
    pub fn pair(&self, id: PairId) -> &Pair {
        self.pairs.get(id.0 as usize).expect("invariant: PairId is only minted by register_pair")
    }

    /// Mutably borrow a pair.
    pub fn pair_mut(&mut self, id: PairId) -> &mut Pair {
        self.pairs.get_mut(id.0 as usize).expect("invariant: PairId is only minted by register_pair")
    }

    /// Borrow a group.
    pub fn group(&self, id: GroupId) -> &Group {
        self.groups.get(id.0 as usize).expect("invariant: GroupId is only minted by register_group")
    }

    /// Mutably borrow a group.
    pub fn group_mut(&mut self, id: GroupId) -> &mut Group {
        self.groups.get_mut(id.0 as usize).expect("invariant: GroupId is only minted by register_group")
    }

    /// Borrow a journal.
    pub fn journal(&self, id: JournalId) -> &Journal {
        self.journals.get(id.0 as usize).expect("invariant: JournalId is only minted by register_journal")
    }

    /// Mutably borrow a journal.
    pub fn journal_mut(&mut self, id: JournalId) -> &mut Journal {
        self.journals.get_mut(id.0 as usize).expect("invariant: JournalId is only minted by register_journal")
    }

    /// All group ids.
    pub fn group_ids(&self) -> Vec<GroupId> {
        (0..self.groups.len() as u32).map(GroupId).collect()
    }

    /// All pair ids.
    pub fn pair_ids(&self) -> Vec<PairId> {
        (0..self.pairs.len() as u32).map(PairId).collect()
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{ArrayId, VolumeId};

    fn volref(a: u32, v: u64) -> VolRef {
        VolRef::new(ArrayId(a), VolumeId(v))
    }

    #[test]
    fn group_state_transition_legality() {
        let susp = GroupState::Suspended {
            since: SimTime::ZERO,
            reason: SuspendReason::Operator,
        };
        assert!(GroupState::Active.can_transition_to(susp));
        assert!(susp.can_transition_to(GroupState::Active));
        assert!(GroupState::Active.can_transition_to(GroupState::Promoted));
        assert!(susp.can_transition_to(GroupState::Promoted));
        assert!(GroupState::Promoted.can_transition_to(GroupState::Promoted));
        assert!(!GroupState::Promoted.can_transition_to(GroupState::Active));
        assert!(!GroupState::Promoted.can_transition_to(susp));
        GroupState::Active.assert_transition(susp);
    }

    #[test]
    #[should_panic(expected = "illegal group state transition")]
    fn promoted_group_cannot_reactivate() {
        GroupState::Promoted.assert_transition(GroupState::Active);
    }

    fn make_group(fabric: &mut ReplicationFabric, mode: GroupMode) -> GroupId {
        let pj = fabric.add_journal(1 << 20, 64);
        let sj = fabric.add_journal(1 << 20, 64);
        let id = fabric.next_group_id();
        fabric.add_group(Group {
            id,
            name: format!("g{}", id.0),
            mode,
            primary_jnl: Some(pj),
            secondary_jnl: Some(sj),
            link: LinkId(0),
            reverse: LinkId(1),
            pairs: Vec::new(),
            state: GroupState::Active,
            pump_scheduled: false,
            apply_scheduled: false,
            applied_ack_sent: 0,
            generation: 0,
            rng: DetRng::new(1),
            stats: GroupStats::default(),
        })
    }

    fn make_pair(fabric: &mut ReplicationFabric, g: GroupId, p: VolRef, s: VolRef) -> PairId {
        let id = fabric.next_pair_id();
        fabric.add_pair(Pair {
            id,
            group: g,
            primary: p,
            secondary: s,
            ack_offset: 0,
            acked_writes: 0,
            applied_writes: 0,
            initial_hashes: BTreeMap::new(),
            dirty_since_suspend: std::collections::BTreeSet::new(),
        })
    }

    #[test]
    fn pair_lookup_by_primary() {
        let mut f = ReplicationFabric::new();
        let g = make_group(&mut f, GroupMode::Adc);
        let pid = make_pair(&mut f, g, volref(0, 1), volref(1, 1));
        assert_eq!(f.pair_by_primary(volref(0, 1)), Some(pid));
        assert_eq!(f.pair_by_primary(volref(0, 2)), None);
        assert_eq!(f.group(g).pairs, vec![pid]);
    }

    #[test]
    #[should_panic(expected = "already replicates to")]
    fn duplicate_leg_rejected() {
        let mut f = ReplicationFabric::new();
        let g = make_group(&mut f, GroupMode::Adc);
        make_pair(&mut f, g, volref(0, 1), volref(1, 1));
        make_pair(&mut f, g, volref(0, 1), volref(1, 1));
    }

    #[test]
    fn multi_target_legs_share_a_primary() {
        let mut f = ReplicationFabric::new();
        let g = make_group(&mut f, GroupMode::Adc);
        let a = make_pair(&mut f, g, volref(0, 1), volref(1, 1));
        let b = make_pair(&mut f, g, volref(0, 1), volref(2, 1));
        assert_eq!(f.pairs_by_primary(volref(0, 1)), &[a, b]);
        assert_eq!(f.pair_by_primary(volref(0, 1)), Some(a));
        f.detach_pair(a);
        assert_eq!(f.pairs_by_primary(volref(0, 1)), &[b]);
        f.detach_pair(b);
        assert!(f.pairs_by_primary(volref(0, 1)).is_empty());
        assert_eq!(f.pair_by_primary(volref(0, 1)), None);
    }

    #[test]
    fn detach_removes_lookup_but_keeps_record() {
        let mut f = ReplicationFabric::new();
        let g = make_group(&mut f, GroupMode::Adc);
        let pid = make_pair(&mut f, g, volref(0, 1), volref(1, 1));
        f.detach_pair(pid);
        assert_eq!(f.pair_by_primary(volref(0, 1)), None);
        assert!(f.group(g).pairs.is_empty());
        assert_eq!(f.pair(pid).primary, volref(0, 1));
    }

    #[test]
    fn suspend_resume_lifecycle() {
        let mut f = ReplicationFabric::new();
        let g = make_group(&mut f, GroupMode::Adc);
        let grp = f.group_mut(g);
        assert!(grp.is_active());
        grp.suspend(SimTime::from_secs(1), SuspendReason::JournalFull);
        assert!(!grp.is_active());
        // Second suspend keeps the first reason and doesn't double-count.
        grp.suspend(SimTime::from_secs(2), SuspendReason::Operator);
        assert_eq!(grp.stats.suspensions, 1);
        match grp.state {
            GroupState::Suspended { since, reason } => {
                assert_eq!(since, SimTime::from_secs(1));
                assert_eq!(reason, SuspendReason::JournalFull);
            }
            _ => panic!("expected suspended"),
        }
        grp.resume();
        assert!(grp.is_active());
    }

    #[test]
    fn promoted_group_does_not_resume() {
        let mut f = ReplicationFabric::new();
        let g = make_group(&mut f, GroupMode::Sdc);
        let grp = f.group_mut(g);
        grp.state = GroupState::Promoted;
        grp.resume();
        assert_eq!(grp.state, GroupState::Promoted);
    }
}
