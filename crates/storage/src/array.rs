//! The storage array: volumes, snapshots, service-time model, failure state.
//!
//! One [`StorageArray`] stands in for a Hitachi VSP G370 in the paper's
//! testbed. The control plane (volume/snapshot lifecycle) is synchronous;
//! the data plane charges service time through per-volume FIFO stations and
//! is driven by the replication engine and host-port functions in
//! [`crate::engine`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tsuru_sim::{ServiceStation, SimDuration, SimTime};


use crate::block::{ArrayId, BlockBuf, SnapshotId, VolumeId};
use crate::pool::{Pool, PoolId};
use crate::snapshot::Snapshot;
use crate::volume::{Volume, VolumeRole};

/// Capacity of the default pool: effectively unbounded, so deployments
/// that do not model capacity pressure are unaffected.
pub const DEFAULT_POOL_CAPACITY: u64 = 1 << 40;

/// Service-time profile of an array's data path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrayPerf {
    /// Cache-hit write service time (host write → ack-ready).
    pub write_service: SimDuration,
    /// Read service time.
    pub read_service: SimDuration,
    /// Applying one replicated journal entry at the secondary.
    pub apply_service: SimDuration,
    /// Extra cost of a copy-on-write block preservation.
    pub cow_penalty: SimDuration,
}

impl Default for ArrayPerf {
    fn default() -> Self {
        ArrayPerf {
            write_service: SimDuration::from_micros(100),
            read_service: SimDuration::from_micros(200),
            apply_service: SimDuration::from_micros(50),
            cow_penalty: SimDuration::from_micros(30),
        }
    }
}

/// Why a write was rejected by the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteError {
    /// The whole array is failed (site disaster).
    ArrayFailed,
    /// The volume is a replication secondary and fenced against host writes.
    VolumeFenced,
    /// The volume does not exist (deleted under I/O).
    NoSuchVolume,
    /// The volume's thin-provisioning pool has no capacity for a new block.
    PoolExhausted,
}

/// A virtualized block-storage array.
#[derive(Debug)]
pub struct StorageArray {
    id: ArrayId,
    name: String,
    perf: ArrayPerf,
    volumes: BTreeMap<VolumeId, Volume>,
    /// Active snapshots, and which base volume each belongs to.
    snapshots: BTreeMap<SnapshotId, Snapshot>,
    by_base: BTreeMap<VolumeId, Vec<SnapshotId>>,
    stations: BTreeMap<VolumeId, ServiceStation>,
    pools: Vec<Pool>,
    vol_pool: BTreeMap<VolumeId, PoolId>,
    next_volume: u64,
    next_snapshot: u64,
    next_snap_group: u64,
    failed_at: Option<SimTime>,
    cow_saves: u64,
}

impl StorageArray {
    /// A new, empty array.
    pub fn new(id: ArrayId, name: impl Into<String>, perf: ArrayPerf) -> Self {
        StorageArray {
            id,
            name: name.into(),
            perf,
            volumes: BTreeMap::new(),
            snapshots: BTreeMap::new(),
            by_base: BTreeMap::new(),
            stations: BTreeMap::new(),
            pools: vec![Pool::new(PoolId(0), "default", DEFAULT_POOL_CAPACITY)],
            vol_pool: BTreeMap::new(),
            next_volume: 0,
            next_snapshot: 0,
            next_snap_group: 0,
            failed_at: None,
            cow_saves: 0,
        }
    }

    /// Array id.
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// Array name (e.g. `vsp-main`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The service-time profile.
    pub fn perf(&self) -> &ArrayPerf {
        &self.perf
    }

    /// Change the service-time profile mid-run (models component
    /// degradation — a failing disk shelf, cache pressure).
    pub fn set_perf(&mut self, perf: ArrayPerf) {
        self.perf = perf;
    }

    /// Has this array suffered a site failure?
    pub fn is_failed(&self) -> bool {
        self.failed_at.is_some()
    }

    /// When the array failed, if it did.
    pub fn failed_at(&self) -> Option<SimTime> {
        self.failed_at
    }

    /// Mark the array failed (site disaster) as of `now`: all subsequent
    /// host and replication I/O is rejected, and replication frames that
    /// had not finished leaving the site by `now` are discarded by the
    /// receiving engine.
    pub fn fail(&mut self, now: SimTime) {
        self.failed_at.get_or_insert(now);
    }

    /// Bring a failed array back (used by recovery drills).
    pub fn recover(&mut self) {
        self.failed_at = None;
    }

    /// Total copy-on-write preservations performed (E4 metric).
    pub fn cow_saves(&self) -> u64 {
        self.cow_saves
    }

    // ----- pools -------------------------------------------------------------

    /// Create a thin-provisioning pool.
    pub fn create_pool(&mut self, name: impl Into<String>, capacity_blocks: u64) -> PoolId {
        let id = PoolId(self.pools.len() as u32);
        self.pools.push(Pool::new(id, name, capacity_blocks));
        id
    }

    /// Borrow a pool.
    pub fn pool(&self, id: PoolId) -> &Pool {
        &self.pools[id.0 as usize]
    }

    /// All pools, in id order.
    pub fn pools(&self) -> &[Pool] {
        &self.pools
    }

    /// The pool backing a volume.
    pub fn pool_of(&self, vol: VolumeId) -> PoolId {
        self.vol_pool.get(&vol).copied().unwrap_or(PoolId(0))
    }

    // ----- volume lifecycle ------------------------------------------------

    /// Create a volume of `size_blocks` blocks in the default pool.
    pub fn create_volume(&mut self, name: impl Into<String>, size_blocks: u64) -> VolumeId {
        self.create_volume_in_pool(name, size_blocks, PoolId(0))
    }

    /// Create a thin volume backed by a specific pool.
    pub fn create_volume_in_pool(
        &mut self,
        name: impl Into<String>,
        size_blocks: u64,
        pool: PoolId,
    ) -> VolumeId {
        assert!((pool.0 as usize) < self.pools.len(), "unknown pool");
        let id = VolumeId(self.next_volume);
        self.next_volume += 1;
        self.volumes.insert(id, Volume::new(id, name, size_blocks));
        self.stations.insert(id, ServiceStation::new());
        self.vol_pool.insert(id, pool);
        id
    }

    /// Delete a volume and any snapshots based on it, releasing the pool
    /// capacity both held.
    pub fn delete_volume(&mut self, id: VolumeId) {
        let pool = self.pool_of(id);
        if let Some(v) = self.volumes.remove(&id) {
            self.pools[pool.0 as usize].release(v.allocated_blocks() as u64);
        }
        self.stations.remove(&id);
        self.vol_pool.remove(&id);
        if let Some(snaps) = self.by_base.remove(&id) {
            for s in snaps {
                if let Some(snap) = self.snapshots.remove(&s) {
                    self.pools[pool.0 as usize].release(snap.saved_blocks() as u64);
                }
            }
        }
    }

    /// Borrow a volume.
    ///
    /// # Panics
    /// Panics on an unknown id; ids come from [`StorageArray::create_volume`].
    pub fn volume(&self, id: VolumeId) -> &Volume {
        self.volumes
            .get(&id)
            .expect("invariant: VolumeId is only minted by create_volume")
    }

    /// Mutably borrow a volume (control-plane use; data-plane writes must go
    /// through [`StorageArray::write_block`] for COW bookkeeping).
    pub fn volume_mut(&mut self, id: VolumeId) -> &mut Volume {
        self.volumes
            .get_mut(&id)
            .expect("invariant: VolumeId is only minted by create_volume")
    }

    /// Does the volume exist?
    pub fn has_volume(&self, id: VolumeId) -> bool {
        self.volumes.contains_key(&id)
    }

    /// Ids of all volumes, sorted.
    pub fn volume_ids(&self) -> Vec<VolumeId> {
        let mut v: Vec<_> = self.volumes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    // ----- data plane ------------------------------------------------------

    /// Admit an operation of `service` duration on `vol`'s FIFO station at
    /// `now`, returning the completion instant.
    pub fn admit(&mut self, vol: VolumeId, now: SimTime, service: SimDuration) -> SimTime {
        self.stations
            .get_mut(&vol)
            .expect("invariant: every volume gets a station at create_volume")
            .admit(now, service)
    }

    /// Validate that a host write to `vol` at `lba` is currently allowed.
    /// A write that would allocate a new thin block is refused when the
    /// backing pool is exhausted.
    pub fn check_host_write(&mut self, vol: VolumeId, lba: u64) -> Result<(), WriteError> {
        if self.is_failed() {
            return Err(WriteError::ArrayFailed);
        }
        match self.volumes.get(&vol) {
            None => Err(WriteError::NoSuchVolume),
            Some(v) if v.role() == VolumeRole::Secondary => Err(WriteError::VolumeFenced),
            Some(v) => {
                let allocates = lba < v.size_blocks() && v.read(lba).is_none();
                let pool = self.pool_of(vol);
                let p = self
                    .pools
                    .get_mut(pool.0 as usize)
                    .expect("invariant: PoolId is only minted by add_pool");
                if allocates && !p.has_room(1) {
                    p.count_rejection();
                    return Err(WriteError::PoolExhausted);
                }
                Ok(())
            }
        }
    }

    /// How many active snapshots would need a copy-on-write preservation if
    /// `lba` on `vol` were overwritten now (pre-charge for service time).
    pub fn cow_would_save(&self, vol: VolumeId, lba: u64) -> u32 {
        self.by_base
            .get(&vol)
            .map(|snaps| {
                snaps
                    .iter()
                    .filter(|sid| {
                        self.snapshots
                            .get(sid)
                            .expect("invariant: by_base ids always exist in the snapshot table")
                            .needs_preserve(lba)
                    })
                    .count() as u32
            })
            .unwrap_or(0)
    }

    /// Persist a block write, performing copy-on-write preservation for any
    /// active snapshots of the volume first. Returns how many snapshots
    /// required a COW save (each costs [`ArrayPerf::cow_penalty`]). New
    /// thin-block allocations and data-bearing COW saves charge the pool.
    pub fn write_block(&mut self, vol: VolumeId, lba: u64, data: BlockBuf) -> u32 {
        let mut cow = 0u32;
        let mut cow_with_data = 0u64;
        if let Some(snaps) = self.by_base.get(&vol) {
            if !snaps.is_empty() {
                // Preserve old content before the overwrite lands.
                let old = self
                    .volumes
                    .get(&vol)
                    .expect("invariant: VolumeId is only minted by create_volume")
                    .read(lba)
                    .cloned();
                for sid in snaps {
                    let snap = self.snapshots.get_mut(sid).expect("invariant: by_base ids always exist in the snapshot table");
                    if snap.preserve(lba, old.as_ref()) {
                        cow += 1;
                        if old.is_some() {
                            cow_with_data += 1;
                        }
                    }
                }
            }
        }
        self.cow_saves += cow as u64;
        let previous = self
            .volumes
            .get_mut(&vol)
            .expect("invariant: VolumeId is only minted by create_volume")
            .write(lba, data);
        let newly_allocated = u64::from(previous.is_none());
        let pool = self.pool_of(vol);
        self.pools
            .get_mut(pool.0 as usize)
            .expect("invariant: PoolId is only minted by add_pool")
            .force_charge(newly_allocated + cow_with_data);
        cow
    }

    /// Read a block's current content.
    pub fn read_block(&self, vol: VolumeId, lba: u64) -> Option<&BlockBuf> {
        self.volume(vol).read(lba)
    }

    // ----- snapshots -------------------------------------------------------

    /// Take a copy-on-write snapshot of one volume at `now`.
    pub fn create_snapshot(
        &mut self,
        vol: VolumeId,
        name: impl Into<String>,
        now: SimTime,
    ) -> SnapshotId {
        self.snapshot_internal(vol, name.into(), now, None)
    }

    /// Take snapshots of several volumes atomically (a snapshot group): all
    /// images are of the same instant, so the set is crash-consistent.
    pub fn create_snapshot_group(
        &mut self,
        vols: &[VolumeId],
        name_prefix: &str,
        now: SimTime,
    ) -> Vec<SnapshotId> {
        assert!(!vols.is_empty(), "snapshot group needs at least one volume");
        let group = self.next_snap_group;
        self.next_snap_group += 1;
        vols.iter()
            .map(|&v| {
                let vol_name = self.volume(v).name().to_owned();
                self.snapshot_internal(v, format!("{name_prefix}-{vol_name}"), now, Some(group))
            })
            .collect()
    }

    fn snapshot_internal(
        &mut self,
        vol: VolumeId,
        name: String,
        now: SimTime,
        group: Option<u64>,
    ) -> SnapshotId {
        assert!(self.volumes.contains_key(&vol), "snapshot of unknown volume");
        let id = SnapshotId(self.next_snapshot);
        self.next_snapshot += 1;
        self.snapshots
            .insert(id, Snapshot::new(id, name, vol, now, group));
        self.by_base.entry(vol).or_default().push(id);
        id
    }

    /// Borrow a snapshot.
    pub fn snapshot(&self, id: SnapshotId) -> &Snapshot {
        self.snapshots
            .get(&id)
            .expect("invariant: SnapshotId is only minted by create_snapshot")
    }

    /// Delete a snapshot, releasing its preserved blocks back to the pool.
    pub fn delete_snapshot(&mut self, id: SnapshotId) {
        if let Some(s) = self.snapshots.remove(&id) {
            let pool = self.pool_of(s.base_volume());
            self.pools[pool.0 as usize].release(s.saved_blocks() as u64);
            if let Some(list) = self.by_base.get_mut(&s.base_volume()) {
                list.retain(|&x| x != id);
            }
        }
    }

    /// All snapshot ids, sorted.
    pub fn snapshot_ids(&self) -> Vec<SnapshotId> {
        let mut v: Vec<_> = self.snapshots.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Materialize a snapshot as a new, writable volume (restore/clone).
    pub fn create_volume_from_snapshot(
        &mut self,
        snap: SnapshotId,
        name: impl Into<String>,
    ) -> VolumeId {
        let base = self.snapshot(snap).base_volume();
        let size = self.volume(base).size_blocks();
        let lbas: Vec<u64> = (0..size).collect();
        let blocks: Vec<(u64, BlockBuf)> = lbas
            .into_iter()
            .filter_map(|lba| self.read_snapshot_block(snap, lba).cloned().map(|b| (lba, b)))
            .collect();
        let id = self.create_volume(name, size);
        let vol = self.volume_mut(id);
        for (lba, b) in blocks {
            vol.write(lba, b);
        }
        id
    }

    /// Read a block as of snapshot time.
    pub fn read_snapshot_block(&self, snap: SnapshotId, lba: u64) -> Option<&BlockBuf> {
        let s = self.snapshot(snap);
        let base = s.base_volume();
        s.read_with(lba, |l| self.volume(base).read(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::block_from;

    fn array() -> StorageArray {
        StorageArray::new(ArrayId(0), "test-array", ArrayPerf::default())
    }

    #[test]
    fn volume_lifecycle() {
        let mut a = array();
        let v1 = a.create_volume("one", 10);
        let v2 = a.create_volume("two", 20);
        assert_ne!(v1, v2);
        assert_eq!(a.volume_ids(), vec![v1, v2]);
        assert_eq!(a.volume(v2).size_blocks(), 20);
        a.delete_volume(v1);
        assert!(!a.has_volume(v1));
        assert_eq!(a.volume_ids(), vec![v2]);
    }

    #[test]
    fn write_gating() {
        let mut a = array();
        let v = a.create_volume("v", 10);
        assert_eq!(a.check_host_write(v, 0), Ok(()));
        a.volume_mut(v).set_role(VolumeRole::Secondary);
        assert_eq!(a.check_host_write(v, 0), Err(WriteError::VolumeFenced));
        a.volume_mut(v).set_role(VolumeRole::Primary);
        a.fail(SimTime::ZERO);
        assert_eq!(a.check_host_write(v, 0), Err(WriteError::ArrayFailed));
        a.recover();
        assert_eq!(
            a.check_host_write(VolumeId(99), 0),
            Err(WriteError::NoSuchVolume)
        );
    }

    #[test]
    fn stations_serialize_per_volume() {
        let mut a = array();
        let v1 = a.create_volume("v1", 10);
        let v2 = a.create_volume("v2", 10);
        let t0 = SimTime::ZERO;
        let d = SimDuration::from_micros(100);
        let a1 = a.admit(v1, t0, d);
        let a2 = a.admit(v1, t0, d);
        let b1 = a.admit(v2, t0, d);
        assert_eq!(a1, t0 + d);
        assert_eq!(a2, t0 + d * 2); // queued behind a1
        assert_eq!(b1, t0 + d); // independent volume, no queueing
    }

    #[test]
    fn snapshot_sees_point_in_time_image() {
        let mut a = array();
        let v = a.create_volume("v", 10);
        a.write_block(v, 0, block_from(b"before"));
        let snap = a.create_snapshot(v, "snap", SimTime::from_secs(1));
        let cow = a.write_block(v, 0, block_from(b"after"));
        assert_eq!(cow, 1);
        let cow2 = a.write_block(v, 0, block_from(b"later"));
        assert_eq!(cow2, 0); // already preserved
        assert_eq!(
            &a.read_snapshot_block(snap, 0).expect("invariant: snapshot exists")[..6],
            b"before"
        );
        assert_eq!(&a.read_block(v, 0).expect("invariant: volume exists")[..5], b"later");
        assert_eq!(a.cow_saves(), 1);
    }

    #[test]
    fn snapshot_of_unwritten_block_reads_through_until_written() {
        let mut a = array();
        let v = a.create_volume("v", 10);
        let snap = a.create_snapshot(v, "s", SimTime::ZERO);
        assert!(a.read_snapshot_block(snap, 3).is_none());
        a.write_block(v, 3, block_from(b"new"));
        // Block was unwritten at snapshot time, so the snapshot still reads
        // as unwritten.
        assert!(a.read_snapshot_block(snap, 3).is_none());
    }

    #[test]
    fn snapshot_group_is_atomic_and_tagged() {
        let mut a = array();
        let v1 = a.create_volume("d1", 10);
        let v2 = a.create_volume("d2", 10);
        a.write_block(v1, 0, block_from(b"x1"));
        a.write_block(v2, 0, block_from(b"x2"));
        let snaps = a.create_snapshot_group(&[v1, v2], "grp", SimTime::from_secs(2));
        assert_eq!(snaps.len(), 2);
        let g0 = a.snapshot(snaps[0]).group();
        let g1 = a.snapshot(snaps[1]).group();
        assert!(g0.is_some());
        assert_eq!(g0, g1);
        // Another group gets a fresh group id.
        let snaps2 = a.create_snapshot_group(&[v1], "grp2", SimTime::from_secs(3));
        assert_ne!(a.snapshot(snaps2[0]).group(), g0);
    }

    #[test]
    fn multiple_snapshots_each_preserve_independently() {
        let mut a = array();
        let v = a.create_volume("v", 10);
        a.write_block(v, 0, block_from(b"gen0"));
        let s0 = a.create_snapshot(v, "s0", SimTime::ZERO);
        a.write_block(v, 0, block_from(b"gen1"));
        let s1 = a.create_snapshot(v, "s1", SimTime::from_secs(1));
        let cow = a.write_block(v, 0, block_from(b"gen2"));
        assert_eq!(cow, 1, "only s1 needs preservation; s0 already saved");
        assert_eq!(&a.read_snapshot_block(s0, 0).expect("invariant: snapshot exists")[..4], b"gen0");
        assert_eq!(&a.read_snapshot_block(s1, 0).expect("invariant: snapshot exists")[..4], b"gen1");
        assert_eq!(&a.read_block(v, 0).expect("invariant: volume exists")[..4], b"gen2");
    }

    #[test]
    fn delete_snapshot_stops_cow() {
        let mut a = array();
        let v = a.create_volume("v", 10);
        a.write_block(v, 0, block_from(b"a"));
        let s = a.create_snapshot(v, "s", SimTime::ZERO);
        a.delete_snapshot(s);
        let cow = a.write_block(v, 0, block_from(b"b"));
        assert_eq!(cow, 0);
        assert_eq!(a.snapshot_ids().len(), 0);
    }

    #[test]
    fn deleting_volume_removes_its_snapshots() {
        let mut a = array();
        let v = a.create_volume("v", 10);
        a.create_snapshot(v, "s", SimTime::ZERO);
        a.delete_volume(v);
        assert!(a.snapshot_ids().is_empty());
    }
}
