//! Dense-handle arenas: `Vec`-backed slabs behind `u32` handles.
//!
//! The metro-scale world keeps hot per-entity state out of pointer-chasing
//! maps: entities get dense `u32` handles into contiguous slabs, so the
//! engine's persist/apply loops walk arrays instead of `BTreeMap` nodes.
//! Two deliberate properties keep the arenas deterministic and panic-lean:
//!
//! - **LIFO handle reuse.** Freed handles go on a free list and the most
//!   recently freed handle is handed out first. Allocation order is a pure
//!   function of the insert/remove sequence — no hashing, no randomness —
//!   so replays are byte-identical.
//! - **Vacancy is explicit.** `get` on a vacant or out-of-range handle
//!   returns `None` rather than panicking; the indexed accessors used on
//!   hot paths (`slot`) document their invariant instead of `unwrap`ing.

/// A slab of `T` addressed by dense `u32` handles with LIFO reuse.
///
/// Handles are *not* generation-tagged: a handle freed and reallocated
/// refers to the new occupant. Callers that retire handles must drop every
/// copy (the storage layer only frees handles at teardown points where no
/// references survive, e.g. volume wipe).
#[derive(Debug, Clone, Default)]
pub struct DenseArena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> DenseArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        DenseArena { slots: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// An empty arena with room for `cap` occupants before regrowth.
    pub fn with_capacity(cap: usize) -> Self {
        DenseArena { slots: Vec::with_capacity(cap), free: Vec::new(), len: 0 }
    }

    /// Number of live occupants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no occupant is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots ever allocated (live + vacant); the high-water mark
    /// of the arena's footprint.
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    /// Store `value`, returning its handle. Reuses the most recently freed
    /// slot if one exists, else appends.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(h) = self.free.pop() {
            let slot = self
                .slots
                .get_mut(h as usize)
                .expect("invariant: free list only holds handles minted by insert");
            debug_assert!(slot.is_none(), "free list pointed at a live slot");
            *slot = Some(value);
            return h;
        }
        let h = u32::try_from(self.slots.len())
            .expect("invariant: arena slot counts stay within u32 handle space");
        self.slots.push(Some(value));
        h
    }

    /// Remove and return the occupant of `h`, if live.
    pub fn remove(&mut self, h: u32) -> Option<T> {
        let v = self.slots.get_mut(h as usize)?.take()?;
        self.len -= 1;
        self.free.push(h);
        Some(v)
    }

    /// Borrow the occupant of `h`, if live.
    pub fn get(&self, h: u32) -> Option<&T> {
        self.slots.get(h as usize)?.as_ref()
    }

    /// Mutably borrow the occupant of `h`, if live.
    pub fn get_mut(&mut self, h: u32) -> Option<&mut T> {
        self.slots.get_mut(h as usize)?.as_mut()
    }

    /// Borrow the occupant of a handle the caller knows is live (hot-path
    /// accessor; the handle came out of an index the arena backs).
    pub fn slot(&self, h: u32) -> &T {
        self.get(h).expect("invariant: indexed handle refers to a live arena slot")
    }

    /// Mutable twin of [`DenseArena::slot`].
    pub fn slot_mut(&mut self, h: u32) -> &mut T {
        self.get_mut(h).expect("invariant: indexed handle refers to a live arena slot")
    }

    /// True when `h` refers to a live occupant.
    pub fn contains(&self, h: u32) -> bool {
        self.get(h).is_some()
    }

    /// Drop every occupant and forget all handles.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.len = 0;
    }

    /// Iterate live `(handle, &value)` pairs in ascending handle order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as u32, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = DenseArena::new();
        let h1 = a.insert("one");
        let h2 = a.insert("two");
        assert_ne!(h1, h2);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(h1), Some(&"one"));
        assert_eq!(a.remove(h1), Some("one"));
        assert_eq!(a.get(h1), None);
        assert_eq!(a.remove(h1), None);
        assert_eq!(a.len(), 1);
        assert_eq!(a.slot(h2), &"two");
    }

    #[test]
    fn freed_handles_are_reused_lifo() {
        let mut a = DenseArena::new();
        let h0 = a.insert(0);
        let h1 = a.insert(1);
        let h2 = a.insert(2);
        a.remove(h0);
        a.remove(h2);
        // Most recently freed first, then older frees, then fresh slots.
        assert_eq!(a.insert(20), h2);
        assert_eq!(a.insert(10), h0);
        let h3 = a.insert(3);
        assert_eq!(h3, 3);
        assert_eq!(a.capacity_slots(), 4);
        assert_eq!(a.get(h1), Some(&1));
    }

    #[test]
    fn iter_walks_live_slots_in_handle_order() {
        let mut a = DenseArena::new();
        let hs: Vec<u32> = (0..5).map(|i| a.insert(i * 10)).collect();
        a.remove(hs[1]);
        a.remove(hs[3]);
        let got: Vec<(u32, i32)> = a.iter().map(|(h, &v)| (h, v)).collect();
        assert_eq!(got, vec![(0, 0), (2, 20), (4, 40)]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = DenseArena::new();
        let h = a.insert(7);
        a.clear();
        assert!(a.is_empty());
        assert!(!a.contains(h));
        assert_eq!(a.capacity_slots(), 0);
        // Handles restart from zero after a clear.
        assert_eq!(a.insert(8), 0);
    }

    /// Deterministic pseudo-random op sequence: the arena must agree with a
    /// `BTreeMap<u32, u64>` model keyed by the handles the arena mints.
    #[test]
    fn arena_matches_map_model_over_mixed_ops() {
        let mut arena = DenseArena::new();
        let mut model: BTreeMap<u32, u64> = BTreeMap::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for step in 0..4096u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let op = x % 100;
            if op < 55 || model.is_empty() {
                let v = x ^ step;
                let h = arena.insert(v);
                assert!(model.insert(h, v).is_none(), "arena minted a live handle");
            } else {
                let pick = (x / 100) as usize % model.len();
                let &h = model.keys().nth(pick).expect("model non-empty");
                let v = model.remove(&h);
                assert_eq!(arena.remove(h), v);
            }
            assert_eq!(arena.len(), model.len());
        }
        let from_arena: BTreeMap<u32, u64> = arena.iter().map(|(h, &v)| (h, v)).collect();
        assert_eq!(from_arena, model);
    }
}
