//! Synchronous block-device views, for database recovery and analytics.
//!
//! During normal operation the database layer issues *timed* writes through
//! [`crate::engine::host_write`]. At recovery or analytics time, however, a
//! database is opened directly on a volume or snapshot image and reads it
//! synchronously — these adapters provide that access, plus an in-memory
//! device for unit tests of the database engine itself.

use std::collections::BTreeMap;

use crate::array::StorageArray;
use crate::block::{block_from, BlockBuf, SnapshotId, VolumeId, BLOCK_SIZE};

/// Read-only random access to fixed-size blocks.
pub trait BlockDevice {
    /// Device capacity in blocks.
    fn size_blocks(&self) -> u64;
    /// Read a block; `None` if it was never written.
    fn read_block(&self, lba: u64) -> Option<BlockBuf>;
}

/// A writable block device (used by tests and by database formatting).
pub trait BlockDeviceMut: BlockDevice {
    /// Write a block (short payloads are zero-padded to the block size).
    fn write_block(&mut self, lba: u64, data: &[u8]);
}

/// A heap-backed block device for unit tests.
#[derive(Debug, Clone, Default)]
pub struct MemDevice {
    size_blocks: u64,
    blocks: BTreeMap<u64, BlockBuf>,
}

impl MemDevice {
    /// A device of the given capacity.
    pub fn new(size_blocks: u64) -> Self {
        MemDevice {
            size_blocks,
            blocks: BTreeMap::new(),
        }
    }

    /// Number of blocks ever written.
    pub fn allocated(&self) -> usize {
        self.blocks.len()
    }

    /// Corrupt a block in place (failure-injection for recovery tests).
    pub fn corrupt(&mut self, lba: u64, byte_offset: usize) {
        if let Some(b) = self.blocks.get_mut(&lba) {
            let mut v = b.to_vec();
            v[byte_offset] ^= 0xFF;
            *b = BlockBuf::from(v);
        }
    }

    /// Drop a block entirely (models a torn/never-arrived write).
    pub fn drop_block(&mut self, lba: u64) {
        self.blocks.remove(&lba);
    }
}

impl BlockDevice for MemDevice {
    fn size_blocks(&self) -> u64 {
        self.size_blocks
    }
    fn read_block(&self, lba: u64) -> Option<BlockBuf> {
        assert!(lba < self.size_blocks, "lba {lba} out of range");
        self.blocks.get(&lba).cloned()
    }
}

impl BlockDeviceMut for MemDevice {
    fn write_block(&mut self, lba: u64, data: &[u8]) {
        assert!(lba < self.size_blocks, "lba {lba} out of range");
        assert!(data.len() <= BLOCK_SIZE);
        self.blocks.insert(lba, block_from(data));
    }
}

/// Read-only view of a live volume on an array.
pub struct VolumeView<'a> {
    array: &'a StorageArray,
    volume: VolumeId,
}

impl<'a> VolumeView<'a> {
    /// View `volume` on `array`.
    pub fn new(array: &'a StorageArray, volume: VolumeId) -> Self {
        VolumeView { array, volume }
    }
}

impl BlockDevice for VolumeView<'_> {
    fn size_blocks(&self) -> u64 {
        self.array.volume(self.volume).size_blocks()
    }
    fn read_block(&self, lba: u64) -> Option<BlockBuf> {
        self.array.read_block(self.volume, lba).cloned()
    }
}

/// Read-only view of a snapshot image on an array.
pub struct SnapshotView<'a> {
    array: &'a StorageArray,
    snapshot: SnapshotId,
}

impl<'a> SnapshotView<'a> {
    /// View `snapshot` on `array`.
    pub fn new(array: &'a StorageArray, snapshot: SnapshotId) -> Self {
        SnapshotView { array, snapshot }
    }
}

impl BlockDevice for SnapshotView<'_> {
    fn size_blocks(&self) -> u64 {
        let base = self.array.snapshot(self.snapshot).base_volume();
        self.array.volume(base).size_blocks()
    }
    fn read_block(&self, lba: u64) -> Option<BlockBuf> {
        self.array.read_snapshot_block(self.snapshot, lba).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayPerf;
    use crate::block::ArrayId;
    use tsuru_sim::SimTime;

    #[test]
    fn mem_device_roundtrip() {
        let mut d = MemDevice::new(8);
        assert!(d.read_block(0).is_none());
        d.write_block(0, b"hello");
        assert_eq!(&d.read_block(0).unwrap()[..5], b"hello");
        assert_eq!(d.size_blocks(), 8);
        assert_eq!(d.allocated(), 1);
    }

    #[test]
    fn mem_device_corrupt_and_drop() {
        let mut d = MemDevice::new(8);
        d.write_block(1, b"abc");
        d.corrupt(1, 0);
        assert_ne!(d.read_block(1).unwrap()[0], b'a');
        d.drop_block(1);
        assert!(d.read_block(1).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mem_device_bounds() {
        let d = MemDevice::new(4);
        let _ = d.read_block(4);
    }

    #[test]
    fn volume_and_snapshot_views() {
        let mut a = StorageArray::new(ArrayId(0), "a", ArrayPerf::default());
        let v = a.create_volume("v", 8);
        a.write_block(v, 2, block_from(b"live"));
        let snap = a.create_snapshot(v, "s", SimTime::ZERO);
        a.write_block(v, 2, block_from(b"newer"));

        let vv = VolumeView::new(&a, v);
        assert_eq!(&vv.read_block(2).unwrap()[..5], b"newer");
        assert_eq!(vv.size_blocks(), 8);

        let sv = SnapshotView::new(&a, snap);
        assert_eq!(&sv.read_block(2).unwrap()[..4], b"live");
        assert_eq!(sv.size_blocks(), 8);
        assert!(sv.read_block(3).is_none());
    }
}
