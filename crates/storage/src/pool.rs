//! Thin-provisioning pools: physical capacity behind virtual volumes.
//!
//! Volumes on the simulated array are thin: a block consumes pool capacity
//! only when first written, and copy-on-write snapshot preservations charge
//! the pool too (Hitachi Thin Image draws from a pool the same way). An
//! exhausted pool is a real operational failure mode: new host writes are
//! rejected and new snapshots refuse to start, while existing data remains
//! readable.

use serde::{Deserialize, Serialize};

/// Identifier of a pool within an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PoolId(pub u32);

/// A thin-provisioning pool.
#[derive(Debug, Clone)]
pub struct Pool {
    id: PoolId,
    name: String,
    capacity_blocks: u64,
    allocated_blocks: u64,
    /// High-water mark of allocation (capacity planning).
    peak_blocks: u64,
    /// Writes rejected because the pool was exhausted.
    rejections: u64,
}

impl Pool {
    pub(crate) fn new(id: PoolId, name: impl Into<String>, capacity_blocks: u64) -> Self {
        assert!(capacity_blocks > 0, "pool must have capacity");
        Pool {
            id,
            name: name.into(),
            capacity_blocks,
            allocated_blocks: 0,
            peak_blocks: 0,
            rejections: 0,
        }
    }

    /// Pool id.
    pub fn id(&self) -> PoolId {
        self.id
    }

    /// Pool name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Blocks currently allocated.
    pub fn allocated_blocks(&self) -> u64 {
        self.allocated_blocks
    }

    /// Highest allocation ever reached.
    pub fn peak_blocks(&self) -> u64 {
        self.peak_blocks
    }

    /// Writes refused for lack of capacity.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Fraction of capacity in use.
    pub fn utilization(&self) -> f64 {
        self.allocated_blocks as f64 / self.capacity_blocks as f64
    }

    /// Is every block spoken for?
    pub fn is_exhausted(&self) -> bool {
        self.allocated_blocks >= self.capacity_blocks
    }

    /// Would `n` more blocks fit?
    pub fn has_room(&self, n: u64) -> bool {
        self.allocated_blocks + n <= self.capacity_blocks
    }

    /// Charge `n` blocks unconditionally (internal data path: replication
    /// apply and copy-on-write must not fail mid-flight, so they may
    /// overcommit; host admission prevents *new* host writes first).
    pub(crate) fn force_charge(&mut self, n: u64) {
        self.allocated_blocks += n;
        self.peak_blocks = self.peak_blocks.max(self.allocated_blocks);
    }

    /// Count an admission rejection (host write refused at the front end).
    pub(crate) fn count_rejection(&mut self) {
        self.rejections += 1;
    }

    /// Release `n` blocks (volume or snapshot deletion).
    pub(crate) fn release(&mut self, n: u64) {
        self.allocated_blocks = self.allocated_blocks.saturating_sub(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut p = Pool::new(PoolId(0), "hdp-0", 10);
        p.force_charge(4);
        p.force_charge(6);
        assert!(p.is_exhausted());
        assert!(!p.has_room(1));
        p.count_rejection();
        assert_eq!(p.rejections(), 1);
        assert_eq!(p.peak_blocks(), 10);
        p.release(5);
        assert_eq!(p.allocated_blocks(), 5);
        assert!((p.utilization() - 0.5).abs() < 1e-9);
        assert!(p.has_room(5));
        p.force_charge(5);
        assert_eq!(p.peak_blocks(), 10);
        // The data path may overcommit; admission is what prevents it.
        p.force_charge(3);
        assert_eq!(p.allocated_blocks(), 13);
        assert_eq!(p.peak_blocks(), 13);
    }

    #[test]
    fn release_saturates() {
        let mut p = Pool::new(PoolId(0), "x", 10);
        p.release(99);
        assert_eq!(p.allocated_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Pool::new(PoolId(0), "x", 0);
    }
}
