//! The unified metrics registry: named counters, gauges, histograms and
//! time series behind stable `BTreeMap` keys.
//!
//! The registry absorbs the ad-hoc stat fields that used to live on
//! `StorageWorld` (`write_order_waits`, journal-stall retries, …): each
//! becomes a named counter (see [`crate::names`]) that instrumented code
//! bumps through one handle, and reports read back by name. Time-series
//! sampling (RPO lag, journal occupancy) is gated by
//! [`MetricsRegistry::enable_sampling`] so the hot path stays free when
//! nobody will read the series.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tsuru_sim::{Histogram, SimTime, Summary, TimeSeries};

/// Named counters, gauges, histograms and time series. See the
/// [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    series: BTreeMap<&'static str, TimeSeries>,
    shard_series: BTreeMap<(&'static str, u32), TimeSeries>,
    sampling: bool,
}

impl MetricsRegistry {
    /// An empty registry with sampling off.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increment counter `name` by one.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Increment counter `name` by `n`.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Current value of counter `name` (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Current value of gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record one sample into histogram `name`.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Summary of histogram `name`, if any sample was recorded.
    pub fn summary(&self, name: &str) -> Option<Summary> {
        self.histograms.get(name).map(Histogram::summary)
    }

    /// Turn time-series sampling on; [`MetricsRegistry::sample`] is a
    /// no-op until this is called.
    pub fn enable_sampling(&mut self) {
        self.sampling = true;
    }

    /// True once [`MetricsRegistry::enable_sampling`] was called.
    pub fn sampling_enabled(&self) -> bool {
        self.sampling
    }

    /// Append an observation to series `name` — only when sampling is
    /// enabled, so instrumented edges can call this unconditionally.
    /// Timestamps must be non-decreasing per series.
    pub fn sample(&mut self, name: &'static str, t: SimTime, v: f64) {
        if !self.sampling {
            return;
        }
        self.series.entry(name).or_default().push(t, v);
    }

    /// Time series `name`, if any observation was sampled.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Append an observation to the shard-`shard` lane of series `name` —
    /// gated by [`MetricsRegistry::enable_sampling`] exactly like
    /// [`MetricsRegistry::sample`]. Sharded worlds sample journal
    /// occupancy and apply lag per lane through this, so E12 tables and
    /// the SLO engine read the same per-shard signals.
    pub fn sample_shard(&mut self, name: &'static str, shard: u32, t: SimTime, v: f64) {
        if !self.sampling {
            return;
        }
        self.shard_series.entry((name, shard)).or_default().push(t, v);
    }

    /// The shard-`shard` lane of series `name`, if ever sampled.
    pub fn shard_series(&self, name: &str, shard: u32) -> Option<&TimeSeries> {
        self.shard_series
            .iter()
            .find(|(&(n, s), _)| n == name && s == shard)
            .map(|(_, ts)| ts)
    }

    /// All sampled lanes of series `name`, in ascending shard order.
    pub fn shard_lanes<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (u32, &'a TimeSeries)> + 'a {
        self.shard_series
            .iter()
            .filter(move |(&(n, _), _)| n == name)
            .map(|(&(_, s), ts)| (s, ts))
    }

    /// A serializable point-in-time snapshot: counters and gauges by
    /// name, histogram summaries, and per-series value summaries.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut series: Vec<(String, SeriesSummary)> = self
            .series
            .iter()
            .map(|(&k, s)| (k.to_string(), SeriesSummary::of(s)))
            // Shard lanes ride in the same list as `name#shard`, so the
            // snapshot schema stays unchanged for unsharded worlds.
            .chain(
                self.shard_series
                    .iter()
                    .map(|(&(k, sh), s)| (format!("{k}#{sh}"), SeriesSummary::of(s))),
            )
            .collect();
        series.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, h)| (k.to_string(), h.summary()))
                .collect(),
            series,
        }
    }
}

/// Value summary of one time series, computed over the observed points
/// (not time-weighted): enough to gate regressions on a snapshot without
/// carrying the whole series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// Number of observations.
    pub len: u64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
    /// Arithmetic mean of the observed values (0 when empty).
    pub mean: f64,
    /// Last observed value (0 when empty).
    pub last: f64,
}

impl SeriesSummary {
    /// Summarize `series`.
    pub fn of(series: &TimeSeries) -> Self {
        let pts = series.points();
        if pts.is_empty() {
            return SeriesSummary {
                len: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                last: 0.0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &(_, v) in pts {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        SeriesSummary {
            len: pts.len() as u64,
            min,
            max,
            mean: sum / pts.len() as f64,
            last: pts.last().expect("invariant: the empty case returned above").1,
        }
    }
}

/// Point-in-time view of a [`MetricsRegistry`], sorted by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, Summary)>,
    /// Per-series value summaries by name.
    pub series: Vec<(String, SeriesSummary)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("writes.failed"), 0);
        m.inc("writes.failed");
        m.add("writes.failed", 2);
        assert_eq!(m.counter("writes.failed"), 3);
        assert_eq!(m.gauge("journal.cap"), None);
        m.set_gauge("journal.cap", 64.0);
        assert_eq!(m.gauge("journal.cap"), Some(64.0));
    }

    #[test]
    fn histograms_summarize() {
        let mut m = MetricsRegistry::new();
        assert!(m.summary("lat").is_none());
        m.record("lat", 1_000_000);
        m.record("lat", 3_000_000);
        let s = m.summary("lat").expect("two samples recorded");
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 3_000_000);
    }

    #[test]
    fn sampling_is_gated() {
        let mut m = MetricsRegistry::new();
        m.sample("rpo.lag_writes", SimTime::from_millis(1), 5.0);
        assert!(m.series("rpo.lag_writes").is_none());
        m.enable_sampling();
        m.sample("rpo.lag_writes", SimTime::from_millis(2), 5.0);
        m.sample("rpo.lag_writes", SimTime::from_millis(3), 2.0);
        let s = m.series("rpo.lag_writes").expect("sampling enabled");
        assert_eq!(s.len(), 2);
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn shard_lanes_are_gated_and_keyed_per_shard() {
        let mut m = MetricsRegistry::new();
        m.sample_shard("shard.apply_lag_writes", 0, SimTime::ZERO, 1.0);
        assert!(m.shard_series("shard.apply_lag_writes", 0).is_none());
        m.enable_sampling();
        m.sample_shard("shard.apply_lag_writes", 1, SimTime::ZERO, 3.0);
        m.sample_shard("shard.apply_lag_writes", 0, SimTime::from_millis(1), 2.0);
        m.sample_shard("shard.apply_lag_writes", 1, SimTime::from_millis(1), 5.0);
        assert_eq!(
            m.shard_series("shard.apply_lag_writes", 1).map(|s| s.len()),
            Some(2)
        );
        let lanes: Vec<(u32, u64)> = m
            .shard_lanes("shard.apply_lag_writes")
            .map(|(s, ts)| (s, ts.len() as u64))
            .collect();
        assert_eq!(lanes, vec![(0, 1), (1, 2)]);
        // Lanes surface in the snapshot as `name#shard`.
        let snap = m.snapshot();
        let names: Vec<&str> = snap.series.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["shard.apply_lag_writes#0", "shard.apply_lag_writes#1"]
        );
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let mut m = MetricsRegistry::new();
        m.enable_sampling();
        m.inc("b.counter");
        m.inc("a.counter");
        m.record("lat", 42);
        m.sample("occ", SimTime::ZERO, 1.0);
        m.sample("occ", SimTime::from_millis(1), 7.0);
        let snap = m.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.counter".to_string(), 1), ("b.counter".to_string(), 1)]
        );
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(
            snap.series,
            vec![(
                "occ".to_string(),
                SeriesSummary {
                    len: 2,
                    min: 1.0,
                    max: 7.0,
                    mean: 4.0,
                    last: 7.0,
                }
            )]
        );
    }
}
