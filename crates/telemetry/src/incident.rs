//! Incident objects: the root-cause bundle an alert rule opens when it
//! fires.
//!
//! An [`Incident`] is the operator-facing artifact of the SLO engine
//! (see [`crate::alert`]): besides *which* rule fired *when*, it carries
//! its own evidence — the breaching sample window, the trailing trace
//! window (the same machinery the chaos auditor attaches to invariant
//! violations), every fault window that was open while the incident was,
//! and the supervisor stage at open. The [`IncidentLog`] collects a
//! run's incidents in open order and exports them via the hand-built
//! JSONL path, so the bytes are a pure function of the simulated
//! history.

use tsuru_sim::SimTime;

use crate::tracer::SpanId;

/// One fault window observed while an incident was open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRef {
    /// The `fault` span id (the injector's window).
    pub span: SpanId,
    /// The `kind` attribute the fault span was opened with.
    pub kind: String,
    /// First evaluation tick at which this incident saw the fault open.
    pub first_seen: SimTime,
}

/// One fired alert and its root-cause evidence bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Incident id, dense in open order starting at 1.
    pub id: u64,
    /// Name of the rule that fired.
    pub rule: &'static str,
    /// Name of the signal the rule watches.
    pub signal: &'static str,
    /// When the rule fired.
    pub opened_at: SimTime,
    /// When the rule stopped breaching, if it did before the run ended.
    pub resolved_at: Option<SimTime>,
    /// The signal value that tripped the rule.
    pub value_at_open: f64,
    /// Breaching sample window: the trailing observations of the signal
    /// at open time.
    pub window: Vec<(SimTime, f64)>,
    /// Trailing trace window at open time (rendered records).
    pub trace: Vec<String>,
    /// Every fault window open at any evaluation tick while this
    /// incident was open, in first-seen order.
    pub faults: Vec<FaultRef>,
    /// Supervisor stage summary at open time.
    pub supervisor: String,
}

impl Incident {
    /// Merge the currently-open fault windows into this incident's fault
    /// list; windows not seen before are stamped `first_seen = now`.
    pub fn observe_faults(&mut self, now: SimTime, open: &[(SpanId, String)]) {
        for (span, kind) in open {
            if !self.faults.iter().any(|f| f.span == *span) {
                self.faults.push(FaultRef {
                    span: *span,
                    kind: kind.clone(),
                    first_seen: now,
                });
            }
        }
    }

    /// True while the rule is still breaching.
    pub fn is_open(&self) -> bool {
        self.resolved_at.is_none()
    }
}

/// A run's incidents, in open order. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct IncidentLog {
    incidents: Vec<Incident>,
}

impl IncidentLog {
    /// An empty log.
    pub fn new() -> Self {
        IncidentLog::default()
    }

    /// Open a new incident and return its index into
    /// [`IncidentLog::incidents`]. The id is allocated densely.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        &mut self,
        rule: &'static str,
        signal: &'static str,
        opened_at: SimTime,
        value_at_open: f64,
        window: Vec<(SimTime, f64)>,
        trace: Vec<String>,
        supervisor: String,
    ) -> usize {
        self.incidents.push(Incident {
            id: self.incidents.len() as u64 + 1,
            rule,
            signal,
            opened_at,
            resolved_at: None,
            value_at_open,
            window,
            trace,
            faults: Vec::new(),
            supervisor,
        });
        self.incidents.len() - 1
    }

    /// All incidents, open order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Mutable access to incident `idx` (for fault observation and
    /// resolution by the engine).
    pub fn incident_mut(&mut self, idx: usize) -> &mut Incident {
        self.incidents
            .get_mut(idx)
            .expect("invariant: incident indices come from open() and are never removed")
    }

    /// Number of incidents opened so far.
    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    /// True when no incident was ever opened.
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Number of incidents still open.
    pub fn open_count(&self) -> usize {
        self.incidents.iter().filter(|i| i.is_open()).count()
    }

    /// Export the log as JSON Lines, one incident per line, open order.
    /// Values render through integer fixed-point math (3 decimals) so
    /// the bytes never depend on float formatting.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for inc in &self.incidents {
            out.push_str(&format!(
                "{{\"incident\":{},\"rule\":\"{}\",\"signal\":\"{}\",\"opened_ns\":{}",
                inc.id,
                inc.rule,
                inc.signal,
                inc.opened_at.as_nanos()
            ));
            match inc.resolved_at {
                Some(t) => out.push_str(&format!(",\"resolved_ns\":{}", t.as_nanos())),
                None => out.push_str(",\"resolved_ns\":null"),
            }
            out.push_str(&format!(",\"value\":{}", fmt_fixed(inc.value_at_open)));
            out.push_str(",\"window\":[");
            for (i, (t, v)) in inc.window.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{}]", t.as_nanos(), fmt_fixed(*v)));
            }
            out.push_str("],\"faults\":[");
            for (i, f) in inc.faults.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"span\":{},\"kind\":\"",
                    f.span.0
                ));
                crate::export::escape_json(&f.kind, &mut out);
                out.push_str(&format!("\",\"seen_ns\":{}}}", f.first_seen.as_nanos()));
            }
            out.push_str("],\"supervisor\":\"");
            crate::export::escape_json(&inc.supervisor, &mut out);
            out.push_str("\",\"trace\":[");
            for (i, line) in inc.trace.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                crate::export::escape_json(line, &mut out);
                out.push('"');
            }
            out.push_str("]}\n");
        }
        out
    }
}

/// Render `v` with exactly three decimals via integer math, so export
/// bytes never depend on float formatting.
pub(crate) fn fmt_fixed(v: f64) -> String {
    let neg = v < 0.0;
    let milli = (v.abs() * 1000.0).round() as u64;
    format!(
        "{}{}.{:03}",
        if neg && milli > 0 { "-" } else { "" },
        milli / 1000,
        milli % 1000
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn fixed_point_rendering() {
        assert_eq!(fmt_fixed(0.0), "0.000");
        assert_eq!(fmt_fixed(7.0), "7.000");
        assert_eq!(fmt_fixed(1.2345), "1.235");
        assert_eq!(fmt_fixed(1.2341), "1.234");
        assert_eq!(fmt_fixed(-2.5), "-2.500");
        assert_eq!(fmt_fixed(-0.0001), "0.000");
    }

    #[test]
    fn observe_faults_dedups_by_span() {
        let mut log = IncidentLog::new();
        let idx = log.open("r", "s", at(10), 5.0, Vec::new(), Vec::new(), "off".into());
        let inc = log.incident_mut(idx);
        inc.observe_faults(at(10), &[(SpanId(3), "link-partition".into())]);
        inc.observe_faults(
            at(12),
            &[(SpanId(3), "link-partition".into()), (SpanId(9), "journal-squeeze".into())],
        );
        assert_eq!(inc.faults.len(), 2);
        assert_eq!(inc.faults[0].first_seen, at(10));
        assert_eq!(inc.faults[1].first_seen, at(12));
        assert_eq!(inc.faults[1].kind, "journal-squeeze");
    }

    #[test]
    fn jsonl_is_stable() {
        let mut log = IncidentLog::new();
        let idx = log.open(
            "rpo-lag-sustained",
            "health.rpo_lag",
            at(40),
            12.0,
            vec![(at(30), 9.0), (at(35), 11.5)],
            vec!["#1 start fault t=0.000030s kind=link-partition".into()],
            "g0=recovering".into(),
        );
        {
            let inc = log.incident_mut(idx);
            inc.observe_faults(at(40), &[(SpanId(1), "link-partition".into())]);
            inc.resolved_at = Some(at(90));
        }
        let expect = concat!(
            "{\"incident\":1,\"rule\":\"rpo-lag-sustained\",\"signal\":\"health.rpo_lag\",",
            "\"opened_ns\":40000,\"resolved_ns\":90000,\"value\":12.000,",
            "\"window\":[[30000,9.000],[35000,11.500]],",
            "\"faults\":[{\"span\":1,\"kind\":\"link-partition\",\"seen_ns\":40000}],",
            "\"supervisor\":\"g0=recovering\",",
            "\"trace\":[\"#1 start fault t=0.000030s kind=link-partition\"]}\n",
        );
        assert_eq!(log.export_jsonl(), expect);
        assert_eq!(log.open_count(), 0);
        assert_eq!(log.len(), 1);
    }
}
