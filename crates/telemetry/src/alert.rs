//! The deterministic SLO/alerting engine: declarative rules evaluated in
//! sim-time over the metrics registry.
//!
//! A rule ([`AlertRule`]) names a signal — a time series, counter or
//! gauge in the [`MetricsRegistry`](crate::MetricsRegistry) — and a
//! breach condition ([`RuleKind`]): instantaneous threshold, sustained
//! threshold, rate-of-change over a trailing window, or
//! absence-of-samples. Rules are grouped into an [`AlertProfile`] with
//! an evaluation interval; the kernel drives
//! [`AlertEngine::evaluate`] from a `ControlOp::SloTick` event (exactly
//! like the recovery supervisor's tick), so every evaluation happens at
//! a deterministic sim-time and the set of fired incidents is
//! byte-identical at any harness thread count.
//!
//! A rule that crosses into breach opens an [`Incident`](crate::Incident)
//! carrying its root-cause bundle (breaching window, trace tail, open
//! fault windows, supervisor stage); the incident stays open — and keeps
//! accumulating fault windows it observes — until the rule stops
//! breaching. Rules hold no wall-clock or random state, so the engine is
//! a pure function of the simulated history.

use std::collections::VecDeque;

use tsuru_sim::{SimDuration, SimTime};

use crate::incident::IncidentLog;
use crate::registry::MetricsRegistry;
use crate::tracer::Tracer;

/// How many trailing observations an incident's breaching window keeps.
const WINDOW_LEN: usize = 16;

/// How many trailing trace records an incident captures (the same width
/// the chaos auditor attaches to invariant violations).
const TRACE_WINDOW: usize = 8;

/// What an [`AlertRule`] watches in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// A time series (last observed value; sample times drive
    /// [`RuleKind::Absence`]).
    Series(&'static str),
    /// A monotonic counter (read as `f64`).
    Counter(&'static str),
    /// A gauge.
    Gauge(&'static str),
}

impl Signal {
    /// The metric name this signal reads.
    pub fn name(&self) -> &'static str {
        match self {
            Signal::Series(n) | Signal::Counter(n) | Signal::Gauge(n) => n,
        }
    }
}

/// Breach condition of one [`AlertRule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleKind {
    /// Fires while the signal's current value exceeds `above`.
    Threshold {
        /// Breach bound (exclusive).
        above: f64,
    },
    /// Fires once the signal has exceeded `above` at every evaluation
    /// tick for at least `for_duration`.
    Sustained {
        /// Breach bound (exclusive).
        above: f64,
        /// How long the breach must persist before firing.
        for_duration: SimDuration,
    },
    /// Fires while the signal's growth rate over the trailing `window`
    /// of observations exceeds `per_sec` units per second.
    RateOfChange {
        /// Breach rate (exclusive), in signal units per second.
        per_sec: f64,
        /// Trailing window the rate is computed over.
        window: SimDuration,
    },
    /// Fires once the series has received no new sample for at least
    /// `for_duration` (measured from the later of the last sample and
    /// the engine arming time). Only meaningful for
    /// [`Signal::Series`].
    Absence {
        /// Maximum tolerated silence.
        for_duration: SimDuration,
    },
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Stable rule name (appears in incidents and reports).
    pub name: &'static str,
    /// What the rule watches.
    pub signal: Signal,
    /// When the rule breaches.
    pub kind: RuleKind,
}

/// A named set of rules plus the evaluation cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertProfile {
    /// Profile name (tight / default / lenient).
    pub name: &'static str,
    /// How often the kernel evaluates the rules.
    pub eval_interval: SimDuration,
    /// The rules, evaluated in order every tick.
    pub rules: Vec<AlertRule>,
}

/// Build the shared rule set with profile-specific knobs.
fn rules(
    lag_above: f64,
    lag_hold: SimDuration,
    silence: SimDuration,
    stall_per_sec: f64,
    rate_window: SimDuration,
    degraded_hold: SimDuration,
) -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: "rpo-lag-sustained",
            signal: Signal::Series(crate::names::HEALTH_RPO_LAG),
            kind: RuleKind::Sustained {
                above: lag_above,
                for_duration: lag_hold,
            },
        },
        AlertRule {
            name: "replication-silence",
            signal: Signal::Series(crate::names::RPO_LAG),
            kind: RuleKind::Absence {
                for_duration: silence,
            },
        },
        AlertRule {
            name: "journal-stall-rate",
            signal: Signal::Counter(crate::names::JOURNAL_STALL_RETRIES),
            kind: RuleKind::RateOfChange {
                per_sec: stall_per_sec,
                window: rate_window,
            },
        },
        AlertRule {
            name: "journal-overflow-rate",
            signal: Signal::Counter(crate::names::JOURNAL_OVERFLOW),
            kind: RuleKind::RateOfChange {
                per_sec: stall_per_sec,
                window: rate_window,
            },
        },
        AlertRule {
            name: "link-down",
            signal: Signal::Series(crate::names::HEALTH_LINKS_DOWN),
            kind: RuleKind::Threshold { above: 0.0 },
        },
        AlertRule {
            name: "array-failed",
            signal: Signal::Series(crate::names::HEALTH_ARRAYS_FAILED),
            kind: RuleKind::Threshold { above: 0.0 },
        },
        AlertRule {
            name: "group-degraded",
            signal: Signal::Series(crate::names::HEALTH_GROUPS_DEGRADED),
            kind: RuleKind::Sustained {
                above: 0.0,
                for_duration: degraded_hold,
            },
        },
    ]
}

impl AlertProfile {
    /// Aggressive knobs: fastest time-to-detect, most false positives.
    pub fn tight() -> Self {
        AlertProfile {
            name: "tight",
            eval_interval: SimDuration::from_micros(500),
            rules: rules(
                4.0,
                SimDuration::from_millis(2),
                SimDuration::from_millis(4),
                200.0,
                SimDuration::from_millis(4),
                SimDuration::from_millis(1),
            ),
        }
    }

    /// The balanced production profile E11 scores for recall.
    pub fn default_profile() -> Self {
        AlertProfile {
            name: "default",
            eval_interval: SimDuration::from_millis(1),
            rules: rules(
                8.0,
                SimDuration::from_millis(4),
                SimDuration::from_millis(8),
                500.0,
                SimDuration::from_millis(6),
                SimDuration::from_millis(3),
            ),
        }
    }

    /// Conservative knobs: slowest time-to-detect, fewest spurious
    /// incidents.
    pub fn lenient() -> Self {
        AlertProfile {
            name: "lenient",
            eval_interval: SimDuration::from_millis(2),
            rules: rules(
                16.0,
                SimDuration::from_millis(8),
                SimDuration::from_millis(16),
                1500.0,
                SimDuration::from_millis(10),
                SimDuration::from_millis(8),
            ),
        }
    }

    /// The three profiles E11 sweeps, tightest first.
    pub fn all() -> Vec<AlertProfile> {
        vec![
            AlertProfile::tight(),
            AlertProfile::default_profile(),
            AlertProfile::lenient(),
        ]
    }
}

/// Per-rule evaluation state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    /// First tick of the current uninterrupted breach (Sustained).
    breach_since: Option<SimTime>,
    /// Index of the open incident in the log, if firing.
    open: Option<usize>,
    /// Trailing (tick, value) observations (RateOfChange and the
    /// breaching window for counter/gauge signals).
    recent: VecDeque<(SimTime, f64)>,
}

/// The rule evaluator. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct AlertEngine {
    profile: AlertProfile,
    states: Vec<RuleState>,
    log: IncidentLog,
    armed_at: SimTime,
    evals: u64,
}

impl AlertEngine {
    /// An engine armed at `now` with `profile`.
    pub fn new(profile: AlertProfile, now: SimTime) -> Self {
        let states = vec![RuleState::default(); profile.rules.len()];
        AlertEngine {
            profile,
            states,
            log: IncidentLog::new(),
            armed_at: now,
            evals: 0,
        }
    }

    /// The armed profile.
    pub fn profile(&self) -> &AlertProfile {
        &self.profile
    }

    /// Number of evaluation ticks run so far.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// The incident log (read-only).
    pub fn log(&self) -> &IncidentLog {
        &self.log
    }

    /// Consume the engine, yielding the incident log.
    pub fn into_log(self) -> IncidentLog {
        self.log
    }

    /// Names of the rules currently firing, in rule order.
    pub fn firing_rules(&self) -> Vec<&'static str> {
        self.profile
            .rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.open.is_some())
            .map(|(r, _)| r.name)
            .collect()
    }

    /// True while at least one rule is firing.
    pub fn any_firing(&self) -> bool {
        self.states.iter().any(|s| s.open.is_some())
    }

    /// Evaluate every rule at sim-time `now`. `supervisor` is the
    /// caller's one-line supervisor stage summary, captured into any
    /// incident opened this tick.
    pub fn evaluate(
        &mut self,
        now: SimTime,
        metrics: &MetricsRegistry,
        tracer: &Tracer,
        supervisor: &str,
    ) {
        self.evals += 1;
        let armed_at = self.armed_at;
        for (idx, rule) in self.profile.rules.iter().enumerate() {
            let state = self
                .states
                .get_mut(idx)
                .expect("invariant: states is sized one per rule at construction");

            // Observe the signal's current value at this tick.
            let value = match rule.signal {
                Signal::Series(name) => metrics
                    .series(name)
                    .and_then(|s| s.points().last().map(|&(_, v)| v))
                    .unwrap_or(0.0),
                Signal::Counter(name) => metrics.counter(name) as f64,
                Signal::Gauge(name) => metrics.gauge(name).unwrap_or(0.0),
            };
            state.recent.push_back((now, value));

            // Trim the observation window: RateOfChange needs its full
            // time window, everything else only the incident evidence.
            match rule.kind {
                RuleKind::RateOfChange { window, .. } => {
                    let cutoff = now.as_nanos().saturating_sub(window.as_nanos());
                    while state.recent.len() > 2
                        && state.recent.front().is_some_and(|&(t, _)| t.as_nanos() < cutoff)
                    {
                        state.recent.pop_front();
                    }
                }
                _ => {
                    while state.recent.len() > WINDOW_LEN {
                        state.recent.pop_front();
                    }
                }
            }

            // Decide breach and the value that evidences it.
            let (breaching, evidence) = match rule.kind {
                RuleKind::Threshold { above } => (value > above, value),
                RuleKind::Sustained { above, for_duration } => {
                    if value > above {
                        let since = *state.breach_since.get_or_insert(now);
                        (now.saturating_since(since) >= for_duration, value)
                    } else {
                        state.breach_since = None;
                        (false, value)
                    }
                }
                RuleKind::RateOfChange { per_sec, .. } => {
                    let rate = match (state.recent.front(), state.recent.back()) {
                        (Some(&(t0, v0)), Some(&(t1, v1))) if t1 > t0 => {
                            (v1 - v0) / t1.saturating_since(t0).as_secs_f64()
                        }
                        _ => 0.0,
                    };
                    (rate > per_sec, rate)
                }
                RuleKind::Absence { for_duration } => {
                    let last_sample = metrics
                        .series(rule.signal.name())
                        .and_then(|s| s.points().last().map(|&(t, _)| t))
                        .unwrap_or(armed_at)
                        .max(armed_at);
                    let silence = now.saturating_since(last_sample);
                    (silence >= for_duration, silence.as_secs_f64() * 1e3)
                }
            };

            match (breaching, state.open) {
                (true, None) => {
                    // Crossing into breach: open the incident with its
                    // evidence bundle.
                    let window = match rule.signal {
                        Signal::Series(name) => metrics
                            .series(name)
                            .map(|s| {
                                let pts = s.points();
                                let skip = pts.len().saturating_sub(WINDOW_LEN);
                                pts.iter().skip(skip).copied().collect()
                            })
                            .unwrap_or_default(),
                        _ => state.recent.iter().copied().collect(),
                    };
                    let idx = self.log.open(
                        rule.name,
                        rule.signal.name(),
                        now,
                        evidence,
                        window,
                        tracer.tail(TRACE_WINDOW),
                        supervisor.to_string(),
                    );
                    let inc = self.log.incident_mut(idx);
                    inc.observe_faults(now, &tracer.open_faults());
                    state.open = Some(idx);
                }
                (true, Some(idx)) => {
                    // Still breaching: keep accumulating fault windows.
                    self.log
                        .incident_mut(idx)
                        .observe_faults(now, &tracer.open_faults());
                }
                (false, Some(idx)) => {
                    self.log.incident_mut(idx).resolved_at = Some(now);
                    state.open = None;
                }
                (false, None) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::SpanId;

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    /// Drive `engine` over `samples` applied to a fresh registry series,
    /// evaluating after each sample.
    fn run_series(
        engine: &mut AlertEngine,
        name: &'static str,
        samples: &[(u64, f64)],
    ) -> usize {
        let mut m = MetricsRegistry::new();
        m.enable_sampling();
        let tracer = Tracer::disabled();
        for &(us, v) in samples {
            m.sample(name, at(us), v);
            engine.evaluate(at(us), &m, &tracer, "off");
        }
        engine.log().len()
    }

    fn one_rule(rule: AlertRule) -> AlertEngine {
        AlertEngine::new(
            AlertProfile {
                name: "test",
                eval_interval: SimDuration::from_micros(100),
                rules: vec![rule],
            },
            SimTime::ZERO,
        )
    }

    #[test]
    fn threshold_fires_and_resolves() {
        let mut e = one_rule(AlertRule {
            name: "t",
            signal: Signal::Series("s"),
            kind: RuleKind::Threshold { above: 5.0 },
        });
        let n = run_series(&mut e, "s", &[(100, 1.0), (200, 6.0), (300, 6.5), (400, 2.0)]);
        assert_eq!(n, 1);
        let inc = &e.log().incidents()[0];
        assert_eq!(inc.opened_at, at(200));
        assert_eq!(inc.resolved_at, Some(at(400)));
        assert_eq!(inc.value_at_open, 6.0);
        assert_eq!(inc.window, vec![(at(100), 1.0), (at(200), 6.0)]);
    }

    #[test]
    fn threshold_does_not_reopen_while_breaching() {
        let mut e = one_rule(AlertRule {
            name: "t",
            signal: Signal::Series("s"),
            kind: RuleKind::Threshold { above: 5.0 },
        });
        let n = run_series(&mut e, "s", &[(100, 9.0), (200, 9.0), (300, 9.0)]);
        assert_eq!(n, 1);
        assert!(e.log().incidents()[0].is_open());
        assert_eq!(e.firing_rules(), vec!["t"]);
        assert!(e.any_firing());
    }

    #[test]
    fn sustained_holds_until_duration() {
        let mut e = one_rule(AlertRule {
            name: "s",
            signal: Signal::Series("s"),
            kind: RuleKind::Sustained {
                above: 5.0,
                for_duration: SimDuration::from_micros(300),
            },
        });
        // Breach at 100..200 is interrupted at 300 — no incident.
        // Breach from 400 fires once it has held 300µs (at 700).
        let n = run_series(
            &mut e,
            "s",
            &[
                (100, 6.0),
                (200, 6.0),
                (300, 1.0),
                (400, 7.0),
                (500, 7.0),
                (600, 7.0),
                (700, 7.0),
            ],
        );
        assert_eq!(n, 1);
        assert_eq!(e.log().incidents()[0].opened_at, at(700));
    }

    #[test]
    fn rate_of_change_fires_on_counter_slope() {
        let mut e = one_rule(AlertRule {
            name: "r",
            signal: Signal::Counter("c"),
            kind: RuleKind::RateOfChange {
                per_sec: 1000.0,
                window: SimDuration::from_millis(1),
            },
        });
        let mut m = MetricsRegistry::new();
        let tracer = Tracer::disabled();
        // +1 per 100µs = 10_000/s ≫ 1000/s once two samples exist.
        for i in 0..5u64 {
            m.add("c", 1);
            e.evaluate(at(100 + i * 100), &m, &tracer, "off");
        }
        assert_eq!(e.log().len(), 1);
        assert_eq!(e.log().incidents()[0].opened_at, at(200));
        // Counter flattens out: rate decays below the bound and the
        // incident resolves.
        for i in 5..30u64 {
            e.evaluate(at(100 + i * 100), &m, &tracer, "off");
        }
        assert!(!e.log().incidents()[0].is_open());
    }

    #[test]
    fn absence_fires_on_silence_and_resolves_on_sample() {
        let mut e = one_rule(AlertRule {
            name: "a",
            signal: Signal::Series("s"),
            kind: RuleKind::Absence {
                for_duration: SimDuration::from_micros(250),
            },
        });
        let mut m = MetricsRegistry::new();
        m.enable_sampling();
        let tracer = Tracer::disabled();
        m.sample("s", at(100), 1.0);
        for us in [150u64, 250, 350, 400] {
            e.evaluate(at(us), &m, &tracer, "off");
        }
        // Silence since 100 reaches 250µs at t=350.
        assert_eq!(e.log().len(), 1);
        assert_eq!(e.log().incidents()[0].opened_at, at(350));
        m.sample("s", at(450), 2.0);
        e.evaluate(at(500), &m, &tracer, "off");
        assert_eq!(e.log().incidents()[0].resolved_at, Some(at(500)));
    }

    #[test]
    fn absence_measures_from_arming_when_series_is_empty() {
        let mut e = AlertEngine::new(
            AlertProfile {
                name: "test",
                eval_interval: SimDuration::from_micros(100),
                rules: vec![AlertRule {
                    name: "a",
                    signal: Signal::Series("never"),
                    kind: RuleKind::Absence {
                        for_duration: SimDuration::from_micros(300),
                    },
                }],
            },
            at(1_000),
        );
        let m = MetricsRegistry::new();
        let tracer = Tracer::disabled();
        e.evaluate(at(1_100), &m, &tracer, "off");
        assert!(e.log().is_empty());
        e.evaluate(at(1_300), &m, &tracer, "off");
        assert_eq!(e.log().len(), 1);
    }

    #[test]
    fn incidents_accumulate_open_faults() {
        let mut e = one_rule(AlertRule {
            name: "t",
            signal: Signal::Gauge("g"),
            kind: RuleKind::Threshold { above: 0.0 },
        });
        let mut m = MetricsRegistry::new();
        let tracer = Tracer::enabled();
        let f1 = tracer.span_start("fault", at(50), SpanId::NONE, || {
            vec![("kind", "link-partition".into())]
        });
        tracer.push_fault(f1);
        m.set_gauge("g", 1.0);
        e.evaluate(at(100), &m, &tracer, "g0=down");
        let f2 = tracer.span_start("fault", at(150), SpanId::NONE, || {
            vec![("kind", "journal-squeeze".into())]
        });
        tracer.push_fault(f2);
        e.evaluate(at(200), &m, &tracer, "g0=down");
        let inc = &e.log().incidents()[0];
        assert_eq!(inc.supervisor, "g0=down");
        let kinds: Vec<&str> = inc.faults.iter().map(|f| f.kind.as_str()).collect();
        assert_eq!(kinds, vec!["link-partition", "journal-squeeze"]);
        assert_eq!(inc.faults[0].first_seen, at(100));
        assert_eq!(inc.faults[1].first_seen, at(200));
    }

    #[test]
    fn profiles_are_well_formed() {
        for p in AlertProfile::all() {
            assert!(!p.rules.is_empty());
            assert!(!p.eval_interval.is_zero());
        }
        assert_eq!(AlertProfile::default_profile().name, "default");
    }
}
