//! # tsuru-telemetry — deterministic observability for the simulated stack
//!
//! The paper's central claims (no host slowdown, prefix-consistent backup
//! cuts) are *temporal* claims about the journey of one write: acked at
//! the primary, journaled, shipped over the WAN, applied at the backup.
//! This crate makes that journey visible without perturbing it:
//!
//! - a **causal span tracer** ([`Tracer`]) records sim-time-stamped spans
//!   with parent links, forming a per-write lifecycle
//!   `host_write → journal_append → wan_transfer → backup_apply` plus
//!   `snapshot`, `pump_stall` and `fault` spans (see [`spans`]);
//! - a **metrics registry** ([`MetricsRegistry`]) holds named counters,
//!   gauges, histograms and time series behind stable `BTreeMap` keys
//!   (see [`names`]), with serializable point-in-time snapshots;
//! - **exporters** render a recorded trace as JSONL
//!   ([`Tracer::export_jsonl`]) or Chrome `trace_event` JSON
//!   ([`Tracer::export_chrome`]) for `chrome://tracing` / Perfetto.
//!
//! Everything is keyed to [`SimTime`](tsuru_sim::SimTime) — no wall clock,
//! no ambient randomness — so two runs of the same seed produce
//! byte-identical exports at any harness thread count. The
//! [`Tracer::disabled`] handle is a no-op whose emit methods never build
//! their attributes (they take closures), keeping the hot path free when
//! tracing is off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
mod export;
pub mod incident;
mod registry;
mod tracer;

pub use alert::{AlertEngine, AlertProfile, AlertRule, RuleKind, Signal};
pub use incident::{FaultRef, Incident, IncidentLog};
pub use registry::{MetricsRegistry, MetricsSnapshot, SeriesSummary};
pub use tracer::{AttrVal, Attrs, RecordKind, SpanId, TraceRecord, Tracer};

/// Stable span and instant names emitted by the instrumented stack.
pub mod spans {
    /// Root span of one host write: submit to host acknowledgement.
    pub const HOST_WRITE: &str = "host_write";
    /// Zero-width span: the write entered a primary-side journal.
    pub const JOURNAL_APPEND: &str = "journal_append";
    /// One journal entry crossing the inter-site link (send → arrival).
    pub const WAN_TRANSFER: &str = "wan_transfer";
    /// One journal entry applied to its secondary volume (admit → done).
    pub const BACKUP_APPLY: &str = "backup_apply";
    /// Instant: a write parked by the per-volume ordering gate.
    pub const TICKET_WAIT: &str = "ticket_wait";
    /// Instant: a write stalled by a full journal (Block policy).
    pub const JOURNAL_STALL: &str = "journal_stall";
    /// Instant: a transfer pump backing off (loss, outage, flow control).
    pub const PUMP_STALL: &str = "pump_stall";
    /// Instant: an in-flight batch discarded at the receive path.
    pub const FRAME_DISCARD: &str = "frame_discard";
    /// Instant: an array snapshot (or snapshot group) was taken.
    pub const SNAPSHOT: &str = "snapshot";
    /// Span: an injected fault window (start → heal).
    pub const FAULT: &str = "fault";
    /// Instant: a frame delivered by a link.
    pub const LINK_FRAME: &str = "link_frame";
    /// Instant: a frame lost by a link.
    pub const LINK_LOSS: &str = "link_loss";
    /// Instant: a frame refused because the link is down.
    pub const LINK_DOWN: &str = "link_down";
    /// Span: one controller reconcile pass.
    pub const RECONCILE: &str = "reconcile";
    /// Span: one supervisor recovery attempt window (suspension → healthy).
    pub const RECOVERY: &str = "recovery";
    /// Instant: the supervisor circuit breaker parked a group.
    pub const SUPERVISOR_ALARM: &str = "supervisor_alarm";
}

/// Stable metric names used by the instrumented stack.
pub mod names {
    /// Host writes rejected because the target array failed.
    pub const WRITES_FAILED: &str = "writes.failed";
    /// Host write attempts stalled by a full journal (Block policy).
    pub const JOURNAL_STALL_RETRIES: &str = "writes.journal_stall_retries";
    /// Host write attempts parked by the per-volume ordering gate.
    pub const WRITE_ORDER_WAITS: &str = "writes.order_waits";
    /// Snapshots taken (single or group members).
    pub const SNAPSHOTS_TAKEN: &str = "snapshots.taken";
    /// Time series: total primary-journal occupancy in bytes, sampled at
    /// transfer and apply edges.
    pub const JOURNAL_OCCUPANCY: &str = "journal.occupancy_bytes";
    /// Time series: acked-but-unapplied writes across all pairs (the RPO
    /// lag), sampled at transfer and apply edges.
    pub const RPO_LAG: &str = "rpo.lag_writes";
    /// Journal appends refused (or stalled) because the journal was full.
    pub const JOURNAL_OVERFLOW: &str = "journal.overflow_hits";
    /// Supervisor resync attempts (delta and full).
    pub const SUPERVISOR_ATTEMPTS: &str = "supervisor.attempts";
    /// Time series: supervisor time-to-heal per recovered group, in
    /// nanoseconds of sim-time.
    pub const SUPERVISOR_TIME_TO_HEAL: &str = "supervisor.time_to_heal_ns";
    /// Histogram: sampled supervisor backoff waits, in nanoseconds of
    /// sim-time (one sample per backoff the supervisor begins).
    pub const SUPERVISOR_BACKOFF_WAIT: &str = "supervisor.backoff_wait_ns";
    /// Histogram: recovery-stage duration per healed group (suspension
    /// to healthy), in nanoseconds of sim-time.
    pub const SUPERVISOR_RECOVERY_STAGE: &str = "supervisor.recovery_stage_ns";
    /// Health series, sampled only on SLO ticks while the alert engine
    /// is armed: acked-but-unapplied writes across all pairs.
    pub const HEALTH_RPO_LAG: &str = "health.rpo_lag";
    /// Health series: total primary-journal occupancy in bytes.
    pub const HEALTH_JOURNAL_OCCUPANCY: &str = "health.journal_occupancy_bytes";
    /// Health series: links currently refusing frames (down).
    pub const HEALTH_LINKS_DOWN: &str = "health.links_down";
    /// Health series: arrays currently failed.
    pub const HEALTH_ARRAYS_FAILED: &str = "health.arrays_failed";
    /// Health series: replication groups whose pair state is degraded
    /// (any member not PAIR).
    pub const HEALTH_GROUPS_DEGRADED: &str = "health.groups_degraded";
    /// Per-shard series: primary-journal occupancy in bytes across the
    /// shard's groups (sampled via [`super::MetricsRegistry::sample_shard`]).
    pub const SHARD_JOURNAL_OCCUPANCY: &str = "shard.journal_occupancy_bytes";
    /// Per-shard series: acked-but-unapplied writes across the shard's
    /// pairs (the shard's apply lag).
    pub const SHARD_APPLY_LAG: &str = "shard.apply_lag_writes";
}
