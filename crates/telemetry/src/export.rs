//! Trace exporters: JSON Lines and Chrome `trace_event` JSON.
//!
//! Both writers build their output by hand from integer sim-time — no
//! floating point, no map iteration over unordered containers — so the
//! bytes are a pure function of the recorded trace: the same seed
//! produces identical exports at any harness thread count.

use crate::tracer::{AttrVal, RecordKind, SpanId, TraceRecord};

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_attrs(attrs: &[(&'static str, AttrVal)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(k, out);
        out.push_str("\":");
        match v {
            AttrVal::U64(n) => out.push_str(&n.to_string()),
            AttrVal::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Render a trace as JSON Lines: one self-describing object per record,
/// in emission order. Empty input yields the empty string.
pub fn export_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let ev = match r.kind {
            RecordKind::Start => "start",
            RecordKind::End => "end",
            RecordKind::Span { .. } => "span",
            RecordKind::Instant => "instant",
        };
        out.push_str(&format!(
            "{{\"ev\":\"{}\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"t_ns\":{}",
            ev,
            r.id.0,
            r.parent.0,
            r.name,
            r.t.as_nanos()
        ));
        if let RecordKind::Span { end } = r.kind {
            out.push_str(&format!(",\"end_ns\":{}", end.as_nanos()));
        }
        out.push_str(",\"attrs\":");
        push_attrs(&r.attrs, &mut out);
        out.push_str("}\n");
    }
    out
}

/// Microseconds with nanosecond fraction, rendered via integer math so
/// the bytes never depend on float formatting.
fn ts_micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn chrome_event(
    ph: char,
    id: SpanId,
    name: &str,
    ns: u64,
    parent: SpanId,
    attrs: &[(&'static str, AttrVal)],
    out: &mut String,
) {
    out.push_str(&format!(
        "{{\"ph\":\"{}\",\"cat\":\"tsuru\",\"id\":{},\"name\":\"{}\",\"pid\":1,\"tid\":1,\"ts\":{}",
        ph,
        id.0,
        name,
        ts_micros(ns)
    ));
    // Chrome async events with the same name+id nest across b/e; args on
    // the "b" edge carry the causal parent and the record attributes.
    if ph != 'e' {
        out.push_str(",\"args\":{\"parent\":");
        out.push_str(&parent.0.to_string());
        for (k, v) in attrs {
            out.push_str(",\"");
            escape_json(k, out);
            out.push_str("\":");
            match v {
                AttrVal::U64(n) => out.push_str(&n.to_string()),
                AttrVal::Str(s) => {
                    out.push('"');
                    escape_json(s, out);
                    out.push('"');
                }
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// Render a trace as a Chrome `trace_event` document for
/// `chrome://tracing` / Perfetto. Spans become async begin/end pairs
/// (`ph:"b"`/`"e"`, matched by name + id, so overlapping write
/// lifecycles don't nest), instants become async instants (`ph:"n"`).
pub fn export_chrome(records: &[TraceRecord]) -> String {
    // "e" events must repeat their "b" event's name; End records carry
    // the same name their Start was emitted with.
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for r in records {
        let mut emit = |ph: char, ns: u64, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n  ");
            chrome_event(ph, r.id, r.name, ns, r.parent, &r.attrs, out);
        };
        match r.kind {
            RecordKind::Start => emit('b', r.t.as_nanos(), &mut out),
            RecordKind::End => emit('e', r.t.as_nanos(), &mut out),
            RecordKind::Span { end } => {
                emit('b', r.t.as_nanos(), &mut out);
                emit('e', end.as_nanos(), &mut out);
            }
            RecordKind::Instant => emit('n', r.t.as_nanos(), &mut out),
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Attrs, Tracer};
    use tsuru_sim::SimTime;

    fn sample_trace() -> Vec<TraceRecord> {
        let t = Tracer::enabled();
        let w = t.span_start("host_write", SimTime::from_micros(1), SpanId::NONE, || {
            vec![("vol", "a0:v1".into()), ("lba", 7u64.into())]
        });
        t.span_complete(
            "wan_transfer",
            SimTime::from_micros(2),
            SimTime::from_micros(9),
            w,
            Attrs::new,
        );
        t.instant("snapshot", SimTime::from_nanos(3_500), w, Attrs::new);
        t.span_end("host_write", w, SimTime::from_micros(10), Attrs::new);
        t.records()
    }

    #[test]
    fn jsonl_is_stable() {
        let lines = export_jsonl(&sample_trace());
        let expect = concat!(
            "{\"ev\":\"start\",\"id\":1,\"parent\":0,\"name\":\"host_write\",\"t_ns\":1000,\"attrs\":{\"vol\":\"a0:v1\",\"lba\":7}}\n",
            "{\"ev\":\"span\",\"id\":2,\"parent\":1,\"name\":\"wan_transfer\",\"t_ns\":2000,\"end_ns\":9000,\"attrs\":{}}\n",
            "{\"ev\":\"instant\",\"id\":3,\"parent\":1,\"name\":\"snapshot\",\"t_ns\":3500,\"attrs\":{}}\n",
            "{\"ev\":\"end\",\"id\":1,\"parent\":0,\"name\":\"host_write\",\"t_ns\":10000,\"attrs\":{}}\n",
        );
        assert_eq!(lines, expect);
    }

    #[test]
    fn chrome_pairs_async_events() {
        let doc = export_chrome(&sample_trace());
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("]}\n"));
        // The complete wan_transfer span becomes one b and one e with id 2.
        let b = "{\"ph\":\"b\",\"cat\":\"tsuru\",\"id\":2,\"name\":\"wan_transfer\",\"pid\":1,\"tid\":1,\"ts\":2.000,\"args\":{\"parent\":1}}";
        let e = "{\"ph\":\"e\",\"cat\":\"tsuru\",\"id\":2,\"name\":\"wan_transfer\",\"pid\":1,\"tid\":1,\"ts\":9.000}";
        assert!(doc.contains(b), "{doc}");
        assert!(doc.contains(e), "{doc}");
        // Sub-microsecond instants keep nanosecond precision via the
        // fractional-microsecond ts.
        assert!(doc.contains("\"ts\":3.500"), "{doc}");
        // host_write start/end pair by name + id 1.
        assert!(doc.contains("\"ph\":\"b\",\"cat\":\"tsuru\",\"id\":1,\"name\":\"host_write\""));
        assert!(doc.contains("\"ph\":\"e\",\"cat\":\"tsuru\",\"id\":1,\"name\":\"host_write\""));
    }

    #[test]
    fn strings_are_escaped() {
        let t = Tracer::enabled();
        t.instant("fault", SimTime::ZERO, SpanId::NONE, || {
            vec![("detail", "say \"hi\"\\\n\u{1}".into())]
        });
        let line = export_jsonl(&t.records());
        assert!(
            line.contains("\"detail\":\"say \\\"hi\\\"\\\\\\n\\u0001\""),
            "{line}"
        );
        let doc = export_chrome(&t.records());
        assert!(doc.contains("\\u0001"), "{doc}");
    }

    #[test]
    fn empty_trace_exports() {
        assert_eq!(export_jsonl(&[]), "");
        assert_eq!(export_chrome(&[]), "{\"traceEvents\":[\n]}\n");
    }
}
