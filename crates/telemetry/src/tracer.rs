//! The causal span tracer: sim-time-stamped spans with parent links.
//!
//! A [`Tracer`] is a cheap cloneable handle. [`Tracer::disabled`] is a
//! no-op — every emit method returns [`SpanId::NONE`] without touching
//! its attribute closure — so instrumented hot paths cost one branch
//! when tracing is off. [`Tracer::enabled`] records into a shared
//! buffer; all clones of one handle append to the same trace.
//!
//! Span ids are allocated in emission order starting at 1, and every
//! record carries the sim time it describes, so a trace is a pure
//! function of the simulated history: same seed, same trace bytes.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use tsuru_sim::SimTime;

/// Identifier of one span or instant within a trace.
///
/// `SpanId::NONE` (0) means "no parent" / "not traced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id: no parent, or emitted while tracing was disabled.
    pub const NONE: SpanId = SpanId(0);

    /// True for [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One attribute value attached to a trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrVal {
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
}

impl From<u64> for AttrVal {
    fn from(v: u64) -> Self {
        AttrVal::U64(v)
    }
}

impl From<&str> for AttrVal {
    fn from(v: &str) -> Self {
        AttrVal::Str(v.to_string())
    }
}

impl From<String> for AttrVal {
    fn from(v: String) -> Self {
        AttrVal::Str(v)
    }
}

impl fmt::Display for AttrVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrVal::U64(v) => write!(f, "{v}"),
            AttrVal::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Attribute list: static keys, owned values.
pub type Attrs = Vec<(&'static str, AttrVal)>;

/// What a [`TraceRecord`] describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened at `t`; its matching [`RecordKind::End`] carries the
    /// same id.
    Start,
    /// A span with this id closed at `t`.
    End,
    /// A complete span emitted as one record: opened at `t`, closed at
    /// `end` (used when both edges are known at emission time, e.g. a
    /// WAN transfer whose arrival is scheduled when it is sent).
    Span {
        /// When the span closed.
        end: SimTime,
    },
    /// A point event at `t`.
    Instant,
}

/// One entry in a recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// What this record describes.
    pub kind: RecordKind,
    /// The span this record belongs to ([`RecordKind::End`] reuses the
    /// id allocated by its [`RecordKind::Start`]).
    pub id: SpanId,
    /// Causal parent, or [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// Stable span name (see [`crate::spans`]). `End` records repeat the
    /// name of their `Start`.
    pub name: &'static str,
    /// Sim time of the event (start time for `Span` records).
    pub t: SimTime,
    /// Attributes. If a fault window was open when the record was
    /// emitted, the tracer appends a `("fault", <span id>)` attribute —
    /// this is the causal link between injected faults and the write
    /// lifecycles they perturb.
    pub attrs: Attrs,
}

#[derive(Debug, Default)]
struct TraceCore {
    next_id: u64,
    records: Vec<TraceRecord>,
    /// Stack of open fault spans; the innermost one is stamped onto
    /// every record emitted while it is open.
    fault_stack: Vec<SpanId>,
}

impl TraceCore {
    fn alloc(&mut self) -> SpanId {
        let id = SpanId(self.next_id);
        self.next_id += 1;
        id
    }

    fn stamp_fault(&self, attrs: &mut Attrs, name: &'static str) {
        if name == crate::spans::FAULT {
            return; // fault spans don't reference themselves
        }
        if let Some(&f) = self.fault_stack.last() {
            attrs.push(("fault", AttrVal::U64(f.0)));
        }
    }
}

/// Cheap cloneable tracing handle. See the [module docs](self).
#[derive(Clone, Default)]
pub struct Tracer(Option<Rc<RefCell<TraceCore>>>);

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(core) => write!(f, "Tracer(on, {} records)", core.borrow().records.len()),
            None => f.write_str("Tracer(off)"),
        }
    }
}

impl Tracer {
    /// A no-op handle: every emit method is a single branch and returns
    /// [`SpanId::NONE`] without evaluating its attribute closure.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A recording handle. Clones share the same trace buffer.
    pub fn enabled() -> Self {
        Tracer(Some(Rc::new(RefCell::new(TraceCore {
            next_id: 1,
            ..TraceCore::default()
        }))))
    }

    /// True when this handle records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Open a span at `t` under `parent`. Returns its id, or
    /// [`SpanId::NONE`] when disabled.
    pub fn span_start(
        &self,
        name: &'static str,
        t: SimTime,
        parent: SpanId,
        attrs: impl FnOnce() -> Attrs,
    ) -> SpanId {
        let Some(core) = &self.0 else {
            return SpanId::NONE;
        };
        let mut core = core.borrow_mut();
        let id = core.alloc();
        let mut attrs = attrs();
        core.stamp_fault(&mut attrs, name);
        core.records.push(TraceRecord {
            kind: RecordKind::Start,
            id,
            parent,
            name,
            t,
            attrs,
        });
        id
    }

    /// Close span `id` at `t`. No-op when disabled or `id` is
    /// [`SpanId::NONE`].
    pub fn span_end(
        &self,
        name: &'static str,
        id: SpanId,
        t: SimTime,
        attrs: impl FnOnce() -> Attrs,
    ) {
        let Some(core) = &self.0 else { return };
        if id.is_none() {
            return;
        }
        let mut core = core.borrow_mut();
        core.records.push(TraceRecord {
            kind: RecordKind::End,
            id,
            parent: SpanId::NONE,
            name,
            t,
            attrs: attrs(),
        });
    }

    /// Emit a complete span (both edges known) under `parent`. Returns
    /// its id, or [`SpanId::NONE`] when disabled.
    pub fn span_complete(
        &self,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        parent: SpanId,
        attrs: impl FnOnce() -> Attrs,
    ) -> SpanId {
        let Some(core) = &self.0 else {
            return SpanId::NONE;
        };
        let mut core = core.borrow_mut();
        let id = core.alloc();
        let mut attrs = attrs();
        core.stamp_fault(&mut attrs, name);
        core.records.push(TraceRecord {
            kind: RecordKind::Span { end },
            id,
            parent,
            name,
            t: start,
            attrs,
        });
        id
    }

    /// Emit a point event at `t` under `parent`. Returns its id, or
    /// [`SpanId::NONE`] when disabled.
    pub fn instant(
        &self,
        name: &'static str,
        t: SimTime,
        parent: SpanId,
        attrs: impl FnOnce() -> Attrs,
    ) -> SpanId {
        let Some(core) = &self.0 else {
            return SpanId::NONE;
        };
        let mut core = core.borrow_mut();
        let id = core.alloc();
        let mut attrs = attrs();
        core.stamp_fault(&mut attrs, name);
        core.records.push(TraceRecord {
            kind: RecordKind::Instant,
            id,
            parent,
            name,
            t,
            attrs,
        });
        id
    }

    /// Push an open fault window: until the matching [`Tracer::pop_fault`],
    /// every emitted record gains a `("fault", id)` attribute.
    pub fn push_fault(&self, id: SpanId) {
        let Some(core) = &self.0 else { return };
        if id.is_none() {
            return;
        }
        core.borrow_mut().fault_stack.push(id);
    }

    /// Close the fault window `id` (removes it wherever it sits in the
    /// stack, so overlapping faults may heal in any order).
    pub fn pop_fault(&self, id: SpanId) {
        let Some(core) = &self.0 else { return };
        core.borrow_mut().fault_stack.retain(|&f| f != id);
    }

    /// The innermost open fault window, or [`SpanId::NONE`].
    pub fn current_fault(&self) -> SpanId {
        match &self.0 {
            Some(core) => core.borrow().fault_stack.last().copied().unwrap_or(SpanId::NONE),
            None => SpanId::NONE,
        }
    }

    /// Every open fault window, outermost first, each with the `kind`
    /// attribute its `fault` span was opened with ("" when the span
    /// carried none). This is how an alert incident names the faults
    /// that were active when it fired.
    pub fn open_faults(&self) -> Vec<(SpanId, String)> {
        let Some(core) = &self.0 else {
            return Vec::new();
        };
        let core = core.borrow();
        core.fault_stack
            .iter()
            .map(|&id| {
                let kind = core
                    .records
                    .iter()
                    .find(|r| r.id == id && r.kind == RecordKind::Start)
                    .and_then(|r| {
                        r.attrs.iter().find(|(k, _)| *k == "kind").map(|(_, v)| v.to_string())
                    })
                    .unwrap_or_default();
                (id, kind)
            })
            .collect()
    }

    /// Number of records so far (0 when disabled).
    pub fn len(&self) -> usize {
        match &self.0 {
            Some(core) => core.borrow().records.len(),
            None => 0,
        }
    }

    /// True when no records were emitted (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the recorded trace (empty when disabled).
    pub fn records(&self) -> Vec<TraceRecord> {
        match &self.0 {
            Some(core) => core.borrow().records.clone(),
            None => Vec::new(),
        }
    }

    /// The last `n` records rendered as stable one-line strings — the
    /// "trailing trace window" the chaos auditor attaches to invariant
    /// violations.
    pub fn tail(&self, n: usize) -> Vec<String> {
        let Some(core) = &self.0 else {
            return Vec::new();
        };
        let core = core.borrow();
        let skip = core.records.len().saturating_sub(n);
        core.records.iter().skip(skip).map(render_record).collect()
    }

    /// Export the trace as JSON Lines (one record per line). Empty
    /// string when disabled.
    pub fn export_jsonl(&self) -> String {
        crate::export::export_jsonl(&self.records())
    }

    /// Export the trace as Chrome `trace_event` JSON for
    /// `chrome://tracing` / Perfetto. Always a valid document, even when
    /// disabled (empty event array).
    pub fn export_chrome(&self) -> String {
        crate::export::export_chrome(&self.records())
    }
}

/// Render one record as a stable one-line string, e.g.
/// `#12 start host_write t=0.000123s parent=#3 vol=a0:v1 lba=7`.
pub(crate) fn render_record(r: &TraceRecord) -> String {
    let mut line = match &r.kind {
        RecordKind::Start => format!("{} start {} t={}", r.id, r.name, r.t),
        RecordKind::End => format!("{} end {} t={}", r.id, r.name, r.t),
        RecordKind::Span { end } => {
            format!("{} span {} t={} end={}", r.id, r.name, r.t, end)
        }
        RecordKind::Instant => format!("{} instant {} t={}", r.id, r.name, r.t),
    };
    if !r.parent.is_none() {
        line.push_str(&format!(" parent={}", r.parent));
    }
    for (k, v) in &r.attrs {
        line.push_str(&format!(" {k}={v}"));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsuru_sim::SimDuration;

    fn at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn disabled_tracer_is_inert_and_lazy() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let id = t.span_start("host_write", at(1), SpanId::NONE, || {
            panic!("attrs must not be built when disabled")
        });
        assert!(id.is_none());
        t.span_end("host_write", id, at(2), || panic!("lazy"));
        assert!(t.instant("snapshot", at(3), SpanId::NONE, || panic!("lazy")).is_none());
        assert!(t.records().is_empty());
        assert!(t.tail(8).is_empty());
        assert_eq!(t.export_jsonl(), "");
    }

    #[test]
    fn ids_are_dense_and_clones_share_the_buffer() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        let a = t.span_start("host_write", at(1), SpanId::NONE, Vec::new);
        let b = t2.instant("snapshot", at(2), a, Vec::new);
        assert_eq!(a, SpanId(1));
        assert_eq!(b, SpanId(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.records(), t2.records());
    }

    #[test]
    fn fault_stack_stamps_records() {
        let t = Tracer::enabled();
        let f = t.span_start("fault", at(1), SpanId::NONE, Vec::new);
        t.push_fault(f);
        assert_eq!(t.current_fault(), f);
        let w = t.span_start("host_write", at(2), SpanId::NONE, Vec::new);
        // Fault spans themselves are never stamped.
        let f2 = t.span_start("fault", at(3), SpanId::NONE, Vec::new);
        t.pop_fault(f);
        let w2 = t.span_start("host_write", at(4), SpanId::NONE, Vec::new);
        let recs = t.records();
        let attr_of = |id: SpanId| {
            recs.iter()
                .find(|r| r.id == id && r.kind == RecordKind::Start)
                .expect("record exists for this id")
                .attrs
                .clone()
        };
        assert_eq!(attr_of(w), vec![("fault", AttrVal::U64(f.0))]);
        assert!(attr_of(f2).is_empty());
        assert!(attr_of(w2).is_empty());
        assert!(t.current_fault().is_none());
    }

    #[test]
    fn open_faults_carry_their_kind_attr() {
        let t = Tracer::enabled();
        assert!(Tracer::disabled().open_faults().is_empty());
        let a = t.span_start("fault", at(1), SpanId::NONE, || {
            vec![("kind", "link-partition".into())]
        });
        let b = t.span_start("fault", at(2), SpanId::NONE, Vec::new);
        t.push_fault(a);
        t.push_fault(b);
        assert_eq!(
            t.open_faults(),
            vec![(a, "link-partition".to_string()), (b, String::new())]
        );
        t.pop_fault(a);
        assert_eq!(t.open_faults(), vec![(b, String::new())]);
    }

    #[test]
    fn overlapping_faults_heal_in_any_order() {
        let t = Tracer::enabled();
        let a = t.span_start("fault", at(1), SpanId::NONE, Vec::new);
        let b = t.span_start("fault", at(2), SpanId::NONE, Vec::new);
        t.push_fault(a);
        t.push_fault(b);
        t.pop_fault(a); // heal the outer one first
        assert_eq!(t.current_fault(), b);
        t.pop_fault(b);
        assert!(t.current_fault().is_none());
    }

    #[test]
    fn tail_renders_the_trailing_window() {
        let t = Tracer::enabled();
        for i in 0..10u64 {
            t.instant("pump_stall", at(i), SpanId::NONE, || vec![("group", i.into())]);
        }
        let tail = t.tail(3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0], "#8 instant pump_stall t=0.000007s group=7");
        assert_eq!(tail[2], "#10 instant pump_stall t=0.000009s group=9");
    }

    #[test]
    fn render_covers_all_kinds() {
        let t = Tracer::enabled();
        let s = t.span_start("host_write", at(1), SpanId::NONE, || {
            vec![("vol", "a0:v1".into()), ("lba", 7u64.into())]
        });
        t.span_end("host_write", s, at(5), || vec![("ack", "ok".into())]);
        t.span_complete("wan_transfer", at(2), at(4), s, Vec::new);
        let tail = t.tail(10);
        assert_eq!(tail[0], "#1 start host_write t=0.000001s vol=a0:v1 lba=7");
        assert_eq!(tail[1], "#1 end host_write t=0.000005s ack=ok");
        assert_eq!(
            tail[2],
            "#2 span wan_transfer t=0.000002s end=0.000004s parent=#1"
        );
    }
}
