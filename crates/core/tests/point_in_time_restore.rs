//! Point-in-time restore from the backup catalogue: materialize snapshot
//! generations as fresh volumes and bring the business process back to an
//! earlier consistent instant — the restore path every backup system needs
//! on top of the paper's failover story.

use tsuru_core::{BackupMode, RigConfig, TwoSiteRig};
use tsuru_ecom::{check_cross_db, ORDERS_TABLE};
use tsuru_minidb::MiniDb;
use tsuru_sim::{SimDuration, SimTime};
use tsuru_storage::VolumeView;

#[test]
fn restore_rewinds_to_the_snapshot_instant_and_can_continue() {
    let mut rig = TwoSiteRig::new(RigConfig {
        seed: 77,
        mode: BackupMode::AdcConsistencyGroup,
        ..Default::default()
    });
    tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);

    // T1: freeze a generation at the backup site.
    rig.sim.run_until(&mut rig.world, SimTime::from_millis(150));
    let committed_at_t1 = rig.committed_orders();
    let snaps = rig.snapshot_backup_group("gen-1");

    // Business continues well past T1 (say, until a bad deployment that
    // corrupts the application data is noticed).
    rig.world.app_mut().stopped = true; // stop issuing at the horizon below
    rig.sim.run_until(&mut rig.world, SimTime::from_millis(400));
    let committed_at_end = {
        // drain the remaining in-flight work
        rig.sim.run(&mut rig.world);
        rig.committed_orders()
    };
    assert!(committed_at_end >= committed_at_t1);

    // Restore: materialize the generation as fresh, writable volumes.
    let backup = rig.backup;
    let restored: Vec<_> = snaps
        .iter()
        .enumerate()
        .map(|(i, &snap)| {
            rig.world
                .st
                .array_mut(backup)
                .create_volume_from_snapshot(snap, format!("restore-{i}"))
        })
        .collect();

    // Open the databases on the restored volumes.
    let arr = rig.world.st.array(backup);
    let (sales, sales_rep) = MiniDb::recover(
        "sales-restored",
        &VolumeView::new(arr, restored[0]),
        &VolumeView::new(arr, restored[1]),
        rig.config.db.clone(),
    )
    .expect("restored sales recovers");
    let (stock, _) = MiniDb::recover(
        "stock-restored",
        &VolumeView::new(arr, restored[2]),
        &VolumeView::new(arr, restored[3]),
        rig.config.db.clone(),
    )
    .expect("restored stock recovers");

    // The restored state is the T1 image: consistent, and strictly older
    // than the end state.
    let inv = check_cross_db(&sales, &stock, rig.config.workload.initial_stock);
    assert!(inv.consistent(), "{:?}", inv.violations);
    let restored_orders = sales.scan_table(ORDERS_TABLE).len() as u64;
    assert!(restored_orders <= committed_at_t1);
    assert!(
        restored_orders < committed_at_end,
        "restore rewound past later business ({restored_orders} vs {committed_at_end})"
    );
    assert!(sales_rep.wal_end > 0 || restored_orders == 0);

    // The restored instance is fully writable: continue service on it.
    let mut sales = sales;
    let tx = sales.begin();
    sales.put(
        tx,
        ORDERS_TABLE,
        999_999,
        &tsuru_ecom::OrderRow {
            item: 1,
            quantity: 1,
            client: 0,
        }
        .encode(),
    );
    let plan = sales.commit(tx);
    assert!(!plan.is_empty());
    assert_eq!(
        sales.scan_table(ORDERS_TABLE).len() as u64,
        restored_orders + 1
    );
}

#[test]
fn restored_volume_is_independent_of_its_source() {
    let mut rig = TwoSiteRig::new(RigConfig {
        seed: 78,
        mode: BackupMode::AdcConsistencyGroup,
        ..Default::default()
    });
    tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
    rig.sim.run_until(&mut rig.world, SimTime::from_millis(100));
    let snaps = rig.snapshot_backup_group("gen");
    let backup = rig.backup;
    let restored = rig
        .world
        .st
        .array_mut(backup)
        .create_volume_from_snapshot(snaps[1], "sales-data-clone");
    let image_before = rig
        .world
        .st
        .array(backup)
        .volume(restored)
        .content_hashes();
    // Replication keeps mutating the source volume; the clone must not move.
    rig.sim.run_for(&mut rig.world, SimDuration::from_millis(150));
    let image_after = rig
        .world
        .st
        .array(backup)
        .volume(restored)
        .content_hashes();
    assert_eq!(image_before, image_after);
}
