//! End-to-end tests of the full demonstration system (container platforms,
//! operator, plugins) and the experiment runners.

#![allow(clippy::field_reassign_with_default)]

use tsuru_core::experiments::{e1_slowdown, e2_collapse, e5_operator, e6_demo, manual_steps};
use tsuru_core::{BackupMode, DemoConfig, DemoSystem, RigConfig, TwoSiteRig};
use tsuru_nso::NsoConfig;
use tsuru_sim::{SimDuration, SimTime};

#[test]
fn demo_step1_tagging_configures_everything() {
    let mut demo = DemoSystem::new(DemoConfig::default());
    // Before tagging: no pairs, no claims at the backup site.
    assert!(demo.groups().is_empty());
    assert_eq!(demo.backup_api.pvcs.len(), 0);

    let (main, backup) = demo.step1_configure_backup();
    assert!(main.converged, "{main:?}");
    assert!(backup.converged, "{backup:?}");

    // One consistency group with four pairs.
    let groups = demo.groups();
    assert_eq!(groups.len(), 1, "one CG for the namespace");
    assert_eq!(demo.world.st.fabric.group(groups[0]).pairs.len(), 4);

    // Fig. 4: claims appeared at the backup site.
    assert_eq!(demo.backup_api.pvcs.len(), 4);
    assert!(demo.backup_api.pvcs.contains("shop/sales-wal"));

    // The ReplicationGroup CR rolled up to Replicating.
    let rg = demo
        .main_api
        .replication_groups
        .get("shop/shop-backup")
        .expect("CR exists");
    assert_eq!(rg.state, tsuru_container::ReplicationState::Replicating);
    assert_eq!(rg.member_pvcs.len(), 4);

    // The console screen shows both sites (Fig. 2).
    let screen = demo.console_screen();
    assert!(screen.iter().any(|l| l.contains("sales-wal")));
}

#[test]
fn demo_full_three_steps_and_disaster() {
    let out = e6_demo(21);
    assert!(out.committed_orders > 100, "workload ran");
    assert!(out.analytics_orders > 0, "analytics saw the snapshot");
    assert!(
        out.analytics_orders <= out.committed_orders,
        "snapshot is a past image"
    );
    assert!(out.failover_consistent, "CG failover must be consistent");
    assert!(out.business_recovered, "business process recovers");
    assert!(out.rto > SimDuration::ZERO);
    // Transcript reproduces the demo narration.
    let text = out.transcript.join("\n");
    assert!(text.contains("step 1"), "{text}");
    assert!(text.contains("step 2"));
    assert!(text.contains("step 3"));
    assert!(text.contains("failover"));
}

#[test]
fn demo_naive_policy_creates_per_volume_groups() {
    let mut cfg = DemoConfig::default();
    cfg.nso = NsoConfig {
        consistency_group: false,
        ..Default::default()
    };
    let mut demo = DemoSystem::new(cfg);
    demo.step1_configure_backup();
    assert_eq!(demo.groups().len(), 4, "one group per volume");
}

#[test]
fn e1_shape_adc_flat_sdc_grows_with_rtt() {
    let rows = e1_slowdown(3, &[2, 20], SimDuration::from_millis(150));
    assert_eq!(rows.len(), 6);
    let find = |mode: &str, rtt: f64| {
        rows.iter()
            .find(|r| r.mode == mode && r.rtt_ms == rtt)
            .unwrap()
    };
    // ADC stays within 20% of no-backup at both distances.
    for rtt in [2.0, 20.0] {
        let none = find("none", rtt);
        let adc = find("adc-cg", rtt);
        assert!(
            adc.p50_ms < none.p50_ms * 1.2 + 0.05,
            "rtt={rtt}: adc {} vs none {}",
            adc.p50_ms,
            none.p50_ms
        );
    }
    // SDC pays at least one RTT per transaction phase and grows with RTT.
    let sdc2 = find("sdc", 2.0);
    let sdc20 = find("sdc", 20.0);
    assert!(sdc2.p50_ms > 2.0, "SDC at 2ms RTT: {}", sdc2.p50_ms);
    assert!(sdc20.p50_ms > 20.0, "SDC at 20ms RTT: {}", sdc20.p50_ms);
    assert!(sdc20.p50_ms > sdc2.p50_ms * 4.0);
    // And throughput collapses accordingly (closed loop).
    assert!(find("adc-cg", 20.0).tps > sdc20.tps * 3.0);
}

#[test]
fn e2_shape_cg_never_collapses_naive_often_does() {
    let rows = e2_collapse(100, 8, SimDuration::from_millis(2));
    let cg = rows.iter().find(|r| r.mode == "adc-cg").unwrap();
    let naive = rows.iter().find(|r| r.mode == "adc-naive").unwrap();
    assert_eq!(cg.storage_collapses, 0, "{cg:?}");
    assert_eq!(cg.business_collapses, 0, "{cg:?}");
    assert!(
        naive.storage_collapses >= 6,
        "naive should almost always violate fidelity: {naive:?}"
    );
    // Both lose a tail of orders (ADC), but only naive corrupts.
    assert!(cg.avg_lost_orders >= 0.0);
}

#[test]
fn e5_operator_is_one_action_regardless_of_scale() {
    let rows = e5_operator(&[2, 10, 50]);
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert!(row.converged, "{row:?}");
        assert_eq!(row.user_actions_operator, 1);
        assert_eq!(row.pairs, row.volumes as u64);
        assert_eq!(row.backup_claims, row.volumes);
        assert_eq!(row.user_actions_manual, manual_steps(row.volumes as u64));
        assert!(row.user_actions_manual > row.user_actions_operator as u64);
    }
    // Manual effort grows linearly; operator effort stays constant.
    assert!(rows[2].user_actions_manual > rows[0].user_actions_manual * 5);
}

#[test]
fn rig_sdc_loses_nothing_on_failover() {
    let mut cfg = RigConfig::default();
    cfg.mode = BackupMode::Sdc;
    cfg.seed = 5;
    let mut rig = TwoSiteRig::new(cfg);
    let fail_at = SimTime::from_millis(100);
    rig.schedule_main_failure(fail_at);
    tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
    rig.sim
        .run_until(&mut rig.world, fail_at + SimDuration::from_millis(100));
    rig.failover(fail_at);
    let outcome = rig.recover_from_backup();
    assert!(!outcome.hard_failure());
    let orders = outcome.orders.as_ref().expect("sales recovered");
    // SDC: every acknowledged order is at the backup site.
    assert_eq!(orders.lost, 0, "{orders:?}");
    assert!(outcome.fully_consistent());
}

#[test]
fn a1_lag_grows_with_pump_interval_but_host_unaffected() {
    use tsuru_core::experiments::a1_backup_lag;
    let rows = a1_backup_lag(19, &[200, 5000], &[8]);
    let fast = rows.iter().find(|r| r.pump_interval_us == 200).unwrap();
    let slow = rows.iter().find(|r| r.pump_interval_us == 5000).unwrap();
    assert!(
        slow.mean_lag_writes > fast.mean_lag_writes * 5.0,
        "fast {fast:?} slow {slow:?}"
    );
    // The host path is untouched by pump pacing.
    assert!((slow.p99_ms - fast.p99_ms).abs() < 0.05);
}

#[test]
fn a2_block_bounds_loss_suspend_bounds_latency() {
    use tsuru_core::experiments::a2_journal_policy;
    let rows = a2_journal_policy(23, &[256]);
    let block = rows.iter().find(|r| r.policy == "block").unwrap();
    let suspend = rows.iter().find(|r| r.policy == "suspend").unwrap();
    assert!(block.stalls > 0, "{block:?}");
    assert!(block.p99_ms > suspend.p99_ms * 10.0);
    assert!(suspend.degraded_acks > 0, "{suspend:?}");
    assert!(
        block.lost_orders * 5 < suspend.lost_orders,
        "Block must bound loss: {block:?} vs {suspend:?}"
    );
}

#[test]
fn e7_three_dc_combines_low_latency_with_zero_loss() {
    use tsuru_core::experiments::e7_three_dc;
    let rows = e7_three_dc(29);
    let adc = rows.iter().find(|r| r.mode == "adc-cg").unwrap();
    let sdc = rows.iter().find(|r| r.mode == "sdc").unwrap();
    let tdc = rows.iter().find(|r| r.mode == "3dc").unwrap();
    // Latency: 3DC sits at metro-SDC level, far below WAN SDC.
    assert!(tdc.p50_ms < sdc.p50_ms / 5.0, "{tdc:?} vs {sdc:?}");
    assert!(tdc.p50_ms > adc.p50_ms, "3DC still pays the metro RTT");
    // Loss: the 3DC metro copy is complete.
    assert_eq!(tdc.best_copy_lost, 0, "{tdc:?}");
    assert_eq!(tdc.metro_recovered, Some(tdc.committed));
    assert_eq!(sdc.best_copy_lost, 0);
}

#[test]
fn scheduled_snapshots_accumulate_and_prune_in_the_demo_system() {
    let mut demo = DemoSystem::new(DemoConfig::default());
    demo.step1_configure_backup();
    demo.enable_snapshot_schedule(SimDuration::from_millis(100), 3);
    // Business runs; the backup site reconciles periodically (as a real
    // cluster's controllers would on their sync interval).
    for _ in 0..8 {
        demo.run_workload_for(SimDuration::from_millis(110));
        demo.reconcile_backup();
    }
    let catalogue = demo.snapshot_catalogue();
    assert_eq!(catalogue.len(), 3, "retention keeps three: {catalogue:?}");
    assert!(catalogue.iter().all(|n| n.starts_with("auto-")));
    // The newest generation is a usable, consistent analytics image.
    let handles = demo
        .backup_api
        .group_snapshots
        .get(&format!("shop/{}", catalogue.last().unwrap()))
        .unwrap()
        .snapshot_handles
        .clone();
    let report = demo.step3_analytics(&handles, 3).expect("consistent image");
    assert!(report.order_count > 0);
}
