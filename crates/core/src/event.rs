//! The demonstration world's typed kernel event.
//!
//! [`DemoEvent`] is the closed event vocabulary of the whole system:
//! storage data-plane hops, business-process client wake-ups, and the
//! experiment control plane (fault injection, lag sampling), plus the
//! boxed-closure escape hatch for one-off glue. Dispatch is a `match`, so
//! scheduling any typed step costs zero heap allocations on the kernel
//! side — the speedup `repro bench` measures.

use std::cell::RefCell;
use std::rc::Rc;

use tsuru_ecom::{EcomEvents, EcomOp};
use tsuru_sim::{Event, EventFn, Sim, SimDuration};
use tsuru_storage::{ArrayId, GroupId, StorageEvents, StorageOp};

use crate::world::DemoWorld;

/// The kernel event type of the demonstration world.
pub type DemoSim = Sim<DemoWorld, DemoEvent>;

/// One scheduled step anywhere in the demonstration system.
pub enum DemoEvent {
    /// A storage data-plane hop (persist, pump cycle, SDC leg, …).
    Storage(StorageOp<DemoWorld, DemoEvent>),
    /// A business-process step (client wake-up).
    Ecom(EcomOp),
    /// An experiment control-plane step (fault injection, sampling).
    Control(ControlOp),
    /// Boxed one-off closure — the escape hatch for ad-hoc glue that has
    /// no typed variant. Costs one allocation, like the old kernel.
    Dyn(EventFn<DemoWorld, DemoEvent>),
}

/// Experiment control-plane steps.
pub enum ControlOp {
    /// Fail an array at the scheduled instant (site-disaster injection).
    FailArray {
        /// The array to fail.
        array: ArrayId,
    },
    /// Record the replication backlog of `groups` and re-arm every 5 ms
    /// while `remaining > 0` (the A1 lag sampler).
    SampleLag {
        /// Groups whose pair backlogs are summed.
        groups: Vec<GroupId>,
        /// Shared sample sink (read by the experiment after the run).
        out: Rc<RefCell<Vec<u64>>>,
        /// Re-arms left after this sample.
        remaining: u32,
    },
    /// One supervisor probe pass, re-armed at the armed policy's
    /// `probe_interval` while `remaining > 0` (see
    /// [`tsuru_storage::supervisor::tick`]). A no-op when no supervisor
    /// is armed on the world.
    SupervisorTick {
        /// Re-arms left after this probe.
        remaining: u32,
    },
    /// One SLO evaluation pass (health sampling + alert rules), re-armed
    /// at the armed profile's `eval_interval` while `remaining > 0` (see
    /// [`tsuru_storage::StorageWorld::slo_tick`]). A no-op when no alert
    /// engine is armed on the world.
    SloTick {
        /// Re-arms left after this evaluation.
        remaining: u32,
    },
}

impl ControlOp {
    fn dispatch(self, w: &mut DemoWorld, sim: &mut DemoSim) {
        match self {
            ControlOp::FailArray { array } => {
                let now = sim.now();
                w.st.fail_array(array, now);
            }
            ControlOp::SampleLag {
                groups,
                out,
                remaining,
            } => {
                let lag: u64 = groups
                    .iter()
                    .flat_map(|&g| w.st.fabric.group(g).pairs.clone())
                    .map(|pid| {
                        let p = w.st.fabric.pair(pid);
                        p.acked_writes - p.applied_writes
                    })
                    .sum();
                out.borrow_mut().push(lag);
                if remaining > 0 {
                    sim.schedule_event_in(
                        SimDuration::from_millis(5),
                        DemoEvent::Control(ControlOp::SampleLag {
                            groups,
                            out,
                            remaining: remaining - 1,
                        }),
                    );
                }
            }
            ControlOp::SupervisorTick { remaining } => {
                tsuru_storage::supervisor::tick(w, sim);
                let interval = w
                    .st
                    .supervisor()
                    .map(|sv| sv.policy().probe_interval);
                if let Some(interval) = interval {
                    if remaining > 0 {
                        sim.schedule_event_in(
                            interval,
                            DemoEvent::Control(ControlOp::SupervisorTick {
                                remaining: remaining - 1,
                            }),
                        );
                    }
                }
            }
            ControlOp::SloTick { remaining } => {
                let now = sim.now();
                w.st.slo_tick(now);
                let interval = w.st.alerts().map(|a| a.profile().eval_interval);
                if let Some(interval) = interval {
                    if remaining > 0 {
                        sim.schedule_event_in(
                            interval,
                            DemoEvent::Control(ControlOp::SloTick {
                                remaining: remaining - 1,
                            }),
                        );
                    }
                }
            }
        }
    }
}

impl Event<DemoWorld> for DemoEvent {
    fn from_fn(f: EventFn<DemoWorld, Self>) -> Self {
        DemoEvent::Dyn(f)
    }

    fn dispatch(self, state: &mut DemoWorld, sim: &mut Sim<DemoWorld, Self>) {
        match self {
            DemoEvent::Storage(op) => op.dispatch(state, sim),
            DemoEvent::Ecom(op) => op.dispatch(state, sim),
            DemoEvent::Control(op) => op.dispatch(state, sim),
            DemoEvent::Dyn(f) => f(state, sim),
        }
    }
}

impl StorageEvents<DemoWorld> for DemoEvent {
    fn storage(op: StorageOp<DemoWorld, Self>) -> Self {
        DemoEvent::Storage(op)
    }
}

impl EcomEvents<DemoWorld> for DemoEvent {
    fn ecom(op: EcomOp) -> Self {
        DemoEvent::Ecom(op)
    }
}
