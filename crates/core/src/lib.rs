//! # tsuru-core — the demonstration system
//!
//! Assembles every substrate into the paper's two-site deployment:
//!
//! - [`TwoSiteRig`] — storage + databases + workload, for the quantitative
//!   experiments (E1–E4);
//! - [`DemoSystem`] — the full system including both container platforms,
//!   the CSI plugins and the namespace operator, driving the paper's
//!   three-step demonstration (backup configuration by tagging, snapshot
//!   development, analytics) plus a disaster/failover drill;
//! - [`experiments`] — the runners behind every reproduced figure/claim
//!   (see DESIGN.md §4 and EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod experiments;
mod harness;
mod report;
mod rig;
mod system;
pub mod tenants;
mod world;

pub use event::{ControlOp, DemoEvent, DemoSim};
pub use harness::{HarnessStats, TrialCtx, TrialHarness, TrialSet};
pub use report::{f2, f3, render_table};
pub use rig::{BackupMode, RecoveryOutcome, RigConfig, TwoSiteRig, VOLUME_NAMES};
pub use system::{
    BusinessRecovery, DemoConfig, DemoSystem, FailoverReport, DRIVER_NAME, STORAGE_CLASS,
};
pub use tenants::{e12_scale_with, E12Row, TenantParams, TenantWorld};
pub use world::DemoWorld;
