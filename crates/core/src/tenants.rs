//! E12: the metro-scale multi-tenant world (deterministic tenant
//! generator + sharded replication + the tenant-scaling sweep).
//!
//! The paper's "no impact on business processing" claim is only ever
//! demonstrated on a handful of volumes; this module is the scale test.
//! A deterministic generator spins up `N` tenant namespaces — one data
//! volume, one backup volume and one single-pair consistency group each —
//! and partitions the groups across [`ShardLayout`] lanes: per-shard WAN
//! link pairs that the member groups' transfer pumps share. Every tenant
//! then runs a heavy-traffic ecom-shaped population (order-row write +
//! commit-log write per order, open loop, jittered per-tenant streams),
//! and the sweep measures what the metro actually cares about as tenant
//! count scales:
//!
//! - **RPO at a probe instant** mid-run (main-site failure thought
//!   experiment: how stale would the promoted image be?);
//! - **journal occupancy** per shard lane (peak bytes queued main-side);
//! - **apply lag** per shard lane (acked-but-unapplied writes);
//! - **transfer batching** (journal entries per WAN frame);
//! - **drain time** (when the backup site fully catches up).
//!
//! Everything is seeded from `(base_seed, trial_index)` through the trial
//! harness, so `repro e12` output is byte-identical at any `--threads`.

use serde::{Deserialize, Serialize};
use tsuru_sim::{DetRng, Event, EventFn, Sim, SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::engine::host_write;
use tsuru_storage::{
    block_from, metric_names, ArrayPerf, BlockBuf, EngineConfig, GroupId, HasStorage, ShardLayout,
    StorageEvents, StorageOp, StorageWorld, VolRef, WriteAck,
};

use crate::harness::{TrialHarness, TrialSet};

/// Knobs of one tenant-world build. [`TenantParams::for_scale`] gives the
/// E12 defaults; tests shrink them.
#[derive(Debug, Clone)]
pub struct TenantParams {
    /// Tenant namespaces (= consistency groups) to generate.
    pub tenants: u32,
    /// Shard lanes to partition the groups across.
    pub shards: u32,
    /// Orders each tenant submits (each order = 2 block writes).
    pub orders_per_tenant: u32,
    /// Blocks per tenant volume.
    pub vol_blocks: u64,
    /// Per-group journal capacity in bytes.
    pub journal_capacity: u64,
    /// Bandwidth of each shard's WAN data lane, bytes/sec.
    pub lane_bandwidth: u64,
    /// One-way propagation delay of the shard lanes.
    pub lane_propagation: SimDuration,
    /// Base think time between a tenant's orders.
    pub think_base: SimDuration,
    /// Max extra uniform jitter added per order.
    pub think_jitter: SimDuration,
    /// Instant of the RPO probe (the thought-experiment failure time).
    pub probe_at: SimTime,
    /// Interval of the per-shard series sampler.
    pub sample_every: SimDuration,
    /// Samples taken after the first (bounds the sampler chain).
    pub samples: u32,
}

impl TenantParams {
    /// E12 defaults for a sweep point of `tenants` namespaces: 8 shard
    /// lanes (fewer when there are fewer tenants) of 4 Gbit/s each, so the
    /// 10k-tenant point saturates the lanes while 100 tenants barely
    /// notice them — the contrast the tenant-scaling table shows.
    pub fn for_scale(tenants: u32) -> Self {
        TenantParams {
            tenants,
            shards: 8.min(tenants.max(1)),
            orders_per_tenant: 8,
            vol_blocks: 64,
            journal_capacity: 4 << 20,
            lane_bandwidth: 500_000_000,
            lane_propagation: SimDuration::from_millis(2),
            think_base: SimDuration::from_millis(1),
            think_jitter: SimDuration::from_millis(2),
            probe_at: SimTime::from_millis(25),
            sample_every: SimDuration::from_millis(5),
            samples: 60,
        }
    }
}

/// Per-tenant hot state (kept SoA-adjacent: one dense `Vec` indexed by the
/// tenant id that events carry).
#[derive(Debug)]
pub struct TenantState {
    /// The tenant's primary data volume.
    pub data: VolRef,
    /// The tenant's consistency group.
    pub group: GroupId,
    /// Per-tenant jitter stream (derived, deterministic).
    pub rng: DetRng,
    /// Orders still to submit.
    pub orders_left: u32,
    /// Monotonic order counter (drives LBA choice and payload pick).
    pub cursor: u64,
}

/// The multi-tenant simulation state: a sharded [`StorageWorld`] plus the
/// tenant table and ack counters.
pub struct TenantWorld {
    /// The storage substrate.
    pub st: StorageWorld,
    /// The shard partition of the groups.
    pub shards: ShardLayout,
    /// Dense tenant table.
    pub tenants: Vec<TenantState>,
    /// Every generated group, in tenant order.
    pub groups: Vec<GroupId>,
    /// Host writes acknowledged with full protection.
    pub acked: u64,
    /// Host writes acknowledged degraded (suspended group).
    pub degraded: u64,
    /// Host writes rejected.
    pub failed: u64,
    /// Payload templates; orders clone (refcount) instead of allocating.
    payloads: Vec<BlockBuf>,
    think_base: SimDuration,
    think_jitter: SimDuration,
    sample_every: SimDuration,
}

impl HasStorage for TenantWorld {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

impl TenantWorld {
    fn count(&mut self, ack: WriteAck) {
        match ack {
            WriteAck::Ok { .. } => self.acked += 1,
            WriteAck::Degraded { .. } => self.degraded += 1,
            WriteAck::Failed(_) => self.failed += 1,
        }
    }
}

/// The tenant world's kernel event.
pub enum TenantOp {
    /// A storage data-plane hop.
    Storage(StorageOp<TenantWorld, TenantOp>),
    /// One tenant submits one order (two block writes) and re-arms.
    Order {
        /// Dense tenant index.
        tenant: u32,
    },
    /// Per-shard series sample; re-arms `remaining` more times.
    Sample {
        /// Re-arms left after this sample.
        remaining: u32,
    },
    /// Boxed one-off closure escape hatch.
    Dyn(EventFn<TenantWorld, TenantOp>),
}

impl Event<TenantWorld> for TenantOp {
    fn from_fn(f: EventFn<TenantWorld, Self>) -> Self {
        TenantOp::Dyn(f)
    }

    fn dispatch(self, w: &mut TenantWorld, sim: &mut Sim<TenantWorld, Self>) {
        match self {
            TenantOp::Storage(op) => op.dispatch(w, sim),
            TenantOp::Order { tenant } => submit_order(w, sim, tenant),
            TenantOp::Sample { remaining } => {
                let now = sim.now();
                w.st.sample_shard_series(&w.shards, now);
                if remaining > 0 {
                    sim.schedule_event_in(
                        w.sample_every,
                        TenantOp::Sample {
                            remaining: remaining - 1,
                        },
                    );
                }
            }
            TenantOp::Dyn(f) => f(w, sim),
        }
    }
}

impl StorageEvents<TenantWorld> for TenantOp {
    fn storage(op: StorageOp<TenantWorld, Self>) -> Self {
        TenantOp::Storage(op)
    }
}

/// One order: an order-row write into the data region plus a commit-log
/// write into the tail region of the same volume, then re-arm the tenant.
fn submit_order(w: &mut TenantWorld, sim: &mut Sim<TenantWorld, TenantOp>, tenant: u32) {
    let (vol, row_lba, log_lba, payload, next_in) = {
        let blocks = {
            let t = w
                .tenants
                .get(tenant as usize)
                .expect("invariant: Order events carry tenant ids minted at build time");
            w.st.array(t.data.array).volume(t.data.volume).size_blocks()
        };
        let t = w
            .tenants
            .get_mut(tenant as usize)
            .expect("invariant: Order events carry tenant ids minted at build time");
        if t.orders_left == 0 {
            return;
        }
        t.orders_left -= 1;
        let log_region = 8.min(blocks / 2);
        let row_lba = t.cursor % (blocks - log_region);
        let log_lba = blocks - log_region + (t.cursor % log_region);
        let payload = w
            .payloads
            .get((t.cursor as usize) % w.payloads.len())
            .expect("invariant: the index is reduced modulo the payload count")
            .clone();
        t.cursor += 1;
        let next_in = if t.orders_left > 0 {
            Some(w.think_base + SimDuration::from_nanos(t.rng.gen_range(w.think_jitter.as_nanos() + 1)))
        } else {
            None
        };
        (t.data, row_lba, log_lba, payload, next_in)
    };
    host_write(w, sim, vol, row_lba, payload.clone(), |w, _, ack| w.count(ack));
    host_write(w, sim, vol, log_lba, payload, |w, _, ack| w.count(ack));
    if let Some(d) = next_in {
        sim.schedule_event_in(d, TenantOp::Order { tenant });
    }
}

/// Build the sharded multi-tenant world and arm traffic + sampling.
///
/// Deterministic in `seed`: tenant rng streams derive from it, shard
/// assignment is round-robin, and every volume/group id is minted in
/// tenant order.
pub fn build_tenant_world(
    seed: u64,
    p: &TenantParams,
) -> (TenantWorld, Sim<TenantWorld, TenantOp>) {
    assert!(p.tenants > 0 && p.shards > 0, "need at least one tenant and shard");
    let mut st = StorageWorld::new(seed, EngineConfig::default());
    st.metrics.enable_sampling();
    let main = st.add_array("metro-main", ArrayPerf::default());
    let backup = st.add_array("metro-backup", ArrayPerf::default());

    let mut shards = ShardLayout::new();
    for _ in 0..p.shards {
        let lane = LinkConfig::with(p.lane_propagation, p.lane_bandwidth);
        let link = st.add_link(lane.clone());
        let reverse = st.add_link(lane);
        shards.add_lane(link, reverse);
    }

    let base = DetRng::new(seed).derive(0xE12);
    let mut tenants = Vec::with_capacity(p.tenants as usize);
    let mut groups = Vec::with_capacity(p.tenants as usize);
    for t in 0..p.tenants {
        let shard = t % p.shards;
        let (link, reverse) = {
            let lane = shards.lane(shard);
            (lane.link, lane.reverse)
        };
        let pvol = st.create_volume(main, format!("tn{t}-data"), p.vol_blocks);
        let svol = st.create_volume(backup, format!("tn{t}-data-r"), p.vol_blocks);
        let gid = st.create_adc_group(format!("tn{t}-cg"), link, reverse, p.journal_capacity);
        st.add_pair(gid, pvol, svol);
        shards.assign(gid, shard);
        groups.push(gid);
        tenants.push(TenantState {
            data: pvol,
            group: gid,
            rng: base.derive(t as u64),
            orders_left: p.orders_per_tenant,
            cursor: 0,
        });
    }

    let payloads = (0u8..4)
        .map(|i| block_from(&[0x40 + i; 64]))
        .collect();
    let mut w = TenantWorld {
        st,
        shards,
        tenants,
        groups,
        acked: 0,
        degraded: 0,
        failed: 0,
        payloads,
        think_base: p.think_base,
        think_jitter: p.think_jitter,
        sample_every: p.sample_every,
    };

    let mut sim: Sim<TenantWorld, TenantOp> = Sim::new();
    for t in 0..p.tenants {
        // Staggered admission: tenants ramp in over the first think window.
        let jitter = w.tenants[t as usize].rng.gen_range(p.think_jitter.as_nanos() + 1);
        let at = SimTime::from_nanos(1 + (t as u64) * 311 + jitter);
        sim.schedule_event_at(at, TenantOp::Order { tenant: t });
    }
    sim.schedule_event_at(
        SimTime::from_nanos(2),
        TenantOp::Sample {
            remaining: p.samples,
        },
    );
    (w, sim)
}

/// One row of the E12 tenant-scaling table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E12Row {
    /// Tenant namespaces (= consistency groups).
    pub tenants: u32,
    /// Shard lanes.
    pub shards: u32,
    /// Host writes acknowledged with full protection.
    pub writes_acked: u64,
    /// Acked-but-unapplied writes at the probe instant.
    pub backlog_at_probe: u64,
    /// RPO at the probe instant, in milliseconds.
    pub rpo_at_probe_ms: f64,
    /// Peak per-shard journal occupancy, KiB (max over lanes and time).
    pub peak_shard_jnl_kib: f64,
    /// Peak per-shard apply lag, writes (max over lanes and time).
    pub peak_shard_lag: f64,
    /// Journal entries shipped per WAN frame (batching efficiency).
    pub entries_per_frame: f64,
    /// Sim time at which the backup site had fully caught up, ms (last
    /// sampled instant with nonzero apply lag).
    pub drain_ms: f64,
    /// Did every group's backup image verify prefix-consistent at the end?
    pub consistent: bool,
}

/// Run one sweep point: build the world for `tenants`, run to the probe,
/// take the RPO thought-experiment reading, then run to quiescence and
/// collect the per-shard peaks.
pub fn run_e12_trial(seed: u64, tenants: u32) -> E12Row {
    let p = TenantParams::for_scale(tenants);
    let (mut w, mut sim) = build_tenant_world(seed, &p);
    sim.run_until(&mut w, p.probe_at);
    let probe = w.st.rpo_report(&w.groups, p.probe_at);
    sim.run(&mut w);

    let mut peak_jnl = 0f64;
    for (_, ts) in w.st.metrics.shard_lanes(metric_names::SHARD_JOURNAL_OCCUPANCY) {
        peak_jnl = peak_jnl.max(ts.max().unwrap_or(0.0));
    }
    let mut peak_lag = 0f64;
    let mut drain_ns = 0u64;
    for (_, ts) in w.st.metrics.shard_lanes(metric_names::SHARD_APPLY_LAG) {
        peak_lag = peak_lag.max(ts.max().unwrap_or(0.0));
        for &(t, v) in ts.points() {
            if v > 0.0 {
                drain_ns = drain_ns.max(t.as_nanos());
            }
        }
    }
    let (mut entries, mut frames) = (0u64, 0u64);
    for &gid in &w.groups {
        let s = &w.st.fabric.group(gid).stats;
        entries += s.entries_transferred;
        frames += s.frames_sent;
    }
    let consistent = w.st.verify_consistency(&w.groups).is_consistent();
    E12Row {
        tenants,
        shards: p.shards,
        writes_acked: w.acked,
        backlog_at_probe: probe.lost_writes,
        rpo_at_probe_ms: probe.rpo.as_nanos() as f64 / 1e6,
        peak_shard_jnl_kib: peak_jnl / 1024.0,
        peak_shard_lag: peak_lag,
        entries_per_frame: entries as f64 / (frames.max(1)) as f64,
        drain_ms: drain_ns as f64 / 1e6,
        consistent,
    }
}

/// The E12 tenant-scaling sweep: one harness trial per tenant count.
/// Byte-identical rows at any worker count (each sweep point is an
/// independent world seeded from `(seed, index)`).
pub fn e12_scale_with(
    harness: &TrialHarness,
    seed: u64,
    tenant_counts: &[u32],
) -> TrialSet<E12Row> {
    let counts = tenant_counts.to_vec();
    harness.run(seed, counts.len(), |ctx| run_e12_trial(ctx.seed, counts[ctx.index]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TenantParams {
        let mut p = TenantParams::for_scale(6);
        p.orders_per_tenant = 3;
        p.probe_at = SimTime::from_millis(4);
        p.samples = 20;
        p
    }

    #[test]
    fn generator_is_deterministic() {
        let (a, _) = build_tenant_world(7, &small());
        let (b, _) = build_tenant_world(7, &small());
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.tenants.len(), 6);
        assert_eq!(a.shards.num_shards(), 6);
        for (i, t) in a.tenants.iter().enumerate() {
            assert_eq!(a.shards.shard_of(t.group), Some(i as u32 % 6));
            assert_eq!(t.data, b.tenants[i].data);
        }
    }

    #[test]
    fn small_world_runs_acks_and_stays_consistent() {
        let p = small();
        let (mut w, mut sim) = build_tenant_world(11, &p);
        sim.run(&mut w);
        assert_eq!(w.acked, 6 * 3 * 2, "every order is two protected writes");
        assert_eq!(w.degraded, 0);
        assert_eq!(w.failed, 0);
        assert!(w.st.verify_consistency(&w.groups).is_consistent());
        // Per-shard lanes were sampled for every lane.
        let lanes: Vec<u32> = w
            .st
            .metrics
            .shard_lanes(metric_names::SHARD_APPLY_LAG)
            .map(|(s, _)| s)
            .collect();
        assert_eq!(lanes, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn trial_rows_are_thread_count_invariant() {
        let counts = [4, 9];
        let serial = TrialHarness::serial();
        let a = e12_scale_with(&serial, 5, &counts);
        let b = e12_scale_with(&TrialHarness::new(4), 5, &counts);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
        }
        assert_eq!(a.rows[0].tenants, 4);
        assert_eq!(a.rows[1].tenants, 9);
        assert!(a.rows.iter().all(|r| r.consistent));
    }
}
