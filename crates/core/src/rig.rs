//! The two-site experiment rig: storage + application, no container layer.
//!
//! Experiments E1–E4 measure the storage/application behaviour directly;
//! the container platform and operator add nothing to those measurements
//! (they only automate the configuration). [`TwoSiteRig`] builds the
//! paper's main/backup deployment — two arrays, a replication link, four
//! volumes (sales WAL/data, stock WAL/data), two databases, the order
//! workload — under any [`BackupMode`].

use serde::{Deserialize, Serialize};
use tsuru_analytics::AnalyticsReport;
use tsuru_ecom::driver::start_clients;
use tsuru_ecom::{
    check_cross_db, install_db, order_rpo, seed_stock, EcomMetrics, EcomState, InvariantReport,
    OrderRpo, WorkloadConfig, WorkloadGen,
};
use tsuru_minidb::{DbConfig, MiniDb, RecoveryError, RecoveryReport};
use tsuru_sim::{DetRng, Sim, SimDuration, SimTime, Summary};
use tsuru_simnet::LinkConfig;
use tsuru_storage::{
    ArrayId, ArrayPerf, ConsistencyReport, EngineConfig, GroupId, RpoReport, SnapshotId,
    SnapshotView, StorageWorld, VolRef, VolumeView,
};

use crate::event::{ControlOp, DemoEvent, DemoSim};
use crate::world::DemoWorld;

/// How the business process is protected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackupMode {
    /// No replication at all (the latency floor).
    None,
    /// Asynchronous data copy with one consistency group spanning all four
    /// volumes (the paper's demonstrated design).
    AdcConsistencyGroup,
    /// Asynchronous data copy with one independent group per volume (the
    /// naive configuration the paper warns collapses).
    AdcPerVolume,
    /// Synchronous data copy (the no-data-loss, high-latency baseline).
    Sdc,
    /// Three-data-centre: metro SDC (zero loss, metro latency) plus WAN
    /// ADC consistency group (bounded loss at distance) from the same
    /// primary volumes — the combined topology of the paper's related work
    /// (§V, refs. 12–15).
    ThreeDc,
}

impl BackupMode {
    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            BackupMode::None => "none",
            BackupMode::AdcConsistencyGroup => "adc-cg",
            BackupMode::AdcPerVolume => "adc-naive",
            BackupMode::Sdc => "sdc",
            BackupMode::ThreeDc => "3dc",
        }
    }
}

/// Full configuration of a rig.
#[derive(Debug, Clone)]
pub struct RigConfig {
    /// Master seed (workload, jitter, pump streams all derive from it).
    pub seed: u64,
    /// Storage engine tunables.
    pub engine: EngineConfig,
    /// Array service-time profile (both sites).
    pub perf: ArrayPerf,
    /// Inter-site link (both directions use the same shape).
    pub link: LinkConfig,
    /// Metro link used by the synchronous leg of [`BackupMode::ThreeDc`].
    pub metro_link: LinkConfig,
    /// Protection mode.
    pub mode: BackupMode,
    /// ADC journal capacity in bytes.
    pub journal_capacity: u64,
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// Database geometry.
    pub db: DbConfig,
    /// Install an enabled [`tsuru_storage::Tracer`] on the world, turning
    /// on span recording and metrics time-series sampling. Off by default:
    /// the disabled tracer keeps the hot path allocation-free and all
    /// experiment outputs byte-identical to untraced runs.
    pub trace: bool,
    /// Install an enabled [`tsuru_history::Recorder`] on the world, so
    /// the workload drivers record a client-visible op history. Off by
    /// default for the same reason as `trace`.
    pub history: bool,
}

impl Default for RigConfig {
    fn default() -> Self {
        RigConfig {
            seed: 42,
            engine: EngineConfig::default(),
            perf: ArrayPerf::default(),
            link: LinkConfig::metro(),
            metro_link: LinkConfig::with(
                SimDuration::from_millis(1),
                10_000_000_000 / 8,
            ),
            mode: BackupMode::AdcConsistencyGroup,
            journal_capacity: 256 << 20,
            workload: WorkloadConfig::default(),
            db: DbConfig {
                data_blocks: 8192,
                wal_blocks: 1024,
                checkpoint_threshold: 0.8,
            },
            trace: false,
            history: false,
        }
    }
}

/// Volume roles within the rig, in fixed order.
pub const VOLUME_NAMES: [&str; 4] = ["sales-wal", "sales-data", "stock-wal", "stock-data"];

/// Everything a recovery attempt can report.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// Sales database recovery.
    pub sales: Result<(MiniDb, RecoveryReport), RecoveryError>,
    /// Stock database recovery.
    pub stock: Result<(MiniDb, RecoveryReport), RecoveryError>,
    /// Cross-database invariant, if both recovered.
    pub invariant: Option<InvariantReport>,
    /// Business-level RPO, if sales recovered.
    pub orders: Option<OrderRpo>,
}

impl RecoveryOutcome {
    /// Did both databases recover *and* pass the cross-DB check?
    pub fn fully_consistent(&self) -> bool {
        self.invariant.as_ref().is_some_and(|i| i.consistent())
    }

    /// Did either database hard-fail recovery?
    pub fn hard_failure(&self) -> bool {
        self.sales.is_err() || self.stock.is_err()
    }
}

/// The assembled two-site deployment.
pub struct TwoSiteRig {
    /// Discrete-event state.
    pub world: DemoWorld,
    /// Event kernel (typed [`DemoEvent`] dispatch).
    pub sim: DemoSim,
    /// Main-site array.
    pub main: ArrayId,
    /// Backup-site array.
    pub backup: ArrayId,
    /// Primary volumes, in [`VOLUME_NAMES`] order.
    pub vols: [VolRef; 4],
    /// Secondary volumes (empty refs when mode is `None`).
    pub replicas: Option<[VolRef; 4]>,
    /// Metro site array and its secondaries (only for `ThreeDc`).
    pub metro: Option<(ArrayId, [VolRef; 4])>,
    /// Replication groups configured.
    pub groups: Vec<GroupId>,
    /// Rig configuration (kept for recovery geometry).
    pub config: RigConfig,
}

impl TwoSiteRig {
    /// Build the deployment: arrays, link, volumes, formatted + seeded
    /// databases, replication per `config.mode`, workload clients ready.
    pub fn new(config: RigConfig) -> Self {
        let mut st = StorageWorld::new(config.seed, config.engine.clone());
        let main = st.add_array("vsp-main", config.perf.clone());
        let backup = st.add_array("vsp-backup", config.perf.clone());
        let link = st.add_link(config.link.clone());
        let reverse = st.add_link(config.link.clone());

        let sizes = [
            config.db.wal_blocks,
            config.db.data_blocks,
            config.db.wal_blocks,
            config.db.data_blocks,
        ];
        let vols: Vec<VolRef> = VOLUME_NAMES
            .iter()
            .zip(sizes)
            .map(|(n, s)| st.create_volume(main, *n, s))
            .collect();

        let sales = install_db(&mut st, "sales", vols[0], vols[1], config.db.clone());
        let mut stock = install_db(&mut st, "stock", vols[2], vols[3], config.db.clone());
        seed_stock(
            &mut st,
            &mut stock,
            config.workload.items,
            config.workload.initial_stock,
        );

        let mut metro_site = None;
        let (replicas, groups) = match config.mode {
            BackupMode::None => (None, Vec::new()),
            mode => {
                let reps: Vec<VolRef> = VOLUME_NAMES
                    .iter()
                    .zip(sizes)
                    .map(|(n, s)| st.create_volume(backup, format!("{n}-r"), s))
                    .collect();
                let mut groups = Vec::new();
                match mode {
                    BackupMode::AdcConsistencyGroup => {
                        let g = st.create_adc_group(
                            "cg-shop",
                            link,
                            reverse,
                            config.journal_capacity,
                        );
                        for i in 0..4 {
                            st.add_pair(g, vols[i], reps[i]);
                        }
                        groups.push(g);
                    }
                    BackupMode::AdcPerVolume => {
                        for i in 0..4 {
                            let g = st.create_adc_group(
                                format!("solo-{}", VOLUME_NAMES[i]),
                                link,
                                reverse,
                                config.journal_capacity,
                            );
                            st.add_pair(g, vols[i], reps[i]);
                            groups.push(g);
                        }
                    }
                    BackupMode::Sdc => {
                        let g = st.create_sdc_group("sdc-shop", link, reverse);
                        for i in 0..4 {
                            st.add_pair(g, vols[i], reps[i]);
                        }
                        groups.push(g);
                    }
                    BackupMode::ThreeDc => {
                        // Far leg: WAN ADC consistency group (the `backup`
                        // array plays the far site).
                        let g = st.create_adc_group(
                            "cg-shop-far",
                            link,
                            reverse,
                            config.journal_capacity,
                        );
                        for i in 0..4 {
                            st.add_pair(g, vols[i], reps[i]);
                        }
                        groups.push(g);
                        // Metro leg: a third array, synchronously in step.
                        let metro = st.add_array("vsp-metro", config.perf.clone());
                        let mlink = st.add_link(config.metro_link.clone());
                        let mrev = st.add_link(config.metro_link.clone());
                        let sg = st.create_sdc_group("sdc-shop-metro", mlink, mrev);
                        let mreps: Vec<VolRef> = VOLUME_NAMES
                            .iter()
                            .zip(sizes)
                            .map(|(n, s)| st.create_volume(metro, format!("{n}-m"), s))
                            .collect();
                        for i in 0..4 {
                            st.add_pair(sg, vols[i], mreps[i]);
                        }
                        metro_site = Some((metro, [mreps[0], mreps[1], mreps[2], mreps[3]]));
                        groups.push(sg);
                    }
                    BackupMode::None => unreachable!(),
                }
                (Some([reps[0], reps[1], reps[2], reps[3]]), groups)
            }
        };

        let app = EcomState {
            sales,
            stock,
            gen: WorkloadGen::new(
                config.workload.clone(),
                DetRng::new(config.seed).derive(0xEC0),
            ),
            metrics: EcomMetrics::default(),
            stopped: false,
            stop_after_orders: None,
            bank: None,
            append: None,
        };
        let mut world = DemoWorld::new(st);
        world.install_app(app);
        // Installed after construction: formatting and seeding above go
        // through write_direct and must not appear in the trace — and the
        // history likewise starts at the workload's first operation.
        if config.trace {
            world.st.set_tracer(tsuru_storage::Tracer::enabled());
        }
        if config.history {
            world.st.set_history(tsuru_history::Recorder::enabled());
        }

        TwoSiteRig {
            world,
            sim: Sim::new(),
            main,
            backup,
            vols: [vols[0], vols[1], vols[2], vols[3]],
            replicas,
            metro: metro_site,
            groups,
            config,
        }
    }

    /// Recover the business from the metro site's volumes (`ThreeDc`).
    pub fn recover_from_metro(&self) -> RecoveryOutcome {
        let (metro, vols) = self.metro.expect("rig has no metro site");
        self.recover_from(metro, &vols)
    }

    /// Start the closed-loop clients and run for `duration` of simulated
    /// time (events beyond the horizon stay queued).
    pub fn run_workload_for(&mut self, duration: SimDuration) {
        start_clients(&mut self.world, &mut self.sim);
        self.sim.run_for(&mut self.world, duration);
    }

    /// Run an exact number of orders to completion (plus replication
    /// drain).
    pub fn run_orders(&mut self, orders: u64) {
        self.world.app_mut().stop_after_orders = Some(orders);
        start_clients(&mut self.world, &mut self.sim);
        self.sim.run(&mut self.world);
    }

    /// Arm the self-healing supervisor on the world and schedule its
    /// periodic probe from now until (at least) `until`. The tick budget
    /// is computed up front so the probe chain terminates deterministically
    /// shortly after the horizon instead of keeping the sim alive forever.
    pub fn enable_supervisor(
        &mut self,
        policy: tsuru_storage::SupervisorPolicy,
        until: SimTime,
    ) {
        let interval = policy.probe_interval;
        assert!(!interval.is_zero(), "probe interval must be positive");
        self.world.st.enable_supervisor(policy);
        let span = until.saturating_since(self.sim.now());
        let ticks = (span.as_nanos() / interval.as_nanos()).max(1) as u32;
        self.sim.schedule_event_in(
            interval,
            DemoEvent::Control(ControlOp::SupervisorTick {
                remaining: ticks - 1,
            }),
        );
    }

    /// Arm the SLO/alerting engine on the world and schedule its periodic
    /// evaluation from now until (at least) `until`. The tick budget is
    /// computed up front, like [`TwoSiteRig::enable_supervisor`], so the
    /// evaluation chain terminates deterministically shortly after the
    /// horizon.
    pub fn enable_alerts(&mut self, profile: tsuru_storage::AlertProfile, until: SimTime) {
        let interval = profile.eval_interval;
        assert!(!interval.is_zero(), "eval interval must be positive");
        self.world.st.enable_alerts(profile, self.sim.now());
        let span = until.saturating_since(self.sim.now());
        let ticks = (span.as_nanos() / interval.as_nanos()).max(1) as u32;
        self.sim.schedule_event_in(
            interval,
            DemoEvent::Control(ControlOp::SloTick {
                remaining: ticks - 1,
            }),
        );
    }

    /// Schedule a main-site disaster at `at`.
    pub fn schedule_main_failure(&mut self, at: SimTime) {
        let array = self.main;
        self.sim
            .schedule_event_at(at, DemoEvent::Control(ControlOp::FailArray { array }));
    }

    /// Let in-flight replication settle after a failure (bounded horizon).
    pub fn settle(&mut self, horizon: SimTime) {
        self.sim.run_until(&mut self.world, horizon);
    }

    /// Failover: promote every group and report storage-level consistency
    /// and RPO (`failure_time` is when the disaster struck).
    pub fn failover(&mut self, failure_time: SimTime) -> (ConsistencyReport, RpoReport) {
        for &g in &self.groups {
            self.world.st.promote_group(g);
        }
        let consistency = self.world.st.verify_consistency(&self.groups);
        let rpo = self.world.st.rpo_report(&self.groups, failure_time);
        (consistency, rpo)
    }

    /// Recover both databases from the given array's volumes and run the
    /// business-level checks.
    pub fn recover_from(&self, array: ArrayId, vols: &[VolRef; 4]) -> RecoveryOutcome {
        let arr = self.world.st.array(array);
        let sales = MiniDb::recover(
            "sales-recovered",
            &VolumeView::new(arr, vols[0].volume),
            &VolumeView::new(arr, vols[1].volume),
            self.config.db.clone(),
        );
        let stock = MiniDb::recover(
            "stock-recovered",
            &VolumeView::new(arr, vols[2].volume),
            &VolumeView::new(arr, vols[3].volume),
            self.config.db.clone(),
        );
        let invariant = match (&sales, &stock) {
            (Ok((s, _)), Ok((t, _))) => Some(check_cross_db(
                s,
                t,
                self.config.workload.initial_stock,
            )),
            _ => None,
        };
        let orders = match &sales {
            Ok((s, _)) => Some(order_rpo(&self.world.app().metrics.committed_log, s)),
            Err(_) => None,
        };
        RecoveryOutcome {
            sales,
            stock,
            invariant,
            orders,
        }
    }

    /// Recover from the backup site's replica volumes.
    pub fn recover_from_backup(&self) -> RecoveryOutcome {
        let replicas = self.replicas.expect("rig has no replicas (mode=None)");
        self.recover_from(self.backup, &replicas)
    }

    /// Take an atomic snapshot group of the backup-site replicas at the
    /// current instant (the demo's step D2, via the direct array path).
    pub fn snapshot_backup_group(&mut self, name: &str) -> Vec<SnapshotId> {
        let replicas = self.replicas.expect("rig has no replicas (mode=None)");
        let now = self.sim.now();
        self.world.st.snapshot_group(
            self.backup,
            &[
                replicas[0].volume,
                replicas[1].volume,
                replicas[2].volume,
                replicas[3].volume,
            ],
            name,
            now,
        )
    }

    /// Recover both databases from a snapshot group (in
    /// [`Self::snapshot_backup_group`] order) and run analytics on them —
    /// the demo's step D3.
    pub fn analytics_on_snapshots(
        &self,
        snaps: &[SnapshotId],
        top_k: usize,
    ) -> Result<AnalyticsReport, RecoveryError> {
        assert_eq!(snaps.len(), 4, "expected a 4-volume snapshot group");
        let arr = self.world.st.array(self.backup);
        let (sales, _) = MiniDb::recover(
            "sales-snap",
            &SnapshotView::new(arr, snaps[0]),
            &SnapshotView::new(arr, snaps[1]),
            self.config.db.clone(),
        )?;
        let (stock, _) = MiniDb::recover(
            "stock-snap",
            &SnapshotView::new(arr, snaps[2]),
            &SnapshotView::new(arr, snaps[3]),
            self.config.db.clone(),
        )?;
        Ok(tsuru_analytics::run_analytics(&sales, &stock, top_k))
    }

    /// Transaction latency summary.
    pub fn latency_summary(&self) -> Summary {
        self.world.app().metrics.txn_latency.summary()
    }

    /// Committed orders so far.
    pub fn committed_orders(&self) -> u64 {
        self.world.app().metrics.committed_orders
    }

    /// Throughput in transactions per simulated second over `[0, now]`.
    pub fn throughput_tps(&self) -> f64 {
        let secs = self.sim.now().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.committed_orders() as f64 / secs
        }
    }
}
