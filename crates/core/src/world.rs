//! The simulation world: storage + application state under one roof.

use tsuru_ecom::{EcomState, HasEcom};
use tsuru_storage::{HasStorage, StorageWorld};

/// The discrete-event state of the whole demonstration: the storage layer
/// is always present; the application is installed during setup.
#[derive(Debug)]
pub struct DemoWorld {
    /// Arrays, links, replication fabric, ack log.
    pub st: StorageWorld,
    /// The business process (sales + stock databases, clients, metrics).
    pub app: Option<EcomState>,
}

impl DemoWorld {
    /// A world with no application yet.
    pub fn new(st: StorageWorld) -> Self {
        DemoWorld { st, app: None }
    }

    /// Install the application (setup step).
    pub fn install_app(&mut self, app: EcomState) {
        assert!(self.app.is_none(), "application already installed");
        self.app = Some(app);
    }

    /// Borrow the application.
    ///
    /// # Panics
    /// Panics if the application is not installed yet.
    pub fn app(&self) -> &EcomState {
        self.app
            .as_ref()
            .expect("invariant: install_app runs before any workload event")
    }

    /// Mutably borrow the application.
    pub fn app_mut(&mut self) -> &mut EcomState {
        self.app
            .as_mut()
            .expect("invariant: install_app runs before any workload event")
    }
}

impl HasStorage for DemoWorld {
    fn storage(&self) -> &StorageWorld {
        &self.st
    }
    fn storage_mut(&mut self) -> &mut StorageWorld {
        &mut self.st
    }
}

impl HasEcom for DemoWorld {
    fn ecom(&self) -> &EcomState {
        self.app()
    }
    fn ecom_mut(&mut self) -> &mut EcomState {
        self.app_mut()
    }
}
