//! Plain-text table rendering for experiment output.

/// Render an aligned table with a header row and a separator.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("{h:>w$}  ", w = w));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("  ");
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:>w$}  ", w = w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["mode", "tps"],
            &[
                vec!["none".into(), "1234.56".into()],
                vec!["adc-cg".into(), "9.1".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("mode"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].ends_with("1234.56"));
        // Right-aligned columns: "adc-cg" ends at the same column as "none".
        assert_eq!(
            lines[2].find("1234.56").unwrap() + 7,
            lines[3].find("9.1").unwrap() + 3
        );
    }

    #[test]
    fn float_formats() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(2.0), "2.000");
    }
}
