//! The experiment runners behind every table/figure reproduction
//! (DESIGN.md §4). Each returns structured rows; the bench crate's `repro`
//! binary renders them and EXPERIMENTS.md records the results.
//!
//! Every multi-trial experiment (E1, E2, E3, A1, A2) has two entry points:
//! the original serial signature (`e1_slowdown`, …) and a `*_with` variant
//! taking a [`TrialHarness`] that fans the independent trials out over a
//! thread pool. Both produce identical rows at any thread count — trials
//! are seeded purely from `(base_seed, trial_index)` and re-sorted by
//! index (see `harness.rs`).

use serde::{Deserialize, Serialize};
use tsuru_container::{
    ApiServer, ClaimPhase, ControllerManager, Namespace, ObjectMeta, PersistentVolumeClaim,
    Provisioner, StorageClass, BACKUP_TAG_KEY, BACKUP_TAG_VALUE,
};
use tsuru_nso::{NamespaceOperator, NsoConfig};
use tsuru_plugin::{
    BackupSiteImporter, ReplicationPlugin, ReplicationPluginConfig, TsuruBlockDriver,
};
use tsuru_sim::{SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::{ArrayPerf, EngineConfig, StorageWorld};

use crate::harness::{TrialHarness, TrialSet};
use crate::rig::{BackupMode, RigConfig, TwoSiteRig};
use tsuru_sim::DetRng;

// =====================================================================
// E1 — no system slowdown (claim C1): latency/throughput vs backup mode
// =====================================================================

/// One (mode, RTT) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E1Row {
    /// Backup mode label.
    pub mode: String,
    /// Inter-site round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// Committed transactions per simulated second.
    pub tps: f64,
    /// Mean transaction latency (ms).
    pub mean_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
}

/// Sweep backup modes across inter-site distances (serial).
pub fn e1_slowdown(seed: u64, rtts_ms: &[u64], duration: SimDuration) -> Vec<E1Row> {
    e1_slowdown_with(&TrialHarness::serial(), seed, rtts_ms, duration).rows
}

/// [`e1_slowdown`] with each (RTT, mode) cell as one harness trial.
///
/// Every cell uses the same workload seed so modes stay directly
/// comparable at a given RTT, exactly as the serial sweep did.
pub fn e1_slowdown_with(
    harness: &TrialHarness,
    seed: u64,
    rtts_ms: &[u64],
    duration: SimDuration,
) -> TrialSet<E1Row> {
    let mut cells = Vec::new();
    for &rtt in rtts_ms {
        for mode in [BackupMode::None, BackupMode::AdcConsistencyGroup, BackupMode::Sdc] {
            cells.push((rtt, mode));
        }
    }
    harness.run(seed, cells.len(), |ctx| {
        let (rtt, mode) = cells[ctx.index];
        let mut cfg = RigConfig {
            seed,
            mode,
            ..Default::default()
        };
        let one_way = SimDuration::from_micros(rtt * 1000 / 2);
        cfg.link = LinkConfig::with(one_way, 1_000_000_000 / 8);
        let mut rig = TwoSiteRig::new(cfg);
        rig.run_workload_for(duration);
        let s = rig.latency_summary();
        E1Row {
            mode: mode.label().into(),
            rtt_ms: rtt as f64,
            tps: rig.throughput_tps(),
            mean_ms: s.mean / 1e6,
            p50_ms: s.p50 as f64 / 1e6,
            p99_ms: s.p99 as f64 / 1e6,
        }
    })
}

// =====================================================================
// E2 — backup collapse (claims C2/C3): CG vs naive under surprise failure
// =====================================================================

/// Aggregate over many disaster trials for one mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E2Row {
    /// Backup mode label.
    pub mode: String,
    /// Trials run.
    pub trials: u32,
    /// Trials whose backup violated write-order fidelity (storage check).
    pub storage_collapses: u32,
    /// Trials whose recovered databases violated the cross-DB invariant or
    /// hard-failed recovery (business check).
    pub business_collapses: u32,
    /// Trials where a database failed to recover at all.
    pub hard_recovery_failures: u32,
    /// Mean committed-but-lost orders per trial (expected ADC data loss).
    pub avg_lost_orders: f64,
}

/// Verdict of one surprise-failure drill (one harness trial).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E2Trial {
    /// Backup mode label.
    pub mode: String,
    /// Did the backup violate write-order fidelity?
    pub storage_collapse: bool,
    /// Did the recovered databases violate the cross-DB invariant or
    /// hard-fail recovery?
    pub business_collapse: bool,
    /// Did a database fail to recover at all?
    pub hard_failure: bool,
    /// Committed-but-lost orders in this drill.
    pub lost_orders: u64,
}

/// Run `trials` surprise-failure drills per mode (serial).
pub fn e2_collapse(base_seed: u64, trials: u32, session_jitter: SimDuration) -> Vec<E2Row> {
    e2_collapse_with(&TrialHarness::serial(), base_seed, trials, session_jitter).rows
}

/// [`e2_collapse`] fanned over a harness: one trial per (mode, drill).
///
/// Drill `t` uses seed `DetRng::trial_seed(base_seed, t)` under *both*
/// modes, so the comparison stays paired; aggregation runs over the
/// index-sorted rows, making the table identical at any thread count.
pub fn e2_collapse_with(
    harness: &TrialHarness,
    base_seed: u64,
    trials: u32,
    session_jitter: SimDuration,
) -> TrialSet<E2Row> {
    let modes = [BackupMode::AdcConsistencyGroup, BackupMode::AdcPerVolume];
    let total = modes.len() * trials as usize;
    let set = harness.run(base_seed, total, |ctx| {
        let mode = modes[ctx.index / trials as usize];
        let t = (ctx.index % trials as usize) as u64;
        e2_drill(base_seed, t, mode, session_jitter)
    });
    set.map_rows(|per_trial| {
        modes
            .iter()
            .enumerate()
            .map(|(mi, mode)| {
                let chunk = &per_trial[mi * trials as usize..(mi + 1) * trials as usize];
                E2Row {
                    mode: mode.label().into(),
                    trials,
                    storage_collapses: chunk.iter().filter(|r| r.storage_collapse).count() as u32,
                    business_collapses: chunk.iter().filter(|r| r.business_collapse).count()
                        as u32,
                    hard_recovery_failures: chunk.iter().filter(|r| r.hard_failure).count() as u32,
                    avg_lost_orders: chunk.iter().map(|r| r.lost_orders).sum::<u64>() as f64
                        / trials as f64,
                }
            })
            .collect()
    })
}

/// One E2 drill: build, run to a surprise failure, fail over, recover.
pub fn e2_drill(base_seed: u64, t: u64, mode: BackupMode, session_jitter: SimDuration) -> E2Trial {
    let mut cfg = RigConfig {
        seed: DetRng::trial_seed(base_seed, t),
        mode,
        ..Default::default()
    };
    cfg.engine.pump_jitter = session_jitter;
    cfg.workload.think_time_mean = SimDuration::from_millis(2);
    let mut rig = TwoSiteRig::new(cfg);
    // Failure somewhere in the middle of the run, varied per trial.
    let fail_at = SimTime::from_millis(80 + (t * 13) % 80);
    rig.schedule_main_failure(fail_at);
    rig.world.app_mut().stop_after_orders = None;
    tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
    rig.sim
        .run_until(&mut rig.world, fail_at + SimDuration::from_millis(200));

    let (consistency, _) = rig.failover(fail_at);
    let outcome = rig.recover_from_backup();
    let hard_failure = outcome.hard_failure();
    E2Trial {
        mode: mode.label().into(),
        storage_collapse: !consistency.prefix.consistent,
        business_collapse: hard_failure || !outcome.fully_consistent(),
        hard_failure,
        lost_orders: outcome.orders.as_ref().map(|o| o.lost).unwrap_or(0),
    }
}

// =====================================================================
// E3 — RPO vs link bandwidth and journal capacity (§III-A1)
// =====================================================================

/// One (mode, bandwidth, journal) RPO measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E3Row {
    /// Backup mode label.
    pub mode: String,
    /// Link bandwidth in Mbit/s.
    pub bandwidth_mbps: u64,
    /// Journal capacity in MiB.
    pub journal_mib: u64,
    /// Committed orders at the main site when disaster struck.
    pub committed_orders: u64,
    /// Committed orders lost at the backup.
    pub lost_orders: u64,
    /// Storage-level recovery point (ms behind the failure instant).
    pub rpo_ms: f64,
    /// Host-write stalls caused by a full journal.
    pub journal_stalls: u64,
    /// Transaction p99 latency (ms) — shows the Block-policy backpressure.
    pub p99_ms: f64,
}

/// Sweep ADC over bandwidths and journal sizes; one SDC reference row
/// (serial).
pub fn e3_rpo(seed: u64, bandwidths_mbps: &[u64], journal_mib: &[u64]) -> Vec<E3Row> {
    e3_rpo_with(&TrialHarness::serial(), seed, bandwidths_mbps, journal_mib).rows
}

/// [`e3_rpo`] with each (mode, bandwidth, journal) cell as one harness
/// trial. Every cell uses the same workload seed, as the serial sweep did.
pub fn e3_rpo_with(
    harness: &TrialHarness,
    seed: u64,
    bandwidths_mbps: &[u64],
    journal_mib: &[u64],
) -> TrialSet<E3Row> {
    let mut cells: Vec<(BackupMode, u64, u64)> = Vec::new();
    for &mbps in bandwidths_mbps {
        for &jmib in journal_mib {
            cells.push((BackupMode::AdcConsistencyGroup, mbps, jmib));
        }
    }
    // SDC reference: zero loss by construction.
    cells.push((BackupMode::Sdc, *bandwidths_mbps.last().unwrap_or(&1000), 0));
    harness.run(seed, cells.len(), |ctx| {
        let (mode, mbps, jmib) = cells[ctx.index];
        let fail_at = SimTime::from_millis(150);
        let mut cfg = RigConfig {
            seed,
            mode,
            journal_capacity: jmib << 20,
            ..Default::default()
        };
        cfg.link = LinkConfig::with(SimDuration::from_millis(5), mbps * 1_000_000 / 8);
        cfg.workload.think_time_mean = SimDuration::from_millis(2);
        let mut rig = TwoSiteRig::new(cfg);
        rig.schedule_main_failure(fail_at);
        tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
        rig.sim
            .run_until(&mut rig.world, fail_at + SimDuration::from_millis(300));
        let committed = rig.committed_orders();
        let (_, rpo) = rig.failover(fail_at);
        let outcome = rig.recover_from_backup();
        let lost = outcome.orders.map(|o| o.lost).unwrap_or(committed);
        let s = rig.latency_summary();
        E3Row {
            mode: mode.label().into(),
            bandwidth_mbps: mbps,
            journal_mib: jmib,
            committed_orders: committed,
            lost_orders: lost,
            rpo_ms: rpo.rpo.as_nanos() as f64 / 1e6,
            journal_stalls: rig.world.st.metrics.counter(tsuru_storage::metric_names::JOURNAL_STALL_RETRIES),
            p99_ms: s.p99 as f64 / 1e6,
        }
    })
}

// =====================================================================
// E4 — snapshot groups for usable backup data (§III-A2, Figs. 5–6)
// =====================================================================

/// One snapshot-scenario measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E4Row {
    /// Scenario label.
    pub scenario: String,
    /// Orders visible to analytics on the snapshot image.
    pub analytics_orders: u64,
    /// Was the snapshot image cross-DB consistent?
    pub image_consistent: bool,
    /// Copy-on-write preservations performed on the backup array.
    pub cow_saves: u64,
    /// Orders committed at the main site by the end of the run (the live
    /// system keeps moving while analytics read the frozen image).
    pub committed_at_end: u64,
}

/// Compare atomic snapshot groups against non-atomic per-volume snapshots,
/// with replication running throughout.
pub fn e4_snapshot(seed: u64) -> Vec<E4Row> {
    let mut rows = Vec::new();
    for (scenario, atomic) in [("group-atomic", true), ("per-volume-nonatomic", false)] {
        let cfg = RigConfig {
            seed,
            mode: BackupMode::AdcConsistencyGroup,
            ..Default::default()
        };
        let db_cfg = cfg.db.clone();
        let initial_stock = cfg.workload.initial_stock;
        let mut rig = TwoSiteRig::new(cfg);
        tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
        rig.sim.run_until(&mut rig.world, SimTime::from_millis(150));

        let replicas = rig.replicas.expect("replicated rig");
        let snaps: Vec<tsuru_storage::SnapshotId> = if atomic {
            rig.snapshot_backup_group("pit")
        } else {
            // Non-atomic: snapshot the stock volumes first, let replication
            // advance, then snapshot the sales volumes — the pre-group-
            // snapshot reality the paper's storage solves.
            let now = rig.sim.now();
            let s2 = rig.world.st.snapshot(replicas[2], "stock-wal-pit", now);
            let s3 = rig.world.st.snapshot(replicas[3], "stock-data-pit", now);
            rig.sim
                .run_until(&mut rig.world, now + SimDuration::from_millis(25));
            let now2 = rig.sim.now();
            let s0 = rig.world.st.snapshot(replicas[0], "sales-wal-pit", now2);
            let s1 = rig.world.st.snapshot(replicas[1], "sales-data-pit", now2);
            vec![s0, s1, s2, s3]
        };
        // Keep the workload running while analytics read the image.
        rig.sim.run_until(&mut rig.world, SimTime::from_millis(300));

        let arr = rig.world.st.array(rig.backup);
        let sales = tsuru_minidb::MiniDb::recover(
            "sales-snap",
            &tsuru_storage::SnapshotView::new(arr, snaps[0]),
            &tsuru_storage::SnapshotView::new(arr, snaps[1]),
            db_cfg.clone(),
        );
        let stock = tsuru_minidb::MiniDb::recover(
            "stock-snap",
            &tsuru_storage::SnapshotView::new(arr, snaps[2]),
            &tsuru_storage::SnapshotView::new(arr, snaps[3]),
            db_cfg.clone(),
        );
        let (analytics_orders, image_consistent) = match (&sales, &stock) {
            (Ok((s, _)), Ok((t, _))) => {
                let inv = tsuru_ecom::check_cross_db(s, t, initial_stock);
                let rep = tsuru_analytics::run_analytics(s, t, 5);
                (rep.order_count, inv.consistent())
            }
            _ => (0, false),
        };
        rows.push(E4Row {
            scenario: scenario.into(),
            analytics_orders,
            image_consistent,
            cow_saves: rig.world.st.array(rig.backup).cow_saves(),
            committed_at_end: rig.committed_orders(),
        });
    }
    rows
}

// =====================================================================
// E5 — operator automation (§III-B1, Figs. 3–4)
// =====================================================================

/// One namespace-size measurement of configuration effort.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E5Row {
    /// Claims in the namespace.
    pub volumes: usize,
    /// User actions with the operator (always 1: the tag).
    pub user_actions_operator: u32,
    /// Estimated manual console steps without the operator (see
    /// [`manual_steps`]).
    pub user_actions_manual: u64,
    /// Reconcile rounds until convergence.
    pub rounds: u32,
    /// API mutations performed by the controllers.
    pub api_mutations: u64,
    /// Array pairs configured.
    pub pairs: u64,
    /// Claims surfaced on the backup platform.
    pub backup_claims: usize,
    /// Whether reconciliation converged.
    pub converged: bool,
}

/// The manual procedure the operator replaces, per the paper's workflow:
/// identify the PV↔LDEV correspondence (1 per volume), create the
/// secondary volume (1), create the pair with consistency-group attributes
/// (1), plus per namespace: create two journal volumes, define the group,
/// and verify (4).
pub fn manual_steps(volumes: u64) -> u64 {
    4 + 3 * volumes
}

/// Scale the namespace and measure operator effort end to end
/// (tag → pairs on the array → claims visible at the backup site).
pub fn e5_operator(volume_counts: &[usize]) -> Vec<E5Row> {
    let mut rows = Vec::new();
    for &n in volume_counts {
        let mut st = StorageWorld::new(7, EngineConfig::default());
        let main_array = st.add_array("vsp-main", ArrayPerf::default());
        let backup_array = st.add_array("vsp-backup", ArrayPerf::default());
        let link = st.add_link(LinkConfig::metro());
        let reverse = st.add_link(LinkConfig::metro());

        let mut main_api = ApiServer::new();
        main_api.storage_classes.create(StorageClass {
            meta: ObjectMeta::cluster("tsuru-block"),
            provisioner: "block.csi.tsuru.io".into(),
            parameters: Default::default(),
        });
        main_api.namespaces.create(Namespace {
            meta: ObjectMeta::cluster("shop"),
        });
        for i in 0..n {
            main_api.pvcs.create(PersistentVolumeClaim {
                meta: ObjectMeta::namespaced("shop", format!("vol-{i:04}")),
                storage_class: "tsuru-block".into(),
                size_blocks: 64,
                phase: ClaimPhase::Pending,
                volume_name: None,
            });
        }
        let mut provisioner =
            Provisioner::new(TsuruBlockDriver::new(main_array, "block.csi.tsuru.io"));
        let mut repl = ReplicationPlugin::new(ReplicationPluginConfig {
            main_array,
            backup_array,
            link,
            reverse,
            journal_capacity_bytes: 64 << 20,
        });
        let mut nso = NamespaceOperator::new(NsoConfig::default());
        // Provision first (volumes exist before backup is requested).
        ControllerManager::run_to_convergence(
            &mut main_api,
            &mut st,
            &mut [&mut provisioner],
            128,
        );
        let mutations_before = main_api.total_mutations();

        // The single user action: tag the namespace.
        main_api.namespaces.update("shop", |ns| {
            ns.meta
                .labels
                .insert(BACKUP_TAG_KEY.into(), BACKUP_TAG_VALUE.into());
            true
        });
        let report = ControllerManager::run_to_convergence(
            &mut main_api,
            &mut st,
            &mut [&mut nso, &mut provisioner, &mut repl],
            256,
        );
        // Backup site surfaces the claims.
        let mut backup_api = ApiServer::new();
        let mut importer = BackupSiteImporter::new(backup_array);
        ControllerManager::run_to_convergence(
            &mut backup_api,
            &mut st,
            &mut [&mut importer],
            128,
        );
        rows.push(E5Row {
            volumes: n,
            user_actions_operator: 1,
            user_actions_manual: manual_steps(n as u64),
            rounds: report.rounds,
            api_mutations: main_api.total_mutations() - mutations_before,
            pairs: repl.pairs_created,
            backup_claims: backup_api.pvcs.len(),
            converged: report.converged,
        });
    }
    rows
}

// =====================================================================
// E6 — the full three-step demonstration (§IV) + disaster drill
// =====================================================================

/// Outcome of the end-to-end demo.
#[derive(Debug)]
pub struct E6Outcome {
    /// The console transcript (Figs. 2–6 reproduction).
    pub transcript: Vec<String>,
    /// Committed orders at the main site.
    pub committed_orders: u64,
    /// Orders visible to analytics on the snapshot.
    pub analytics_orders: u64,
    /// Whether the failover backup was consistent.
    pub failover_consistent: bool,
    /// Whether the business process recovered at the backup site.
    pub business_recovered: bool,
    /// Committed orders lost at failover (the ADC recovery point).
    pub lost_orders: u64,
    /// Failover RTO.
    pub rto: SimDuration,
}

/// Run the complete demonstration: configure backup by tagging, run the
/// business, develop snapshots, run analytics, then a disaster drill.
pub fn e6_demo(seed: u64) -> E6Outcome {
    let cfg = crate::system::DemoConfig {
        seed,
        ..Default::default()
    };
    let mut demo = crate::system::DemoSystem::new(cfg);
    demo.step1_configure_backup();
    demo.run_workload_for(SimDuration::from_millis(200));
    let handles = demo.step2_develop_snapshot("pit-1");
    let analytics = demo
        .step3_analytics(&handles, 5)
        .expect("analytics on a consistent snapshot group");
    demo.run_workload_for(SimDuration::from_millis(100));

    let fail_at = demo.sim.now();
    demo.fail_main_site();
    // Let in-flight replication settle.
    let horizon = fail_at + SimDuration::from_millis(100);
    demo.sim.run_until(&mut demo.world, horizon);
    let failover = demo.failover(fail_at);
    let business = demo.recover_business();

    E6Outcome {
        committed_orders: demo.world.app().metrics.committed_orders,
        analytics_orders: analytics.order_count,
        failover_consistent: failover.consistency.is_consistent(),
        business_recovered: business.fully_consistent(),
        lost_orders: business.orders.as_ref().map(|o| o.lost).unwrap_or(0),
        rto: failover.rto,
        transcript: demo.transcript,
    }
}

// =====================================================================
// A1 — ablation: backup lag vs transfer-pump parameters
// =====================================================================

/// One pump-parameter measurement of backup lag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A1Row {
    /// Base pump interval in microseconds.
    pub pump_interval_us: u64,
    /// Maximum journal entries per transfer frame.
    pub batch_max_entries: usize,
    /// Mean backup lag in acked-but-unapplied writes (sampled every 5 ms).
    pub mean_lag_writes: f64,
    /// Peak backup lag in writes.
    pub max_lag_writes: u64,
    /// Transfer frames sent (batching efficiency).
    pub frames_sent: u64,
    /// Transaction p99 (ms) — the pump must not affect the host.
    pub p99_ms: f64,
}

/// Sweep the transfer pump's interval and batch size, sampling the
/// acked-minus-applied backlog. The backup-site *lag* is the price of the
/// main site's zero slowdown; this quantifies the knob.
pub fn a1_backup_lag(
    seed: u64,
    pump_intervals_us: &[u64],
    batches: &[usize],
) -> Vec<A1Row> {
    a1_backup_lag_with(&TrialHarness::serial(), seed, pump_intervals_us, batches).rows
}

/// [`a1_backup_lag`] with each (interval, batch) cell as one harness trial.
pub fn a1_backup_lag_with(
    harness: &TrialHarness,
    seed: u64,
    pump_intervals_us: &[u64],
    batches: &[usize],
) -> TrialSet<A1Row> {
    use std::cell::RefCell;
    use std::rc::Rc;
    let mut cells: Vec<(u64, usize)> = Vec::new();
    for &interval in pump_intervals_us {
        for &batch in batches {
            cells.push((interval, batch));
        }
    }
    harness.run(seed, cells.len(), |ctx| {
        let (interval, batch) = cells[ctx.index];
        let mut cfg = RigConfig {
            seed,
            mode: BackupMode::AdcConsistencyGroup,
            ..Default::default()
        };
        cfg.engine.pump_interval = SimDuration::from_micros(interval);
        cfg.engine.pump_jitter = SimDuration::from_micros(interval / 2);
        cfg.engine.batch_max_entries = batch;
        cfg.workload.think_time_mean = SimDuration::from_millis(2);
        let mut rig = TwoSiteRig::new(cfg);
        let groups = rig.groups.clone();

        let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        // Recurring sampler: every 5 ms record the group backlog (typed
        // control-plane event; re-arms itself until `remaining` runs out).
        rig.sim.schedule_event_at(
            SimTime::from_millis(20),
            crate::DemoEvent::Control(crate::ControlOp::SampleLag {
                groups: groups.clone(),
                out: Rc::clone(&samples),
                remaining: 56,
            }),
        );
        rig.run_workload_for(SimDuration::from_millis(300));

        let samples = samples.borrow();
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64
        };
        let frames: u64 = groups
            .iter()
            .map(|&g| rig.world.st.fabric.group(g).stats.frames_sent)
            .sum();
        A1Row {
            pump_interval_us: interval,
            batch_max_entries: batch,
            mean_lag_writes: mean,
            max_lag_writes: samples.iter().copied().max().unwrap_or(0),
            frames_sent: frames,
            p99_ms: rig.latency_summary().p99 as f64 / 1e6,
        }
    })
}

// =====================================================================
// A2 — ablation: journal-full policy (Block vs Suspend)
// =====================================================================

/// One journal-policy measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A2Row {
    /// `block` or `suspend`.
    pub policy: String,
    /// Journal capacity in KiB.
    pub journal_kib: u64,
    /// Orders committed in the run window.
    pub committed: u64,
    /// Transaction p99 (ms): Block back-pressures the host.
    pub p99_ms: f64,
    /// Host-write stall retries (Block only).
    pub stalls: u64,
    /// Degraded (suspended-replication) acknowledgements (Suspend only).
    pub degraded_acks: u64,
    /// Committed orders missing at the backup after failover.
    pub lost_orders: u64,
}

/// Compare the two journal-overflow behaviours on an undersized journal
/// over a slow link: Block trades primary latency for a bounded recovery
/// point; Suspend keeps the primary fast but abandons the backup.
pub fn a2_journal_policy(seed: u64, journal_kib: &[u64]) -> Vec<A2Row> {
    a2_journal_policy_with(&TrialHarness::serial(), seed, journal_kib).rows
}

/// [`a2_journal_policy`] with each (capacity, policy) cell as one harness
/// trial.
pub fn a2_journal_policy_with(
    harness: &TrialHarness,
    seed: u64,
    journal_kib: &[u64],
) -> TrialSet<A2Row> {
    use tsuru_storage::JournalFullPolicy;
    let mut cells: Vec<(u64, &str, JournalFullPolicy)> = Vec::new();
    for &kib in journal_kib {
        for (label, policy) in [
            ("block", JournalFullPolicy::Block),
            ("suspend", JournalFullPolicy::Suspend),
        ] {
            cells.push((kib, label, policy));
        }
    }
    harness.run(seed, cells.len(), |ctx| {
        let (kib, label, policy) = cells[ctx.index];
        let mut cfg = RigConfig {
            seed,
            mode: BackupMode::AdcConsistencyGroup,
            journal_capacity: kib << 10,
            ..Default::default()
        };
        cfg.engine.journal_full_policy = policy;
        // 20 Mbit/s: slow enough that the journal matters.
        cfg.link = LinkConfig::with(SimDuration::from_millis(5), 20_000_000 / 8);
        cfg.workload.think_time_mean = SimDuration::from_millis(2);
        let mut rig = TwoSiteRig::new(cfg);
        let fail_at = SimTime::from_millis(200);
        rig.schedule_main_failure(fail_at);
        tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
        rig.sim
            .run_until(&mut rig.world, fail_at + SimDuration::from_millis(300));
        let committed = rig.committed_orders();
        rig.failover(fail_at);
        let outcome = rig.recover_from_backup();
        A2Row {
            policy: label.into(),
            journal_kib: kib,
            committed,
            p99_ms: rig.latency_summary().p99 as f64 / 1e6,
            stalls: rig.world.st.metrics.counter(tsuru_storage::metric_names::JOURNAL_STALL_RETRIES),
            degraded_acks: rig.world.app().metrics.degraded_acks,
            lost_orders: outcome.orders.map(|o| o.lost).unwrap_or(committed),
        }
    })
}

// =====================================================================
// E7 — extension: three-data-centre topology (metro SDC + WAN ADC)
// =====================================================================

/// One topology measurement after a main-site disaster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E7Row {
    /// Topology label.
    pub mode: String,
    /// Transaction p50 latency (ms) during normal operation.
    pub p50_ms: f64,
    /// Committed orders when disaster struck.
    pub committed: u64,
    /// Orders recoverable at the WAN (far) site.
    pub far_recovered: u64,
    /// Orders recoverable at the metro site (`—` encoded as None → 0).
    pub metro_recovered: Option<u64>,
    /// Orders lost in the *best* surviving copy.
    pub best_copy_lost: u64,
}

/// Compare two-site ADC, two-site SDC and the 3DC combination: latency
/// near the ADC floor, zero loss at the metro site, bounded loss at the
/// far site.
pub fn e7_three_dc(seed: u64) -> Vec<E7Row> {
    let mut rows = Vec::new();
    for mode in [
        BackupMode::AdcConsistencyGroup,
        BackupMode::Sdc,
        BackupMode::ThreeDc,
    ] {
        let mut cfg = RigConfig {
            seed,
            mode,
            ..Default::default()
        };
        // Far link: a genuine WAN.
        cfg.link = LinkConfig::with(SimDuration::from_millis(25), 1_000_000_000 / 8);
        cfg.workload.think_time_mean = SimDuration::from_millis(2);
        let mut rig = TwoSiteRig::new(cfg);
        let fail_at = SimTime::from_millis(200);
        rig.schedule_main_failure(fail_at);
        tsuru_ecom::driver::start_clients(&mut rig.world, &mut rig.sim);
        rig.sim
            .run_until(&mut rig.world, fail_at + SimDuration::from_millis(200));
        let committed = rig.committed_orders();
        let p50 = rig.latency_summary().p50 as f64 / 1e6;
        // Promote only ADC groups (SDC targets are already current).
        let groups = rig.groups.clone();
        for &g in &groups {
            if rig.world.st.fabric.group(g).mode == tsuru_storage::GroupMode::Adc {
                rig.world.st.promote_group(g);
            }
        }
        let far = rig.recover_from_backup();
        let far_recovered = far.orders.as_ref().map(|o| o.recovered).unwrap_or(0);
        let metro_recovered = rig.metro.map(|_| {
            let m = rig.recover_from_metro();
            m.orders.as_ref().map(|o| o.recovered).unwrap_or(0)
        });
        let best = far_recovered.max(metro_recovered.unwrap_or(0));
        rows.push(E7Row {
            mode: mode.label().into(),
            p50_ms: p50,
            committed,
            far_recovered,
            metro_recovered,
            best_copy_lost: committed.saturating_sub(best),
        });
    }
    rows
}
