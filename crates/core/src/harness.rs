//! The parallel deterministic trial harness (DESIGN.md §6).
//!
//! Every experiment is a batch of *independent* trials: each trial builds
//! its own [`Sim`](tsuru_sim::Sim) world from a seed and runs to a verdict,
//! never touching another trial's state. That makes the batch
//! embarrassingly parallel — but only worth having if parallelism cannot
//! change the results. [`TrialHarness`] guarantees that:
//!
//! - the seed of trial `i` is [`DetRng::trial_seed`]`(base_seed, i)` — a
//!   pure function of the batch seed and the trial index, independent of
//!   thread assignment or completion order;
//! - workers claim trial indices from a shared counter, so any number of
//!   threads covers exactly the same index set;
//! - results carry their trial index and are re-sorted into index order
//!   after the join, so the returned rows are **bit-identical to the
//!   serial runner at any thread count**.
//!
//! Wall-clock is measured per trial and for the whole batch, surfacing
//! through [`ThroughputReport`] (trials/sec, per-trial latency summary,
//! speedup vs a baseline run).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tsuru_sim::{DetRng, ThroughputReport};

/// Handed to each trial: which trial it is and the seed it must use.
#[derive(Debug, Clone, Copy)]
pub struct TrialCtx {
    /// Trial index in `0..trials`.
    pub index: usize,
    /// Deterministic per-trial seed, `DetRng::trial_seed(base_seed, index)`.
    pub seed: u64,
}

/// The rows of one harness run plus its wall-clock metrics.
#[derive(Debug, Clone)]
pub struct TrialSet<R> {
    /// One entry per trial, in trial-index order.
    pub rows: Vec<R>,
    /// Wall-clock throughput of the batch.
    pub stats: HarnessStats,
}

impl<R> TrialSet<R> {
    /// Replace the rows (e.g. aggregate per-trial rows into table rows)
    /// while keeping the wall-clock stats.
    pub fn map_rows<U>(self, f: impl FnOnce(Vec<R>) -> Vec<U>) -> TrialSet<U> {
        TrialSet {
            rows: f(self.rows),
            stats: self.stats,
        }
    }
}

/// Wall-clock metrics of one harness run.
#[derive(Debug, Clone)]
pub struct HarnessStats {
    /// Worker threads used.
    pub threads: usize,
    /// Aggregate throughput (batch wall-clock, trials/sec, per-trial
    /// latency distribution).
    pub throughput: ThroughputReport,
}

impl HarnessStats {
    /// One-line rendering for experiment output.
    pub fn display(&self) -> String {
        format!("threads={} {}", self.threads, self.throughput.display())
    }
}

/// Fans independent deterministic trials out over a scoped thread pool.
#[derive(Debug, Clone)]
pub struct TrialHarness {
    threads: usize,
}

impl Default for TrialHarness {
    fn default() -> Self {
        Self::auto()
    }
}

impl TrialHarness {
    /// A harness running on `threads` workers. `0` means one worker per
    /// available CPU.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        TrialHarness { threads }
    }

    /// The single-threaded harness: runs trials in a plain sequential loop
    /// on the calling thread.
    pub fn serial() -> Self {
        TrialHarness { threads: 1 }
    }

    /// One worker per available CPU.
    pub fn auto() -> Self {
        Self::new(0)
    }

    /// Worker threads this harness uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `trials` independent trials of `run_trial`, each seeded from
    /// `(base_seed, trial_index)`, and return the rows in trial-index
    /// order. The output is identical at any thread count.
    pub fn run<R, F>(&self, base_seed: u64, trials: usize, run_trial: F) -> TrialSet<R>
    where
        R: Send,
        F: Fn(TrialCtx) -> R + Sync,
    {
        // detlint: allow(wall_clock) — batch wall-clock feeds ThroughputReport, never trial results
        let batch_start = Instant::now();
        let mut indexed: Vec<(usize, u64, R)> = if self.threads <= 1 || trials <= 1 {
            // The serial path is the reference: a plain in-order loop.
            (0..trials)
                .map(|index| {
                    let ctx = TrialCtx {
                        index,
                        seed: DetRng::trial_seed(base_seed, index as u64),
                    };
                    // detlint: allow(wall_clock) — per-trial latency metric, reporting-only
                    let t0 = Instant::now();
                    let row = run_trial(ctx);
                    (index, t0.elapsed().as_nanos() as u64, row)
                })
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let results: Mutex<Vec<(usize, u64, R)>> = Mutex::new(Vec::with_capacity(trials));
            let workers = self.threads.min(trials);
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|_| {
                            let mut local: Vec<(usize, u64, R)> = Vec::new();
                            loop {
                                let index = next.fetch_add(1, Ordering::Relaxed);
                                if index >= trials {
                                    break;
                                }
                                let ctx = TrialCtx {
                                    index,
                                    seed: DetRng::trial_seed(base_seed, index as u64),
                                };
                                // detlint: allow(wall_clock) — per-trial latency metric, reporting-only
                                let t0 = Instant::now();
                                let row = run_trial(ctx);
                                local.push((index, t0.elapsed().as_nanos() as u64, row));
                            }
                            results.lock().unwrap().extend(local);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("trial worker panicked");
                }
            })
            .expect("trial scope failed");
            results.into_inner().unwrap()
        };
        let wall_ns = batch_start.elapsed().as_nanos() as u64;
        // Re-sort by trial index: completion order depends on scheduling,
        // the returned rows must not.
        indexed.sort_by_key(|&(index, _, _)| index);
        let per_trial_ns: Vec<u64> = indexed.iter().map(|&(_, ns, _)| ns).collect();
        let rows = indexed.into_iter().map(|(_, _, row)| row).collect();
        TrialSet {
            rows,
            stats: HarnessStats {
                threads: self.threads,
                throughput: ThroughputReport::from_trials(wall_ns, &per_trial_ns),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_index_pure() {
        let a = DetRng::trial_seed(42, 7);
        let b = DetRng::trial_seed(42, 7);
        assert_eq!(a, b);
        assert_ne!(DetRng::trial_seed(42, 7), DetRng::trial_seed(42, 8));
        assert_ne!(DetRng::trial_seed(42, 7), DetRng::trial_seed(43, 7));
    }

    #[test]
    fn rows_are_identical_at_any_thread_count() {
        // A trial that does real (seed-dependent) work.
        let trial = |ctx: TrialCtx| {
            let mut rng = DetRng::new(ctx.seed);
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next());
            }
            (ctx.index, ctx.seed, acc)
        };
        let serial = TrialHarness::serial().run(99, 64, trial);
        for threads in [2, 3, 8] {
            let par = TrialHarness::new(threads).run(99, 64, trial);
            assert_eq!(serial.rows, par.rows, "divergence at {threads} threads");
            assert_eq!(par.stats.threads, threads);
        }
        assert_eq!(serial.stats.throughput.trials, 64);
    }

    #[test]
    fn auto_resolves_to_at_least_one_thread() {
        assert!(TrialHarness::auto().threads() >= 1);
        assert_eq!(TrialHarness::new(5).threads(), 5);
    }

    #[test]
    fn map_rows_keeps_stats() {
        let set = TrialHarness::serial().run(1, 4, |ctx| ctx.index as u64);
        let trials = set.stats.throughput.trials;
        let summed = set.map_rows(|rows| vec![rows.iter().sum::<u64>()]);
        assert_eq!(summed.rows, vec![6]);
        assert_eq!(summed.stats.throughput.trials, trials);
    }
}
