//! The demonstration system: two container platforms, two arrays, the
//! namespace operator, and the paper's three-step demo flow.
//!
//! This is the full §IV deployment: storage classes and claims on the main
//! platform, dynamic provisioning through the CSI driver, backup
//! configuration by *tagging the namespace* (step D1, Figs. 3–4), snapshot
//! development at the backup site (step D2, Fig. 5), and analytics on the
//! snapshot volumes (step D3, Fig. 6). Every console interaction is
//! recorded in a transcript that reproduces the demo's screen content.

use tsuru_analytics::AnalyticsReport;
use tsuru_container::{
    ApiServer, ClaimPhase, ControllerManager, ConvergenceReport, Namespace, ObjectMeta,
    PersistentVolumeClaim, Pod, Provisioner, StorageClass, VolumeGroupSnapshot, BACKUP_TAG_KEY,
    BACKUP_TAG_VALUE,
};
use tsuru_ecom::driver::start_clients;
use tsuru_ecom::scan::record_shop_scan;
use tsuru_ecom::{
    check_cross_db, install_db, order_rpo, seed_stock, EcomMetrics, EcomState, InvariantReport,
    OrderRpo, WorkloadConfig, WorkloadGen,
};
use tsuru_history::{check_history, process, CheckConfig, OpData, Site, Verdict};
use tsuru_minidb::{DbConfig, MiniDb, RecoveryError};
use tsuru_nso::{NamespaceOperator, NsoConfig};
use tsuru_plugin::{
    BackupSiteImporter, ReplicationPlugin, ReplicationPluginConfig, SnapshotPlugin,
    SnapshotScheduler, TsuruBlockDriver,
};
use tsuru_sim::{DetRng, Sim, SimDuration, SimTime};
use tsuru_simnet::LinkConfig;
use tsuru_storage::{
    ArrayId, ArrayPerf, ConsistencyReport, EngineConfig, GroupId, RpoReport, SnapshotId,
    SnapshotView, StorageWorld, VolRef, VolumeId,
};

use crate::event::DemoSim;
use crate::rig::VOLUME_NAMES;
use crate::world::DemoWorld;

/// The CSI driver name used by the demo storage class.
pub const DRIVER_NAME: &str = "block.csi.tsuru.io";
/// The storage class name.
pub const STORAGE_CLASS: &str = "tsuru-block";

/// Configuration of the full demonstration system.
#[derive(Debug, Clone)]
pub struct DemoConfig {
    /// Master seed.
    pub seed: u64,
    /// Storage engine tunables.
    pub engine: EngineConfig,
    /// Array performance profile.
    pub perf: ArrayPerf,
    /// Inter-site link shape.
    pub link: LinkConfig,
    /// ADC journal capacity.
    pub journal_capacity: u64,
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// Database geometry.
    pub db: DbConfig,
    /// Namespace operator policy.
    pub nso: NsoConfig,
    /// The business namespace.
    pub namespace: String,
    /// Simulated control-plane cost charged per reconcile round (operator
    /// actions are not free; contributes to measured RTO).
    pub reconcile_round_cost: SimDuration,
}

impl Default for DemoConfig {
    fn default() -> Self {
        DemoConfig {
            seed: 42,
            engine: EngineConfig::default(),
            perf: ArrayPerf::default(),
            link: LinkConfig::metro(),
            journal_capacity: 256 << 20,
            workload: WorkloadConfig::default(),
            db: DbConfig {
                data_blocks: 8192,
                wal_blocks: 1024,
                checkpoint_threshold: 0.8,
            },
            nso: NsoConfig::default(),
            namespace: "shop".into(),
            reconcile_round_cost: SimDuration::from_millis(20),
        }
    }
}

/// The assembled demonstration system.
pub struct DemoSystem {
    /// Discrete-event state (storage + application).
    pub world: DemoWorld,
    /// Event kernel (typed [`crate::DemoEvent`] dispatch).
    pub sim: DemoSim,
    /// Main-site platform.
    pub main_api: ApiServer,
    /// Backup-site platform.
    pub backup_api: ApiServer,
    /// Main-site array.
    pub main_array: ArrayId,
    /// Backup-site array.
    pub backup_array: ArrayId,
    provisioner: Provisioner<TsuruBlockDriver>,
    repl_plugin: ReplicationPlugin,
    nso: NamespaceOperator,
    importer: BackupSiteImporter,
    snap_plugin: SnapshotPlugin,
    schedulers: Vec<SnapshotScheduler>,
    /// The business namespace.
    pub namespace: String,
    /// Primary volumes in [`VOLUME_NAMES`] order (resolved at build time).
    pub vols: [VolRef; 4],
    /// Console transcript (the demo's screen content).
    pub transcript: Vec<String>,
    config: DemoConfig,
}

impl DemoSystem {
    /// Build the whole system: platforms, storage classes, namespace,
    /// claims, pods; provision volumes; install and seed the databases.
    pub fn new(config: DemoConfig) -> Self {
        let mut st = StorageWorld::new(config.seed, config.engine.clone());
        let main_array = st.add_array("vsp-main", config.perf.clone());
        let backup_array = st.add_array("vsp-backup", config.perf.clone());
        let link = st.add_link(config.link.clone());
        let reverse = st.add_link(config.link.clone());

        // --- main platform -------------------------------------------------
        let mut main_api = ApiServer::new();
        main_api.storage_classes.create(StorageClass {
            meta: ObjectMeta::cluster(STORAGE_CLASS),
            provisioner: DRIVER_NAME.into(),
            parameters: Default::default(),
        });
        let ns = config.namespace.clone();
        main_api.namespaces.create(Namespace {
            meta: ObjectMeta::cluster(&ns),
        });
        let sizes = [
            config.db.wal_blocks,
            config.db.data_blocks,
            config.db.wal_blocks,
            config.db.data_blocks,
        ];
        for (name, size) in VOLUME_NAMES.iter().zip(sizes) {
            main_api.pvcs.create(PersistentVolumeClaim {
                meta: ObjectMeta::namespaced(&ns, *name).with_label("app", "shop"),
                storage_class: STORAGE_CLASS.into(),
                size_blocks: size,
                phase: ClaimPhase::Pending,
                volume_name: None,
            });
        }
        for (pod, claims) in [
            ("sales-db", vec!["sales-wal", "sales-data"]),
            ("stock-db", vec!["stock-wal", "stock-data"]),
            ("shop-app", vec![]),
        ] {
            main_api.pods.create(Pod {
                meta: ObjectMeta::namespaced(&ns, pod),
                pvc_names: claims.into_iter().map(String::from).collect(),
                running: true,
            });
        }

        // --- backup platform ------------------------------------------------
        let mut backup_api = ApiServer::new();
        backup_api.storage_classes.create(StorageClass {
            meta: ObjectMeta::cluster(STORAGE_CLASS),
            provisioner: DRIVER_NAME.into(),
            parameters: Default::default(),
        });

        // --- controllers -----------------------------------------------------
        let mut provisioner =
            Provisioner::new(TsuruBlockDriver::new(main_array, DRIVER_NAME));
        let repl_plugin = ReplicationPlugin::new(ReplicationPluginConfig {
            main_array,
            backup_array,
            link,
            reverse,
            journal_capacity_bytes: config.journal_capacity,
        });
        let nso = NamespaceOperator::new(config.nso.clone());
        let importer = BackupSiteImporter::new(backup_array);
        let snap_plugin = SnapshotPlugin::new(backup_array);

        // Provision the claims (no backup tag yet, so no replication).
        ControllerManager::run_to_convergence(
            &mut main_api,
            &mut st,
            &mut [&mut provisioner],
            32,
        );

        // Resolve the claims to array volumes.
        let resolve = |api: &ApiServer, name: &str| -> VolRef {
            let pvc = api
                .pvcs
                .get(&format!("{ns}/{name}"))
                .unwrap_or_else(|| panic!("claim {name} missing"));
            assert_eq!(pvc.phase, ClaimPhase::Bound, "claim {name} not bound");
            let pv = api
                .pvs
                .get(pvc.volume_name.as_deref().expect("bound claim has pv"))
                .expect("pv exists");
            VolRef::new(ArrayId(pv.handle.array), VolumeId(pv.handle.volume))
        };
        let vols = [
            resolve(&main_api, VOLUME_NAMES[0]),
            resolve(&main_api, VOLUME_NAMES[1]),
            resolve(&main_api, VOLUME_NAMES[2]),
            resolve(&main_api, VOLUME_NAMES[3]),
        ];

        // Install and seed the databases on the provisioned volumes.
        let sales = install_db(&mut st, "sales", vols[0], vols[1], config.db.clone());
        let mut stock = install_db(&mut st, "stock", vols[2], vols[3], config.db.clone());
        seed_stock(
            &mut st,
            &mut stock,
            config.workload.items,
            config.workload.initial_stock,
        );

        let app = EcomState {
            sales,
            stock,
            gen: WorkloadGen::new(
                config.workload.clone(),
                DetRng::new(config.seed).derive(0xEC0),
            ),
            metrics: EcomMetrics::default(),
            stopped: false,
            stop_after_orders: None,
            bank: None,
            append: None,
        };
        let mut world = DemoWorld::new(st);
        world.install_app(app);

        let mut system = DemoSystem {
            world,
            sim: Sim::new(),
            main_api,
            backup_api,
            main_array,
            backup_array,
            provisioner,
            repl_plugin,
            nso,
            importer,
            snap_plugin,
            schedulers: Vec::new(),
            namespace: ns,
            vols,
            transcript: Vec::new(),
            config,
        };
        system.log("=== demonstration system ready (two sites, two arrays) ===");
        system
    }

    fn log(&mut self, line: impl Into<String>) {
        self.transcript.push(line.into());
    }

    fn charge_reconcile(&mut self, rounds: u32) {
        let cost = self.config.reconcile_round_cost.saturating_mul(rounds as u64);
        let horizon = self.sim.now() + cost;
        self.sim.run_until(&mut self.world, horizon);
    }

    /// Run the main site's controllers (operator + provisioner + replication
    /// plugin) to convergence, charging control-plane time.
    pub fn reconcile_main(&mut self) -> ConvergenceReport {
        self.world.st.set_control_time(self.sim.now());
        let report = ControllerManager::run_to_convergence(
            &mut self.main_api,
            &mut self.world.st,
            &mut [
                &mut self.nso,
                &mut self.provisioner,
                &mut self.repl_plugin,
            ],
            64,
        );
        self.charge_reconcile(report.rounds);
        report
    }

    /// Run the backup site's controllers (importer + snapshot plugin +
    /// any snapshot schedulers).
    pub fn reconcile_backup(&mut self) -> ConvergenceReport {
        self.world.st.set_control_time(self.sim.now());
        let mut controllers: Vec<&mut dyn tsuru_container::Reconciler<StorageWorld>> =
            vec![&mut self.importer, &mut self.snap_plugin];
        for s in &mut self.schedulers {
            controllers.push(s);
        }
        let report = ControllerManager::run_to_convergence(
            &mut self.backup_api,
            &mut self.world.st,
            &mut controllers,
            64,
        );
        self.charge_reconcile(report.rounds);
        report
    }

    /// Attach a periodic snapshot schedule with retention to the backup
    /// site (the backup catalogue). Generations are taken/pruned whenever
    /// the backup site reconciles.
    pub fn enable_snapshot_schedule(&mut self, interval: SimDuration, retention: usize) {
        let ns = self.namespace.clone();
        self.schedulers.push(SnapshotScheduler::new(
            ns,
            self.backup_array,
            interval,
            retention,
        ));
        self.log(format!(
            "--- snapshot schedule enabled: every {interval}, keep {retention}"
        ));
    }

    /// Snapshot generations currently in the catalogue (ready ones).
    pub fn snapshot_catalogue(&self) -> Vec<String> {
        self.backup_api
            .group_snapshots
            .list_namespace(&self.namespace)
            .filter(|g| g.ready)
            .map(|g| g.meta.name.clone())
            .collect()
    }

    /// Array groups currently configured by the replication plugin.
    pub fn groups(&self) -> Vec<GroupId> {
        self.repl_plugin.all_groups()
    }

    // ----- the three demo steps --------------------------------------------

    /// Step D1 (Figs. 3–4): the user tags the namespace; the operator and
    /// plugins configure ADC with a consistency group; claims appear at the
    /// backup site.
    pub fn step1_configure_backup(&mut self) -> (ConvergenceReport, ConvergenceReport) {
        let ns = self.namespace.clone();
        self.log(format!(
            "--- step 1: user tags namespace '{ns}' with {BACKUP_TAG_KEY}={BACKUP_TAG_VALUE}"
        ));
        let before = self.backup_api.pvcs.len();
        self.log(format!("    backup-site claims before tagging: {before}"));
        self.main_api.namespaces.update(&ns, |n| {
            n.meta
                .labels
                .insert(BACKUP_TAG_KEY.into(), BACKUP_TAG_VALUE.into());
            true
        });
        let main = self.reconcile_main();
        let backup = self.reconcile_backup();
        let after = self.backup_api.pvcs.len();
        self.log(format!(
            "    operator converged in {} round(s), {} API mutation(s)",
            main.rounds, main.mutations
        ));
        self.log(format!("    backup-site claims after tagging:  {after}"));
        for line in self.main_api.event_tail(8) {
            self.log(format!("    main    | {line}"));
        }
        for line in self.backup_api.event_tail(8) {
            self.log(format!("    backup  | {line}"));
        }
        self.log_storage_status();
        (main, backup)
    }

    /// Start the transactional application (the left-half "transaction
    /// window" of Fig. 2) and run for `duration`.
    pub fn run_workload_for(&mut self, duration: SimDuration) {
        self.log(format!(
            "--- transactions running for {duration} (clients={})",
            self.world.app().gen.config.clients
        ));
        start_clients(&mut self.world, &mut self.sim);
        self.sim.run_for(&mut self.world, duration);
        let m = &self.world.app().metrics;
        let summary = m.txn_latency.summary();
        let committed = m.committed_orders;
        self.log(format!(
            "    committed={committed} latency: {}",
            summary.display_nanos()
        ));
    }

    /// Step D2 (Fig. 5): create a `VolumeGroupSnapshot` on the backup
    /// platform and reconcile it into an atomic array snapshot group.
    /// Returns `(claim name, snapshot handle)` pairs.
    pub fn step2_develop_snapshot(&mut self, name: &str) -> Vec<(String, u64)> {
        let ns = self.namespace.clone();
        self.log(format!(
            "--- step 2: snapshot development on the backup site ('{name}')"
        ));
        self.backup_api.group_snapshots.create(VolumeGroupSnapshot {
            meta: ObjectMeta::namespaced(&ns, name),
            selector: Default::default(), // every claim in the namespace
            ready: false,
            snapshot_handles: Vec::new(),
        });
        self.reconcile_backup();
        let handles = self
            .backup_api
            .group_snapshots
            .get(&format!("{ns}/{name}"))
            .map(|g| g.snapshot_handles.clone())
            .unwrap_or_default();
        self.log(format!(
            "    group snapshot ready: {} member volume(s)",
            handles.len()
        ));
        handles
    }

    /// Step D3 (Fig. 6): open the snapshot volumes read-only and run the
    /// analytics application.
    pub fn step3_analytics(
        &mut self,
        handles: &[(String, u64)],
        top_k: usize,
    ) -> Result<AnalyticsReport, RecoveryError> {
        self.log("--- step 3: data analytics on the snapshot volumes");
        let find = |name: &str| -> SnapshotId {
            handles
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, h)| SnapshotId(h))
                .unwrap_or_else(|| panic!("snapshot for {name} missing"))
        };
        let arr = self.world.st.array(self.backup_array);
        let (sales, _) = MiniDb::recover(
            "sales-analytics",
            &SnapshotView::new(arr, find(VOLUME_NAMES[0])),
            &SnapshotView::new(arr, find(VOLUME_NAMES[1])),
            self.config.db.clone(),
        )?;
        let (stock, _) = MiniDb::recover(
            "stock-analytics",
            &SnapshotView::new(arr, find(VOLUME_NAMES[2])),
            &SnapshotView::new(arr, find(VOLUME_NAMES[3])),
            self.config.db.clone(),
        )?;
        // The analytics scan is a real client of the backup image: when
        // history recording is on, it enters the op history as a
        // mid-run backup observation.
        record_shop_scan(
            &self.world.st.history,
            process::BACKUP_READER,
            self.sim.now(),
            Site::Backup,
            &sales,
            &stock,
            self.config.workload.initial_stock,
        );
        let report = tsuru_analytics::run_analytics(&sales, &stock, top_k);
        for line in report.render() {
            self.log(format!("    {line}"));
        }
        Ok(report)
    }

    // ----- disaster & recovery ----------------------------------------------

    /// Inject a main-site disaster now.
    pub fn fail_main_site(&mut self) {
        let now = self.sim.now();
        self.log(format!("!!! main-site disaster at {now}"));
        self.world.st.fail_array(self.main_array, now);
    }

    /// Failover to the backup site: promote groups, verify consistency,
    /// compute RPO against `failure_time`, and measure RTO as the simulated
    /// time the failover procedure consumed.
    pub fn failover(&mut self, failure_time: SimTime) -> FailoverReport {
        let start = self.sim.now();
        let groups = self.groups();
        let mut applied = 0;
        for &g in &groups {
            applied += self.world.st.promote_group(g);
        }
        // Promotion is an operator procedure: charge one reconcile round
        // per group.
        self.charge_reconcile(groups.len() as u32);
        let consistency = self.world.st.verify_consistency(&groups);
        let rpo = self.world.st.rpo_report(&groups, failure_time);
        let rto = self.sim.now() - start;
        self.log(format!(
            "    failover: {} group(s) promoted, {applied} journal entries applied, \
             consistent={}, lost_writes={}, rpo={}, rto={rto}",
            groups.len(),
            consistency.is_consistent(),
            rpo.lost_writes,
            rpo.rpo
        ));
        FailoverReport {
            consistency,
            rpo,
            rto,
            entries_applied_at_promote: applied,
        }
    }

    /// Recover the business process from the backup site's live replica
    /// volumes (after failover) and run the business-level checks.
    pub fn recover_business(&mut self) -> BusinessRecovery {
        let ns = self.namespace.clone();
        let arr = self.world.st.array(self.backup_array);
        let vol_by_name = |name: &str| -> VolumeId {
            let claim_key = format!("{ns}/{name}");
            arr.volume_ids()
                .into_iter()
                .find(|&v| arr.volume(v).name() == claim_key)
                .unwrap_or_else(|| panic!("replica volume for {claim_key} missing"))
        };
        let sales = MiniDb::recover(
            "sales-dr",
            &tsuru_storage::VolumeView::new(arr, vol_by_name(VOLUME_NAMES[0])),
            &tsuru_storage::VolumeView::new(arr, vol_by_name(VOLUME_NAMES[1])),
            self.config.db.clone(),
        );
        let stock = MiniDb::recover(
            "stock-dr",
            &tsuru_storage::VolumeView::new(arr, vol_by_name(VOLUME_NAMES[2])),
            &tsuru_storage::VolumeView::new(arr, vol_by_name(VOLUME_NAMES[3])),
            self.config.db.clone(),
        );
        // What a client of the promoted replica actually observes,
        // recorded into the op history (if enabled). A replica that
        // will not crash-recover is recorded as a failed observation —
        // the strongest client-visible collapse.
        if let (Ok((s, _)), Ok((t, _))) = (&sales, &stock) {
            record_shop_scan(
                &self.world.st.history,
                process::JUDGE,
                self.sim.now(),
                Site::Backup,
                s,
                t,
                self.config.workload.initial_stock,
            );
        } else if self.world.st.history.is_enabled() {
            let hist = &self.world.st.history;
            let now = self.sim.now();
            let op = hist.invoke(process::JUDGE, now, OpData::ReadShop { site: Site::Backup });
            hist.fail(process::JUDGE, op, now, OpData::None);
        }
        let invariant = match (&sales, &stock) {
            (Ok((s, _)), Ok((t, _))) => Some(check_cross_db(
                s,
                t,
                self.config.workload.initial_stock,
            )),
            _ => None,
        };
        let orders = match &sales {
            Ok((s, _)) => Some(order_rpo(&self.world.app().metrics.committed_log, s)),
            Err(_) => None,
        };
        let ok = invariant.as_ref().is_some_and(|i| i.consistent());
        self.log(format!(
            "    business recovery: sales={}, stock={}, cross-db consistent={ok}",
            sales.is_ok(),
            stock.is_ok()
        ));
        BusinessRecovery {
            sales_ok: sales.is_ok(),
            stock_ok: stock.is_ok(),
            invariant,
            orders,
        }
    }

    /// Judge the recorded op history with the full checker suite.
    ///
    /// Meaningful after the workload ran with history recording on
    /// (`self.world.st.set_history(Recorder::enabled())` before
    /// [`Self::run_workload_for`]): every order the clients placed and
    /// every image observation ([`Self::step3_analytics`],
    /// [`Self::recover_business`]) is in the history, so the verdict is
    /// the client's answer to "did the backup lie to anyone?".
    pub fn history_verdict(&self) -> Verdict {
        check_history(&self.world.st.history.history(), &CheckConfig::default())
    }

    /// The storage administrator's view: replication and pool status
    /// tables (the array's `pairdisplay`, rendered into the transcript).
    pub fn log_storage_status(&mut self) {
        for line in tsuru_storage::render_replication_status(&self.world.st) {
            self.transcript.push(format!("    {line}"));
        }
        for line in tsuru_storage::render_pool_status(&self.world.st) {
            self.transcript.push(format!("    {line}"));
        }
    }

    /// The demo console screen (Fig. 2): claims on both sites plus the
    /// recent event feeds.
    pub fn console_screen(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push("┌─ main site ───────────────────────┬─ backup site ─────────────────────".into());
        let left: Vec<String> = self
            .main_api
            .pvcs
            .list()
            .map(|p| format!("{} [{:?}]", p.meta.key(), p.phase))
            .collect();
        let right: Vec<String> = self
            .backup_api
            .pvcs
            .list()
            .map(|p| format!("{} [{:?}]", p.meta.key(), p.phase))
            .collect();
        let n = left.len().max(right.len()).max(1);
        for i in 0..n {
            out.push(format!(
                "│ {:<34}│ {:<34}",
                left.get(i).map(String::as_str).unwrap_or(""),
                right.get(i).map(String::as_str).unwrap_or("")
            ));
        }
        out.push("└───────────────────────────────────┴───────────────────────────────────".into());
        out
    }
}

/// Outcome of a failover.
#[derive(Debug)]
pub struct FailoverReport {
    /// Storage-level write-order-fidelity verdict.
    pub consistency: ConsistencyReport,
    /// Storage-level recovery point.
    pub rpo: RpoReport,
    /// Simulated time the failover procedure took.
    pub rto: SimDuration,
    /// Journal entries drained during promotion.
    pub entries_applied_at_promote: u64,
}

/// Outcome of business-process recovery at the backup site.
#[derive(Debug)]
pub struct BusinessRecovery {
    /// Sales database recovered.
    pub sales_ok: bool,
    /// Stock database recovered.
    pub stock_ok: bool,
    /// Cross-database invariant result.
    pub invariant: Option<InvariantReport>,
    /// Business-level RPO.
    pub orders: Option<OrderRpo>,
}

impl BusinessRecovery {
    /// Both databases recovered and the invariant holds.
    pub fn fully_consistent(&self) -> bool {
        self.sales_ok
            && self.stock_ok
            && self.invariant.as_ref().is_some_and(|i| i.consistent())
    }
}
