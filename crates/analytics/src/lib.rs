//! # tsuru-analytics — data analytics on snapshot volumes
//!
//! The paper's third demonstration step (§IV-D, Fig. 6): read-only
//! analytics running against databases opened from *snapshot* volumes at
//! the backup site, while asynchronous replication keeps updating the live
//! secondary volumes underneath. Because the snapshot group is atomic
//! across the sales and stock volumes, the analytics see one crash-
//! consistent instant of the whole business process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tsuru_ecom::{OrderRow, StockRow, ORDERS_TABLE, STOCK_TABLE};
use tsuru_minidb::MiniDb;

/// Unit price of an item (deterministic synthetic price book: the paper's
/// demo uses an unspecified retail catalogue, so prices are derived from
/// the item id).
pub fn item_price(item: u64) -> u64 {
    10 + (item * 7919) % 90
}

/// Sales aggregate for one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemSales {
    /// Item id.
    pub item: u64,
    /// Units sold.
    pub units: u64,
    /// Revenue (units × price).
    pub revenue: u64,
    /// Units still in stock.
    pub in_stock: u64,
}

/// The analytics report computed from one consistent image.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyticsReport {
    /// Orders examined.
    pub order_count: u64,
    /// Total units sold.
    pub units_sold: u64,
    /// Total revenue.
    pub total_revenue: u64,
    /// Distinct items with at least one sale.
    pub items_with_sales: usize,
    /// Top sellers, by revenue (descending).
    pub top_items: Vec<ItemSales>,
    /// Inventory valuation (stock × price summed over the catalogue).
    pub inventory_value: u64,
}

impl AnalyticsReport {
    /// Render as console lines (the demo's Fig. 6 panel).
    pub fn render(&self) -> Vec<String> {
        let mut out = vec![
            format!(
                "orders={} units={} revenue={} inventory_value={}",
                self.order_count, self.units_sold, self.total_revenue, self.inventory_value
            ),
            "top sellers:".to_owned(),
        ];
        for s in &self.top_items {
            out.push(format!(
                "  item {:>4}  units {:>6}  revenue {:>8}  in-stock {:>8}",
                s.item, s.units, s.revenue, s.in_stock
            ));
        }
        out
    }
}

/// Run the full analytics suite over a (recovered) sales + stock pair.
pub fn run_analytics(sales: &MiniDb, stock: &MiniDb, top_k: usize) -> AnalyticsReport {
    let mut units: HashMap<u64, u64> = HashMap::new();
    let mut order_count = 0u64;
    for (_, buf) in sales.scan_table(ORDERS_TABLE) {
        if let Some(row) = OrderRow::decode(&buf) {
            *units.entry(row.item).or_default() += row.quantity as u64;
            order_count += 1;
        }
    }
    let stock_rows: HashMap<u64, u64> = stock
        .scan_table(STOCK_TABLE)
        .into_iter()
        .filter_map(|(item, buf)| StockRow::decode(&buf).map(|r| (item, r.quantity)))
        .collect();

    let mut per_item: Vec<ItemSales> = units
        .iter()
        .map(|(&item, &u)| ItemSales {
            item,
            units: u,
            revenue: u * item_price(item),
            in_stock: stock_rows.get(&item).copied().unwrap_or(0),
        })
        .collect();
    per_item.sort_by(|a, b| b.revenue.cmp(&a.revenue).then(a.item.cmp(&b.item)));

    let units_sold = per_item.iter().map(|s| s.units).sum();
    let total_revenue = per_item.iter().map(|s| s.revenue).sum();
    let inventory_value = stock_rows
        .iter()
        .map(|(&item, &q)| q * item_price(item))
        .sum();
    AnalyticsReport {
        order_count,
        units_sold,
        total_revenue,
        items_with_sales: per_item.len(),
        top_items: per_item.into_iter().take(top_k).collect(),
        inventory_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsuru_minidb::DbConfig;

    fn dbs() -> (MiniDb, MiniDb) {
        let cfg = DbConfig {
            data_blocks: 512,
            wal_blocks: 64,
            checkpoint_threshold: 0.8,
        };
        (
            MiniDb::create("sales", cfg.clone()).0,
            MiniDb::create("stock", cfg).0,
        )
    }

    fn put_order(sales: &mut MiniDb, order: u64, item: u64, qty: u32) {
        let tx = sales.begin();
        sales.put(
            tx,
            ORDERS_TABLE,
            order,
            &OrderRow {
                item,
                quantity: qty,
                client: 0,
            }
            .encode(),
        );
        let _ = sales.commit(tx);
    }

    fn put_stock(stock: &mut MiniDb, item: u64, qty: u64) {
        let tx = stock.begin();
        stock.put(tx, STOCK_TABLE, item, &StockRow { quantity: qty }.encode());
        let _ = stock.commit(tx);
    }

    #[test]
    fn aggregates_add_up() {
        let (mut sales, mut stock) = dbs();
        put_stock(&mut stock, 1, 10);
        put_stock(&mut stock, 2, 20);
        put_order(&mut sales, 100, 1, 2);
        put_order(&mut sales, 101, 1, 1);
        put_order(&mut sales, 102, 2, 5);
        let rep = run_analytics(&sales, &stock, 10);
        assert_eq!(rep.order_count, 3);
        assert_eq!(rep.units_sold, 8);
        assert_eq!(rep.items_with_sales, 2);
        assert_eq!(rep.total_revenue, 3 * item_price(1) + 5 * item_price(2));
        assert_eq!(rep.inventory_value, 10 * item_price(1) + 20 * item_price(2));
    }

    #[test]
    fn top_k_is_sorted_by_revenue_and_bounded() {
        let (mut sales, mut stock) = dbs();
        for item in 0..20u64 {
            put_stock(&mut stock, item, 100);
            put_order(&mut sales, 1000 + item, item, (item as u32 % 5) + 1);
        }
        let rep = run_analytics(&sales, &stock, 3);
        assert_eq!(rep.top_items.len(), 3);
        assert!(rep.top_items[0].revenue >= rep.top_items[1].revenue);
        assert!(rep.top_items[1].revenue >= rep.top_items[2].revenue);
    }

    #[test]
    fn empty_databases_yield_zero_report() {
        let (sales, stock) = dbs();
        let rep = run_analytics(&sales, &stock, 5);
        assert_eq!(rep.order_count, 0);
        assert_eq!(rep.total_revenue, 0);
        assert!(rep.top_items.is_empty());
        assert!(rep.render()[0].contains("orders=0"));
    }

    #[test]
    fn prices_are_deterministic_and_positive() {
        for item in 0..1000 {
            let p = item_price(item);
            assert!((10..100).contains(&p));
            assert_eq!(p, item_price(item));
        }
    }

    #[test]
    fn render_shows_top_sellers() {
        let (mut sales, mut stock) = dbs();
        put_stock(&mut stock, 7, 3);
        put_order(&mut sales, 1, 7, 2);
        let lines = run_analytics(&sales, &stock, 5).render();
        assert!(lines.iter().any(|l| l.contains("item    7")));
    }
}
