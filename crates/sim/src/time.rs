//! Simulated time primitives.
//!
//! All simulation time is kept in integer nanoseconds since the start of the
//! simulation. Integer time makes event ordering exact and results
//! bit-for-bit reproducible across platforms, which floating-point seconds
//! would not.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

/// Nanoseconds in a microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds in a millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds in a second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration (used as "never").
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics on negative or
    /// non-finite input; used only for configuration values.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration seconds must be finite and non-negative, got {s}"
        );
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncated).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Whole milliseconds (truncated).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this duration is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// The duration needed to move `bytes` at `bytes_per_sec`, rounded up to
    /// the next nanosecond. A zero rate yields `SimDuration::MAX` (the
    /// transfer never completes).
    pub fn for_bytes_at_rate(bytes: u64, bytes_per_sec: u64) -> SimDuration {
        if bytes_per_sec == 0 {
            return SimDuration::MAX;
        }
        // ceil(bytes * NANOS_PER_SEC / rate) using u128 to avoid overflow.
        let num = bytes as u128 * NANOS_PER_SEC as u128;
        let den = bytes_per_sec as u128;
        let ns = num.div_ceil(den);
        SimDuration(u64::try_from(ns).unwrap_or(u64::MAX))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that is possible.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < NANOS_PER_MICRO {
            write!(f, "{}ns", self.0)
        } else if self.0 < NANOS_PER_MILLI {
            write!(f, "{:.1}us", self.0 as f64 / NANOS_PER_MICRO as f64)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.2}ms", self.0 as f64 / NANOS_PER_MILLI as f64)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5 * NANOS_PER_MILLI);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7 * NANOS_PER_MICRO);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(1500).as_micros(), 1_500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500 * NANOS_PER_MILLI);
        assert_eq!(
            t - SimTime::from_secs(1),
            SimDuration::from_millis(500),
        );
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_secs(4);
        assert_eq!(t2, SimTime::from_secs(4));
    }

    #[test]
    fn saturating_since_clamps_at_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn bytes_at_rate() {
        // 1 MiB at 1 MiB/s is exactly one second.
        let d = SimDuration::for_bytes_at_rate(1 << 20, 1 << 20);
        assert_eq!(d, SimDuration::from_secs(1));
        // Rounds up: 1 byte at 3 B/s is ceil(1e9 / 3) ns.
        let d = SimDuration::for_bytes_at_rate(1, 3);
        assert_eq!(d.as_nanos(), 333_333_334);
        // Zero bandwidth never completes.
        assert_eq!(SimDuration::for_bytes_at_rate(10, 0), SimDuration::MAX);
        // Large values do not overflow.
        let d = SimDuration::for_bytes_at_rate(u64::MAX / 2, 1);
        assert_eq!(d, SimDuration::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.0us");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42.00ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
