//! Deterministic random number generation.
//!
//! [`DetRng`] is a small, fast, splittable PRNG (SplitMix64 core feeding an
//! xoshiro256++ state) with explicit seeding. Every stochastic component of
//! the simulation derives its own stream via [`DetRng::derive`], so adding a
//! new consumer never perturbs the random sequence seen by existing ones —
//! a property plain shared RNGs do not have.

use rand::RngCore;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        DetRng { s }
    }

    /// Derive the master seed of an independent trial, identified by
    /// `(base_seed, trial_index)`.
    ///
    /// This is the seed-splitting contract of the parallel trial harness:
    /// the seed of trial `i` depends only on the base seed and `i`, never
    /// on which thread runs the trial or in which order trials complete,
    /// so a fan-out over any number of threads reproduces the serial run
    /// bit for bit. Internally this is [`DetRng::derive`] keyed by the
    /// trial index, so trial streams inherit the same independence
    /// guarantees as any other derived stream.
    pub fn trial_seed(base_seed: u64, trial_index: u64) -> u64 {
        DetRng::new(base_seed).derive(trial_index).next()
    }

    /// Derive an independent child stream identified by `stream`.
    ///
    /// Children with different stream ids (or from different parents) are
    /// statistically independent; the parent state is not consumed.
    pub fn derive(&self, stream: u64) -> DetRng {
        let s0 = self.s.first().copied().expect("invariant: state is 4 words");
        let s2 = self.s.get(2).copied().expect("invariant: state is 4 words");
        let mut sm = s0 ^ s2 ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s = [1, 0, 0, 0];
        }
        DetRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite stream of u64
    #[inline]
    pub fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range upper bound must be positive");
        let mut x = self.next();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.gen_range(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// Exponentially distributed value with the given mean (> 0).
    ///
    /// Used for Poisson inter-arrival times.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Avoid ln(0) by nudging the uniform sample away from zero.
        let u = self.gen_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.gen_range(xs.len() as u64) as usize]
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A sampler for the Zipf distribution over `{0, 1, ..., n-1}` with
/// exponent `theta`, using precomputed cumulative weights.
///
/// Zipf-distributed item popularity is the standard model for e-commerce
/// catalogue skew (a few hot products, a long cold tail).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with skew `theta >= 0`
    /// (`theta = 0` is uniform; classic Zipf is `theta ≈ 1`).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(theta);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point shortfall at the end.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there is exactly zero ranks (never; kept for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.gen_f64();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..100).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_deterministic_and_independent_of_parent_use() {
        let parent = DetRng::new(7);
        let mut c1 = parent.derive(3);
        let mut parent2 = DetRng::new(7);
        parent2.next(); // consuming the parent must not change child streams
        let mut c2 = DetRng::new(7).derive(3);
        for _ in 0..100 {
            assert_eq!(c1.next(), c2.next());
        }
        let mut other = parent.derive(4);
        assert_ne!(c2.next(), other.next());
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = DetRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let v = rng.gen_range_in(100, 105);
        assert!((100..105).contains(&v));
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = DetRng::new(11);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(8) as usize] += 1;
        }
        let expected = n / 8;
        for &c in &counts {
            // Within 5% of expectation is far looser than 5-sigma here.
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < expected as u64 / 20,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = DetRng::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} not near 0.5");
    }

    #[test]
    fn bernoulli_edges_and_rate() {
        let mut rng = DetRng::new(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::new(13);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean} not near 4.0");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = DetRng::new(17);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DetRng::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = DetRng::new(23);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            let r = z.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        // Rank 0 should dominate rank 50 heavily at theta=1.
        assert!(counts[0] > counts[50] * 10);
        // Theta=0 is uniform-ish.
        let z0 = Zipf::new(10, 0.0);
        let mut c0 = [0u32; 10];
        for _ in 0..50_000 {
            c0[z0.sample(&mut rng)] += 1;
        }
        assert!(c0.iter().all(|&c| c > 3_500));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
