//! Measurement primitives: latency histograms, counters and time series.
//!
//! The histogram is log-bucketed (power-of-two buckets with linear
//! sub-buckets, HDR-histogram style) so that it covers nanoseconds to hours
//! with bounded memory and ≤ ~1.6% relative quantile error.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

const SUB_BUCKET_BITS: u32 = 5; // 32 linear sub-buckets per power of two
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Quantile readout reports the bucket lower bound, except the top
/// quantile (`q >= 1.0`) which reports the exact recorded maximum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // 64 exponent groups x 32 sub-buckets covers the full u64 range.
        Histogram {
            counts: vec![0; 64 * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let group = msb - SUB_BUCKET_BITS + 1;
        let sub = (value >> (group - 1)) as usize & (SUB_BUCKETS - 1);
        group as usize * SUB_BUCKETS + sub
    }

    /// Lowest representative value of a bucket (used for quantile readout).
    fn bucket_value(index: usize) -> u64 {
        let group = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if group == 0 {
            sub
        } else {
            let shift = group as u32 - 1;
            ((SUB_BUCKETS as u64) << shift) | (sub << shift)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        *self
            .counts
            .get_mut(idx)
            .expect("invariant: bucket_index is bounded by the counts table size") += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a duration sample in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of the samples, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (bucket lower bound, except the
    /// top quantile which reports the exact recorded maximum).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// A compact summary (count/mean/quantiles) for reporting.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.total,
            mean: self.mean(),
            min: self.min(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

/// Point-in-time summary of a histogram, values in the histogram's unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest sample.
    pub max: u64,
}

impl Summary {
    /// Render assuming the unit is nanoseconds.
    pub fn display_nanos(&self) -> String {
        fn ms(ns: u64) -> f64 {
            ns as f64 / 1e6
        }
        format!(
            "n={} mean={:.3}ms p50={:.3}ms p90={:.3}ms p99={:.3}ms p999={:.3}ms max={:.3}ms",
            self.count,
            self.mean / 1e6,
            ms(self.p50),
            ms(self.p90),
            ms(self.p99),
            ms(self.p999),
            ms(self.max)
        )
    }
}

/// Aggregate wall-clock throughput over a batch of independent trials —
/// what the parallel trial harness reports: how long the batch took, how
/// many trials per second that is, and the per-trial latency distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Trials executed.
    pub trials: u64,
    /// Wall-clock time for the whole batch, in nanoseconds.
    pub wall_ns: u64,
    /// Per-trial wall-clock summary (nanoseconds per trial).
    pub per_trial: Summary,
}

impl ThroughputReport {
    /// Build from the batch wall-clock and each trial's wall-clock.
    pub fn from_trials(wall_ns: u64, per_trial_ns: &[u64]) -> Self {
        let mut h = Histogram::new();
        for &ns in per_trial_ns {
            h.record(ns);
        }
        ThroughputReport {
            trials: per_trial_ns.len() as u64,
            wall_ns,
            per_trial: h.summary(),
        }
    }

    /// Completed trials per wall-clock second.
    pub fn trials_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.trials as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Wall-clock speedup of this batch relative to `baseline` (typically
    /// the 1-thread run of the same trials). > 1 means faster.
    pub fn speedup_vs(&self, baseline: &ThroughputReport) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            baseline.wall_ns as f64 / self.wall_ns as f64
        }
    }

    /// One-line human-readable rendering.
    pub fn display(&self) -> String {
        format!(
            "trials={} wall={:.3}s trials/sec={:.1} per-trial mean={:.3}ms p99={:.3}ms",
            self.trials,
            self.wall_ns as f64 / 1e9,
            self.trials_per_sec(),
            self.per_trial.mean / 1e6,
            self.per_trial.p99 as f64 / 1e6,
        )
    }
}

/// A monotonically increasing named counter.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A time-stamped series of gauge observations (for lag/occupancy plots).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Append an observation. Timestamps must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "TimeSeries timestamps must be non-decreasing");
        }
        self.points.push((t, v));
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All observations in order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Largest observed value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Time-weighted average over the observation span (assumes each value
    /// holds until the next observation). `None` with fewer than 2 points.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut weighted = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0).as_nanos() as f64;
            weighted += w[0].1 * dt;
        }
        let span = (self.points[self.points.len() - 1].0 - self.points[0].0).as_nanos() as f64;
        if span == 0.0 {
            None
        } else {
            Some(weighted / span)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.count(), 32);
        assert_eq!(h.quantile(1.0), 31);
        assert!((h.mean() - 15.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_order_consistent() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 1000); // 1us..10ms in ns
        }
        let s = h.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // p50 of uniform 1k..10M should be near 5M within bucket error.
        let p50 = h.quantile(0.5) as f64;
        assert!(
            (p50 - 5_000_000.0).abs() / 5_000_000.0 < 0.05,
            "p50={p50}"
        );
    }

    #[test]
    fn relative_bucket_error_is_bounded() {
        // Every recorded value must land in a bucket whose representative
        // value is within 1/32 relative error below the true value.
        let mut h = Histogram::new();
        for &v in &[100u64, 1_000, 123_456, 7_654_321, u32::MAX as u64 * 7] {
            h.record(v);
            let q = h.quantile(1.0);
            assert_eq!(q, h.max());
        }
        for shift in 0..50u32 {
            let v = 1u64 << shift;
            let idx = Histogram::bucket_index(v);
            let rep = Histogram::bucket_value(idx);
            assert!(rep <= v, "rep {rep} > value {v}");
            assert!(
                (v - rep) as f64 <= v as f64 / 32.0 + 1.0,
                "bucket error too large at {v}: rep={rep}"
            );
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..100 {
            a.record(i);
            b.record(i + 1_000_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 0);
        assert!(a.max() >= 1_000_000);
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn time_series_weighted_mean() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 10.0);
        ts.push(SimTime::from_secs(1), 20.0);
        ts.push(SimTime::from_secs(3), 0.0);
        // 10 for 1s, 20 for 2s => (10 + 40) / 3
        let m = ts.time_weighted_mean().unwrap();
        assert!((m - 50.0 / 3.0).abs() < 1e-9);
        assert_eq!(ts.max(), Some(20.0));
        assert_eq!(ts.len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_series_rejects_time_travel() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(2), 1.0);
        ts.push(SimTime::from_secs(1), 1.0);
    }

    #[test]
    fn summary_display_is_stable() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_millis(2));
        let s = h.summary().display_nanos();
        assert!(s.contains("n=1"), "{s}");
        assert!(s.contains("p999="), "{s}");
        assert!(s.contains("p50=2.000ms") || s.contains("p50=1.9"), "{s}");
    }
}
