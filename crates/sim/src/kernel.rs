//! The discrete-event simulation kernel.
//!
//! A [`Sim<S, E>`] owns a time-ordered queue of events over an arbitrary
//! user state `S`. The event type `E` implements [`Event`]: domain crates
//! define plain enums dispatched by `match`, so the hot path schedules and
//! fires events with **zero heap allocations**. The default event type,
//! [`DynEvent`], is the classic boxed-closure escape hatch — `Sim<S>`
//! (no second parameter) behaves exactly like the original closure kernel,
//! and [`Sim::schedule_at`] / [`Sim::schedule_in`] accept closures for any
//! event type via [`Event::from_fn`].
//!
//! Pending events live in a hierarchical timer wheel (see [`crate::wheel`])
//! rather than a binary heap: O(1) amortized insert and pop, and cheap
//! cancellation through [`TimerToken`]s. Ties on the timestamp are broken
//! by insertion order (`seq`), which makes every run fully deterministic —
//! the wheel pops in exactly the `(time, seq)` order the old heap did.

use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerWheel;

/// A one-shot boxed event handler for kernels of event type `E`.
pub type EventFn<S, E = DynEvent<S>> = Box<dyn FnOnce(&mut S, &mut Sim<S, E>)>;

/// A schedulable event for kernels over state `S`.
///
/// Implementations are typically enums whose [`Event::dispatch`] is a
/// `match` calling straight into domain code — no allocation, no virtual
/// call. Every implementation must also absorb a boxed closure
/// ([`Event::from_fn`]) so generic helpers and tests can keep scheduling
/// ad-hoc handlers (the `Dyn` escape-hatch variant).
pub trait Event<S>: Sized + 'static {
    /// Wrap a boxed closure as an event (the escape hatch used by
    /// [`Sim::schedule_at`] and [`Sim::schedule_in`]).
    fn from_fn(f: EventFn<S, Self>) -> Self;
    /// Fire the event. Consumes it; handlers may mutate the world and
    /// schedule further events.
    fn dispatch(self, state: &mut S, sim: &mut Sim<S, Self>);
}

/// The default event type: a boxed one-shot closure. `Sim<S>` with this
/// event type is API- and behavior-compatible with the original
/// closure-only kernel (one allocation per scheduled event).
pub struct DynEvent<S: 'static>(EventFn<S>);

impl<S: 'static> Event<S> for DynEvent<S> {
    #[inline]
    fn from_fn(f: EventFn<S, Self>) -> Self {
        DynEvent(f)
    }
    #[inline]
    fn dispatch(self, state: &mut S, sim: &mut Sim<S, Self>) {
        (self.0)(state, sim)
    }
}

/// Handle to one scheduled event, returned by [`Sim::schedule_event_at`]
/// and [`Sim::schedule_event_in`]. Pass to [`Sim::cancel`] to de-schedule.
/// Tokens are cheap copies; a token for an event that already fired (or
/// was already cancelled) is simply stale and cancels nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken {
    time: SimTime,
    seq: u64,
}

impl TimerToken {
    /// The instant the event is scheduled to fire.
    #[inline]
    pub fn time(&self) -> SimTime {
        self.time
    }
}

/// A deterministic discrete-event simulator over user state `S` with
/// event type `E` (default: boxed closures).
pub struct Sim<S, E = DynEvent<S>> {
    now: SimTime,
    wheel: TimerWheel<E>,
    next_seq: u64,
    executed: u64,
    peak_pending: usize,
    _state: std::marker::PhantomData<fn(&mut S)>,
}

impl<S, E: Event<S>> Default for Sim<S, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S, E: Event<S>> Sim<S, E> {
    /// A simulator at time zero with an empty event queue.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            wheel: TimerWheel::new(),
            next_seq: 0,
            executed: 0,
            peak_pending: 0,
            _state: std::marker::PhantomData,
        }
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.wheel.len()
    }

    /// High-water mark of the pending-event queue over the sim's lifetime.
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// High-water mark of the wheel's batch slab: the largest number of
    /// same-deadline events drained from one wheel slot and served
    /// contiguously. A proxy for how much the batch path is exercised.
    #[inline]
    pub fn peak_slab(&self) -> usize {
        self.wheel.slab_peak()
    }

    /// Deterministic count of heap reallocations performed by the
    /// pending-event store (wheel bucket / batch-slab capacity growths)
    /// since construction. Depends only on the schedule — never on
    /// wall-clock or addresses — so the bench can ratchet it in CI.
    #[inline]
    pub fn alloc_events(&self) -> u64 {
        self.wheel.grow_events()
    }

    /// Schedule event `ev` at absolute time `t`. Zero-allocation for
    /// typed (non-`Dyn`) events. The returned token can cancel it.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current time — scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule_event_at(&mut self, t: SimTime, ev: E) -> TimerToken {
        assert!(
            t >= self.now,
            "cannot schedule event at {t} before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wheel.push(t.as_nanos(), seq, ev);
        if self.wheel.len() > self.peak_pending {
            self.peak_pending = self.wheel.len();
        }
        TimerToken { time: t, seq }
    }

    /// Schedule event `ev` to fire `delay` after the current time.
    pub fn schedule_event_in(&mut self, delay: SimDuration, ev: E) -> TimerToken {
        let t = self
            .now
            .checked_add(delay)
            .expect("invariant: sim time never overflows u64 nanoseconds in a bounded run");
        self.schedule_event_at(t, ev)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// was still pending (it will now never fire and its wheel slot is
    /// reclaimed immediately); `false` if it already fired or was already
    /// cancelled.
    pub fn cancel(&mut self, token: TimerToken) -> bool {
        self.wheel.cancel(token.time.as_nanos(), token.seq).is_some()
    }

    /// Schedule closure `f` to run at absolute time `t` (boxed escape
    /// hatch; one allocation).
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current time — scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule_at(&mut self, t: SimTime, f: impl FnOnce(&mut S, &mut Sim<S, E>) + 'static) {
        self.schedule_event_at(t, E::from_fn(Box::new(f)));
    }

    /// Schedule closure `f` to run `delay` after the current time (boxed
    /// escape hatch; one allocation).
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut S, &mut Sim<S, E>) + 'static,
    ) {
        let t = self
            .now
            .checked_add(delay)
            .expect("invariant: sim time never overflows u64 nanoseconds in a bounded run");
        self.schedule_at(t, f);
    }

    /// Run the single earliest pending event, advancing the clock to its
    /// timestamp. Returns `false` if the queue was empty.
    pub fn step(&mut self, state: &mut S) -> bool {
        match self.wheel.pop() {
            Some((when, _seq, ev)) => {
                let t = SimTime::from_nanos(when);
                debug_assert!(t >= self.now);
                self.now = t;
                self.executed += 1;
                ev.dispatch(state, self);
                true
            }
            None => false,
        }
    }

    /// Run events until the queue is empty.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Run all events with timestamps `<= horizon`, then advance the clock to
    /// exactly `horizon` (even if no event fired there). Events scheduled at
    /// or before the horizon *by handlers running inside this call* are also
    /// executed.
    pub fn run_until(&mut self, state: &mut S, horizon: SimTime) {
        assert!(
            horizon >= self.now,
            "run_until horizon {horizon} is before current time {}",
            self.now
        );
        while let Some(next) = self.wheel.next_time() {
            if next > horizon.as_nanos() {
                break;
            }
            self.step(state);
        }
        self.now = horizon;
    }

    /// Run for `d` of simulated time from the current instant.
    pub fn run_for(&mut self, state: &mut S, d: SimDuration) {
        let horizon = self
            .now
            .checked_add(d)
            .expect("run_for horizon overflow");
        self.run_until(state, horizon);
    }

    /// Run until `pred(state)` holds, checking after every event, or until
    /// the queue drains. Returns `true` if the predicate was satisfied.
    pub fn run_until_cond(&mut self, state: &mut S, mut pred: impl FnMut(&S) -> bool) -> bool {
        if pred(state) {
            return true;
        }
        while self.step(state) {
            if pred(state) {
                return true;
            }
        }
        false
    }

    /// Drop all pending events (used when tearing a scenario down early).
    pub fn clear_pending(&mut self) {
        self.wheel.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut log = Vec::new();
        sim.schedule_at(SimTime::from_millis(30), |s: &mut Vec<u32>, _| s.push(3));
        sim.schedule_at(SimTime::from_millis(10), |s: &mut Vec<u32>, _| s.push(1));
        sim.schedule_at(SimTime::from_millis(20), |s: &mut Vec<u32>, _| s.push(2));
        sim.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut log = Vec::new();
        let t = SimTime::from_secs(1);
        for i in 0..16 {
            sim.schedule_at(t, move |s: &mut Vec<u32>, _| s.push(i));
        }
        sim.run(&mut log);
        assert_eq!(log, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut log = Vec::new();
        fn chain(s: &mut Vec<u64>, sim: &mut Sim<Vec<u64>>) {
            s.push(sim.now().as_nanos());
            if s.len() < 5 {
                sim.schedule_in(SimDuration::from_nanos(100), chain);
            }
        }
        sim.schedule_at(SimTime::ZERO, chain);
        sim.run(&mut log);
        assert_eq!(log, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn run_until_stops_at_horizon_and_advances_clock() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut log = Vec::new();
        sim.schedule_at(SimTime::from_secs(1), |s: &mut Vec<u32>, _| s.push(1));
        sim.schedule_at(SimTime::from_secs(3), |s: &mut Vec<u32>, _| s.push(3));
        sim.run_until(&mut log, SimTime::from_secs(2));
        assert_eq!(log, vec![1]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        assert_eq!(sim.pending(), 1);
        // The remaining event still fires later.
        sim.run(&mut log);
        assert_eq!(log, vec![1, 3]);
    }

    #[test]
    fn run_until_includes_events_scheduled_inside_the_window() {
        let mut sim: Sim<Vec<&'static str>> = Sim::new();
        let mut log = Vec::new();
        sim.schedule_at(SimTime::from_millis(10), |s: &mut Vec<&str>, sim| {
            s.push("a");
            sim.schedule_in(SimDuration::from_millis(5), |s: &mut Vec<&str>, _| {
                s.push("b")
            });
        });
        sim.run_until(&mut log, SimTime::from_millis(20));
        assert_eq!(log, vec!["a", "b"]);
    }

    #[test]
    fn run_until_cond_stops_early() {
        let mut sim: Sim<u32> = Sim::new();
        let mut n = 0u32;
        for i in 0..10 {
            sim.schedule_at(SimTime::from_secs(i), |s: &mut u32, _| *s += 1);
        }
        let hit = sim.run_until_cond(&mut n, |s| *s == 4);
        assert!(hit);
        assert_eq!(n, 4);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn run_until_cond_reports_failure_when_queue_drains() {
        let mut sim: Sim<u32> = Sim::new();
        let mut n = 0u32;
        sim.schedule_at(SimTime::from_secs(1), |s: &mut u32, _| *s += 1);
        assert!(!sim.run_until_cond(&mut n, |s| *s == 100));
        assert_eq!(n, 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule_at(SimTime::from_secs(5), |_, _| {});
        sim.run(&mut ());
        sim.schedule_at(SimTime::from_secs(1), |_, _| {});
    }

    #[test]
    fn clear_pending_discards_events() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_at(SimTime::from_secs(1), |s: &mut u32, _| *s += 1);
        sim.clear_pending();
        let mut n = 0;
        sim.run(&mut n);
        assert_eq!(n, 0);
    }

    /// A minimal typed event: proves match-dispatched enums work end to
    /// end, including the `Dyn` escape hatch alongside typed variants.
    enum TickEvent {
        Add(u32),
        Dyn(EventFn<Vec<u32>, TickEvent>),
    }

    impl Event<Vec<u32>> for TickEvent {
        fn from_fn(f: EventFn<Vec<u32>, Self>) -> Self {
            TickEvent::Dyn(f)
        }
        fn dispatch(self, state: &mut Vec<u32>, sim: &mut Sim<Vec<u32>, Self>) {
            match self {
                TickEvent::Add(n) => {
                    state.push(n);
                    if n < 3 {
                        sim.schedule_event_in(SimDuration::from_millis(1), TickEvent::Add(n + 1));
                    }
                }
                TickEvent::Dyn(f) => f(state, sim),
            }
        }
    }

    #[test]
    fn typed_events_interleave_with_dyn_closures() {
        let mut sim: Sim<Vec<u32>, TickEvent> = Sim::new();
        let mut log = Vec::new();
        sim.schedule_event_at(SimTime::from_millis(1), TickEvent::Add(1));
        sim.schedule_at(SimTime::from_millis(2), |s: &mut Vec<u32>, _| s.push(99));
        sim.run(&mut log);
        // t=1: Add(1); t=2: the closure (scheduled first, lower seq) then
        // Add(2); t=3: Add(3).
        assert_eq!(log, vec![1, 99, 2, 3]);
    }

    #[test]
    fn cancelled_events_never_fire_and_cancel_is_one_shot() {
        let mut sim: Sim<Vec<u32>, TickEvent> = Sim::new();
        let mut log = Vec::new();
        let keep = sim.schedule_event_at(SimTime::from_millis(1), TickEvent::Add(10));
        let kill = sim.schedule_event_at(SimTime::from_millis(2), TickEvent::Add(20));
        assert_eq!(keep.time(), SimTime::from_millis(1));
        assert!(sim.cancel(kill));
        assert!(!sim.cancel(kill), "double-cancel must report stale");
        assert_eq!(sim.pending(), 1);
        sim.run(&mut log);
        assert_eq!(log, vec![10]);
        assert!(!sim.cancel(keep), "cancel after firing must report stale");
    }

    #[test]
    fn peak_pending_tracks_high_water_mark() {
        let mut sim: Sim<u32> = Sim::new();
        for i in 0..5 {
            sim.schedule_at(SimTime::from_secs(i + 1), |s: &mut u32, _| *s += 1);
        }
        let mut n = 0;
        sim.run(&mut n);
        assert_eq!(sim.peak_pending(), 5);
        assert_eq!(sim.pending(), 0);
    }
}
